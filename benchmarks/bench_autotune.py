"""Roofline-driven autotuner: the "auto cannot lose" smoke.

The tentpole claims, pinned as CI assertions:

* **no pessimal pick** — ``RunConfig(config="auto")`` measures a warm
  NSPS no worse than the *worst* candidate the tuner enumerated (NSPS
  is ns per particle-step: lower is better, so auto <= worst);
* **calibrated prediction** — the pick's measured NSPS lands within
  :data:`~repro.analysis.autotune.CALIBRATION_TOLERANCE` of its own
  roofline/cost-model prediction and the run report carries no
  calibration warnings (a warning here means the analytical
  ``predict_launch_seconds`` drifted from the measured launch path —
  a cost-model bug, see ``docs/TUNING.md``);
* **report plumbing** — the auto report exposes the full ranked
  :class:`~repro.analysis.autotune.TuningReport` plus
  ``predicted_nsps`` for downstream tooling.

Run:  pytest benchmarks/bench_autotune.py --benchmark-only -s
"""

import pytest

from repro.analysis.autotune import CALIBRATION_TOLERANCE
from repro.bench.harness import autotune_rows

from conftest import once

N = 50_000
WARMUP = 2
STEPS = 6
DEVICE = "iris-xe-max"


@pytest.fixture(scope="module")
def reports():
    """One auto run plus every enumerated candidate, measured on the
    simulated clock (shared by every assertion below)."""
    return autotune_rows(n=N, steps=STEPS, warmup=WARMUP, device=DEVICE)


def test_auto_never_pessimal(benchmark, reports):
    auto = reports["auto"]
    measured = {label: report.nsps
                for label, report in reports["candidates"].items()}
    worst_label = max(measured, key=measured.get)
    best_label = min(measured, key=measured.get)
    once(benchmark, lambda: auto.nsps)
    benchmark.extra_info["auto_nsps"] = auto.nsps
    benchmark.extra_info["worst_nsps"] = measured[worst_label]
    benchmark.extra_info["best_nsps"] = measured[best_label]
    print(f"\nauto {auto.nsps:.3f} ns/particle-step vs best "
          f"{measured[best_label]:.3f} ({best_label}) and worst "
          f"{measured[worst_label]:.3f} ({worst_label})")
    assert auto.nsps <= measured[worst_label], \
        "autotuner selected a pessimal configuration"


def test_prediction_within_tolerance(reports):
    auto = reports["auto"]
    assert auto.predicted_nsps is not None
    error = abs(auto.nsps - auto.predicted_nsps) / auto.predicted_nsps
    assert error <= CALIBRATION_TOLERANCE, \
        f"predicted {auto.predicted_nsps:.3f} vs measured " \
        f"{auto.nsps:.3f}: {error:.1%} off"
    assert auto.calibration_warnings == []


def test_report_carries_tuning(reports):
    auto = reports["auto"]
    tuning = auto.tuning
    assert tuning is not None
    # ranked ascending: the selected best heads the table
    nsps = [p.predicted_nsps for p in tuning.ranked]
    assert nsps == sorted(nsps)
    assert tuning.best is tuning.ranked[0]
    # every enumerated candidate was measured by the harness
    labels = {p.candidate.label for p in tuning.ranked}
    assert labels == set(reports["candidates"])
