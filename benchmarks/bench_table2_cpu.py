"""Regenerate Table 2: CPU NSPS for the 6 implementations.

Each benchmark models one (layout, parallelization) row of the paper's
Table 2 on the simulated 2x Xeon 8260L node and records modelled-vs-
paper NSPS for all four (scenario, precision) columns in
``extra_info``.  A final benchmark prints the full comparison table.

Run:  pytest benchmarks/bench_table2_cpu.py --benchmark-only -s
"""

import pytest

from repro.bench import PAPER_TABLE2, comparison_table, model_push_nsps
from repro.bench.scenarios import BenchmarkCase, CPU_PARALLELIZATIONS
from repro.fp import Precision
from repro.particles import Layout

from conftest import once

ROWS = [(layout, parallelization)
        for layout in (Layout.AOS, Layout.SOA)
        for parallelization in CPU_PARALLELIZATIONS]

COLUMNS = [(scenario, precision)
           for scenario in ("precalculated", "analytical")
           for precision in (Precision.SINGLE, Precision.DOUBLE)]


@pytest.mark.parametrize(
    "layout,parallelization", ROWS,
    ids=[f"{l.value}-{p.replace(' ', '_').replace('+', 'p')}"
         for l, p in ROWS])
def test_table2_row(benchmark, model_n, layout, parallelization):
    def run_row():
        row = {}
        for scenario, precision in COLUMNS:
            case = BenchmarkCase(scenario, layout, precision,
                                 parallelization)
            row[(scenario, precision.value)] = \
                model_push_nsps(case, n=model_n).nsps
        return row

    row = once(benchmark, run_row)
    paper_row = PAPER_TABLE2[(layout.value, parallelization)]
    for key, model_value in row.items():
        paper_value = paper_row[key]
        benchmark.extra_info[f"model {key[0]}/{key[1]}"] = \
            round(model_value, 3)
        benchmark.extra_info[f"paper {key[0]}/{key[1]}"] = paper_value
        # Shape check: every cell within 2x of the paper's measurement.
        assert 0.5 < model_value / paper_value < 2.0


def test_table2_full_comparison(benchmark, model_n):
    """Model all 24 cells and print the side-by-side table."""
    def run_table():
        rows = {}
        for layout, parallelization in ROWS:
            row = {}
            for scenario, precision in COLUMNS:
                case = BenchmarkCase(scenario, layout, precision,
                                     parallelization)
                row[(scenario, precision.value)] = \
                    model_push_nsps(case, n=model_n).nsps
            rows[(layout.value, parallelization)] = row
        return rows

    rows = once(benchmark, run_table)
    print()
    print(comparison_table(rows, PAPER_TABLE2, "layout/impl",
                           "Table 2 — CPU NSPS (model vs paper)"))
    # The paper's finding 2: optimized DPC++ within ~10-30% of OpenMP.
    for layout in ("AoS", "SoA"):
        for column in rows[(layout, "OpenMP")]:
            openmp = rows[(layout, "OpenMP")][column]
            numa = rows[(layout, "DPC++ NUMA")][column]
            assert numa / openmp < 1.45
