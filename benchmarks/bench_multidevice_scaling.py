"""Multi-device sharded execution: scaling, placement and resilience.

The paper runs the Boris pusher on one device at a time; this benchmark
exercises the :mod:`repro.distributed` layer that shards the same
workload across a simulated device *group* and prices the halo exchange
through the interconnect cost model.  Four claims are pinned:

* strong scaling — two Iris Xe Max cards beat one by >1.5x on the
  paper's SoA/float precalculated configuration;
* placement matters — on the heterogeneous {cpu, p630, iris-xe-max}
  group a bandwidth-proportional split beats the naive even split;
* overlap matters — hiding the exchange behind the next push (the
  DPC++ event-graph pattern) beats the bulk-synchronous schedule;
* resilience — a traced device-loss run completes via checkpoint
  restore + re-sharding and reproduces the fault-free final particle
  state bit-exactly.

``test_sharded_nsps_matches_recorded_baseline`` doubles as the CI
smoke: it replays the committed ``benchmarks/BENCH_shard.json``
configuration and fails if group NSPS drifts from the recorded value.

Run:  pytest benchmarks/bench_multidevice_scaling.py --benchmark-only -s
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.bench import paper_time_step, paper_wave
from repro.bench.scenarios import paper_ensemble
from repro.distributed import (DeviceGroup, ProportionalSharding,
                               ShardedPushEngine)
from repro.fp import Precision
from repro.observability import Tracer, tracing
from repro.particles import Layout
from repro.particles.ensemble import COMPONENTS
from repro.resilience import Checkpointer, fault_injection, named_plan

from conftest import once

#: Paper benchmark configuration, scaled down (the cost model is linear
#: in n far above the caches, so 2e5 particles measure the same NSPS).
N = 200_000
WARMUP = 2
STEPS = 8


def _runner(group_spec, n=N, **kwargs):
    ensemble = paper_ensemble(n, Layout.SOA, Precision.SINGLE)
    group = DeviceGroup.from_spec(group_spec)
    return ShardedPushEngine(group, ensemble, "precalculated",
                             paper_wave(), paper_time_step(), **kwargs)


def _steady_state_nsps(group_spec, **kwargs):
    """Group NSPS after warm-up (JIT + first-touch excluded)."""
    runner = _runner(group_spec, **kwargs)
    runner.run(WARMUP)
    runner.reset_measurement()
    return runner.run(WARMUP + STEPS)


def test_strong_scaling_two_iris(benchmark):
    """Two Iris Xe Max cards beat one by >1.5x (SoA, float)."""
    one, two = once(benchmark, lambda: (
        _steady_state_nsps("iris-xe-max"),
        _steady_state_nsps("2x iris-xe-max")))
    speedup = one.nsps / two.nsps
    print(f"\n1x iris {one.nsps:.3f} NSPS, 2x iris {two.nsps:.3f} NSPS "
          f"-> speedup {speedup:.2f}")
    benchmark.extra_info["speedup 1->2 iris"] = round(speedup, 2)
    assert speedup > 1.5
    # The exchange was actually priced, not skipped.
    assert two.exchange.transfers == 2 * STEPS
    assert two.exchange.total_bytes > 0


def test_bandwidth_proportional_beats_even(benchmark):
    """Heterogeneous placement: bandwidth-proportional beats even."""
    spec = "cpu, p630, iris-xe-max"
    even, proportional = once(benchmark, lambda: (
        _steady_state_nsps(spec),
        _steady_state_nsps(
            spec, strategy=ProportionalSharding(metric="bandwidth"))))
    print(f"\n{spec}: even {even.nsps:.3f} NSPS, "
          f"bandwidth-proportional {proportional.nsps:.3f} NSPS")
    benchmark.extra_info["even"] = round(even.nsps, 3)
    benchmark.extra_info["bandwidth"] = round(proportional.nsps, 3)
    assert proportional.nsps < even.nsps
    # The split actually follows Table 1 bandwidths: cpu > iris > p630.
    by_key = {s.key: s.particles for s in proportional.shards}
    assert by_key["cpu"] > by_key["iris-xe-max"] > by_key["p630"]
    assert sum(by_key.values()) == N


def test_overlap_hides_exchange(benchmark):
    """Async exchange/push overlap beats the bulk-synchronous schedule."""
    overlapped, synchronous = once(benchmark, lambda: (
        _steady_state_nsps("2x iris-xe-max", overlap=True),
        _steady_state_nsps("2x iris-xe-max", overlap=False)))
    print(f"\noverlap {overlapped.nsps:.3f} NSPS, "
          f"bulk-synchronous {synchronous.nsps:.3f} NSPS")
    assert overlapped.nsps < synchronous.nsps


def test_device_loss_redistribution_bit_exact(benchmark):
    """A traced device-loss run completes and matches fault-free bits."""
    steps, n = 12, 20_000

    def scenario():
        reference = _runner("cpu, iris-xe-max", n=n)
        reference.run(steps)

        tracer = Tracer()
        with tempfile.TemporaryDirectory() as scratch:
            faulty = _runner(
                "cpu, iris-xe-max", n=n,
                checkpointer=Checkpointer(scratch, every=5))
            with tracing(tracer):
                with fault_injection(named_plan("device-loss"), seed=3):
                    report = faulty.run(steps)
        return reference.ensemble, faulty.ensemble, report, tracer

    reference, survivor, report, tracer = once(benchmark, scenario)
    assert report.steps == steps
    assert report.redistributions >= 1
    # The recovery is visible in the trace: the injected loss and the
    # redistribute action both left instants.
    names = [i.name for i in tracer.instants]
    assert any(name == "fault:device-loss" for name in names)
    assert any(name == "recovery:redistribute" for name in names)
    # Bit-exact: checkpoint restore + elementwise kernels mean the
    # survivor's replay lands on the identical final state.
    for name in COMPONENTS:
        assert np.array_equal(reference.component(name),
                              survivor.component(name)), name
    benchmark.extra_info["redistributions"] = report.redistributions


def test_sharded_nsps_matches_recorded_baseline():
    """CI smoke: replay the committed BENCH_shard.json configuration.

    The tolerance comparison lives in :mod:`repro.regress` (the repo's
    single drift code path); this test just drives the declared suite
    against the committed baseline and surfaces its per-cell diff.
    """
    from repro.regress import load_baseline, run_regression
    directory = Path(__file__).parent
    if load_baseline("shard", directory) is None:
        pytest.skip("no recorded shard baseline (run `repro bench "
                    "shard --record` first)")
    report = run_regression(directory=directory, suites=["shard"])
    assert report.passed, "\n" + report.render()
