"""Ablation: TBB grain size of the dynamic scheduler.

DESIGN.md calls out the dynamic-scheduling grain as a knob the paper's
TBB runtime tunes automatically.  Too-fine grains multiply per-chunk
overhead; too-coarse grains lose the balancing that justifies dynamic
scheduling.  This sweep shows the flat optimum the auto-partitioner
targets.

Run:  pytest benchmarks/bench_ablation_grain.py --benchmark-only -s
"""

from repro.bench import format_table
from repro.bench.calibration import cost_model_for, xeon_8260l_node
from repro.fields import MDipoleWave
from repro.fp import Precision
from repro.oneapi import (DynamicScheduler, Queue, RuntimeConfig)
from repro.oneapi.runtime import build_virtual_push_spec
from repro.particles import Layout

from conftest import once


def _nsps_with_grain(model_n, grain_size):
    device = xeon_8260l_node()
    config = RuntimeConfig(runtime="dpcpp",
                           scheduler=DynamicScheduler(grain_size=grain_size,
                                                      seed=9))
    queue = Queue(device, config, cost_model_for(device))
    spec = build_virtual_push_spec(model_n, Layout.SOA, Precision.SINGLE,
                                   "analytical", queue.memory,
                                   field_flops=MDipoleWave
                                   .flops_per_evaluation)
    records = [queue.parallel_for(model_n, spec,
                                  precision=Precision.SINGLE)
               for _ in range(4)]
    return sum(r.nsps() for r in records[2:]) / 2.0


def test_grain_size_sweep(benchmark, model_n):
    # From per-chunk-overhead-dominated (32) to imbalance-dominated
    # (one or two huge chunks per thread).
    grains = (32, 512, 4_096, 16_384, model_n // 96)

    def sweep():
        return {g: _nsps_with_grain(model_n, g) for g in grains}

    result = once(benchmark, sweep)
    rows = [[g, f"{v:.3f}"] for g, v in result.items()]
    print()
    print(format_table(["grain size", "NSPS"], rows,
                       "Dynamic-scheduling grain sweep (DPC++, SoA, float)"))
    benchmark.extra_info.update(
        {f"grain {g}": round(v, 3) for g, v in result.items()})

    # Both extremes lose: tiny grains drown in per-chunk scheduling
    # overhead, huge grains lose the balance that dynamic scheduling
    # exists to provide (a thread that randomly draws two chunks takes
    # twice as long as one that draws one).
    best = min(result.values())
    assert result[32] > 1.1 * best
    assert result[model_n // 96] > 1.1 * best
    # The auto-partitioner's regime (many-but-not-tiny grains) is
    # near-optimal.
    assert result[4_096] < 1.1 * best
