"""Shared helpers for the benchmark suite.

Two kinds of benchmarks coexist here:

* *model* benchmarks regenerate the paper's tables/figures from the
  calibrated device simulator; wall time is incidental, the paper
  artefact lands in ``benchmark.extra_info`` and on stdout;
* *real* benchmarks time the actual numpy kernels on this host
  (honest measurements, machine-dependent).

Model benchmarks default to a reduced particle count for speed; run
with ``--paper-scale`` for the full 1e7 (virtual allocations, so memory
stays flat).
"""

import pytest

#: Reduced modelled particle count (still far beyond every cache).
MODEL_N = 2_000_000

#: Full paper particle count.
PAPER_N = 10_000_000


def pytest_addoption(parser):
    parser.addoption("--paper-scale", action="store_true", default=False,
                     help="model the full 1e7-particle working set")


@pytest.fixture(scope="session")
def model_n(request):
    """Modelled particle count for table/figure regeneration."""
    return PAPER_N if request.config.getoption("--paper-scale") else MODEL_N


def once(benchmark, function):
    """Run a deterministic model computation exactly once under the
    benchmark fixture (repetition would only re-time the simulator)."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
