"""Ablation: USM vs buffers/accessors on a discrete device.

The paper (Section 4.2) chose USM as "the simplest, but quite
functional option"; the buffer/accessor model is the alternative it
describes first.  On the shared-memory devices the paper used, the two
are equivalent in cost.  This ablation also models a *discrete* card
(PCIe-attached) to show where the choice starts to matter: buffers make
the host<->device traffic explicit, and a naive pattern that syncs the
particle array to the host every iteration pays the link bandwidth.

Run:  pytest benchmarks/bench_buffers_vs_usm.py --benchmark-only -s
"""

import numpy as np

from repro.bench import format_table
from repro.bench.calibration import cost_model_for, iris_xe_max
from repro.fp import Precision
from repro.oneapi import AccessMode, Queue
from repro.oneapi.builders import make_gpu_descriptor
from repro.oneapi.runtime import build_virtual_push_spec
from repro.particles import Layout

from conftest import once

N = 1_000_000
STEPS = 5


def _steady_nsps(queue, spec, accessors=None):
    records = []
    for _ in range(STEPS):
        if accessors is None:
            records.append(queue.parallel_for(N, spec,
                                              precision=Precision.SINGLE))
        else:
            records.append(queue.submit(N, spec, accessors(),
                                        precision=Precision.SINGLE))
    return sum(r.nsps() for r in records[2:]) / (STEPS - 2)


def test_buffers_free_on_shared_memory_device(benchmark):
    """On the paper's integrated GPU, buffers cost the same as USM."""
    def run():
        device = iris_xe_max()
        queue = Queue(device, cost_model=cost_model_for(device))
        spec = build_virtual_push_spec(N, Layout.SOA, Precision.SINGLE,
                                       "precalculated", queue.memory)
        usm = _steady_nsps(queue, spec)
        particle_buffer = queue.create_buffer(np.zeros(N, dtype=np.float32))
        buffered = _steady_nsps(
            queue, spec,
            accessors=lambda: [queue.access(particle_buffer,
                                            AccessMode.READ_WRITE)])
        return usm, buffered

    usm, buffered = once(benchmark, run)
    benchmark.extra_info["usm"] = round(usm, 3)
    benchmark.extra_info["buffers"] = round(buffered, 3)
    assert buffered < usm * 1.02


def test_host_sync_every_step_hurts_discrete_card(benchmark):
    """A host read-back per step on a PCIe card dominates the kernel."""
    def run():
        device = make_gpu_descriptor("discrete-xe", 96, 1.65, 60.0,
                                     discrete=True, pcie_gbps=12.0)
        queue = Queue(device)
        spec = build_virtual_push_spec(N, Layout.SOA, Precision.SINGLE,
                                       "precalculated", queue.memory)
        data = queue.create_buffer(np.zeros((N, 8), dtype=np.float32),
                                   name="particles")

        resident = []
        for _ in range(STEPS):
            resident.append(queue.submit(
                N, spec, [queue.access(data, AccessMode.READ_WRITE)],
                precision=Precision.SINGLE))

        syncing = []
        for _ in range(STEPS):
            syncing.append(queue.submit(
                N, spec, [queue.access(data, AccessMode.READ_WRITE)],
                precision=Precision.SINGLE))
            data.host_data(write=True)     # host touches it every step
        resident_nsps = sum(r.nsps() for r in resident[2:]) / (STEPS - 2)
        syncing_nsps = sum(r.nsps() for r in syncing[2:]) / (STEPS - 2)
        return resident_nsps, syncing_nsps, data

    resident_nsps, syncing_nsps, data = once(benchmark, run)
    print(f"\ndevice-resident: {resident_nsps:.2f} NSPS   "
          f"host-sync every step: {syncing_nsps:.2f} NSPS")
    print(format_table(
        ["counter", "value"],
        [["uploads", data.transfers_to_device],
         ["write-backs", data.transfers_to_host],
         ["bytes to device", f"{data.bytes_to_device / 1e6:.0f} MB"]],
        "Buffer traffic"))
    benchmark.extra_info["resident"] = round(resident_nsps, 3)
    benchmark.extra_info["syncing"] = round(syncing_nsps, 3)
    # 32 MB over 12 GB/s ~ 2.7 ms per step vs ~1.4 ms kernel: the
    # sync-happy pattern must be at least ~2x slower.
    assert syncing_nsps > 2.0 * resident_nsps
