"""Regenerate Fig. 1: strong-scaling speedup on 1-48 cores.

OpenMP and DPC++ NUMA, AoS and SoA layouts, precalculated fields,
single precision, 2 bound threads per core — exactly the paper's
configuration.  Prints the speedup series and asserts the figure's
shape: near-linear OpenMP start, super-linear DPC++ start, saturation
at the socket bandwidth, renewed scaling on the second socket, ~63%
efficiency at 48 cores.

Run:  pytest benchmarks/bench_fig1_scaling.py --benchmark-only -s
"""

import pytest

from repro.bench import fig1_series, format_table

from conftest import once

CORE_COUNTS = (1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48)


def test_fig1_speedup_series(benchmark, model_n):
    series = once(benchmark,
                  lambda: fig1_series(core_counts=CORE_COUNTS, n=model_n))

    headers = ["cores"] + list(series)
    rows = []
    for index, cores in enumerate(CORE_COUNTS):
        rows.append([cores] + [f"{points[index][1]:5.1f}"
                               for points in series.values()])
    print()
    print(format_table(headers, rows,
                       "Fig. 1 — speedup vs 1 core (precalculated, float)"))

    for name, points in series.items():
        speedups = dict(points)
        benchmark.extra_info[f"{name} @48"] = round(speedups[48], 1)

        # Monotone non-decreasing speedup.
        values = [s for _, s in points]
        assert all(b >= a - 1e-6 for a, b in zip(values, values[1:])), name
        # Second socket resumes scaling.
        assert speedups[48] > 1.4 * speedups[24], name
        # Strong-scaling efficiency at 48 cores in the paper's band.
        assert 0.45 < speedups[48] / 48.0 < 0.9, name

    # OpenMP near-linear at low counts; DPC++ super-linear (slow 1-core
    # baseline) — the two visual signatures of the paper's figure.
    openmp = dict(series["OpenMP/SoA"])
    dpcpp = dict(series["DPC++ NUMA/SoA"])
    assert openmp[4] == pytest.approx(4.0, rel=0.2)
    assert dpcpp[4] > 4.0
