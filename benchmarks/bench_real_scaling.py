"""Real host measurement: NSPS vs particle count (cache effects).

The paper's first-iteration discussion hinges on where the working set
lives (cache vs RAM).  On this host the same transition is directly
measurable: per-particle time of the real numpy kernel drops while the
ensemble fits in cache and settles once it streams from memory.

Run:  pytest benchmarks/bench_real_scaling.py --benchmark-only -s
"""

import time

from repro.bench import format_table, paper_time_step, paper_wave
from repro.bench.scenarios import paper_ensemble
from repro.core.kernels import boris_push_precalculated
from repro.fields import PrecalculatedField
from repro.fp import Precision
from repro.particles import Layout

from conftest import once

SIZES = (2_000, 10_000, 50_000, 250_000, 1_000_000)


def _nsps_at(n):
    wave = paper_wave()
    dt = paper_time_step()
    ensemble = paper_ensemble(n, Layout.SOA, Precision.SINGLE)
    precalc = PrecalculatedField.from_source(wave, ensemble, 0.0)
    boris_push_precalculated(ensemble, precalc, dt)       # warm-up
    repeats = max(3, 200_000 // n)
    start = time.perf_counter()
    for _ in range(repeats):
        boris_push_precalculated(ensemble, precalc, dt)
    elapsed = time.perf_counter() - start
    return elapsed * 1.0e9 / (n * repeats)


def test_real_nsps_vs_particle_count(benchmark):
    results = once(benchmark, lambda: {n: _nsps_at(n) for n in SIZES})
    rows = [[f"{n:,}", f"{v:.1f}"] for n, v in results.items()]
    print()
    print(format_table(["particles", "NSPS"], rows,
                       "Real numpy kernel NSPS vs ensemble size "
                       "(this host, SoA/float/precalculated)"))
    for n, v in results.items():
        benchmark.extra_info[f"n={n}"] = round(v, 1)
    # Sanity: every size completes and produces a positive figure; the
    # large-N figure is the honest streaming number for this host.
    assert all(v > 0.0 for v in results.values())
    # The cache -> RAM transition: per-particle cost settles higher for
    # ensembles that stream from memory than for cache-resident ones —
    # the same mechanism behind the model's cache-residency rule.
    assert results[1_000_000] >= results[2_000]
