"""Regenerate Table 1: hardware parameters of the simulated devices.

Table 1 is the paper's input, not a measurement — but the reproduction
must *derive* the same headline figures from its device descriptors,
otherwise the cost model is calibrated against different hardware than
the paper used.  This benchmark prints the simulated Table 1 and
asserts each derived peak matches the published number.

Run:  pytest benchmarks/bench_table1_devices.py --benchmark-only -s
"""

from repro.bench import device_by_name, format_table
from repro.fp import Precision

from conftest import once

#: Table 1 of the paper: (units label, count, clock GHz, peak SP TFlops).
PAPER_TABLE1 = {
    "cpu": ("CPU cores", 48, 2.4, 3.6),
    "p630": ("GPU execution units", 24, 1.15, 0.441),
    "iris-xe-max": ("GPU execution units", 96, 1.65, 2.5),
}


def test_table1_hardware_parameters(benchmark):
    def derive():
        rows = {}
        for name in PAPER_TABLE1:
            device = device_by_name(name)
            rows[name] = (device.compute_units,
                          device.clock_hz / 1e9,
                          device.peak_flops(Precision.SINGLE) / 1e12)
        return rows

    derived = once(benchmark, derive)
    table_rows = []
    for name, (label, count, clock, peak) in PAPER_TABLE1.items():
        units, model_clock, model_peak = derived[name]
        table_rows.append([
            name, label, f"{units} ({count})",
            f"{model_clock:.2f} ({clock})",
            f"{model_peak:.2f} ({peak})",
        ])
    print()
    print(format_table(
        ["device", "unit kind", "units (paper)", "clock GHz (paper)",
         "peak SP TF (paper)"],
        table_rows, "Table 1 — simulated hardware vs the paper"))

    for name, (label, count, clock, peak) in PAPER_TABLE1.items():
        units, model_clock, model_peak = derived[name]
        assert units == count, name
        assert abs(model_clock - clock) / clock < 0.01, name
        assert abs(model_peak - peak) / peak < 0.05, name
        benchmark.extra_info[f"{name} peak TF"] = round(model_peak, 3)
