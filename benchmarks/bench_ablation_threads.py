"""Ablation: thread count and hyperthreading on the CPU node.

The paper (Section 5.3): "For OpenMP versions, it was found that
employing 96 threads is empirically the best, that is, the use of
hyperthreading technology improves performance."  This sweep models the
OpenMP build at 1 and 2 threads per core across socket fillings.

Run:  pytest benchmarks/bench_ablation_threads.py --benchmark-only -s
"""

from repro.bench import format_table, model_push_nsps
from repro.bench.scenarios import BenchmarkCase
from repro.fp import Precision
from repro.particles import Layout

from conftest import once

CASE = BenchmarkCase("precalculated", Layout.SOA, Precision.SINGLE,
                     "OpenMP")


def test_hyperthreading_helps_at_full_machine(benchmark, model_n):
    def sweep():
        out = {}
        for threads_per_core in (1, 2):
            result = model_push_nsps(CASE, n=model_n, units=48,
                                     threads_per_unit=threads_per_core)
            out[48 * threads_per_core] = result.nsps
        return out

    result = once(benchmark, sweep)
    benchmark.extra_info.update(
        {f"{k} threads": round(v, 3) for k, v in result.items()})
    print(f"\n48 threads: {result[48]:.3f} NSPS   "
          f"96 threads: {result[96]:.3f} NSPS")
    assert result[96] < result[48]


def test_thread_sweep_table(benchmark, model_n):
    def sweep():
        rows = []
        for cores in (12, 24, 36, 48):
            row = [cores]
            for threads_per_core in (1, 2):
                result = model_push_nsps(CASE, n=model_n, units=cores,
                                         threads_per_unit=threads_per_core)
                row.append(f"{result.nsps:.3f}")
            rows.append(row)
        return rows

    rows = once(benchmark, sweep)
    print()
    print(format_table(["cores", "1 thread/core", "2 threads/core"], rows,
                       "OpenMP NSPS vs threading (precalculated, float)"))
    # SMT never hurts in this memory-latency-bound kernel.
    for row in rows:
        assert float(row[2]) <= float(row[1]) * 1.001
