"""Real wall-clock benchmarks of the PIC substrate stages.

Times each stage of the self-consistent loop (interpolation, push,
deposition, field solve) and one full step, on this host.  The paper's
observation that the pusher dominates "for realistic problems due to a
large number of macroparticles" is checked by construction: with many
particles per cell, particle stages dwarf the grid stage.

Run:  pytest benchmarks/bench_pic_loop.py --benchmark-only
"""

import numpy as np
import pytest

from repro.constants import ELECTRON_MASS, SPEED_OF_LIGHT
from repro.fields import YeeGrid
from repro.fields.interpolation import interpolate_from_yee_grid
from repro.particles import ParticleEnsemble
from repro.pic import (FdtdSolver, PicSimulation,
                       deposit_current_esirkepov)

DIMS = (16, 8, 8)
SPACING = 2.0e-5
PARTICLES = 20_000


@pytest.fixture
def plasma():
    grid = YeeGrid((0.0, 0.0, 0.0), (SPACING,) * 3, DIMS)
    rng = np.random.default_rng(0)
    upper = [d * SPACING for d in DIMS]
    positions = rng.uniform([0, 0, 0], upper, (PARTICLES, 3))
    momenta = rng.normal(0.0, 1e-3 * ELECTRON_MASS * SPEED_OF_LIGHT,
                         (PARTICLES, 3))
    ensemble = ParticleEnsemble.from_arrays(positions, momenta)
    dt = 0.35 * SPACING / (SPEED_OF_LIGHT * np.sqrt(3.0))
    return grid, ensemble, dt


def test_stage_interpolation(benchmark, plasma):
    grid, ensemble, _ = plasma
    positions = ensemble.positions()
    benchmark(interpolate_from_yee_grid, grid, positions)


def test_stage_deposition_esirkepov(benchmark, plasma):
    grid, ensemble, dt = plasma
    old = ensemble.positions()
    ensemble.set_positions(old + 0.1 * SPACING)

    def deposit():
        grid.clear_currents()
        deposit_current_esirkepov(grid, ensemble, old, dt)

    benchmark(deposit)


def test_stage_field_solve(benchmark, plasma):
    grid, _, dt = plasma
    solver = FdtdSolver(grid, dt)
    benchmark(solver.step)


def test_full_pic_step(benchmark, plasma):
    grid, ensemble, dt = plasma
    simulation = PicSimulation(grid, ensemble, dt)
    benchmark(simulation.step)
    benchmark.extra_info["ns per particle-step"] = round(
        benchmark.stats["mean"] * 1e9 / PARTICLES, 1)
