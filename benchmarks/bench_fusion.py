"""Kernel-graph fusion: the bit-exactness bar and the NSPS win.

The tentpole claims, pinned as CI assertions:

* **bit-exactness** — a fused step runs the same numpy kernel bodies in
  the same order as the unfused graph, so the final particle state must
  be byte-identical (compared by sha256 digest, not by tolerance);
* **warm win** — with the JIT program cache warm, the fused graph's
  steady NSPS must beat the unfused graph on the paper's best GPU
  configuration (precalculated fields, SoA, float on the Iris Xe Max):
  fewer launches, deduplicated particle streams, and the six staged
  field arrays elided into registers;
* **cold penalty** — a cold program cache pays the calibrated JIT cost
  on the first step, and the fused chain compiles *fewer* programs, so
  the fused cold step is also cheaper than the unfused cold step;
* **baseline** — the committed ``benchmarks/BENCH_fusion.json``
  snapshot is replayed through the declared ``fusion`` regression
  suite and NSPS must not drift >10% (regenerate with ``python -m
  repro bench fusion --record`` when the cost model is deliberately
  recalibrated).

Run:  pytest benchmarks/bench_fusion.py --benchmark-only -s
"""

from pathlib import Path

import pytest

from repro.bench.harness import fusion_rows

from conftest import once

N = 200_000
WARMUP = 2
STEPS = 8


@pytest.fixture(scope="module")
def reports():
    """One fused-vs-unfused comparison, shared by every assertion
    (fusion_rows itself raises GraphError on a digest mismatch)."""
    return fusion_rows(n=N, steps=STEPS, warmup=WARMUP)


def test_fused_is_bit_exact(reports):
    assert reports["fused"].digest == reports["unfused"].digest


def test_fused_warm_nsps_beats_unfused(benchmark, reports):
    fused, unfused = reports["fused"], reports["unfused"]
    once(benchmark, lambda: fused.nsps)
    benchmark.extra_info["fused_nsps"] = fused.nsps
    benchmark.extra_info["unfused_nsps"] = unfused.nsps
    print(f"\nwarm NSPS: fused {fused.nsps:.3f} vs unfused "
          f"{unfused.nsps:.3f} ({unfused.nsps / fused.nsps:.2f}x)")
    assert fused.nsps < unfused.nsps
    assert fused.kernels_eliminated >= 1


def test_cold_run_shows_jit_penalty(reports):
    for report in reports.values():
        # the first step carries device.jit_compile_seconds per program
        # compile plus first-touch pages: orders of magnitude above
        # steady state at this particle count
        assert report.first_step_nsps > 10 * report.nsps
    # one fused program compiles instead of two separate ones
    assert (reports["fused"].cache_stats["jit_seconds_charged"]
            < reports["unfused"].cache_stats["jit_seconds_charged"])


def test_fusion_nsps_matches_recorded_baseline():
    """CI smoke: replay the committed BENCH_fusion.json snapshot.

    The tolerance comparison lives in :mod:`repro.regress` (the repo's
    single drift code path); this test just drives the declared suite
    against the committed baseline and surfaces its per-cell diff.
    Digests are compared fresh-vs-fresh inside the suite's sanity
    stage, not against the committed file: libm differences across
    hosts may legitimately perturb the m-dipole trig, but never the
    fused-vs-unfused agreement within one host.
    """
    from repro.regress import load_baseline, run_regression
    directory = Path(__file__).parent
    if load_baseline("fusion", directory) is None:
        pytest.skip("no recorded fusion baseline (run `repro bench "
                    "fusion --record` first)")
    report = run_regression(directory=directory, suites=["fusion"])
    assert report.passed, "\n" + report.render()
