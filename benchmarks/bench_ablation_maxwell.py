"""Ablation: FDTD vs FFT-based Maxwell solver (paper Section 2).

The paper names both solver families ("FDTD [9] or FFT-based [8]
techniques").  This benchmark quantifies the trade-off on the classic
discriminator — numerical dispersion of a vacuum wave — and times both
solvers per step on this host.

Run:  pytest benchmarks/bench_ablation_maxwell.py --benchmark-only -s
"""

import math

import numpy as np

from repro.bench import format_table
from repro.constants import SPEED_OF_LIGHT
from repro.fields import YeeGrid
from repro.pic import FdtdSolver, SpectralSolver, max_stable_dt

from conftest import once


def _mode_error_after_period(solver_kind, cells_per_wavelength):
    """Relative L2 error of a standing mode after one analytic period."""
    spacing = 1.0e-5
    cells = cells_per_wavelength
    grid = YeeGrid((0.0, 0.0, 0.0), (spacing,) * 3, (cells, 4, 4))
    k = 2.0 * math.pi / (cells * spacing)
    if solver_kind == "fdtd":
        x = grid.component_coordinates("ey", 0)
    else:
        x = grid.node_coordinates(0)
    grid.component("ey")[:] = np.cos(k * x)[:, None, None]
    before = grid.component("ey").copy()

    period = 2.0 * math.pi / (SPEED_OF_LIGHT * k)
    dt = max_stable_dt(grid.spacing, 0.5)
    steps = int(round(period / dt))
    dt = period / steps                      # land exactly on one period
    solver = (FdtdSolver(grid, dt) if solver_kind == "fdtd"
              else SpectralSolver(grid, dt))
    solver.run(steps)
    return float(np.linalg.norm(grid.component("ey") - before)
                 / np.linalg.norm(before))


def test_dispersion_error_comparison(benchmark):
    resolutions = (8, 16, 32)

    def sweep():
        return {kind: [_mode_error_after_period(kind, n)
                       for n in resolutions]
                for kind in ("fdtd", "spectral")}

    errors = once(benchmark, sweep)
    rows = [[kind] + [f"{v:.2e}" for v in values]
            for kind, values in errors.items()]
    print()
    print(format_table(
        ["solver"] + [f"{n} cells/lambda" for n in resolutions], rows,
        "Vacuum-mode error after one period (numerical dispersion)"))
    for kind, values in errors.items():
        benchmark.extra_info[f"{kind} @16"] = f"{values[1]:.2e}"

    # FDTD error shrinks at least at 2nd order with resolution (faster
    # here because the spatial and temporal dispersion terms partially
    # cancel at this Courant number) ...
    fdtd = errors["fdtd"]
    assert fdtd[0] > fdtd[1] > fdtd[2]
    order = math.log2(fdtd[0] / fdtd[1])
    assert order > 1.5
    # ... the spectral solver is exact at every resolution.
    assert all(v < 1e-10 for v in errors["spectral"])
