"""Real wall-clock benchmarks of the numpy Boris kernels on this host.

Unlike the table-regeneration benchmarks (which use the calibrated
device model), these measure the library's actual vectorized kernels
with pytest-benchmark: layouts, precisions, scenarios, and the three
relativistic pushers.  Numbers are machine-dependent; the *contrasts*
(AoS strided views slower than SoA, double slower than float) mirror
the paper's qualitative axes.

Run:  pytest benchmarks/bench_real_kernels.py --benchmark-only
"""

import pytest

from repro.bench import paper_time_step, paper_wave
from repro.bench.scenarios import paper_ensemble
from repro.core import get_pusher
from repro.core.kernels import (boris_push_analytical,
                                boris_push_precalculated)
from repro.fields import PrecalculatedField
from repro.fp import Precision
from repro.particles import Layout

N_REAL = 100_000


@pytest.mark.parametrize("layout", [Layout.AOS, Layout.SOA],
                         ids=["AoS", "SoA"])
@pytest.mark.parametrize("precision", [Precision.SINGLE, Precision.DOUBLE],
                         ids=["float", "double"])
def test_push_precalculated(benchmark, layout, precision):
    wave = paper_wave()
    dt = paper_time_step()
    ensemble = paper_ensemble(N_REAL, layout, precision)
    precalc = PrecalculatedField.from_source(wave, ensemble, 0.0)
    benchmark(boris_push_precalculated, ensemble, precalc, dt)
    benchmark.extra_info["nsps"] = round(
        benchmark.stats["mean"] * 1e9 / N_REAL, 2)


@pytest.mark.parametrize("layout", [Layout.AOS, Layout.SOA],
                         ids=["AoS", "SoA"])
@pytest.mark.parametrize("precision", [Precision.SINGLE, Precision.DOUBLE],
                         ids=["float", "double"])
def test_push_analytical(benchmark, layout, precision):
    wave = paper_wave()
    dt = paper_time_step()
    ensemble = paper_ensemble(N_REAL, layout, precision)
    time_holder = [0.0]

    def step():
        boris_push_analytical(ensemble, wave, time_holder[0], dt)
        time_holder[0] += dt

    benchmark(step)
    benchmark.extra_info["nsps"] = round(
        benchmark.stats["mean"] * 1e9 / N_REAL, 2)


@pytest.mark.parametrize("name", ["boris", "vay", "higuera-cary",
                                  "boris-nonrel"])
def test_pusher_comparison(benchmark, name):
    """Relative cost of the alternative integrators (same field data)."""
    wave = paper_wave()
    dt = paper_time_step()
    ensemble = paper_ensemble(N_REAL, Layout.SOA, Precision.DOUBLE)
    fields = wave.evaluate(ensemble.component("x"),
                           ensemble.component("y"),
                           ensemble.component("z"), 0.0)
    pusher = get_pusher(name)
    benchmark(pusher.push, ensemble, fields, dt)
    benchmark.extra_info["nsps"] = round(
        benchmark.stats["mean"] * 1e9 / N_REAL, 2)
