"""Ablation: decompose the DPC++-vs-OpenMP gap into its mechanisms.

Table 2 shows three regimes (OpenMP, plain DPC++, DPC++ NUMA).  The
simulator lets us attribute the differences: remote-traffic fraction
under each scheduler, the UPI bottleneck, and the residual dynamic-
runtime penalty — the mechanistic story behind the paper's findings
1 and 2.

Run:  pytest benchmarks/bench_ablation_numa.py --benchmark-only -s
"""

from repro.bench import format_table
from repro.bench.calibration import cost_model_for, xeon_8260l_node
from repro.bench.scenarios import runtime_config_for
from repro.fp import Precision
from repro.oneapi import Queue
from repro.oneapi.runtime import build_virtual_push_spec
from repro.particles import Layout

from conftest import once


def _steady_launch(model_n, parallelization):
    device = xeon_8260l_node()
    queue = Queue(device, runtime_config_for(parallelization),
                  cost_model_for(device))
    spec = build_virtual_push_spec(model_n, Layout.SOA, Precision.SINGLE,
                                   "precalculated", queue.memory)
    records = [queue.parallel_for(model_n, spec,
                                  precision=Precision.SINGLE)
               for _ in range(4)]
    return records[-1]


def test_remote_traffic_attribution(benchmark, model_n):
    def attribute():
        out = {}
        for parallelization in ("OpenMP", "DPC++", "DPC++ NUMA"):
            record = _steady_launch(model_n, parallelization)
            timing = record.timing
            out[parallelization] = {
                "nsps": record.nsps(),
                "remote_fraction": timing.remote_bytes
                / max(timing.bytes_moved, 1.0),
            }
        return out

    result = once(benchmark, attribute)
    rows = [[name, f"{v['nsps']:.3f}", f"{100 * v['remote_fraction']:.1f}%"]
            for name, v in result.items()]
    print()
    print(format_table(["implementation", "NSPS", "remote traffic"], rows,
                       "NUMA attribution (precalculated, SoA, float)"))
    for name, values in result.items():
        benchmark.extra_info[f"{name} remote%"] = round(
            100 * values["remote_fraction"], 1)

    # The mechanism: only plain DPC++ leaves traffic on the interconnect.
    assert result["OpenMP"]["remote_fraction"] < 0.01
    assert result["DPC++ NUMA"]["remote_fraction"] < 0.01
    assert result["DPC++"]["remote_fraction"] > 0.3
    # And that is what costs it the factor the paper measures.
    assert result["DPC++"]["nsps"] > 1.2 * result["DPC++ NUMA"]["nsps"]
