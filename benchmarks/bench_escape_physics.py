"""Physics benchmark: escape rate vs wave power.

Reproduces the paper's stated motivation for choosing P = 0.1 PW:
"Particle escape is fastest in the range of powers from approximately
4 GW to 1 PW when fields are relativistic, but radiative trapping
effects are absent."  Sweeps the power across six decades and, at the
top end, compares plain Boris with the radiation-reaction pusher to
show trapping beginning to hold particles back.

Run:  pytest benchmarks/bench_escape_physics.py --benchmark-only -s
"""

from repro.analysis import escape_rate_sweep, run_escape_study
from repro.bench import format_table
from repro.core import RadiationReactionPusher

from conftest import once

#: erg/s: 0.1 MW .. 10 PW (the paper's window is ~4 GW - 1 PW).
POWERS = (1.0e13, 1.0e16, 1.0e19, 1.0e21, 1.0e23)


def test_escape_rate_vs_power(benchmark):
    def sweep():
        return escape_rate_sweep(POWERS, n_particles=600, cycles=4,
                                 samples_per_cycle=4,
                                 steps_per_cycle=240, seed=3)

    curves = once(benchmark, sweep)
    rows = []
    for power, curve in curves.items():
        rows.append([f"{power / 1e19:8.1e} x 10 GW",
                     f"{curve.escape_rate():6.2f}",
                     f"{curve.fractions[-1]:6.3f}",
                     f"{curve.max_gamma:8.1f}"])
    print()
    print(format_table(
        ["power", "rate [1/cycle]", "remaining @4T", "max gamma"],
        rows, "Escape from the focal region vs wave power"))
    for power, curve in curves.items():
        benchmark.extra_info[f"rate @{power:.0e}"] = round(
            curve.escape_rate(), 2)

    # Weak waves confine (nothing escapes a 0.1-MW wave) ...
    assert curves[1.0e13].escape_rate() < 0.1
    # ... the paper's window escapes fast ...
    assert curves[1.0e19].escape_rate() > 0.5
    assert curves[1.0e21].escape_rate() > 0.5
    # ... and fields become relativistic somewhere in between.
    assert curves[1.0e13].max_gamma < 2.0
    assert curves[1.0e21].max_gamma > 10.0


def test_radiation_reaction_slows_escape_at_high_power(benchmark):
    """At 10 PW radiative losses start trapping particles (ref. [25]):
    the radiating ensemble must not escape faster than the plain one."""
    power = 1.0e23

    def run_both():
        plain = run_escape_study(power, n_particles=400, cycles=3,
                                 samples_per_cycle=2,
                                 steps_per_cycle=300, seed=4)
        radiating = run_escape_study(power, n_particles=400, cycles=3,
                                     samples_per_cycle=2,
                                     steps_per_cycle=300, seed=4,
                                     pusher=RadiationReactionPusher())
        return plain, radiating

    plain, radiating = once(benchmark, run_both)
    benchmark.extra_info["plain remaining"] = round(plain.fractions[-1], 3)
    benchmark.extra_info["radiating remaining"] = round(
        radiating.fractions[-1], 3)
    print(f"\n10 PW after 3 cycles: plain {plain.fractions[-1]:.3f} "
          f"remaining, radiating {radiating.fractions[-1]:.3f}")
    assert radiating.fractions[-1] >= plain.fractions[-1] - 0.02
    # Radiation also caps the attained energy.
    assert radiating.max_gamma <= plain.max_gamma
