"""Ablation: accuracy and convergence order of the pushers.

The paper adopts Boris as "the most used and de-facto standard scheme"
and cites Ripperda et al. (2018) for accuracy comparisons.  This
benchmark measures the phase error of each pusher against the analytic
relativistic gyration over a range of step sizes, verifying second-
order convergence and ranking the schemes.

Run:  pytest benchmarks/bench_ablation_pushers.py --benchmark-only -s
"""

import math

import numpy as np

from repro.bench import format_table
from repro.constants import (ELECTRON_MASS, ELEMENTARY_CHARGE,
                             SPEED_OF_LIGHT, cyclotron_frequency)
from repro.core import advance, get_pusher, setup_leapfrog
from repro.fields import UniformField
from repro.particles import ParticleEnsemble

from conftest import once

MC = ELECTRON_MASS * SPEED_OF_LIGHT
PUSHERS = ("boris", "vay", "higuera-cary")


def _gyration_error(name, steps_per_period):
    """Position error (in gyroradii) after one full analytic period."""
    b0 = 1.0e4
    u = 1.0
    gamma = math.sqrt(2.0)
    p0 = u * MC
    radius = p0 / (ELEMENTARY_CHARGE * b0 / SPEED_OF_LIGHT)
    omega = cyclotron_frequency(b0, gamma)
    field = UniformField(b=(0.0, 0.0, b0))
    ensemble = ParticleEnsemble.from_arrays(
        [[0.0, -radius, 0.0]], [[p0, 0.0, 0.0]])
    dt = 2.0 * math.pi / omega / steps_per_period
    setup_leapfrog(ensemble, field, dt)
    advance(ensemble, field, dt, steps_per_period, pusher=get_pusher(name))
    end = ensemble.positions()[0]
    return float(np.linalg.norm(end - [0.0, -radius, 0.0]) / radius)


def test_pusher_convergence_order(benchmark):
    resolutions = (25, 50, 100, 200)

    def sweep():
        return {name: [_gyration_error(name, n) for n in resolutions]
                for name in PUSHERS}

    errors = once(benchmark, sweep)
    rows = []
    for name, values in errors.items():
        orders = [math.log2(a / b)
                  for a, b in zip(values, values[1:])]
        rows.append([name] + [f"{v:.2e}" for v in values]
                    + [f"{np.mean(orders):.2f}"])
        benchmark.extra_info[f"{name} order"] = round(
            float(np.mean(orders)), 2)
    print()
    print(format_table(
        ["pusher"] + [f"T/{n}" for n in resolutions] + ["order"],
        rows, "Gyration phase error after one period (gyroradii)"))

    for name, values in errors.items():
        # Errors decrease with resolution ...
        assert all(a > b for a, b in zip(values, values[1:])), name
        # ... at second order (leapfrog schemes).
        orders = [math.log2(a / b) for a, b in zip(values, values[1:])]
        assert 1.7 < np.mean(orders) < 2.3, name
