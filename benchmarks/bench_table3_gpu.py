"""Regenerate Table 3: GPU NSPS of the unmodified DPC++ code.

Single precision only (Iris Xe Max emulates doubles, as the paper
notes).  Asserts the paper's qualitative GPU findings: layout matters
(unlike on CPU), and each GPU's slowdown vs the 2-CPU node falls in the
reported band.

Run:  pytest benchmarks/bench_table3_gpu.py --benchmark-only -s
"""

import pytest

from repro.bench import PAPER_TABLE3, comparison_table, model_push_nsps
from repro.bench.scenarios import BenchmarkCase
from repro.fp import Precision
from repro.particles import Layout

from conftest import once

DEVICES = ("cpu", "p630", "iris-xe-max")


def _model_cell(model_n, layout, scenario, device):
    parallelization = "DPC++ NUMA" if device == "cpu" else device
    case = BenchmarkCase(scenario, layout, Precision.SINGLE,
                         parallelization)
    return model_push_nsps(case, n=model_n).nsps


@pytest.mark.parametrize("layout", [Layout.AOS, Layout.SOA],
                         ids=["AoS", "SoA"])
@pytest.mark.parametrize("device", DEVICES)
def test_table3_cell(benchmark, model_n, layout, device):
    def run_cell():
        return {scenario: _model_cell(model_n, layout, scenario, device)
                for scenario in ("precalculated", "analytical")}

    cell = once(benchmark, run_cell)
    for scenario, value in cell.items():
        paper = PAPER_TABLE3[layout.value][(scenario, device)]
        benchmark.extra_info[f"model {scenario}"] = round(value, 3)
        benchmark.extra_info[f"paper {scenario}"] = paper
        assert 0.5 < value / paper < 2.0


def test_table3_full_comparison(benchmark, model_n):
    def run_table():
        rows = {}
        for layout in (Layout.AOS, Layout.SOA):
            rows[layout.value] = {
                (scenario, device): _model_cell(model_n, layout,
                                                scenario, device)
                for scenario in ("precalculated", "analytical")
                for device in DEVICES}
        return rows

    rows = once(benchmark, run_table)
    print()
    print(comparison_table(rows, PAPER_TABLE3, "layout",
                           "Table 3 — GPU NSPS, single precision "
                           "(model vs paper)"))

    # Layout matters on GPUs ("run time may differ by more than half").
    for device in ("p630", "iris-xe-max"):
        aos = rows["AoS"][("precalculated", device)]
        soa = rows["SoA"][("precalculated", device)]
        assert aos / soa > 1.4
    # Slowdown bands vs the 2-CPU node (paper: 3.5-4.5x and 1.7-2.6x).
    cpu = rows["SoA"][("precalculated", "cpu")]
    assert 3.0 < rows["SoA"][("precalculated", "p630")] / cpu < 6.5
    assert 1.5 < rows["SoA"][("precalculated", "iris-xe-max")] / cpu < 3.5
