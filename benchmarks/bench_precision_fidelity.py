"""In-text claim: single precision shows no physical inaccuracies.

Section 3: "we should also note that in the considered benchmarks, we
did not observe any inaccuracies caused by the use of single
precision."  Individual trajectories in the strongly nonlinear dipole
focus diverge chaotically between float32 and float64, so the
physically meaningful comparison — and the one the authors mean — is
at the level of *ensemble observables*: the energy distribution and the
escape statistics.

Run:  pytest benchmarks/bench_precision_fidelity.py --benchmark-only -s
"""

import math

import numpy as np

import repro
from repro.bench import format_table
from repro.fp import Precision
from repro.particles import Layout

from conftest import once

N = 4_000
STEPS = 600            # 3 optical cycles at T/200


def _run(precision):
    wave = repro.MDipoleWave()
    ensemble = repro.paper_benchmark_ensemble(
        N, layout=Layout.SOA, precision=precision, seed=17)
    dt = 2.0 * math.pi / wave.omega / 200.0
    repro.setup_leapfrog(ensemble, wave, dt)
    repro.advance(ensemble, wave, dt, STEPS)
    gamma = ensemble.component("gamma").astype(np.float64)
    radii = np.linalg.norm(ensemble.positions(), axis=1)
    return {
        "mean gamma": float(gamma.mean()),
        "max gamma": float(gamma.max()),
        "gamma p90": float(np.percentile(gamma, 90.0)),
        "remaining": float((radii < wave.wavelength).mean()),
        "mean radius / lambda": float(radii.mean() / wave.wavelength),
    }


def test_single_precision_reproduces_ensemble_physics(benchmark):
    results = once(benchmark, lambda: {p: _run(p) for p in
                                       (Precision.SINGLE,
                                        Precision.DOUBLE)})
    single = results[Precision.SINGLE]
    double = results[Precision.DOUBLE]
    rows = [[key, f"{single[key]:.4g}", f"{double[key]:.4g}"]
            for key in double]
    print()
    print(format_table(["observable", "float", "double"], rows,
                       "Ensemble observables after 3 cycles at 0.1 PW"))
    for key in double:
        benchmark.extra_info[f"float {key}"] = round(single[key], 4)
        benchmark.extra_info[f"double {key}"] = round(double[key], 4)
        scale = max(abs(double[key]), 1e-3)
        assert abs(single[key] - double[key]) / scale < 0.05, key
