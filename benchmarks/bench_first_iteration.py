"""In-text effect: "the first iteration takes 50% longer".

The paper attributes the slow first iteration to JIT compilation of the
kernel from its intermediate representation plus cold-memory effects
(first-touch page placement).  The model reproduces both mechanisms;
this benchmark reports the resulting ratio per configuration.

Run:  pytest benchmarks/bench_first_iteration.py --benchmark-only -s
"""

import pytest

from repro.bench import model_push_nsps
from repro.bench.scenarios import BenchmarkCase, PAPER_STEPS_PER_ITERATION
from repro.bench.tables import PAPER_FIRST_ITERATION_RATIO
from repro.fp import Precision
from repro.particles import Layout

from conftest import once


@pytest.mark.parametrize("parallelization", ["DPC++", "DPC++ NUMA"])
def test_first_iteration_slowdown(benchmark, model_n, parallelization):
    case = BenchmarkCase("precalculated", Layout.SOA, Precision.SINGLE,
                         parallelization)
    result = once(benchmark, lambda: model_push_nsps(case, n=model_n))
    ratio = result.first_iteration_ratio(PAPER_STEPS_PER_ITERATION)
    benchmark.extra_info["first/steady iteration"] = round(ratio, 3)
    benchmark.extra_info["paper"] = PAPER_FIRST_ITERATION_RATIO
    print(f"\n{parallelization}: first iteration {ratio:.2f}x steady "
          f"(paper ~{PAPER_FIRST_ITERATION_RATIO})")
    assert 1.2 < ratio < 1.9


def test_openmp_first_iteration_milder(benchmark, model_n):
    """OpenMP pays first-touch but no JIT, so its warm-up is smaller —
    the paper calls the DPC++ case 'an even more explicit form' of the
    usual first-iteration effect."""
    def ratios():
        out = {}
        for parallelization in ("OpenMP", "DPC++ NUMA"):
            case = BenchmarkCase("precalculated", Layout.SOA,
                                 Precision.SINGLE, parallelization)
            result = model_push_nsps(case, n=model_n)
            out[parallelization] = result.first_iteration_ratio(
                PAPER_STEPS_PER_ITERATION)
        return out

    result = once(benchmark, ratios)
    benchmark.extra_info.update(
        {k: round(v, 3) for k, v in result.items()})
    assert result["OpenMP"] < result["DPC++ NUMA"]
    assert result["OpenMP"] > 1.0
