"""Push-as-a-service: the fault-tolerant multi-tenant job scheduler.

:class:`PushService` accepts many concurrent :class:`JobSpec`s through
a :class:`~repro.service.queue.JobQueue`, places them on a
:class:`~repro.service.cluster.DeviceFleet`, and drives them to a
terminal state on the **simulated clock** — surviving injected device
loss, launch hangs and transient faults end to end.  The k8s-style
lifecycle per job::

    submit -> (admit | reject) -> launch -> step* -> collect -> cleanup
                 ^                                |
                 +--- requeue (loss, preemption) -+

Design points:

* **Interleaved execution.**  Single-device jobs advance one push step
  at a time; the event loop always steps the job whose node frees
  earliest, so jobs on different nodes genuinely interleave on the
  shared clock and a retry storm on one node delays only that node's
  jobs.  Sharded (device-group) jobs reserve their nodes and run
  atomically — their internal redistribution logic already owns
  mid-run loss.
* **Warm-device bin-packing.**  Placement prefers nodes whose device
  model already has a compiled program for the job's (layout,
  precision) profile in the fleet-shared
  :class:`~repro.oneapi.programcache.ProgramCache`, so a schedule of
  same-shaped jobs pays each JIT once, fleet-wide.
* **Failover = checkpoint + requeue.**  Every job writes a step-0
  checkpoint at first launch and then on a cadence; a device loss
  banks the consumed device seconds, marks the node dead, restores the
  latest checkpoint (bit-exact) and requeues the job.  The physics
  kernels are device-independent, so the recovered job's final digest
  equals a solo fault-free run's — the acceptance bar.
* **Typed ends only.**  Every job ends COMPLETED, FAILED (with a
  :class:`~repro.errors.ReproError` subclass recorded) or REJECTED;
  the scheduler itself refuses to hang (a progress watchdog trips
  :class:`~repro.errors.ServiceError` rather than spin).

See ``docs/SERVICE.md`` for the full lifecycle and failure-semantics
contract.
"""

from __future__ import annotations

import re
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import (AllocationFailedError, ConfigurationError,
                      DeviceLostError, JobDeadlineError, JobPreemptedError,
                      JobRejectedError, ReproError, ServiceError)
from ..observability.tracer import active_tracer
from ..particles.ensemble import COMPONENTS
from ..resilience.checkpoint import Checkpointer
from ..resilience.faults import (FaultInjector, FaultPlan,
                                 install_fault_injector)
from ..resilience.plans import named_plan
from ..resilience.recovery import (RecoveryStats, RetryPolicy, Watchdog,
                                   run_with_retry)
from .cluster import DeviceFleet, Node
from .job import JobEvent, JobReport, JobSpec, JobState
from .queue import JobQueue

__all__ = ["PushService", "ServiceReport", "DEFAULT_FLEET"]

#: The demo fleet: two fast cards, one slow card, one CPU.
DEFAULT_FLEET = "2x iris-xe-max, 1x p630, 1x cpu"

#: Placement preference among equally-warm nodes (paper Table 3 order).
_LADDER_RANK = {"iris-xe-max": 0, "p630": 1, "cpu": 2}

_SAFE_NAME = re.compile(r"[^A-Za-z0-9._-]+")


@dataclass
class ServiceReport:
    """What one :meth:`PushService.run` produced, schedule-wide."""

    fleet: str
    makespan: float
    jobs: Dict[str, JobReport]
    completed: int
    failed: int
    rejected: int
    cache_stats: Dict[str, float] = field(default_factory=dict)
    nodes: List[Dict[str, object]] = field(default_factory=list)

    @property
    def all_completed(self) -> bool:
        """True when every submitted job completed (none failed or
        was rejected)."""
        return self.failed == 0 and self.rejected == 0

    def summary(self) -> str:
        lines = [f"fleet {self.fleet!r}: {self.completed} completed, "
                 f"{self.failed} failed, {self.rejected} rejected; "
                 f"makespan {self.makespan * 1e3:.3f} ms simulated; "
                 f"JIT misses {self.cache_stats.get('misses', 0):.0f}, "
                 f"hits {self.cache_stats.get('hits', 0):.0f}"]
        for report in self.jobs.values():
            lines.append("  " + report.summary())
        return "\n".join(lines)


class _Job:
    """Scheduler-internal mutable state of one job."""

    def __init__(self, spec: JobSpec, report: JobReport,
                 checkpointer: Checkpointer) -> None:
        self.spec = spec
        self.report = report
        self.checkpointer = checkpointer
        self.state = JobState.PENDING
        self.seq = 0
        self.ensemble = None
        self.engine = None               # single-device PushEngine
        self.node: Optional[Node] = None
        self.nodes: List[Node] = []      # sharded reservations
        self.injector: Optional[FaultInjector] = None
        self.stats = RecoveryStats()
        self.step = 0                    # completed push steps
        self.time = 0.0                  # physics time at `step`
        self.step_seconds: List[float] = []
        self.launch_clock = 0.0
        self.makespan0 = 0.0
        self.charged = 0.0               # placement seconds charged so far
        self.banked = 0.0                # device seconds from past placements
        self.finish_at: Optional[float] = None   # sharded collect time
        self.greport = None              # sharded GroupReport

    @property
    def target_steps(self) -> int:
        return self.spec.config.warmup + self.spec.config.steps

    @property
    def sharded(self) -> bool:
        return self.spec.config.group is not None

    def placement_seconds(self) -> float:
        if self.engine is None:
            return 0.0
        return self.engine.queue.timeline.makespan - self.makespan0


class PushService:
    """A multi-tenant, fault-tolerant scheduler over a device fleet.

    Args:
        fleet: Group-spec string naming the devices (the default is
            :data:`DEFAULT_FLEET`).
        queue: Admission queue; a default-capacity
            :class:`~repro.service.queue.JobQueue` when None.
        workdir: Directory for per-job checkpoints.  None means a
            private temporary directory that is removed when
            :meth:`run` returns — pass a real path to keep failed
            jobs' checkpoints as evidence.
        checkpoint_every: Checkpoint cadence in steps (>= 1; the
            service *requires* checkpoints — they are its failover
            mechanism).
        retry_policy: Transient-fault retry policy shared by all jobs.
        watchdog: Launch watchdog shared by all jobs.
        preempt_margin: Minimum priority gap before a waiting job may
            preempt a running one (0 disables nothing — a gap of at
            least ``max(1, preempt_margin)`` is always required).
        max_preemptions: A job preempted more often than this fails
            with :class:`~repro.errors.JobPreemptedError` instead of
            thrashing forever.
        on_event: Optional callback ``(job_name, event, detail)``
            invoked for every lifecycle event — the streamed-progress
            hook; events also flow through the active tracer as
            ``job:<event>`` instants in the ``service`` category.
    """

    def __init__(self, fleet: str = DEFAULT_FLEET,
                 queue: Optional[JobQueue] = None,
                 workdir: Optional[str] = None,
                 checkpoint_every: int = 4,
                 retry_policy: Optional[RetryPolicy] = None,
                 watchdog: Optional[Watchdog] = None,
                 preempt_margin: int = 2,
                 max_preemptions: int = 3,
                 on_event: Optional[Callable[[str, str, str], None]] = None
                 ) -> None:
        from ..oneapi.programcache import ProgramCache

        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1 (checkpoints are the "
                f"service's failover mechanism), got {checkpoint_every}")
        if max_preemptions < 0:
            raise ConfigurationError(
                f"max_preemptions must be >= 0, got {max_preemptions}")
        self.program_cache = ProgramCache()
        self.fleet = DeviceFleet(fleet, self.program_cache)
        self.queue = queue if queue is not None else JobQueue()
        self.checkpoint_every = int(checkpoint_every)
        self.retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy()
        self.watchdog = watchdog if watchdog is not None else Watchdog()
        self.preempt_margin = max(1, int(preempt_margin))
        self.max_preemptions = int(max_preemptions)
        self.on_event = on_event
        self._scratch = None
        if workdir is None:
            self._scratch = tempfile.TemporaryDirectory(
                prefix="repro-service-")
            workdir = self._scratch.name
        self.workdir = workdir
        self.clock = 0.0
        self._jobs: Dict[str, _Job] = {}
        self._order: List[str] = []
        self._next_seq = 0

    # -- events ------------------------------------------------------------

    def _event(self, job: _Job, event: str, detail: str = "") -> None:
        job.report.events.append(JobEvent(self.clock, event, detail))
        tracer = active_tracer()
        if tracer is not None:
            tracer.job(job.spec.name, event, clock=self.clock,
                       detail=detail)
        if self.on_event is not None:
            self.on_event(job.spec.name, event, detail)

    # -- submission --------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobReport:
        """Admit ``spec`` or raise :class:`JobRejectedError`.

        A rejected job still gets a (REJECTED) :class:`JobReport` in
        the service's job table, so the schedule-wide report accounts
        for every submission.  Admission may evict a
        strictly-lower-priority queued job; the evictee fails with
        :class:`JobPreemptedError`.
        """
        report = JobReport(name=spec.name, tenant=spec.tenant,
                           priority=spec.priority, submitted=spec.arrival)
        directory = f"{self.workdir}/{_SAFE_NAME.sub('_', spec.name)}"
        job = _Job(spec, report, Checkpointer(
            directory, every=self.checkpoint_every))
        job.seq = self._next_seq
        self._next_seq += 1
        try:
            try:
                spec.config.validate()
            except ConfigurationError as exc:
                raise JobRejectedError(
                    f"job {spec.name!r}: invalid config: {exc}") from exc
            self.queue.admit(spec, clock=self.clock,
                             fleet_size=len(self.fleet),
                             fleet_keys=self.fleet.keys)
        except JobRejectedError as exc:
            report.state = JobState.REJECTED
            report.error = str(exc)
            report.error_type = type(exc).__name__
            job.state = JobState.REJECTED
            if spec.name not in self._jobs:
                self._jobs[spec.name] = job
                self._order.append(spec.name)
            self._event(job, "reject", str(exc))
            raise
        self._jobs[spec.name] = job
        self._order.append(spec.name)
        job.state = JobState.READY
        report.state = JobState.READY
        self._event(job, "admit",
                    f"priority={spec.priority} tenant={spec.tenant}")
        for victim_spec in self.queue.pop_evicted():
            victim = self._jobs[victim_spec.name]
            self._fail(victim, JobPreemptedError(
                f"job {victim_spec.name!r} (priority "
                f"{victim_spec.priority}) evicted from the queue by "
                f"{spec.name!r} (priority {spec.priority})"))
        return report

    # -- the event loop ----------------------------------------------------

    def run(self) -> ServiceReport:
        """Drive every submitted job to a terminal state; never hangs.

        Returns the schedule-wide :class:`ServiceReport`.  Job-level
        failures are *recorded*, not raised — only scheduler bugs
        (:class:`~repro.errors.ServiceError`) and misuse escape.
        """
        limit = 1000 + 200 * sum(
            1 + job.target_steps for job in self._jobs.values())
        iterations = 0
        try:
            while self._live():
                iterations += 1
                if iterations > limit:
                    raise ServiceError(
                        f"scheduler made no progress after {limit} "
                        f"iterations — this is a bug, not a job failure")
                self._place()
                event = self._next_event()
                if event is None:
                    arrival = self.queue.next_arrival(self.clock)
                    if arrival is not None:
                        self.clock = arrival
                        continue
                    self._fail_stranded()
                    continue
                when, _, job = event
                self.clock = max(self.clock, when)
                if job.sharded:
                    self._collect_sharded(job)
                else:
                    self._advance_single(job)
        finally:
            if self._scratch is not None:
                self._scratch.cleanup()
        reports = {name: self._jobs[name].report for name in self._order}
        states = [r.state for r in reports.values()]
        return ServiceReport(
            fleet=self.fleet.spec, makespan=self.clock, jobs=reports,
            completed=states.count(JobState.COMPLETED),
            failed=states.count(JobState.FAILED),
            rejected=states.count(JobState.REJECTED),
            cache_stats=self.program_cache.stats.as_dict(),
            nodes=[node.as_dict() for node in self.fleet.nodes])

    def _live(self) -> bool:
        return any(job.state not in JobState.TERMINAL
                   for job in self._jobs.values())

    def _next_event(self) -> Optional[Tuple[float, int, _Job]]:
        """The running job whose next completion comes earliest."""
        events = []
        for job in self._jobs.values():
            if job.state != JobState.RUNNING:
                continue
            if job.sharded:
                events.append((job.finish_at, job.seq, job))
            else:
                events.append((job.node.free_at, job.seq, job))
        return min(events, key=lambda e: (e[0], e[1])) if events else None

    # -- placement ---------------------------------------------------------

    def _ready(self) -> List[JobSpec]:
        return self.queue.ready_jobs(self.clock)

    def _place(self) -> None:
        for spec in self._ready():
            job = self._jobs[spec.name]
            if job.state in JobState.TERMINAL:
                self.queue.finish(spec)
                continue
            if spec.deadline_seconds is not None \
                    and self.clock - spec.arrival > spec.deadline_seconds:
                self.queue.finish(spec)
                self._fail(job, JobDeadlineError(
                    f"job {spec.name!r} missed its deadline while "
                    f"queued ({spec.deadline_seconds} s after arrival)"))
                continue
            if job.sharded:
                self._try_place_sharded(job)
            else:
                self._try_place_single(job)

    def _try_place_single(self, job: _Job) -> None:
        spec = job.spec
        constraint = spec.config.device
        candidates = [node for node in self.fleet.idle_nodes()
                      if constraint is None or node.key == constraint]
        if not candidates:
            alive = [node for node in self.fleet.alive_nodes()
                     if constraint is None or node.key == constraint]
            if not alive:
                self.queue.finish(spec)
                self._fail(job, DeviceLostError(
                    f"job {spec.name!r}: no usable device left in the "
                    f"fleet (constraint {constraint!r})"))
                return
            victim = self._preemption_victim(spec, constraint)
            if victim is None:
                return                       # wait for a node to free
            self._preempt(victim, spec)
            candidates = [victim_node for victim_node
                          in self.fleet.idle_nodes()
                          if constraint is None
                          or victim_node.key == constraint]
            if not candidates:
                return
        node = min(candidates, key=lambda n: self._placement_key(n, spec))
        self._launch_single(job, node)

    def _placement_key(self, node: Node, spec: JobSpec) -> Tuple:
        config = spec.config
        warm = self.program_cache.is_profile_warm(
            node.device.jit_key, config.layout.value,
            config.precision.value, backend=node.device.backend)
        return (0 if warm else 1, node.free_at,
                _LADDER_RANK.get(node.key, len(_LADDER_RANK)), node.index)

    def _preemption_victim(self, spec: JobSpec,
                           constraint: Optional[str]) -> Optional[_Job]:
        """Running single-device job worth preempting for ``spec``."""
        victims = []
        for job in self._jobs.values():
            if job.state != JobState.RUNNING or job.sharded:
                continue
            if not job.spec.preemptible:
                continue
            if spec.priority - job.spec.priority < self.preempt_margin:
                continue
            if constraint is not None and job.node.key != constraint:
                continue
            victims.append(job)
        if not victims:
            return None
        return min(victims, key=lambda j: (j.spec.priority, -j.seq))

    def _preempt(self, victim: _Job, for_spec: JobSpec) -> None:
        """Checkpoint ``victim`` at its step boundary and requeue it."""
        victim.checkpointer.save_push(victim.step, victim.ensemble,
                                      victim.time)
        self._bank(victim)
        node = victim.node
        node.job = None
        victim.node = None
        victim.engine = None
        victim.report.preemptions += 1
        victim.state = JobState.READY
        victim.report.state = JobState.READY
        self.queue.requeue(victim.spec, self.clock)
        self._event(victim, "preempt",
                    f"by {for_spec.name!r} (priority {for_spec.priority} "
                    f"vs {victim.spec.priority}) off {node.name}")
        if victim.report.preemptions > self.max_preemptions:
            self.queue.finish(victim.spec)
            self._fail(victim, JobPreemptedError(
                f"job {victim.spec.name!r} preempted "
                f"{victim.report.preemptions} times "
                f"(max {self.max_preemptions}); giving up"))

    # -- single-device jobs ------------------------------------------------

    def _build_engine(self, job: _Job, node: Node):
        """(Re)build queue + engine on ``node`` (alloc faults retried)."""
        from ..backends.registry import get_backend
        from ..oneapi.runtime import PushEngine

        config = job.spec.config
        source, dt = self._physics(config)
        backend = get_backend(node.device.backend)
        delays = self.retry_policy.delay_sequence()
        penalty = 0.0
        for attempt in range(self.retry_policy.max_attempts):
            try:
                queue = backend.make_queue(
                    node.device,
                    threads_per_unit=config.threads_per_unit,
                    program_cache=self.program_cache)
                engine = PushEngine(queue, job.ensemble, config.scenario,
                                    source, dt, fusion=config.fusion,
                                    diagnostics=config.diagnostics)
            except AllocationFailedError:
                if attempt + 1 >= self.retry_policy.max_attempts:
                    job.stats.giveups += 1
                    raise
                delay = next(delays)
                penalty += delay
                job.stats.retries += 1
                job.stats.backoff_seconds += delay
            else:
                break
        if penalty > 0.0:
            queue.timeline.schedule("backoff:rebuild", penalty)
        engine.time = job.time
        return engine

    def _launch_single(self, job: _Job, node: Node) -> None:
        spec = job.spec
        ready_since = self.queue.ready_at(spec.name)
        self.queue.mark_running(spec)
        first_launch = job.ensemble is None
        if first_launch:
            from ..bench.scenarios import paper_ensemble
            job.ensemble = paper_ensemble(spec.config.n_particles,
                                          spec.config.layout,
                                          spec.config.precision)
            if spec.fault_plan is not None:
                plan = spec.fault_plan \
                    if isinstance(spec.fault_plan, FaultPlan) \
                    else named_plan(str(spec.fault_plan))
                job.injector = FaultInjector(plan, seed=spec.fault_seed)
        launch_clock = max(self.clock, node.free_at)
        previous = install_fault_injector(job.injector) \
            if job.injector is not None else None
        try:
            job.engine = self._build_engine(job, node)
        except ReproError as exc:
            self.queue.finish(spec)
            self._fail(job, exc)
            return
        finally:
            if job.injector is not None:
                install_fault_injector(previous)
        job.node = node
        job.makespan0 = job.engine.queue.timeline.makespan
        job.launch_clock = launch_clock
        job.charged = 0.0
        node.job = spec.name
        node.jobs_run += 1
        node.free_at = launch_clock
        job.state = JobState.RUNNING
        job.report.state = JobState.RUNNING
        job.report.queue_wait_seconds += max(
            0.0, launch_clock - ready_since)
        if job.report.launched is None:
            job.report.launched = launch_clock
        if node.name not in job.report.devices:
            job.report.devices += (node.name,)
        if first_launch:
            job.checkpointer.save_push(0, job.ensemble, 0.0)
        self._event(job, "launch",
                    f"on {node.name} at step {job.step}")

    def _advance_single(self, job: _Job) -> None:
        """Run one push step of ``job`` on its node, under its faults."""
        engine = job.engine
        previous = install_fault_injector(job.injector) \
            if job.injector is not None else None
        try:
            run_with_retry(engine.step, engine.queue, engine.spec,
                           policy=self.retry_policy,
                           watchdog=self.watchdog, stats=job.stats)
        except DeviceLostError:
            self._on_device_lost(job)
            return
        except ReproError as exc:
            self.queue.finish(job.spec)
            self._fail(job, exc)
            return
        finally:
            if job.injector is not None:
                install_fault_injector(previous)
        job.step_seconds.append(engine.step_seconds[-1])
        job.step += 1
        job.time = engine.time
        placement = job.placement_seconds()
        job.node.free_at = job.launch_clock + placement
        self.queue.charge(job.spec.tenant, placement - job.charged)
        job.charged = placement
        job.checkpointer.maybe_save_push(job.step, job.ensemble, job.time)
        spec = job.spec
        if spec.budget_seconds is not None \
                and job.banked + placement > spec.budget_seconds:
            self.queue.finish(spec)
            self._fail(job, JobDeadlineError(
                f"job {spec.name!r} exhausted its budget of "
                f"{spec.budget_seconds} simulated device seconds at "
                f"step {job.step}"))
            return
        if spec.deadline_seconds is not None \
                and job.node.free_at - spec.arrival > spec.deadline_seconds:
            self.queue.finish(spec)
            self._fail(job, JobDeadlineError(
                f"job {spec.name!r} missed its deadline of "
                f"{spec.deadline_seconds} s after arrival at step "
                f"{job.step}"))
            return
        if job.step >= job.target_steps:
            self._complete_single(job)

    def _on_device_lost(self, job: _Job) -> None:
        """Failover: bank time, kill the node, restore, requeue."""
        lost_names = set(job.injector.lost_devices) \
            if job.injector is not None else {job.node.name}
        newly_dead = self.fleet.mark_lost(lost_names)
        for node in newly_dead:
            if node.name not in job.report.devices_lost:
                job.report.devices_lost += (node.name,)
        self._bank(job)
        node = job.node
        node.job = None
        job.node = None
        job.engine = None
        step, time, restored = job.checkpointer.load_push()
        for name in COMPONENTS:
            job.ensemble.component(name)[:] = restored.component(name)
        job.ensemble.type_ids[:] = restored.type_ids
        job.report.replayed_steps += job.step - step
        job.report.restores += 1
        del job.step_seconds[step:]
        job.step = step
        job.time = time
        job.state = JobState.READY
        job.report.state = JobState.READY
        self.queue.requeue(job.spec, self.clock)
        self._event(job, "device-lost",
                    f"{node.name} died; restored step {step}, requeued")

    def _bank(self, job: _Job) -> None:
        """Fold the current placement's device seconds into the bank."""
        placement = job.placement_seconds()
        self.queue.charge(job.spec.tenant, placement - job.charged)
        job.banked += placement
        job.charged = 0.0
        job.report.device_seconds = job.banked

    def _complete_single(self, job: _Job) -> None:
        from ..api import _steady_nsps
        from ..core.stepping import state_digest

        spec = job.spec
        placement = job.placement_seconds()
        self.queue.charge(spec.tenant, placement - job.charged)
        job.banked += placement
        report = job.report
        report.device_seconds = job.banked
        report.steps = job.step
        report.nsps = _steady_nsps(job.step_seconds,
                                   spec.config.n_particles,
                                   spec.config.warmup)
        report.digest = state_digest(job.ensemble)
        report.finished = job.node.free_at
        # The completion event truly happens when the node frees — the
        # loop's clock only reached the *pre*-step free time, so catch
        # it up before stamping the event (keeps finished <= makespan).
        self.clock = max(self.clock, report.finished)
        job.node.job = None
        job.node = None
        self.queue.finish(spec)
        self._finalize_stats(job)
        report.checkpoints_pruned = job.checkpointer.gc()
        job.state = JobState.COMPLETED
        report.state = JobState.COMPLETED
        self._event(job, "complete",
                    f"digest {report.digest[:12]} nsps {report.nsps:.2f}")

    # -- sharded jobs ------------------------------------------------------

    def _try_place_sharded(self, job: _Job) -> None:
        from ..distributed.group import parse_group_spec

        spec = job.spec
        keys = parse_group_spec(spec.config.group)
        alive = [node.key for node in self.fleet.alive_nodes()]
        if not self._multiset_fits(keys, alive):
            self.queue.finish(spec)
            self._fail(job, DeviceLostError(
                f"job {spec.name!r}: group {spec.config.group!r} can no "
                f"longer be satisfied by the surviving fleet"))
            return
        reserved: List[Node] = []
        pool = self.fleet.idle_nodes()
        for key in keys:
            match = [node for node in pool if node.key == key]
            if not match:
                return                       # wait for nodes to free
            node = min(match, key=lambda n: self._placement_key(n, spec))
            pool.remove(node)
            reserved.append(node)
        self._launch_sharded(job, reserved)

    @staticmethod
    def _multiset_fits(needed: List[str], have: List[str]) -> bool:
        pool = list(have)
        for key in needed:
            if key not in pool:
                return False
            pool.remove(key)
        return True

    def _launch_sharded(self, job: _Job, nodes: List[Node]) -> None:
        """Reserve ``nodes`` and run the whole sharded job atomically."""
        from ..bench.scenarios import paper_ensemble
        from ..distributed.group import DeviceGroup
        from ..distributed.runner import ShardedPushEngine
        from ..distributed.sharding import strategy_by_name

        spec = job.spec
        config = spec.config
        ready_since = self.queue.ready_at(spec.name)
        self.queue.mark_running(spec)
        launch_clock = max([self.clock] + [n.free_at for n in nodes])
        job.report.queue_wait_seconds += max(
            0.0, launch_clock - ready_since)
        if job.report.launched is None:
            job.report.launched = launch_clock
        job.report.devices = tuple(node.name for node in nodes)
        for node in nodes:
            node.job = spec.name
            node.jobs_run += 1
        job.nodes = nodes
        job.state = JobState.RUNNING
        job.report.state = JobState.RUNNING
        self._event(job, "launch",
                    "on " + ", ".join(node.name for node in nodes))
        job.ensemble = paper_ensemble(config.n_particles, config.layout,
                                      config.precision)
        if spec.fault_plan is not None:
            plan = spec.fault_plan \
                if isinstance(spec.fault_plan, FaultPlan) \
                else named_plan(str(spec.fault_plan))
            job.injector = FaultInjector(plan, seed=spec.fault_seed)
        source, dt = self._physics(config)
        previous = install_fault_injector(job.injector) \
            if job.injector is not None else None
        failure: Optional[ReproError] = None
        greport = None
        try:
            group = DeviceGroup([node.key for node in nodes],
                                names=[node.name for node in nodes],
                                program_cache=self.program_cache)
            strategy = strategy_by_name(config.strategy, config.precision) \
                if config.strategy is not None else None
            engine = ShardedPushEngine(
                group, job.ensemble, config.scenario, source, dt,
                strategy=strategy, checkpointer=job.checkpointer,
                retry_policy=self.retry_policy, watchdog=self.watchdog,
                fusion=config.fusion)
            if config.warmup > 0:
                engine.run(config.warmup)
                engine.reset_measurement()
            greport = engine.run(config.warmup + config.steps)
        except ReproError as exc:
            failure = exc
        finally:
            if job.injector is not None:
                install_fault_injector(previous)
        if job.injector is not None and job.injector.lost_devices:
            dead = self.fleet.mark_lost(job.injector.lost_devices)
            job.report.devices_lost = tuple(node.name for node in dead)
        if failure is not None:
            for node in nodes:
                node.job = None
            job.nodes = []
            self.queue.finish(spec)
            self._fail(job, failure)
            return
        job.greport = greport
        job.launch_clock = launch_clock
        job.finish_at = launch_clock + greport.simulated_seconds
        for node in nodes:
            node.free_at = job.finish_at

    def _collect_sharded(self, job: _Job) -> None:
        from ..core.stepping import state_digest

        spec = job.spec
        greport = job.greport
        for node in job.nodes:
            node.job = None
        job.nodes = []
        self.queue.finish(spec)
        job.banked = greport.simulated_seconds
        self.queue.charge(spec.tenant, job.banked)
        report = job.report
        report.device_seconds = job.banked
        report.steps = greport.steps
        report.nsps = greport.nsps
        report.digest = state_digest(job.ensemble)
        report.finished = job.finish_at
        recovery = greport.recovery
        job.stats.retries += recovery.retries
        job.stats.backoff_seconds += recovery.backoff_seconds
        job.stats.watchdog_seconds += recovery.watchdog_seconds
        self._finalize_stats(job)
        report.restores += greport.redistributions
        if spec.budget_seconds is not None \
                and job.banked > spec.budget_seconds:
            self._fail(job, JobDeadlineError(
                f"job {spec.name!r} exhausted its budget of "
                f"{spec.budget_seconds} simulated device seconds "
                f"({job.banked:.6f} s consumed)"))
            return
        if spec.deadline_seconds is not None \
                and job.finish_at - spec.arrival > spec.deadline_seconds:
            self._fail(job, JobDeadlineError(
                f"job {spec.name!r} missed its deadline of "
                f"{spec.deadline_seconds} s after arrival"))
            return
        report.checkpoints_pruned = job.checkpointer.gc()
        job.state = JobState.COMPLETED
        report.state = JobState.COMPLETED
        self._event(job, "complete",
                    f"digest {report.digest[:12]} nsps {report.nsps:.2f}")

    # -- terminal bookkeeping ----------------------------------------------

    def _finalize_stats(self, job: _Job) -> None:
        report = job.report
        report.retries = job.stats.retries
        report.backoff_seconds = job.stats.backoff_seconds
        report.watchdog_seconds = job.stats.watchdog_seconds
        report.checkpoints_saved = job.checkpointer.saved_count
        if job.injector is not None:
            report.fault_counts = job.injector.counts()

    def _fail(self, job: _Job, exc: ReproError) -> None:
        if job.node is not None:
            job.node.job = None
            job.node = None
        for node in job.nodes:
            node.job = None
        job.nodes = []
        if job.engine is not None:
            self._bank(job)
            job.engine = None
        self._finalize_stats(job)
        report = job.report
        report.error = str(exc)
        report.error_type = type(exc).__name__
        report.steps = job.step
        report.finished = self.clock
        job.state = JobState.FAILED
        report.state = JobState.FAILED
        self._event(job, "fail", f"{type(exc).__name__}: {exc}")

    def _fail_stranded(self) -> None:
        """Nothing runs, nothing arrives, jobs still wait: fail them."""
        for spec in self._ready():
            job = self._jobs[spec.name]
            if job.state in JobState.TERMINAL:
                self.queue.finish(spec)
                continue
            self.queue.finish(spec)
            self._fail(job, DeviceLostError(
                f"job {spec.name!r} stranded: the fleet is exhausted "
                f"(no device can host it and none will free)"))

    @staticmethod
    def _physics(config):
        from ..bench import paper_time_step, paper_wave
        source = paper_wave()
        dt = config.dt if config.dt is not None else paper_time_step()
        return source, dt
