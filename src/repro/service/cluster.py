"""The simulated device fleet the scheduler places jobs on.

A :class:`DeviceFleet` is a pool of :class:`Node`s built from the same
``"2x iris-xe-max, 1x p630"`` group-spec grammar the distributed layer
uses, each node wrapping one uniquely-named device instance.  All
nodes share one :class:`~repro.oneapi.programcache.ProgramCache`, so a
program JIT-compiled for one iris-xe-max card is warm for every other
card of that model — the cache-affinity signal the scheduler's
bin-packer exploits when batching jobs onto warm devices.

Nodes die (``alive = False``) when a job's fault injector loses the
underlying device; a dead node never hosts another job, which is what
makes "fleet exhausted" a reachable, typed end state instead of a
hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..backends.registry import resolve_device
from ..distributed.group import parse_group_spec
from ..errors import ConfigurationError

__all__ = ["Node", "DeviceFleet"]


@dataclass
class Node:
    """One schedulable device slot in the fleet.

    Attributes:
        key: Catalog key of the device (``"iris-xe-max"``...).
        index: Position in the fleet, the final placement tie-break.
        device: The instance's :class:`DeviceDescriptor`, renamed
            ``"<name> #<index>"`` with ``model`` preserved so JIT keys
            stay shared across same-model nodes.
        free_at: Simulated time at which the node's current work ends.
        alive: False once a fault injector has lost this device.
        job: Name of the job currently placed here, if any.
        jobs_run: How many job placements this node has hosted.
    """

    key: str
    index: int
    device: object
    free_at: float = 0.0
    alive: bool = True
    job: Optional[str] = None
    jobs_run: int = 0

    @property
    def name(self) -> str:
        return self.device.name

    @property
    def busy(self) -> bool:
        return self.job is not None

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "key": self.key, "alive": self.alive,
                "free_at": self.free_at, "jobs_run": self.jobs_run,
                "job": self.job}


class DeviceFleet:
    """The pool of devices one :class:`PushService` schedules onto.

    Args:
        spec: Group-spec string (``"2x iris-xe-max, 1x p630"``) naming
            the cards in the fleet.
        program_cache: The shared JIT cache every node's queue uses;
            required — sharing it is the point of the fleet.
    """

    def __init__(self, spec: str, program_cache) -> None:
        keys = parse_group_spec(spec)
        if not keys:
            raise ConfigurationError(
                f"fleet spec {spec!r} names no devices")
        self.spec = spec
        self.program_cache = program_cache
        self.nodes: List[Node] = []
        counts: Dict[str, int] = {}
        for index, key in enumerate(keys):
            base = resolve_device(key)[1]
            instance = counts.get(key, 0)
            counts[key] = instance + 1
            descriptor = replace(base,
                                 name=f"{base.name} #{instance}",
                                 model=base.model or base.name)
            self.nodes.append(Node(key=key, index=index,
                                   device=descriptor))

    # -- queries the scheduler makes --------------------------------------

    @property
    def keys(self) -> List[str]:
        return [node.key for node in self.nodes]

    def alive_nodes(self) -> List[Node]:
        return [node for node in self.nodes if node.alive]

    def idle_nodes(self) -> List[Node]:
        return [node for node in self.nodes
                if node.alive and not node.busy]

    def node_named(self, name: str) -> Optional[Node]:
        for node in self.nodes:
            if node.name == name:
                return node
        return None

    def mark_lost(self, names) -> List[Node]:
        """Kill every node whose instance name appears in ``names``."""
        lost = []
        for name in names:
            node = self.node_named(name)
            if node is not None and node.alive:
                node.alive = False
                node.job = None
                lost.append(node)
        return lost

    def exhausted(self) -> bool:
        """True once no node can ever host another job."""
        return not self.alive_nodes()

    def __len__(self) -> int:
        return len(self.nodes)
