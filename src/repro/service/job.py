"""Jobs: what tenants submit, and what the scheduler reports back.

A :class:`JobSpec` is one tenant's ask — a
:class:`~repro.api.RunConfig` plus the service-level contract around
it: who is asking (``tenant``), how urgent it is (``priority``), when
it arrives on the simulated clock (``arrival``), and the enforcement
knobs (``deadline_seconds``, ``budget_seconds``).  A
:class:`JobReport` is the scheduler's complete account of what then
happened: lifecycle timestamps, queue wait, retries, preemptions,
device history, fault history, and — for completed jobs — the NSPS and
the sha256 state digest, which must be bit-exact versus the same
``RunConfig`` run solo and fault-free (the acceptance bar of the
service layer; see ``docs/SERVICE.md``).

All times are **simulated seconds** on the scheduler's clock, the same
clock the queues' cost models charge — a job that waited behind a
retry storm shows that wait here exactly as lost wall time would show
on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..api import RunConfig
from ..errors import ConfigurationError

__all__ = ["JobState", "JobSpec", "JobEvent", "JobReport"]


class JobState:
    """The lifecycle states a job moves through (string constants).

    ``PENDING → READY → RUNNING → COLLECTING → COMPLETED`` is the happy
    path; ``READY`` recurs after a device loss or a preemption (the job
    goes back to the queue), and ``FAILED`` / ``REJECTED`` are the
    terminal failure states (``REJECTED`` means admission refused it —
    it never ran).
    """

    PENDING = "pending"        # submitted, arrival still in the future
    READY = "ready"            # admitted, waiting for a device
    RUNNING = "running"        # placed on a node, stepping
    COMPLETED = "completed"    # all steps done, collected, cleaned up
    FAILED = "failed"          # terminal, with a typed ReproError
    REJECTED = "rejected"      # admission control refused it

    TERMINAL = (COMPLETED, FAILED, REJECTED)


@dataclass
class JobSpec:
    """One job as submitted: the workload plus its service contract.

    Attributes:
        name: Unique job name within the schedule.
        config: The push workload (:class:`~repro.api.RunConfig`).
            ``group`` selects a sharded job occupying several fleet
            nodes; otherwise the scheduler places the job on one node,
            and ``config.device`` is a placement *constraint*: only
            fleet nodes of that key qualify.  Set ``device=None``
            (service mode only) to let the scheduler choose freely —
            it then bin-packs onto JIT-warm nodes first.
        tenant: Fair-share accounting identity.
        priority: Larger is more urgent; ties break by tenant usage
            (fair share), then submission order.
        arrival: Simulated submit time [s] (0 = at service start).
        deadline_seconds: Kill the job if it has not completed within
            this many simulated seconds after ``arrival`` (None = no
            deadline) — enforcement raises/records
            :class:`~repro.errors.JobDeadlineError`.
        budget_seconds: Cap on the simulated device seconds the job may
            consume, recovery cost included (None = unmetered); the
            service's token budget.
        fault_plan: Per-job fault injection: a plan name (see
            :data:`repro.resilience.plans.PLAN_NAMES`) or a
            :class:`~repro.resilience.faults.FaultPlan` instance.  The
            injector is installed only while *this* job executes, so
            two jobs' fault streams never interleave.
        fault_seed: Seed of the per-job fault injector.
        preemptible: Whether a higher-priority job may preempt this one
            at a step boundary (checkpoint, requeue, resume later).
    """

    name: str
    config: RunConfig = field(default_factory=RunConfig)
    tenant: str = "default"
    priority: int = 0
    arrival: float = 0.0
    deadline_seconds: Optional[float] = None
    budget_seconds: Optional[float] = None
    fault_plan: Optional[object] = None
    fault_seed: int = 0
    preemptible: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a job needs a non-empty name")
        if self.arrival < 0.0:
            raise ConfigurationError(
                f"arrival must be >= 0, got {self.arrival}")


@dataclass(frozen=True)
class JobEvent:
    """One timestamped lifecycle event (simulated clock)."""

    clock: float
    event: str
    detail: str = ""


@dataclass
class JobReport:
    """Everything the scheduler can say about one job, post-schedule.

    The accounting contract: ``queue_wait_seconds`` is time spent
    admitted-but-unplaced (including re-queues after loss/preemption),
    ``device_seconds`` is simulated device time consumed across every
    placement (recovery backoff and watchdog burn included), and the
    ``retries``/``backoff_seconds``/``watchdog_seconds`` triple splits
    the recovery cost out, all on the same simulated clock.  For
    completed jobs ``digest`` is bit-exact versus a solo fault-free run
    of the same config.
    """

    name: str
    tenant: str
    priority: int
    state: str = JobState.PENDING
    error: Optional[str] = None
    error_type: Optional[str] = None
    submitted: float = 0.0
    launched: Optional[float] = None
    finished: Optional[float] = None
    queue_wait_seconds: float = 0.0
    device_seconds: float = 0.0
    steps: int = 0
    nsps: float = 0.0
    digest: str = ""
    retries: int = 0
    backoff_seconds: float = 0.0
    watchdog_seconds: float = 0.0
    preemptions: int = 0
    restores: int = 0
    replayed_steps: int = 0
    devices: Tuple[str, ...] = ()
    devices_lost: Tuple[str, ...] = ()
    fault_counts: Dict[str, int] = field(default_factory=dict)
    checkpoints_saved: int = 0
    checkpoints_pruned: int = 0
    events: List[JobEvent] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return self.state == JobState.COMPLETED

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready flat summary (events reduced to their count)."""
        return {
            "name": self.name, "tenant": self.tenant,
            "priority": self.priority, "state": self.state,
            "error": self.error, "error_type": self.error_type,
            "submitted": self.submitted, "launched": self.launched,
            "finished": self.finished,
            "queue_wait_seconds": self.queue_wait_seconds,
            "device_seconds": self.device_seconds,
            "steps": self.steps, "nsps": self.nsps, "digest": self.digest,
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "watchdog_seconds": self.watchdog_seconds,
            "preemptions": self.preemptions, "restores": self.restores,
            "replayed_steps": self.replayed_steps,
            "devices": list(self.devices),
            "devices_lost": list(self.devices_lost),
            "fault_counts": dict(self.fault_counts),
            "checkpoints_saved": self.checkpoints_saved,
            "checkpoints_pruned": self.checkpoints_pruned,
            "events": len(self.events),
        }

    def summary(self) -> str:
        """One-line human rendering (the CLI prints one per job)."""
        if self.state == JobState.COMPLETED:
            tail = (f"nsps={self.nsps:.2f} digest={self.digest[:12]} "
                    f"wait={self.queue_wait_seconds * 1e3:.3f}ms "
                    f"dev={self.device_seconds * 1e3:.3f}ms")
        else:
            tail = f"{self.error_type or ''}: {self.error or 'n/a'}"
        extras = []
        if self.retries:
            extras.append(f"retries={self.retries}")
        if self.preemptions:
            extras.append(f"preemptions={self.preemptions}")
        if self.devices_lost:
            extras.append(f"lost={','.join(self.devices_lost)}")
        extra = f" [{' '.join(extras)}]" if extras else ""
        return (f"{self.name} ({self.tenant}, prio {self.priority}): "
                f"{self.state} — {tail}{extra}")
