"""Push-as-a-service: a fault-tolerant multi-tenant job scheduler.

Many tenants submit :class:`JobSpec`s (each wrapping one
:class:`~repro.api.RunConfig`); a :class:`PushService` admits them
through a fair-share :class:`JobQueue`, bin-packs them onto a
simulated :class:`~repro.service.cluster.DeviceFleet` (batching onto
JIT-warm devices to amortize compiles through the shared
:class:`~repro.oneapi.programcache.ProgramCache`), and drives each to
a typed terminal state on the simulated clock — surviving injected
device loss via checkpoint/restore failover with bit-exact results.

Quickstart::

    from repro.api import RunConfig
    from repro.service import JobSpec, PushService

    service = PushService(fleet="2x iris-xe-max, 1x cpu")
    service.submit(JobSpec("train", RunConfig(n_particles=2000, steps=6),
                           tenant="alice", priority=1))
    service.submit(JobSpec("probe", RunConfig(n_particles=1000, steps=4),
                           tenant="bob", fault_plan="device-loss"))
    report = service.run()
    print(report.summary())

See ``docs/SERVICE.md`` for the lifecycle, admission and failure
semantics.
"""

from .cluster import DeviceFleet, Node
from .job import JobEvent, JobReport, JobSpec, JobState
from .queue import JobQueue
from .scheduler import DEFAULT_FLEET, PushService, ServiceReport

__all__ = ["DEFAULT_FLEET", "DeviceFleet", "JobEvent", "JobQueue",
           "JobReport", "JobSpec", "JobState", "Node", "PushService",
           "ServiceReport"]
