"""Admission control: who gets into the schedule, and in what order.

:class:`JobQueue` is the service's front door.  It enforces three
things before a job ever touches a device:

* **Backpressure** — at most ``capacity`` non-terminal jobs live in
  the service at once.  An over-capacity submit first tries to *evict*
  a strictly-lower-priority job that is still queued (the evictee
  fails typed, with :class:`~repro.errors.JobPreemptedError`); if no
  such victim exists the submit itself is refused with
  :class:`~repro.errors.JobRejectedError`.  Rejection is an answer,
  not a crash: the caller knows immediately, with a reason, and the
  rest of the schedule is untouched.
* **Fair share** — no tenant may hold more than
  ``max(1, ceil(per_tenant_share * capacity))`` live jobs, so one
  noisy tenant cannot starve the fleet.
* **Feasibility** — a job the fleet can *never* run (group spec
  needing more cards than exist, non-positive deadline or budget,
  config knobs the service mode does not support) is rejected at
  submit time rather than left to time out in the queue.

Ready ordering is priority-first, then fair-share (tenants that have
consumed less simulated device time go first), then arrival order —
the classic weighted fair queueing compromise: urgent work jumps the
line, equally-urgent work interleaves across tenants.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..errors import ConfigurationError, JobRejectedError
from .job import JobSpec

__all__ = ["JobQueue"]


class JobQueue:
    """Priority + fair-share admission queue over :class:`JobSpec`s.

    Args:
        capacity: Maximum live (non-terminal) jobs; submits beyond it
            evict lower-priority queued work or are rejected.
        per_tenant_share: Fraction of ``capacity`` one tenant may hold
            (floored at one job, so a lone tenant is never locked out).

    The queue does not know about devices; the scheduler asks it for
    the next runnable job via :meth:`pop_ready` and reports device
    time back through :meth:`charge` so fair-share stays current.
    """

    def __init__(self, capacity: int = 16,
                 per_tenant_share: float = 0.5) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"queue capacity must be >= 1, got {capacity}")
        if not 0.0 < per_tenant_share <= 1.0:
            raise ConfigurationError(
                f"per_tenant_share must be in (0, 1], "
                f"got {per_tenant_share}")
        self.capacity = int(capacity)
        self.per_tenant_share = float(per_tenant_share)
        #: Live jobs (READY or PENDING-arrival), admission order.
        self._queued: List[JobSpec] = []
        #: Names of jobs currently running (they count against caps).
        self._running: List[str] = []
        #: Simulated device seconds consumed, per tenant (fair share).
        self._usage: Dict[str, float] = {}
        #: Monotone submit sequence, the final ordering tie-break.
        self._seq: Dict[str, int] = {}
        self._next_seq = 0
        #: Tenant of every job ever admitted (running-cap accounting).
        self._tenants: Dict[str, str] = {}
        #: Ready times (simulated clock) — set at admission/requeue.
        self._ready_at: Dict[str, float] = {}
        #: Evictions performed to make room, surfaced to the scheduler.
        self.evicted: List[JobSpec] = []

    # -- introspection ----------------------------------------------------

    @property
    def tenant_cap(self) -> int:
        """Live-job ceiling for one tenant."""
        return max(1, math.ceil(self.per_tenant_share * self.capacity))

    def live_count(self, tenant: Optional[str] = None) -> int:
        """Live (queued + running) jobs, optionally for one tenant."""
        queued = [job for job in self._queued
                  if tenant is None or job.tenant == tenant]
        if tenant is None:
            return len(queued) + len(self._running)
        running = [name for name in self._running
                   if self._tenant_of(name) == tenant]
        return len(queued) + len(running)

    def _tenant_of(self, name: str) -> str:
        return self._tenants.get(name, "default")

    def usage(self, tenant: str) -> float:
        """Simulated device seconds this tenant has consumed so far."""
        return self._usage.get(tenant, 0.0)

    def __len__(self) -> int:
        return len(self._queued)

    def __contains__(self, name: str) -> bool:
        return any(job.name == name for job in self._queued)

    # -- admission ---------------------------------------------------------

    def admit(self, spec: JobSpec, clock: float = 0.0,
              fleet_size: int = 0, fleet_keys: Optional[List[str]] = None
              ) -> None:
        """Admit ``spec`` or raise :class:`JobRejectedError` with a reason.

        ``fleet_size``/``fleet_keys`` let admission check feasibility:
        a job is refused outright when the fleet can never satisfy it
        (better a fast typed "no" than an eternal queue wait).  May
        evict a strictly-lower-priority queued job to make room; the
        victim lands on :attr:`evicted` for the scheduler to fail with
        :class:`JobPreemptedError`.
        """
        if any(job.name == spec.name for job in self._queued) \
                or spec.name in self._running:
            raise JobRejectedError(
                f"job name {spec.name!r} already live in the queue")
        self._check_feasible(spec, fleet_size, fleet_keys or [])
        if self.live_count(spec.tenant) >= self.tenant_cap:
            raise JobRejectedError(
                f"tenant {spec.tenant!r} is over its fair share "
                f"({self.tenant_cap} live jobs of capacity "
                f"{self.capacity}); job {spec.name!r} refused")
        if self.live_count() >= self.capacity:
            victim = self._eviction_victim(spec)
            if victim is None:
                raise JobRejectedError(
                    f"queue at capacity ({self.capacity} live jobs) and "
                    f"no queued job has lower priority than "
                    f"{spec.priority}; job {spec.name!r} refused")
            self._queued.remove(victim)
            self._ready_at.pop(victim.name, None)
            self.evicted.append(victim)
        self._seq[spec.name] = self._next_seq
        self._next_seq += 1
        self._tenants[spec.name] = spec.tenant
        self._queued.append(spec)
        self._ready_at[spec.name] = max(clock, spec.arrival)

    def _check_feasible(self, spec: JobSpec, fleet_size: int,
                        fleet_keys: List[str]) -> None:
        config = spec.config
        if spec.deadline_seconds is not None and spec.deadline_seconds <= 0:
            raise JobRejectedError(
                f"job {spec.name!r}: deadline_seconds must be > 0, "
                f"got {spec.deadline_seconds}")
        if spec.budget_seconds is not None and spec.budget_seconds <= 0:
            raise JobRejectedError(
                f"job {spec.name!r}: budget_seconds must be > 0, "
                f"got {spec.budget_seconds}")
        device = getattr(config, "device", None)
        if device is not None and fleet_keys and device not in fleet_keys:
            raise JobRejectedError(
                f"job {spec.name!r}: device {device!r} is not in the "
                f"fleet ({sorted(set(fleet_keys))}); set device=None to "
                f"let the scheduler choose")
        if getattr(config, "devices", None):
            raise JobRejectedError(
                f"job {spec.name!r}: explicit failover ladders "
                f"(config.devices) are not supported in service mode — "
                f"the scheduler owns placement")
        if getattr(config, "fault_plan", None) is not None:
            raise JobRejectedError(
                f"job {spec.name!r}: set fault plans on the JobSpec "
                f"(fault_plan=...), not on the RunConfig — the service "
                f"scopes injection per job")
        if getattr(config, "config", None) == "auto":
            raise JobRejectedError(
                f"job {spec.name!r}: config='auto' (autotuning) is not "
                f"supported in service mode; submit a concrete config")
        if getattr(config, "persist_cache", None) is not None \
                or getattr(config, "program_cache", None) is not None:
            raise JobRejectedError(
                f"job {spec.name!r}: the service owns the fleet-wide "
                f"program cache; per-job persist_cache/program_cache "
                f"are not accepted")
        group = getattr(config, "group", None)
        if group and fleet_size:
            from ..distributed.group import parse_group_spec
            keys = parse_group_spec(group)
            if len(keys) > fleet_size:
                raise JobRejectedError(
                    f"job {spec.name!r}: group {group!r} needs "
                    f"{len(keys)} devices but the fleet has "
                    f"{fleet_size}")
            available = list(fleet_keys)
            for key in keys:
                if key not in available:
                    raise JobRejectedError(
                        f"job {spec.name!r}: group {group!r} needs a "
                        f"{key!r} the fleet does not have")
                available.remove(key)

    def _eviction_victim(self, spec: JobSpec) -> Optional[JobSpec]:
        """Lowest-priority queued job strictly below ``spec``, if any."""
        candidates = [job for job in self._queued
                      if job.priority < spec.priority]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda job: (job.priority,
                                    -self._seq[job.name]))

    # -- scheduling interface ---------------------------------------------

    def ready_jobs(self, clock: float) -> List[JobSpec]:
        """Jobs whose arrival has passed, best-first."""
        ready = [job for job in self._queued if job.arrival <= clock]
        ready.sort(key=lambda job: (-job.priority,
                                    self.usage(job.tenant),
                                    job.arrival,
                                    self._seq[job.name]))
        return ready

    def next_arrival(self, clock: float) -> Optional[float]:
        """Earliest future arrival time, or None when nothing is pending."""
        future = [job.arrival for job in self._queued
                  if job.arrival > clock]
        return min(future) if future else None

    def ready_at(self, name: str) -> float:
        """When this job (re-)entered the ready state — queue-wait basis."""
        return self._ready_at.get(name, 0.0)

    def mark_running(self, spec: JobSpec) -> None:
        """Move a queued job to the running set (still counts in caps)."""
        self._queued.remove(spec)
        self._ready_at.pop(spec.name, None)
        self._running.append(spec.name)

    def requeue(self, spec: JobSpec, clock: float) -> None:
        """Return a running job to the queue (device loss, preemption)."""
        if spec.name in self._running:
            self._running.remove(spec.name)
        self._queued.append(spec)
        self._ready_at[spec.name] = clock

    def finish(self, spec: JobSpec) -> None:
        """Drop a job from the live set (any terminal state)."""
        if spec.name in self._running:
            self._running.remove(spec.name)
        self._queued = [job for job in self._queued
                        if job.name != spec.name]
        self._ready_at.pop(spec.name, None)

    def charge(self, tenant: str, device_seconds: float) -> None:
        """Account simulated device time to a tenant (fair-share input)."""
        self._usage[tenant] = self._usage.get(tenant, 0.0) \
            + max(0.0, device_seconds)

    def pop_evicted(self) -> List[JobSpec]:
        """Drain jobs evicted by admission since the last call."""
        evicted, self.evicted = self.evicted, []
        return evicted
