"""Paraxial Gaussian beam — the conventional focused-pulse comparator.

The paper's research context is *ultimate* focusing: the m-dipole wave
is the field that maximises focal intensity for given power (refs
[20][24]).  The natural object to compare against is the standard
paraxial Gaussian (TEM00) beam every laser lab quotes.  This module
implements it so examples and studies can contrast "4-pi dipole
focusing" with conventional lens focusing at the same power.

The beam propagates along +x, is linearly polarised along y, and uses
the usual paraxial envelope::

    E_y = E0 (w0 / w) exp(-r_perp^2 / w^2)
          cos(k x - omega t + k r_perp^2 / (2 R) - psi)
    B_z = E_y

with waist ``w(x)``, Gouy phase ``psi(x)`` and curvature ``R(x)``.
Paraxial fields satisfy Maxwell's equations only to first order in
``1 / (k w0)`` (they lack the longitudinal components); the tests check
the residual scales accordingly, and the class refuses waists below one
wavelength where the expansion breaks down entirely.
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import SPEED_OF_LIGHT
from ..errors import ConfigurationError
from .base import FieldSource, FieldValues

__all__ = ["GaussianBeam"]


class GaussianBeam(FieldSource):
    """Linearly polarised paraxial TEM00 beam focused at the origin.

    Args:
        power: Cycle-averaged beam power [erg/s].
        omega: Angular frequency [1/s].
        waist: 1/e^2 intensity radius at focus ``w0`` [cm]; must be at
            least one wavelength for the paraxial form to make sense.
    """

    flops_per_evaluation = 120

    def __init__(self, power: float, omega: float, waist: float) -> None:
        if power <= 0.0:
            raise ConfigurationError(f"power must be positive, got {power!r}")
        if omega <= 0.0:
            raise ConfigurationError(f"omega must be positive, got {omega!r}")
        wavelength = 2.0 * math.pi * SPEED_OF_LIGHT / omega
        if waist < wavelength:
            raise ConfigurationError(
                f"waist ({waist:.3g} cm) must be >= one wavelength "
                f"({wavelength:.3g} cm) for a paraxial beam")
        self.power = float(power)
        self.omega = float(omega)
        self.waist = float(waist)
        # P = (c / 8 pi) E0^2 (pi w0^2 / 2)  =>  E0 = sqrt(16 P / (c w0^2)).
        self.amplitude = math.sqrt(16.0 * self.power
                                   / (SPEED_OF_LIGHT * self.waist ** 2))

    @property
    def wavenumber(self) -> float:
        """``k = omega / c`` [1/cm]."""
        return self.omega / SPEED_OF_LIGHT

    @property
    def rayleigh_range(self) -> float:
        """``x_R = k w0^2 / 2`` [cm]."""
        return 0.5 * self.wavenumber * self.waist ** 2

    def beam_radius(self, x: np.ndarray) -> np.ndarray:
        """``w(x) = w0 sqrt(1 + (x / x_R)^2)``."""
        ratio = np.asarray(x, dtype=np.float64) / self.rayleigh_range
        return self.waist * np.sqrt(1.0 + ratio * ratio)

    def evaluate(self, x: np.ndarray, y: np.ndarray, z: np.ndarray,
                 t: float) -> FieldValues:
        xv = np.asarray(x, dtype=np.float64)
        yv = np.asarray(y, dtype=np.float64)
        zv = np.asarray(z, dtype=np.float64)
        r2 = yv * yv + zv * zv
        x_r = self.rayleigh_range
        w = self.beam_radius(xv)
        gouy = np.arctan2(xv, x_r)
        # 1/R = x / (x^2 + x_R^2): regular through the focus.
        inv_radius = xv / (xv * xv + x_r * x_r)
        k = self.wavenumber
        phase = (k * xv - self.omega * t
                 + 0.5 * k * r2 * inv_radius - gouy)
        envelope = (self.amplitude * (self.waist / w)
                    * np.exp(-r2 / (w * w)))
        ey = envelope * np.cos(phase)
        zero = np.zeros_like(xv)
        return FieldValues(zero, ey, zero.copy(),
                           zero.copy(), zero.copy(), ey.copy())

    def peak_field(self) -> float:
        """Focal field amplitude ``E0`` [statvolt/cm]."""
        return self.amplitude
