"""Electromagnetic field sources.

Two kinds of sources correspond to the paper's two benchmark scenarios:

* *analytical* sources (:mod:`~repro.fields.dipole`,
  :mod:`~repro.fields.uniform`, :mod:`~repro.fields.plane_wave`)
  evaluate closed-form E(r, t), B(r, t) on demand — compute-heavy;
* *precalculated* per-particle arrays
  (:mod:`~repro.fields.precalculated`) store field values alongside the
  ensemble and the pusher merely loads them — memory-heavy.

Grid-based fields (:mod:`~repro.fields.grid`,
:mod:`~repro.fields.interpolation`) support the full PIC substrate.
"""

from .base import FieldValues, FieldSource
from .uniform import NullField, UniformField, CrossedField
from .plane_wave import PlaneWave, StandingPlaneWave
from .gaussian_beam import GaussianBeam
from .dipole import MDipoleWave, dipole_f1, dipole_f2, dipole_f3, dipole_amplitude
from .grid import RegularGrid3D, YeeGrid
from .interpolation import (
    Shape,
    interpolate_cic,
    interpolate_from_yee_grid,
    GridFieldSource,
)
from .precalculated import PrecalculatedField

__all__ = [
    "FieldValues",
    "FieldSource",
    "NullField",
    "UniformField",
    "CrossedField",
    "PlaneWave",
    "StandingPlaneWave",
    "GaussianBeam",
    "MDipoleWave",
    "dipole_f1",
    "dipole_f2",
    "dipole_f3",
    "dipole_amplitude",
    "RegularGrid3D",
    "YeeGrid",
    "Shape",
    "interpolate_cic",
    "interpolate_from_yee_grid",
    "GridFieldSource",
    "PrecalculatedField",
]
