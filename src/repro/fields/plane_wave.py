"""Linearly polarised plane waves (travelling and standing)."""

from __future__ import annotations

import numpy as np

from ..constants import SPEED_OF_LIGHT
from ..errors import ConfigurationError
from .base import FieldSource, FieldValues

__all__ = ["PlaneWave", "StandingPlaneWave"]


class PlaneWave(FieldSource):
    """Travelling plane wave along +x, E along y, B along z.

    ``E_y = B_z = a cos(k x - omega t + phase)`` — an exact vacuum
    solution of Maxwell's equations.
    """

    flops_per_evaluation = 12

    def __init__(self, amplitude: float, omega: float, phase: float = 0.0) -> None:
        if omega <= 0.0:
            raise ConfigurationError(f"omega must be positive, got {omega!r}")
        self.amplitude = float(amplitude)
        self.omega = float(omega)
        self.phase = float(phase)

    @property
    def wavenumber(self) -> float:
        """``k = omega / c`` [1/cm]."""
        return self.omega / SPEED_OF_LIGHT

    def evaluate(self, x: np.ndarray, y: np.ndarray, z: np.ndarray,
                 t: float) -> FieldValues:
        xv = np.asarray(x, dtype=np.float64)
        wave = self.amplitude * np.cos(self.wavenumber * xv - self.omega * t
                                       + self.phase)
        zero = np.zeros_like(xv)
        return FieldValues(zero, wave, zero.copy(),
                           zero.copy(), zero.copy(), wave.copy())


class StandingPlaneWave(FieldSource):
    """Standing wave along x: two counter-propagating plane waves.

    ``E_y = 2 a cos(k x) cos(omega t)``, ``B_z = 2 a sin(k x) sin(omega t)``.
    E-nodes sit at ``k x = pi/2 + n pi`` where the field is purely
    magnetic — a classic trapping configuration.
    """

    flops_per_evaluation = 16

    def __init__(self, amplitude: float, omega: float) -> None:
        if omega <= 0.0:
            raise ConfigurationError(f"omega must be positive, got {omega!r}")
        self.amplitude = float(amplitude)
        self.omega = float(omega)

    @property
    def wavenumber(self) -> float:
        """``k = omega / c`` [1/cm]."""
        return self.omega / SPEED_OF_LIGHT

    def evaluate(self, x: np.ndarray, y: np.ndarray, z: np.ndarray,
                 t: float) -> FieldValues:
        xv = np.asarray(x, dtype=np.float64)
        kx = self.wavenumber * xv
        ey = 2.0 * self.amplitude * np.cos(kx) * np.cos(self.omega * t)
        bz = 2.0 * self.amplitude * np.sin(kx) * np.sin(self.omega * t)
        zero = np.zeros_like(xv)
        return FieldValues(zero, ey, zero.copy(), zero.copy(), zero.copy(), bz)
