"""Field source interface."""

from __future__ import annotations

import abc
from typing import NamedTuple, Tuple

import numpy as np

from ..fp import FP3

__all__ = ["FieldValues", "FieldSource"]


class FieldValues(NamedTuple):
    """Electric and magnetic field components at a set of points.

    All six entries are arrays of the same shape (one value per query
    point).  Units are Gaussian: statvolt/cm for E, gauss for B (equal
    in CGS).
    """

    ex: np.ndarray
    ey: np.ndarray
    ez: np.ndarray
    bx: np.ndarray
    by: np.ndarray
    bz: np.ndarray

    @property
    def e(self) -> np.ndarray:
        """(N, 3) electric field array (copy)."""
        return np.stack([self.ex, self.ey, self.ez], axis=-1)

    @property
    def b(self) -> np.ndarray:
        """(N, 3) magnetic field array (copy)."""
        return np.stack([self.bx, self.by, self.bz], axis=-1)


class FieldSource(abc.ABC):
    """A time-dependent electromagnetic field E(r, t), B(r, t).

    Implementations must be vectorized over query points; the scalar
    convenience :meth:`evaluate_at` is provided for the reference
    (particle-at-a-time) kernels.

    The class attribute :attr:`flops_per_evaluation` is the approximate
    floating-point work of evaluating the six components at one point;
    the oneAPI cost model uses it to characterise the "Analytical
    Fields" scenario.
    """

    #: Approximate flops to evaluate E and B at one point.
    flops_per_evaluation: int = 0

    @abc.abstractmethod
    def evaluate(self, x: np.ndarray, y: np.ndarray, z: np.ndarray,
                 t: float) -> FieldValues:
        """Return field components at coordinate arrays ``x, y, z``, time ``t``.

        The input arrays share one shape; the outputs match it.  Inputs
        must not be modified.
        """

    def evaluate_at(self, position: FP3, t: float) -> Tuple[FP3, FP3]:
        """Scalar evaluation at a single point: returns ``(E, B)`` as FP3s."""
        values = self.evaluate(np.array([position.x]), np.array([position.y]),
                               np.array([position.z]), t)
        e = FP3(float(values.ex[0]), float(values.ey[0]), float(values.ez[0]))
        b = FP3(float(values.bx[0]), float(values.by[0]), float(values.bz[0]))
        return e, b
