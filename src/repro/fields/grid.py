"""Regular 3-D grids and the staggered Yee grid for FDTD.

The PIC substrate (Section 2 of the paper) defines field values on a
spatial grid.  :class:`RegularGrid3D` is the geometric description;
:class:`YeeGrid` adds the six staggered component arrays used by the
FDTD Maxwell solver with periodic boundaries.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["RegularGrid3D", "YeeGrid", "YEE_STAGGER"]

#: Stagger (in fractions of a cell) of each Yee component relative to
#: the cell corner: Ex lives at (i+1/2, j, k), Bx at (i, j+1/2, k+1/2), etc.
YEE_STAGGER: Dict[str, Tuple[float, float, float]] = {
    "ex": (0.5, 0.0, 0.0),
    "ey": (0.0, 0.5, 0.0),
    "ez": (0.0, 0.0, 0.5),
    "bx": (0.0, 0.5, 0.5),
    "by": (0.5, 0.0, 0.5),
    "bz": (0.5, 0.5, 0.0),
}


class RegularGrid3D:
    """Axis-aligned regular grid: origin, spacing and cell counts.

    ``dims`` counts *cells*; with periodic boundaries each axis stores
    ``dims[i]`` values (node ``dims[i]`` wraps onto node 0).
    """

    def __init__(self, origin: Tuple[float, float, float],
                 spacing: Tuple[float, float, float],
                 dims: Tuple[int, int, int]) -> None:
        self.origin = tuple(float(v) for v in origin)
        self.spacing = tuple(float(v) for v in spacing)
        self.dims = tuple(int(v) for v in dims)
        if len(self.origin) != 3 or len(self.spacing) != 3 or len(self.dims) != 3:
            raise ConfigurationError("origin, spacing and dims must have length 3")
        if any(s <= 0.0 for s in self.spacing):
            raise ConfigurationError(f"spacing must be positive, got {spacing!r}")
        if any(d < 1 for d in self.dims):
            raise ConfigurationError(f"dims must be >= 1, got {dims!r}")

    @property
    def upper(self) -> Tuple[float, float, float]:
        """Coordinates of the far corner of the periodic box."""
        return tuple(o + s * d for o, s, d
                     in zip(self.origin, self.spacing, self.dims))

    @property
    def extent(self) -> Tuple[float, float, float]:
        """Box side lengths."""
        return tuple(s * d for s, d in zip(self.spacing, self.dims))

    @property
    def num_cells(self) -> int:
        """Total number of cells."""
        nx, ny, nz = self.dims
        return nx * ny * nz

    @property
    def cell_volume(self) -> float:
        """Volume of one cell [cm^3]."""
        sx, sy, sz = self.spacing
        return sx * sy * sz

    def node_coordinates(self, axis: int, stagger: float = 0.0) -> np.ndarray:
        """1-D coordinates of the grid nodes along ``axis``.

        ``stagger`` shifts by a fraction of a cell (0.5 for Yee
        half-points).
        """
        if axis not in (0, 1, 2):
            raise ConfigurationError(f"axis must be 0, 1 or 2, got {axis!r}")
        n = self.dims[axis]
        return (self.origin[axis]
                + (np.arange(n) + stagger) * self.spacing[axis])

    def wrap_positions(self, positions: np.ndarray) -> np.ndarray:
        """Map positions into the periodic box (copy)."""
        pos = np.asarray(positions, dtype=np.float64)
        org = np.asarray(self.origin)
        ext = np.asarray(self.extent)
        return org + np.mod(pos - org, ext)

    def __repr__(self) -> str:
        return (f"RegularGrid3D(origin={self.origin}, spacing={self.spacing}, "
                f"dims={self.dims})")


class YeeGrid(RegularGrid3D):
    """Yee-staggered E and B component storage over a regular grid.

    Each of the six components is an ``(nx, ny, nz)`` float64 array;
    component positions are staggered according to :data:`YEE_STAGGER`.
    Current-density arrays ``jx, jy, jz`` (co-located with the matching
    E components) support the self-consistent PIC loop.
    """

    def __init__(self, origin: Tuple[float, float, float],
                 spacing: Tuple[float, float, float],
                 dims: Tuple[int, int, int]) -> None:
        super().__init__(origin, spacing, dims)
        shape = self.dims
        self.fields: Dict[str, np.ndarray] = {
            name: np.zeros(shape) for name in YEE_STAGGER
        }
        self.currents: Dict[str, np.ndarray] = {
            name: np.zeros(shape) for name in ("jx", "jy", "jz")
        }

    def component(self, name: str) -> np.ndarray:
        """The storage array of one field component (``ex`` ... ``bz``)."""
        try:
            return self.fields[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown Yee component {name!r}; expected one of "
                f"{tuple(YEE_STAGGER)}") from None

    def component_coordinates(self, name: str, axis: int) -> np.ndarray:
        """1-D coordinates of component ``name`` sample points along ``axis``."""
        stagger = YEE_STAGGER.get(name)
        if stagger is None:
            raise ConfigurationError(f"unknown Yee component {name!r}")
        return self.node_coordinates(axis, stagger[axis])

    def clear_currents(self) -> None:
        """Zero the current-density arrays (start of a deposition pass)."""
        for array in self.currents.values():
            array[:] = 0.0

    def fill_from_source(self, source, t: float) -> None:
        """Sample an analytical :class:`FieldSource` onto the staggered grid."""
        for name in YEE_STAGGER:
            xs = self.component_coordinates(name, 0)
            ys = self.component_coordinates(name, 1)
            zs = self.component_coordinates(name, 2)
            gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
            values = source.evaluate(gx, gy, gz, t)
            self.fields[name][:] = getattr(values, name)

    def field_energy(self) -> float:
        """Total electromagnetic energy ``sum (E^2 + B^2) / (8 pi) dV`` [erg]."""
        total = 0.0
        for name in YEE_STAGGER:
            total += float(np.sum(self.fields[name] ** 2))
        return total / (8.0 * np.pi) * self.cell_volume
