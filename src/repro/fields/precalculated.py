"""Per-particle precalculated field storage — the paper's first scenario.

In the "Precalculated Fields" benchmark "all field values are
precalculated and stored in the corresponding array", so the timed push
kernel only *loads* six floating-point field components per particle.
The stored array is "comparable in size to the ensemble of particles",
which is what makes the scenario memory-bound.

:class:`PrecalculatedField` is that array.  Like the particle ensemble
it comes in both layouts: an interleaved 6-component record per particle
(AoS) or six contiguous arrays (SoA), and in either precision, so the
memory traffic it generates matches the particle layout under study.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ConfigurationError, LayoutError
from ..fp import Precision
from ..particles.ensemble import Layout, ParticleEnsemble
from .base import FieldSource, FieldValues

__all__ = ["PrecalculatedField", "FIELD_COMPONENTS"]

#: Field component names in record order.
FIELD_COMPONENTS = ("ex", "ey", "ez", "bx", "by", "bz")


class PrecalculatedField:
    """Six per-particle field components in AoS or SoA layout.

    Args:
        size: Number of particles the array covers.
        precision: Floating-point precision of the stored components.
        layout: AoS (one 6-component record per particle) or SoA.
    """

    def __init__(self, size: int, precision: Precision = Precision.DOUBLE,
                 layout: Layout = Layout.SOA) -> None:
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        self._size = int(size)
        self._precision = precision
        self._layout = layout
        dtype = precision.dtype
        if layout is Layout.AOS:
            record = np.dtype([(name, dtype) for name in FIELD_COMPONENTS])
            self._records: Optional[np.ndarray] = np.zeros(self._size, dtype=record)
            self._arrays: Optional[Dict[str, np.ndarray]] = None
        else:
            self._records = None
            self._arrays = {name: np.zeros(self._size, dtype=dtype)
                            for name in FIELD_COMPONENTS}

    @property
    def size(self) -> int:
        """Number of particles covered."""
        return self._size

    @property
    def precision(self) -> Precision:
        """Floating-point precision of the components."""
        return self._precision

    @property
    def layout(self) -> Layout:
        """Memory layout of the stored components."""
        return self._layout

    @property
    def nbytes(self) -> int:
        """Bytes of field storage allocated."""
        if self._records is not None:
            return int(self._records.nbytes)
        assert self._arrays is not None
        return int(sum(a.nbytes for a in self._arrays.values()))

    @property
    def bytes_per_particle(self) -> int:
        """Field bytes stored per particle (6 components)."""
        return 6 * self._precision.itemsize

    def component(self, name: str) -> np.ndarray:
        """Writable 1-D view of one field component (``ex`` ... ``bz``)."""
        if name not in FIELD_COMPONENTS:
            raise LayoutError(f"unknown field component {name!r}; "
                              f"expected one of {FIELD_COMPONENTS}")
        if self._records is not None:
            return self._records[name]
        assert self._arrays is not None
        return self._arrays[name]

    def values(self) -> FieldValues:
        """All six components as a :class:`FieldValues` of views."""
        return FieldValues(*(self.component(name) for name in FIELD_COMPONENTS))

    def refresh(self, source: FieldSource, ensemble: ParticleEnsemble,
                t: float) -> None:
        """Re-sample ``source`` at the ensemble's current positions.

        This is the *untimed* preparation step of the "Precalculated
        Fields" scenario: the benchmark harness calls it between timed
        push kernels so the kernel itself performs loads only.
        """
        if ensemble.size != self._size:
            raise LayoutError(
                f"ensemble size {ensemble.size} does not match field array "
                f"size {self._size}")
        values = source.evaluate(
            ensemble.component("x"), ensemble.component("y"),
            ensemble.component("z"), t)
        for name in FIELD_COMPONENTS:
            self.component(name)[:] = getattr(values, name)

    @classmethod
    def from_source(cls, source: FieldSource, ensemble: ParticleEnsemble,
                    t: float = 0.0,
                    layout: Optional[Layout] = None) -> "PrecalculatedField":
        """Build and fill an array matching ``ensemble``'s size and precision.

        The layout defaults to the ensemble's own layout.
        """
        field = cls(ensemble.size, ensemble.precision,
                    layout if layout is not None else ensemble.layout)
        field.refresh(source, ensemble, t)
        return field
