"""Standing magnetic-dipole (m-dipole) wave — the paper's benchmark field.

Implements eqs. (14)-(15) of the paper: the tightly focused standing
m-dipole wave of Gonoskov et al. (dipole pulse theory), used to study
electron escape from the focal region ahead of vacuum-breakdown
experiments.

Two typos in the printed equations are corrected here (the default).
Deriving the field from the magnetic Hertz potential
``Pi = z_hat * C * j0(kR) * sin(omega t)`` (so that
``E = -(1/c) d/dt curl Pi`` and ``B = curl curl Pi`` satisfy Maxwell's
equations identically) gives:

* ``B_y`` is proportional to ``y z / R^2`` — the paper prints ``x y``.
  The corrected form follows from the axial symmetry of the dipole wave
  and is required for ``div B = 0``.
* The ``B_z`` prefactor is ``-2 A0``, not ``-2 A0 z^2 / R^2`` — with the
  printed extra factor the field would not solve Maxwell's equations
  (and would vanish on the z = 0 plane, breaking the symmetry).

The radial functions are spherical Bessel combinations,

* ``f1(x) = j1(x) = sin(x)/x^2 - cos(x)/x``
* ``f2(x) = j2(x) = (3/x^3 - 1/x) sin(x) - 3 cos(x)/x^2``
* ``f3(x) = j0(x) - j1(x)/x = (1/x - 1/x^3) sin(x) + cos(x)/x^2``

(the paper's eq. (15) prints the third one with the label ``f2``; it is
``f3``).  Each is evaluated by series near ``x = 0`` to avoid
catastrophic cancellation, making the fields smooth through the focus.

Setting ``paper_typos=True`` reproduces the literal printed equations
for comparison.
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import SPEED_OF_LIGHT
from ..errors import ConfigurationError
from .base import FieldSource, FieldValues

__all__ = ["dipole_f1", "dipole_f2", "dipole_f3", "dipole_amplitude",
           "MDipoleWave"]

#: Below this argument the closed forms lose digits to cancellation and
#: the Taylor series (error < 1e-16 at the threshold) is used instead.
_SERIES_THRESHOLD = 1.0e-2


def dipole_f1(x: np.ndarray) -> np.ndarray:
    """Radial function ``f1 = j1``: ``sin(x)/x^2 - cos(x)/x``.

    Series near 0: ``x/3 - x^3/30 + x^5/840``.
    """
    xv = np.asarray(x, dtype=np.float64)
    small = np.abs(xv) < _SERIES_THRESHOLD
    safe = np.where(small, 1.0, xv)
    closed = np.sin(safe) / safe ** 2 - np.cos(safe) / safe
    x2 = xv * xv
    series = xv * (1.0 / 3.0 + x2 * (-1.0 / 30.0 + x2 / 840.0))
    return np.where(small, series, closed)


def dipole_f2(x: np.ndarray) -> np.ndarray:
    """Radial function ``f2 = j2``: ``(3/x^3 - 1/x) sin(x) - 3 cos(x)/x^2``.

    Series near 0: ``x^2/15 - x^4/210 + x^6/7560``.
    """
    xv = np.asarray(x, dtype=np.float64)
    small = np.abs(xv) < _SERIES_THRESHOLD
    safe = np.where(small, 1.0, xv)
    closed = (3.0 / safe ** 3 - 1.0 / safe) * np.sin(safe) \
        - 3.0 * np.cos(safe) / safe ** 2
    x2 = xv * xv
    series = x2 * (1.0 / 15.0 + x2 * (-1.0 / 210.0 + x2 / 7560.0))
    return np.where(small, series, closed)


def dipole_f3(x: np.ndarray) -> np.ndarray:
    """Radial function ``f3 = j0 - j1/x``: ``(1/x - 1/x^3) sin(x) + cos(x)/x^2``.

    Series near 0: ``2/3 - 2 x^2/15 + x^4/140``.
    """
    xv = np.asarray(x, dtype=np.float64)
    small = np.abs(xv) < _SERIES_THRESHOLD
    safe = np.where(small, 1.0, xv)
    closed = (1.0 / safe - 1.0 / safe ** 3) * np.sin(safe) \
        + np.cos(safe) / safe ** 2
    x2 = xv * xv
    series = 2.0 / 3.0 + x2 * (-2.0 / 15.0 + x2 / 140.0)
    return np.where(small, series, closed)


def dipole_amplitude(power: float, omega: float) -> float:
    """Amplitude ``A0 = k sqrt(3 P / c)`` of eq. (14).

    ``power`` in erg/s (CGS), ``omega`` in 1/s.  Returns statvolt/cm.
    """
    if power <= 0.0:
        raise ConfigurationError(f"power must be positive, got {power!r}")
    if omega <= 0.0:
        raise ConfigurationError(f"omega must be positive, got {omega!r}")
    k = omega / SPEED_OF_LIGHT
    return k * math.sqrt(3.0 * power / SPEED_OF_LIGHT)


class MDipoleWave(FieldSource):
    """Standing m-dipole wave of power ``power`` and frequency ``omega``.

    Defaults are the paper's benchmark: ``P = 0.1 PW``,
    ``omega = 2.1e15 1/s`` (wavelength 0.9 um).

    Args:
        power: Wave power [erg/s].
        omega: Angular frequency [1/s].
        paper_typos: If True, evaluate the *literal* printed eq. (14)
            (``B_y`` proportional to x*y and the spurious ``z^2/R^2``
            prefactor on ``B_z``) instead of the Maxwell-consistent
            corrected form.  For comparison studies only.
        ramp_cycles: Optional temporal envelope: the amplitude rises as
            ``sin^2`` over this many optical cycles and is constant
            afterwards.  Models the leading edge of the "pulsed
            multi-PW incoming m-dipole wave" the paper describes (the
            benchmark itself uses the steady standing wave,
            ``ramp_cycles = 0``).  The envelope multiplies the standing
            wave globally, so the field is Maxwell-consistent up to
            terms of order 1/(omega * ramp duration).
    """

    #: R, 1/R, trig of kR and omega*t, three radial functions, component
    #: assembly: roughly 250 flops per point (sqrt/sin/cos counted at
    #: their usual ~10-20 flop equivalents).  Used by the cost model for
    #: the "Analytical Fields" scenario.
    flops_per_evaluation = 250

    #: Paper benchmark values.
    PAPER_POWER = 0.1e15 * 1.0e7        # 0.1 PW in erg/s
    PAPER_OMEGA = 2.1e15                # 1/s

    def __init__(self, power: float = PAPER_POWER, omega: float = PAPER_OMEGA,
                 paper_typos: bool = False,
                 ramp_cycles: float = 0.0) -> None:
        self.power = float(power)
        self.omega = float(omega)
        self.amplitude = dipole_amplitude(self.power, self.omega)
        self.paper_typos = bool(paper_typos)
        if ramp_cycles < 0.0:
            raise ConfigurationError(
                f"ramp_cycles must be >= 0, got {ramp_cycles!r}")
        self.ramp_cycles = float(ramp_cycles)

    def envelope(self, t: float) -> float:
        """Temporal amplitude factor at time ``t`` (1 when unramped)."""
        if self.ramp_cycles == 0.0:
            return 1.0
        ramp_time = self.ramp_cycles * 2.0 * math.pi / self.omega
        if t <= 0.0:
            return 0.0
        if t >= ramp_time:
            return 1.0
        return math.sin(0.5 * math.pi * t / ramp_time) ** 2

    @property
    def wavenumber(self) -> float:
        """``k = omega / c`` [1/cm]."""
        return self.omega / SPEED_OF_LIGHT

    @property
    def wavelength(self) -> float:
        """Vacuum wavelength ``2 pi / k`` [cm]."""
        return 2.0 * math.pi / self.wavenumber

    def evaluate(self, x: np.ndarray, y: np.ndarray, z: np.ndarray,
                 t: float) -> FieldValues:
        xv = np.asarray(x, dtype=np.float64)
        yv = np.asarray(y, dtype=np.float64)
        zv = np.asarray(z, dtype=np.float64)

        r2 = xv * xv + yv * yv + zv * zv
        r = np.sqrt(r2)
        kr = self.wavenumber * r
        f1 = dipole_f1(kr)
        f2 = dipole_f2(kr)
        f3 = dipole_f3(kr)

        # f1/R and f2/R^2 are finite at the origin (f1 ~ kR/3,
        # f2 ~ (kR)^2/15); substitute R = 1 where R = 0 — the series
        # numerators vanish there at the same order.
        safe_r = np.where(r == 0.0, 1.0, r)
        f1_over_r = np.where(r == 0.0, self.wavenumber / 3.0, f1 / safe_r)
        f2_over_r2 = np.where(r == 0.0, self.wavenumber ** 2 / 15.0,
                              f2 / (safe_r * safe_r))

        two_a0 = 2.0 * self.amplitude * self.envelope(t)
        cos_t = math.cos(self.omega * t)
        sin_t = math.sin(self.omega * t)

        ex = -two_a0 * yv * cos_t * f1_over_r
        ey = two_a0 * xv * cos_t * f1_over_r
        ez = np.zeros_like(xv)

        bx = -two_a0 * xv * zv * sin_t * f2_over_r2
        if self.paper_typos:
            by = -two_a0 * xv * yv * sin_t * f2_over_r2
            z2_over_r2 = np.where(r == 0.0, 0.0, zv * zv / (safe_r * safe_r))
            bz = -two_a0 * z2_over_r2 * sin_t * (z2_over_r2 * f2 + f3)
        else:
            by = -two_a0 * yv * zv * sin_t * f2_over_r2
            bz = -two_a0 * sin_t * (zv * zv * f2_over_r2 + f3)
        return FieldValues(ex, ey, ez, bx, by, bz)
