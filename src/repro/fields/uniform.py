"""Uniform and crossed constant fields (validation workhorses).

These have closed-form particle trajectories (Larmor gyration, constant
acceleration, E-cross-B drift), so the test suite uses them to validate
every pusher against exact solutions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ConfigurationError
from .base import FieldSource, FieldValues

__all__ = ["NullField", "UniformField", "CrossedField"]


class NullField(FieldSource):
    """Zero field everywhere: free streaming."""

    flops_per_evaluation = 0

    def evaluate(self, x: np.ndarray, y: np.ndarray, z: np.ndarray,
                 t: float) -> FieldValues:
        zero = np.zeros_like(np.asarray(x, dtype=np.float64))
        return FieldValues(zero, zero.copy(), zero.copy(),
                           zero.copy(), zero.copy(), zero.copy())


class UniformField(FieldSource):
    """Constant, homogeneous E and B."""

    flops_per_evaluation = 0

    def __init__(self, e: Tuple[float, float, float] = (0.0, 0.0, 0.0),
                 b: Tuple[float, float, float] = (0.0, 0.0, 0.0)) -> None:
        self._e = tuple(float(v) for v in e)
        self._b = tuple(float(v) for v in b)
        if len(self._e) != 3 or len(self._b) != 3:
            raise ConfigurationError("e and b must be length-3 tuples")

    @property
    def e(self) -> Tuple[float, float, float]:
        """The constant electric field vector."""
        return self._e

    @property
    def b(self) -> Tuple[float, float, float]:
        """The constant magnetic field vector."""
        return self._b

    def evaluate(self, x: np.ndarray, y: np.ndarray, z: np.ndarray,
                 t: float) -> FieldValues:
        shape = np.asarray(x).shape
        return FieldValues(
            np.full(shape, self._e[0]), np.full(shape, self._e[1]),
            np.full(shape, self._e[2]), np.full(shape, self._b[0]),
            np.full(shape, self._b[1]), np.full(shape, self._b[2]))


class CrossedField(UniformField):
    """Perpendicular uniform E and B: classic E-cross-B drift setup.

    ``E = (e, 0, 0)``, ``B = (0, 0, b)``; the drift velocity is
    ``v_d = c E x B / B^2 = (0, -c e / b, 0)``.  Requires ``|e| < |b|``
    so the drift stays sub-luminal.
    """

    def __init__(self, e: float, b: float) -> None:
        if b == 0.0:
            raise ConfigurationError("CrossedField requires non-zero B")
        if abs(e) >= abs(b):
            raise ConfigurationError(
                f"CrossedField requires |E| < |B| for a sub-luminal drift; "
                f"got |E|={abs(e)!r}, |B|={abs(b)!r}")
        super().__init__(e=(e, 0.0, 0.0), b=(0.0, 0.0, b))

    @property
    def drift_velocity(self) -> Tuple[float, float, float]:
        """The E-cross-B drift velocity ``c E x B / B^2`` [cm/s]."""
        from ..constants import SPEED_OF_LIGHT
        ex = self.e[0]
        bz = self.b[2]
        return (0.0, -SPEED_OF_LIGHT * ex / bz, 0.0)
