"""Grid-to-particle field interpolation (form factors).

Each macroparticle has a localized shape function (form factor); the
field it feels is the grid field weighted by that shape.  Implemented
shapes:

* NGP (nearest grid point, zeroth order),
* CIC (cloud-in-cell, linear — the PIC workhorse),
* TSC (triangular-shaped cloud, quadratic).

All interpolation is periodic, matching the FDTD solver's boundaries.
"""

from __future__ import annotations

import enum
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError
from .base import FieldSource, FieldValues
from .grid import YeeGrid, YEE_STAGGER

__all__ = ["Shape", "shape_weights", "interpolate_cic",
           "interpolate_component", "interpolate_from_yee_grid",
           "GridFieldSource"]


class Shape(enum.Enum):
    """Macroparticle form factor (interpolation order)."""

    NGP = 0
    CIC = 1
    TSC = 2

    @property
    def support(self) -> int:
        """Number of grid points touched per axis."""
        return self.value + 1


def shape_weights(shape: Shape, fraction: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-axis interpolation stencil for particles at ``fraction``.

    ``fraction`` is the particle coordinate in units of the grid spacing
    (may be any real value; the caller handles periodic wrapping of the
    returned indices).  Returns ``(indices, weights)`` with shapes
    ``(N, support)``: the grid node indices (unwrapped) and their
    weights, which sum to 1 per particle.
    """
    frac = np.asarray(fraction, dtype=np.float64)
    if shape is Shape.NGP:
        idx = np.round(frac).astype(np.int64)
        return idx[:, None], np.ones((frac.size, 1))
    if shape is Shape.CIC:
        left = np.floor(frac).astype(np.int64)
        d = frac - left
        indices = np.stack([left, left + 1], axis=1)
        weights = np.stack([1.0 - d, d], axis=1)
        return indices, weights
    if shape is Shape.TSC:
        center = np.round(frac).astype(np.int64)
        d = frac - center
        indices = np.stack([center - 1, center, center + 1], axis=1)
        weights = np.stack([0.5 * (0.5 - d) ** 2,
                            0.75 - d ** 2,
                            0.5 * (0.5 + d) ** 2], axis=1)
        return indices, weights
    raise ConfigurationError(f"unknown shape {shape!r}")


def interpolate_component(values: np.ndarray,
                          positions: np.ndarray,
                          origin: Tuple[float, float, float],
                          spacing: Tuple[float, float, float],
                          stagger: Tuple[float, float, float] = (0.0, 0.0, 0.0),
                          shape: Shape = Shape.CIC) -> np.ndarray:
    """Interpolate one gridded scalar to particle positions (periodic).

    ``values`` is the ``(nx, ny, nz)`` component array whose sample
    points sit at ``origin + (index + stagger) * spacing``.
    """
    pos = np.asarray(positions, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ConfigurationError(f"positions must be (N, 3), got {pos.shape}")
    if values.ndim != 3:
        raise ConfigurationError(f"values must be a 3-D array, got {values.ndim}-D")
    dims = values.shape
    result = np.zeros(pos.shape[0])

    stencils = []
    for axis in range(3):
        frac = (pos[:, axis] - origin[axis]) / spacing[axis] - stagger[axis]
        idx, wgt = shape_weights(shape, frac)
        stencils.append((np.mod(idx, dims[axis]), wgt))

    (ix, wx), (iy, wy), (iz, wz) = stencils
    for a in range(ix.shape[1]):
        for b in range(iy.shape[1]):
            for c in range(iz.shape[1]):
                weight = wx[:, a] * wy[:, b] * wz[:, c]
                result += weight * values[ix[:, a], iy[:, b], iz[:, c]]
    return result


def interpolate_cic(values: np.ndarray, positions: np.ndarray,
                    origin: Tuple[float, float, float],
                    spacing: Tuple[float, float, float]) -> np.ndarray:
    """Trilinear (CIC) interpolation of an unstaggered grid scalar."""
    return interpolate_component(values, positions, origin, spacing,
                                 shape=Shape.CIC)


def interpolate_from_yee_grid(grid: YeeGrid, positions: np.ndarray,
                              shape: Shape = Shape.CIC) -> FieldValues:
    """Interpolate all six Yee components to particle positions.

    Each component is interpolated from its own staggered sample points,
    which keeps the second-order accuracy of the Yee scheme.
    """
    components = {}
    for name, stagger in YEE_STAGGER.items():
        components[name] = interpolate_component(
            grid.component(name), positions, grid.origin, grid.spacing,
            stagger=stagger, shape=shape)
    return FieldValues(**components)


class GridFieldSource(FieldSource):
    """Adapter presenting a (frozen-in-time) Yee grid as a FieldSource.

    The time argument of :meth:`evaluate` is ignored — the grid holds
    one snapshot; the PIC loop advances the snapshot between pushes.
    ``flops_per_evaluation`` reflects the 8-point trilinear gather per
    component.
    """

    flops_per_evaluation = 150

    def __init__(self, grid: YeeGrid, shape: Shape = Shape.CIC) -> None:
        self.grid = grid
        self.shape = shape

    def evaluate(self, x: np.ndarray, y: np.ndarray, z: np.ndarray,
                 t: float) -> FieldValues:
        positions = np.stack([np.asarray(x, dtype=np.float64).ravel(),
                              np.asarray(y, dtype=np.float64).ravel(),
                              np.asarray(z, dtype=np.float64).ravel()], axis=1)
        flat = interpolate_from_yee_grid(self.grid, positions, self.shape)
        shape = np.asarray(x).shape
        return FieldValues(*(component.reshape(shape) for component in flat))
