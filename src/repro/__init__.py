"""repro — reproduction of the PACT 2021 Boris-pusher-on-DPC++ study.

A production-quality Python implementation of the Boris particle pusher
and its surrounding systems from *"High Performance Implementation of
Boris Particle Pusher on DPC++. A First Look at oneAPI"* (Volokitin et
al., PACT 2021):

* :mod:`repro.core` — the Boris pusher (scalar reference and vectorized
  kernels) plus the Vay and Higuera-Cary alternatives;
* :mod:`repro.particles` — AoS / SoA particle ensembles, proxies,
  species table, initializers and locality sorting;
* :mod:`repro.fields` — analytical sources including the paper's
  standing m-dipole wave, grid fields and per-particle precalculated
  field arrays;
* :mod:`repro.pic` — the full Particle-in-Cell substrate (FDTD Maxwell
  solver, interpolation, current deposition, diagnostics);
* :mod:`repro.oneapi` — an execution-model simulator of the DPC++
  runtime (USM memory, static/dynamic scheduling, NUMA arenas, JIT
  warm-up, roofline device timing) that stands in for the Intel
  hardware of the paper's evaluation;
* :mod:`repro.bench` — the benchmark harness regenerating every table
  and figure of the paper (see DESIGN.md / EXPERIMENTS.md);
* :mod:`repro.observability` — structured tracing/profiling of the
  simulated runtime: nestable spans, per-kernel counters and Chrome
  ``trace_event`` export (see docs/PROFILING.md).

Quickstart::

    import repro

    wave = repro.MDipoleWave()                      # P = 0.1 PW, 0.9 um
    electrons = repro.paper_benchmark_ensemble(10_000)
    dt = 2.0 * 3.141592653589793 / wave.omega / 100.0
    repro.setup_leapfrog(electrons, wave, dt)
    repro.advance(electrons, wave, dt, steps=100)
    print(electrons.component("gamma").max())
"""

from .constants import (
    SPEED_OF_LIGHT,
    ELEMENTARY_CHARGE,
    ELECTRON_MASS,
    PROTON_MASS,
)
from .fp import FP3, Precision
from .errors import (
    ReproError,
    ConfigurationError,
    LayoutError,
    DeviceError,
    MemoryModelError,
    AllocationFailedError,
    KernelError,
    DeviceLostError,
    LaunchTimeoutError,
    FieldError,
    SimulationError,
    TraceError,
)
from .particles import (
    Layout,
    Particle,
    ParticleProxy,
    ParticleEnsemble,
    ParticleArrayAoS,
    ParticleArraySoA,
    ParticleSpecies,
    ParticleTypeTable,
    default_type_table,
    make_ensemble,
    cold_sphere,
    uniform_box,
    paper_benchmark_ensemble,
)
from .fields import (
    FieldSource,
    FieldValues,
    NullField,
    UniformField,
    CrossedField,
    PlaneWave,
    StandingPlaneWave,
    MDipoleWave,
    PrecalculatedField,
    YeeGrid,
)
from .analysis import (
    EscapeCurve,
    remaining_fraction,
    run_escape_study,
    escape_rate_sweep,
)
from .observability import (
    Tracer,
    tracing,
    active_tracer,
    write_chrome_trace,
    kernel_summary,
    format_kernel_summary,
)
from .resilience import (
    Checkpointer,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    active_fault_injector,
    fault_injection,
    named_plan,
)
from .core import (
    BorisPusher,
    VayPusher,
    HigueraCaryPusher,
    RadiationReactionPusher,
    boris_push,
    boris_push_particle,
    available_pushers,
    get_pusher,
    setup_leapfrog,
    undo_leapfrog,
    advance,
    TrajectoryRecorder,
    integrate_trajectory_rk4,
)
from .api import RunConfig, RunReport, run_push

__version__ = "1.0.0"

__all__ = [
    "SPEED_OF_LIGHT",
    "ELEMENTARY_CHARGE",
    "ELECTRON_MASS",
    "PROTON_MASS",
    "FP3",
    "Precision",
    "ReproError",
    "ConfigurationError",
    "LayoutError",
    "DeviceError",
    "MemoryModelError",
    "AllocationFailedError",
    "KernelError",
    "DeviceLostError",
    "LaunchTimeoutError",
    "FieldError",
    "SimulationError",
    "TraceError",
    "Layout",
    "Particle",
    "ParticleProxy",
    "ParticleEnsemble",
    "ParticleArrayAoS",
    "ParticleArraySoA",
    "ParticleSpecies",
    "ParticleTypeTable",
    "default_type_table",
    "make_ensemble",
    "cold_sphere",
    "uniform_box",
    "paper_benchmark_ensemble",
    "FieldSource",
    "FieldValues",
    "NullField",
    "UniformField",
    "CrossedField",
    "PlaneWave",
    "StandingPlaneWave",
    "MDipoleWave",
    "PrecalculatedField",
    "YeeGrid",
    "BorisPusher",
    "VayPusher",
    "HigueraCaryPusher",
    "RadiationReactionPusher",
    "EscapeCurve",
    "remaining_fraction",
    "run_escape_study",
    "escape_rate_sweep",
    "boris_push",
    "boris_push_particle",
    "available_pushers",
    "get_pusher",
    "setup_leapfrog",
    "undo_leapfrog",
    "advance",
    "TrajectoryRecorder",
    "integrate_trajectory_rk4",
    "Tracer",
    "tracing",
    "active_tracer",
    "write_chrome_trace",
    "kernel_summary",
    "format_kernel_summary",
    "Checkpointer",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "active_fault_injector",
    "fault_injection",
    "named_plan",
    "RunConfig",
    "RunReport",
    "run_push",
    "__version__",
]
