"""Deterministic fault injection for the simulated oneAPI runtime.

A :class:`FaultPlan` declares *what* can go wrong (one :class:`FaultRule`
per fault kind: a probability per opportunity, an explicit schedule of
opportunity indices, or both); a :class:`FaultInjector` binds a plan to
a seed and makes the actual injection decisions.  Determinism is the
core contract: every fault kind draws from its own
``numpy.random.default_rng([seed, kind_index])`` stream and counts its
own opportunities, so two runs with the same plan, seed and workload
inject byte-identical fault sequences — regardless of whether a tracer
is installed and regardless of what the *other* fault kinds do.

Instrumented runtime code never holds an injector; like the tracer
(:func:`repro.observability.tracer.active_tracer`) it asks
:func:`active_fault_injector` — a single module-global read — and does
nothing when the answer is ``None``.  Untraced, uninjected runs
therefore execute exactly as before this layer existed.

The fault kinds and where they strike:

====================  ====================================================
kind                  injection site
====================  ====================================================
``launch-failure``    :meth:`repro.oneapi.queue.Queue.parallel_for` —
                      the submit fails (transient ``KernelError``)
``launch-hang``       same site — the launch hangs; the watchdog kills
                      it (``LaunchTimeoutError``)
``launch-slowdown``   same site — the launch completes but takes
                      ``slowdown``x its modelled time
``jit-failure``       first launch of a kernel under the dpcpp runtime —
                      the JIT compiler fails (transient ``KernelError``)
``alloc-failure``     :class:`repro.oneapi.memory.UsmMemoryManager` —
                      a USM allocation is refused
                      (``AllocationFailedError``)
``poisoned-read``     a USM allocation feeding a launch is corrupted;
                      the read fails (``MemoryModelError``) until the
                      recovery layer scrubs it
``scheduler-imbalance``  :class:`repro.oneapi.scheduler.DynamicScheduler`
                      — half the worker threads stall for one launch
``device-loss``       :meth:`repro.oneapi.runtime.PushEngine.step` —
                      the whole device dies, permanently
                      (``DeviceLostError``)
``exchange-stall``    :meth:`repro.oneapi.queue.Queue.memcpy_async` —
                      an inter-device exchange hangs; the watchdog
                      kills it (``ExchangeTimeoutError``)
====================  ====================================================
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..errors import (AllocationFailedError, ConfigurationError,
                      DeviceLostError, ExchangeTimeoutError, KernelError,
                      LaunchTimeoutError, MemoryModelError)
from ..observability.tracer import active_tracer

__all__ = ["FAULT_KINDS", "FaultRule", "FaultPlan", "InjectedFault",
           "FaultInjector", "active_fault_injector",
           "install_fault_injector", "fault_injection"]

#: Every fault kind the injector understands, in stream-index order
#: (the index seeds the kind's private RNG stream — append only).
FAULT_KINDS = (
    "launch-failure",
    "launch-hang",
    "launch-slowdown",
    "jit-failure",
    "alloc-failure",
    "poisoned-read",
    "scheduler-imbalance",
    "device-loss",
    "exchange-stall",
)


@dataclass(frozen=True)
class FaultRule:
    """When one fault kind fires.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        probability: Chance of injection per opportunity (0 disables
            the probabilistic path).
        at_ops: Explicit opportunity indices (0-based, per kind) that
            always inject — the schedule-based path, used to place a
            device loss at an exact step.
        max_injections: Cap on total injections of this kind
            (None = unlimited); keeps chaos plans recoverable.
        devices: Substring filters on the device name; empty matches
            every device.  Only meaningful for device-bound kinds.
        slowdown: Time multiplier for ``launch-slowdown`` (>= 1).
    """

    kind: str
    probability: float = 0.0
    at_ops: Tuple[int, ...] = ()
    max_injections: Optional[int] = None
    devices: Tuple[str, ...] = ()
    slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}")
        if any(op < 0 for op in self.at_ops):
            raise ConfigurationError("at_ops indices must be >= 0")
        if self.max_injections is not None and self.max_injections < 0:
            raise ConfigurationError("max_injections must be >= 0")
        if self.slowdown < 1.0:
            raise ConfigurationError(
                f"slowdown must be >= 1, got {self.slowdown}")


@dataclass(frozen=True)
class FaultPlan:
    """A named set of fault rules (at most one per kind).

    Plans are pure declarations — they carry no RNG state; bind one to
    a seed with :class:`FaultInjector` (or :func:`fault_injection`).
    """

    name: str
    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        kinds = [rule.kind for rule in self.rules]
        if len(kinds) != len(set(kinds)):
            raise ConfigurationError(
                f"plan {self.name!r} has duplicate rules for a kind")

    def rule_for(self, kind: str) -> Optional[FaultRule]:
        """The rule governing ``kind``, or None when the kind is off."""
        for rule in self.rules:
            if rule.kind == kind:
                return rule
        return None

    @property
    def active_kinds(self) -> Tuple[str, ...]:
        """Kinds that can actually fire under this plan."""
        return tuple(rule.kind for rule in self.rules
                     if rule.probability > 0.0 or rule.at_ops)


@dataclass(frozen=True)
class InjectedFault:
    """One fault the injector actually fired (the audit record)."""

    kind: str
    op_index: int
    detail: str
    device: str


class FaultInjector:
    """Binds a :class:`FaultPlan` to a seed and makes injection calls.

    The runtime's injection sites call the ``on_*`` methods; each
    counts an *opportunity* for its kind and either returns normally or
    raises the kind's error.  All decisions come from per-kind RNG
    streams seeded ``[seed, kind_index]``, so the injection sequence is
    a pure function of (plan, seed, workload).
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = int(seed)
        self.injected: List[InjectedFault] = []
        self.lost_devices: set = set()
        self._ops = {kind: 0 for kind in FAULT_KINDS}
        self._fired = {kind: 0 for kind in FAULT_KINDS}
        self._rng = {kind: np.random.default_rng([self.seed, index])
                     for index, kind in enumerate(FAULT_KINDS)}

    # -- the decision core ------------------------------------------------

    def _decide(self, kind: str, detail: str = "",
                device: str = "") -> bool:
        """Count one opportunity for ``kind``; True when it injects."""
        rule = self.plan.rule_for(kind)
        op = self._ops[kind]
        self._ops[kind] = op + 1
        if rule is None:
            return False
        if rule.devices and not any(want in device
                                    for want in rule.devices):
            return False
        if rule.max_injections is not None \
                and self._fired[kind] >= rule.max_injections:
            return False
        inject = op in rule.at_ops
        if not inject and rule.probability > 0.0:
            inject = bool(self._rng[kind].random() < rule.probability)
        if inject:
            self._fired[kind] += 1
            fault = InjectedFault(kind=kind, op_index=op, detail=detail,
                                  device=device)
            self.injected.append(fault)
            tracer = active_tracer()
            if tracer is not None:
                tracer.fault(kind, op_index=op, detail=detail,
                             device=device, total=len(self.injected))
        return inject

    # -- accounting -------------------------------------------------------

    def counts(self) -> dict:
        """Injections per kind (only kinds that fired)."""
        totals: dict = {}
        for fault in self.injected:
            totals[fault.kind] = totals.get(fault.kind, 0) + 1
        return totals

    def opportunities(self, kind: str) -> int:
        """Opportunities seen so far for one kind."""
        return self._ops[kind]

    # -- injection sites --------------------------------------------------

    def on_launch(self, device: str, spec) -> None:
        """Called by the queue before every kernel launch.

        May poison a USM allocation feeding the launch (detected by the
        queue's read check), fail the submit, or hang the launch.  On a
        device already lost, raises immediately.
        """
        if device in self.lost_devices:
            raise DeviceLostError(
                f"device {device!r} was lost earlier in this run")
        if self._decide("poisoned-read", detail=spec.name, device=device):
            allocations = [s.allocation for s in spec.streams
                           if s.allocation is not None]
            if allocations:
                index = int(self._rng["poisoned-read"].integers(
                    len(allocations)))
                allocations[index].poison()
        if self._decide("launch-failure", detail=spec.name, device=device):
            raise KernelError(
                f"injected launch failure for kernel {spec.name!r} "
                f"on {device!r}")
        if self._decide("launch-hang", detail=spec.name, device=device):
            raise LaunchTimeoutError(
                f"injected hang: kernel {spec.name!r} on {device!r} "
                f"exceeded the launch watchdog")

    def launch_slowdown(self, device: str, kernel_name: str
                        ) -> Optional[float]:
        """Slowdown multiplier for this launch, or None for full speed."""
        if self._decide("launch-slowdown", detail=kernel_name,
                        device=device):
            rule = self.plan.rule_for("launch-slowdown")
            return rule.slowdown if rule is not None else None
        return None

    def on_jit(self, kernel_name: str, device: str = "") -> None:
        """Called on a kernel's first (JIT-compiling) launch."""
        if self._decide("jit-failure", detail=kernel_name, device=device):
            raise KernelError(
                f"injected JIT compilation failure for kernel "
                f"{kernel_name!r}")

    def on_alloc(self, name: str, nbytes: int) -> None:
        """Called by the USM manager before adopting a new allocation."""
        if self._decide("alloc-failure", detail=name):
            raise AllocationFailedError(
                f"injected USM allocation failure for {name!r} "
                f"({nbytes} bytes)")

    def scheduler_imbalance(self) -> bool:
        """Whether this launch's dynamic schedule loses half its threads."""
        return self._decide("scheduler-imbalance")

    def on_exchange(self, device: str, name: str, nbytes: int) -> None:
        """Called before every cost-modeled inter-device exchange.

        A lost device can no longer exchange; otherwise the stall
        decision may hang the transfer, which the exchange watchdog
        kills (:class:`~repro.errors.ExchangeTimeoutError`) so a
        bounded retry can re-issue it.
        """
        if device in self.lost_devices:
            raise DeviceLostError(
                f"device {device!r} was lost earlier in this run")
        if self._decide("exchange-stall", detail=name, device=device):
            raise ExchangeTimeoutError(
                f"injected exchange stall: transfer {name!r} "
                f"({nbytes} bytes) on {device!r} exceeded the exchange "
                f"watchdog")

    def on_device_step(self, device: str) -> None:
        """Called by the push runner at the top of every step."""
        if device in self.lost_devices:
            raise DeviceLostError(
                f"device {device!r} was lost earlier in this run")
        if self._decide("device-loss", device=device):
            self.lost_devices.add(device)
            raise DeviceLostError(f"injected device loss on {device!r}")

    @staticmethod
    def check_readable(spec) -> None:
        """Raise if any USM allocation feeding ``spec`` is poisoned."""
        for stream in spec.streams:
            allocation = stream.allocation
            if allocation is not None and allocation.poisoned:
                raise MemoryModelError(
                    f"poisoned read: allocation {allocation.name!r} "
                    f"feeding kernel {spec.name!r} is corrupted")


# -- the process-wide hook --------------------------------------------------

_lock = threading.Lock()
_active: Optional[FaultInjector] = None


def active_fault_injector() -> Optional[FaultInjector]:
    """The installed injector, or None when injection is off (default).

    Injection sites call this once and skip all fault logic on ``None``
    — the entire cost of the resilience layer for fault-free runs is
    this one global read per site.
    """
    return _active


def install_fault_injector(injector: Optional[FaultInjector]
                           ) -> Optional[FaultInjector]:
    """Install ``injector`` process-wide; returns the previous one."""
    global _active
    with _lock:
        previous = _active
        _active = injector
    return previous


@contextlib.contextmanager
def fault_injection(plan: FaultPlan, seed: int = 0,
                    injector: Optional[FaultInjector] = None
                    ) -> Iterator[FaultInjector]:
    """Install a fault injector for the duration of a ``with`` block.

    Builds a fresh :class:`FaultInjector` from (plan, seed) unless one
    is passed explicitly; always restores the previous hook on exit.
    """
    own = FaultInjector(plan, seed) if injector is None else injector
    previous = install_fault_injector(own)
    try:
        yield own
    finally:
        install_fault_injector(previous)
