"""Device fallback: keep a push workload alive across device loss.

:class:`ResilientPushEngine` wraps the plain
:class:`~repro.oneapi.runtime.PushEngine` with the full recovery
stack: every step runs under
:func:`~repro.resilience.recovery.run_with_retry` (transient faults),
and a :class:`~repro.errors.DeviceLostError` walks a *fallback chain*
of devices — by default the paper's Table 3 ladder, fastest first:
Iris Xe Max → P630 → CPU.  After a loss the runner rebuilds the queue
on the next device, restores the last step-granular checkpoint, and
replays the lost steps there.  The Boris kernels are the same numpy
code on every simulated device, and the checkpoint round trip is
bit-exact, so the recovered run's final particle state is identical to
an uninterrupted run's — the acceptance bar of the resilience layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, DeviceLostError
from ..errors import AllocationFailedError
from ..observability.tracer import active_tracer, trace_span
from ..particles.ensemble import COMPONENTS
from .checkpoint import Checkpointer
from .faults import active_fault_injector
from .recovery import RecoveryStats, RetryPolicy, Watchdog, run_with_retry

__all__ = ["DEVICE_LADDER", "RecoveryReport", "ResilientPushEngine"]

#: Default fallback chain — the paper's Table 3 devices, fastest first.
DEVICE_LADDER = ("iris-xe-max", "p630", "cpu")


@dataclass
class RecoveryReport:
    """What a resilient run survived (one per :meth:`run` call)."""

    plan: str
    seed: Optional[int]
    steps: int
    completed: bool = False
    final_device: str = ""
    devices_lost: Tuple[str, ...] = ()
    retries: int = 0
    backoff_seconds: float = 0.0
    watchdog_seconds: float = 0.0
    scrubbed_allocations: int = 0
    giveups: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    checkpoints_saved: int = 0
    restores: int = 0
    replayed_steps: int = 0

    def summary(self) -> str:
        """One-paragraph human rendering (the CLI prints this)."""
        lost = ", ".join(self.devices_lost) if self.devices_lost else "none"
        faults = ", ".join(f"{kind} x{count}" for kind, count
                           in sorted(self.fault_counts.items())) or "none"
        return (
            f"plan={self.plan} seed={self.seed} steps={self.steps} "
            f"completed={self.completed} on {self.final_device!r}\n"
            f"  faults injected: {faults}\n"
            f"  devices lost: {lost} "
            f"(restores={self.restores}, replayed={self.replayed_steps})\n"
            f"  retries={self.retries} "
            f"backoff={self.backoff_seconds * 1e3:.3f} ms "
            f"watchdog={self.watchdog_seconds * 1e3:.3f} ms "
            f"scrubbed={self.scrubbed_allocations} "
            f"checkpoints={self.checkpoints_saved}"
        )


class ResilientPushEngine:
    """A Boris push loop that survives the full fault taxonomy.

    Args:
        ensemble: The particle ensemble to advance (mutated in place).
        scenario: "precalculated" or "analytical" (see
            :mod:`repro.oneapi.runtime`).
        source: The analytical field source.
        dt: Time step [s].
        devices: Fallback chain of device names (first entry runs
            until lost); defaults to :data:`DEVICE_LADDER`.
        policy: Retry policy for transient faults.
        watchdog: Launch watchdog configuration.
        checkpointer: Optional step-granular checkpointer; when present
            a step-0 checkpoint is written up front so a restore is
            always possible, and device loss restores the latest
            checkpoint before replaying on the next device.  Without
            one, recovery continues in place (a lost step never mutated
            the ensemble, so the physics stays correct either way).
        fusion: Kernel-graph execution mode of the underlying
            :class:`~repro.oneapi.runtime.PushEngine` (None = legacy
            single-launch path).
        program_cache: JIT program cache shared across the fallback
            chain's queue rebuilds; by default the engine owns one, so
            a re-lost-and-recovered device model never recompiles.
    """

    def __init__(self, ensemble, scenario: str, source, dt: float,
                 devices: Tuple[str, ...] = DEVICE_LADDER,
                 policy: Optional[RetryPolicy] = None,
                 watchdog: Optional[Watchdog] = None,
                 checkpointer: Optional[Checkpointer] = None,
                 fusion: Optional[bool] = None,
                 program_cache=None) -> None:
        if not devices:
            raise ConfigurationError("need at least one device in the chain")
        from ..oneapi.programcache import ProgramCache

        self.ensemble = ensemble
        self.scenario = scenario
        self.source = source
        self.dt = float(dt)
        self.devices = tuple(devices)
        self.policy = policy if policy is not None else RetryPolicy()
        self.watchdog = watchdog if watchdog is not None else Watchdog()
        self.checkpointer = checkpointer
        self.fusion = fusion
        self.program_cache = program_cache if program_cache is not None \
            else ProgramCache()
        self.stats = RecoveryStats()
        self.device_index = 0
        self.step_index = 0
        self.time = 0.0
        self.devices_lost: List[str] = []
        self.restores = 0
        self.replayed_steps = 0
        self._build(self.devices[0])

    # -- queue / runner construction --------------------------------------

    def _build(self, device_name: str) -> None:
        """(Re)build the queue and push runner on ``device_name``.

        ``device_name`` may be any backend-qualified device spec (the
        ladder can demote across backends: ``("cuda:gpu0", "cpu")``).
        Imports the backend registry lazily to keep
        ``repro.resilience`` importable without the bench package (and
        free of import cycles).  Injected allocation failures during the
        rebuild are retried under the policy; their backoff is charged
        to the *new* queue's timeline once it exists.
        """
        from ..backends.registry import resolve_device
        from ..oneapi.runtime import PushEngine

        backend, device = resolve_device(device_name)
        delays = self.policy.delay_sequence()
        penalty = 0.0
        for attempt in range(self.policy.max_attempts):
            try:
                queue = backend.make_queue(
                    device, program_cache=self.program_cache)
                runner = PushEngine(queue, self.ensemble, self.scenario,
                                    self.source, self.dt,
                                    fusion=self.fusion)
            except AllocationFailedError:
                if attempt + 1 >= self.policy.max_attempts:
                    self.stats.giveups += 1
                    raise
                delay = next(delays)
                penalty += delay
                self.stats.retries += 1
                self.stats.backoff_seconds += delay
            else:
                break
        if penalty > 0.0:
            queue.timeline.schedule("backoff:rebuild", penalty)
        runner.time = self.time
        self.device_name = device_name
        self.queue = queue
        self.runner = runner

    # -- recovery ----------------------------------------------------------

    def _on_device_lost(self) -> None:
        self.devices_lost.append(self.device_name)
        tracer = active_tracer()
        if tracer is not None:
            tracer.recovery("device-fallback", lost=self.device_name,
                            step=self.step_index)
        self.device_index += 1
        if self.device_index >= len(self.devices):
            raise DeviceLostError(
                f"device fallback chain exhausted after losing "
                f"{tuple(self.devices_lost)}")
        if self.checkpointer is not None \
                and self.checkpointer.latest_step() is not None:
            step, time, restored = self.checkpointer.load_push()
            for name in COMPONENTS:
                self.ensemble.component(name)[:] = restored.component(name)
            self.ensemble.type_ids[:] = restored.type_ids
            self.replayed_steps += self.step_index - step
            self.step_index = step
            self.time = time
            self.restores += 1
            if tracer is not None:
                tracer.recovery("restore", step=step,
                                device=self.devices[self.device_index])
        self._build(self.devices[self.device_index])

    # -- driving -----------------------------------------------------------

    def step(self):
        """One resilient push step; returns the launch record."""
        while True:
            try:
                record = run_with_retry(
                    self.runner.step, self.queue, self.runner.spec,
                    policy=self.policy, watchdog=self.watchdog,
                    stats=self.stats)
            except DeviceLostError:
                self._on_device_lost()
                continue
            self.step_index += 1
            self.time = self.runner.time
            if self.checkpointer is not None:
                self.checkpointer.maybe_save_push(
                    self.step_index, self.ensemble, self.time)
            return record

    def queues(self) -> tuple:
        """Every queue this engine submits to (uniform across engines).

        Only the *current* queue: a device loss abandons the old
        queue's timeline mid-flight, so its command log is not a
        completed schedule the hazard detector should judge.
        """
        return (self.queue,)

    def run(self, steps: int) -> Tuple[List[object], RecoveryReport]:
        """Run ``steps`` pushes; returns ``(records, report)``.

        ``records[i]`` is the launch record of the attempt that finally
        completed step ``i`` (replayed steps overwrite the records the
        lost device produced for them).
        """
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        injector = active_fault_injector()
        report = RecoveryReport(
            plan=injector.plan.name if injector is not None else "none",
            seed=injector.seed if injector is not None else None,
            steps=steps)
        if self.checkpointer is not None and self.step_index == 0:
            self.checkpointer.save_push(0, self.ensemble, self.time)
        records: List[object] = []
        with trace_span(f"resilient-run:{self.scenario}", "runner",
                        steps=steps, device=self.device_name):
            while self.step_index < steps:
                record = self.step()
                # a restore rewinds step_index; drop the records the
                # lost device produced for the steps being replayed
                del records[self.step_index - 1:]
                records.append(record)
        report.completed = True
        report.final_device = self.device_name
        report.devices_lost = tuple(self.devices_lost)
        report.retries = self.stats.retries
        report.backoff_seconds = self.stats.backoff_seconds
        report.watchdog_seconds = self.stats.watchdog_seconds
        report.scrubbed_allocations = self.stats.scrubbed_allocations
        report.giveups = self.stats.giveups
        report.fault_counts = (injector.counts()
                               if injector is not None else {})
        report.checkpoints_saved = (self.checkpointer.saved_count
                                    if self.checkpointer is not None else 0)
        report.restores = self.restores
        report.replayed_steps = self.replayed_steps
        return records, report
