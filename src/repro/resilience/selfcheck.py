"""Chaos self-check: every fault plan x a seed matrix, nothing escapes.

The smoke test behind ``repro faults --self-check`` (and the marked
``slow`` pytest): run a small resilient push under *every* named fault
plan for a matrix of seeds and demand that

* no exception other than the documented terminal one (a
  :class:`~repro.errors.DeviceLostError` after the fallback chain is
  exhausted) ever escapes the recovery stack, and
* the physics stays finite — injected faults may cost time, never
  correctness.

Chain exhaustion and retry give-up are *reported* outcomes, not
failures: a chaos plan is allowed to kill a run, but only through the
errors the taxonomy documents.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import (AllocationFailedError, DeviceLostError, KernelError,
                      LaunchTimeoutError)
from .checkpoint import Checkpointer
from .faults import fault_injection
from .plans import PLAN_NAMES, named_plan
from .recovery import RetryPolicy
from .runner import ResilientPushEngine

__all__ = ["SelfCheckResult", "chaos_self_check"]

#: Errors the taxonomy allows to terminate a run (everything else is a
#: self-check failure).
_DOCUMENTED_TERMINAL = (DeviceLostError, KernelError, LaunchTimeoutError,
                        AllocationFailedError)


@dataclass(frozen=True)
class SelfCheckResult:
    """Outcome of one (plan, seed) chaos cell."""

    plan: str
    seed: int
    outcome: str          # "completed" | "exhausted" | "gave-up"
    faults: int
    retries: int
    devices_lost: int

    @property
    def survived(self) -> bool:
        """True when the run completed all its steps."""
        return self.outcome == "completed"


def _fresh_ensemble(n: int, seed: int):
    from ..fp import Precision
    from ..particles.ensemble import Layout, make_ensemble
    ensemble = make_ensemble(n, Layout.SOA, Precision.DOUBLE)
    rng = np.random.default_rng(seed)
    for name in ("x", "y", "z"):
        ensemble.component(name)[:] = rng.random(n) * 1.0e-6
    for name in ("px", "py", "pz"):
        ensemble.component(name)[:] = rng.standard_normal(n) * 1.0e-22
    return ensemble


def _finite(ensemble) -> bool:
    return all(bool(np.all(np.isfinite(ensemble.component(name))))
               for name in ("x", "y", "z", "px", "py", "pz"))


def chaos_self_check(seeds: Sequence[int] = (0, 1, 2),
                     steps: int = 24,
                     n_particles: int = 256,
                     plans: Optional[Sequence[str]] = None
                     ) -> Dict[Tuple[str, int], SelfCheckResult]:
    """Run the chaos matrix; returns one result per (plan, seed) cell.

    Raises whatever escaped if any cell dies with an error outside the
    documented taxonomy, or if any cell's physics goes non-finite — the
    two invariants this check exists to enforce.
    """
    from ..fields.dipole import MDipoleWave

    plans = tuple(plans) if plans is not None else PLAN_NAMES
    source = MDipoleWave()
    dt = 1.0e-12
    results: Dict[Tuple[str, int], SelfCheckResult] = {}
    for plan_name in plans:
        for seed in seeds:
            ensemble = _fresh_ensemble(n_particles, seed)
            with tempfile.TemporaryDirectory() as scratch:
                checkpointer = Checkpointer(scratch, every=5, keep=2)
                runner = None
                with fault_injection(named_plan(plan_name),
                                     seed=seed) as injector:
                    try:
                        runner = ResilientPushEngine(
                            ensemble, "analytical", source, dt,
                            policy=RetryPolicy(seed=seed),
                            checkpointer=checkpointer)
                        runner.run(steps)
                        outcome = "completed"
                    except DeviceLostError:
                        outcome = "exhausted"
                    except _DOCUMENTED_TERMINAL:
                        outcome = "gave-up"
                    # anything else propagates: self-check failure
            if not _finite(ensemble):
                raise AssertionError(
                    f"chaos cell plan={plan_name!r} seed={seed} produced "
                    f"non-finite particle state")
            results[(plan_name, seed)] = SelfCheckResult(
                plan=plan_name, seed=seed, outcome=outcome,
                faults=len(injector.injected),
                retries=runner.stats.retries if runner is not None else 0,
                devices_lost=(len(runner.devices_lost)
                              if runner is not None else 0))
    return results
