"""Named fault plans: the scenarios the CLI and tests run under.

Each plan is a :class:`~repro.resilience.faults.FaultPlan` built from
the hazards real oneAPI porting efforts report (JIT failures on first
launch, USM exhaustion, device loss mid-run); probabilities are chosen
so the default :class:`~repro.resilience.recovery.RetryPolicy` recovers
with margin — chaos testing is about exercising recovery paths, not
about guaranteed death.

Use :func:`named_plan` to look a plan up by name (``repro faults
--plan chaos``); :data:`PLAN_NAMES` lists what it accepts.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .faults import FaultPlan, FaultRule

__all__ = ["PLAN_NAMES", "named_plan"]


def _none() -> FaultPlan:
    """No faults at all — the control arm of every experiment."""
    return FaultPlan(name="none")


def _transient() -> FaultPlan:
    """Only transient faults: every one is recoverable by retrying."""
    return FaultPlan(name="transient", rules=(
        FaultRule("launch-failure", probability=0.05),
        FaultRule("launch-slowdown", probability=0.05, slowdown=4.0),
        FaultRule("jit-failure", probability=0.25),
        FaultRule("alloc-failure", probability=0.02),
    ))


def _default() -> FaultPlan:
    """The default mix: transients plus rare hangs and poisoned reads."""
    return FaultPlan(name="default", rules=(
        FaultRule("launch-failure", probability=0.04),
        FaultRule("launch-slowdown", probability=0.04, slowdown=4.0),
        FaultRule("launch-hang", probability=0.02),
        FaultRule("jit-failure", probability=0.2),
        FaultRule("alloc-failure", probability=0.02),
        FaultRule("poisoned-read", probability=0.02),
    ))


def _device_loss() -> FaultPlan:
    """One scheduled whole-device loss plus mild transients.

    The loss fires on the 6th runner step (opportunity index 5), which
    lands mid-run for the CLI defaults — the scenario the fallback
    chain and checkpoint restore exist for.
    """
    return FaultPlan(name="device-loss", rules=(
        FaultRule("device-loss", at_ops=(5,), max_injections=1),
        FaultRule("launch-failure", probability=0.02),
        FaultRule("launch-slowdown", probability=0.02, slowdown=3.0),
    ))


def _exchange() -> FaultPlan:
    """Stalled inter-device exchanges plus mild launch transients.

    Only meaningful for multi-device workloads (the sharded runner of
    :mod:`repro.distributed`): exchange-stall opportunities occur at
    :meth:`~repro.oneapi.queue.Queue.memcpy_async` sites, which a
    single-device push never reaches.
    """
    return FaultPlan(name="exchange", rules=(
        FaultRule("exchange-stall", probability=0.15),
        FaultRule("launch-failure", probability=0.02),
    ))


def _chaos() -> FaultPlan:
    """Everything at once, bounded so recovery stays possible."""
    return FaultPlan(name="chaos", rules=(
        FaultRule("launch-failure", probability=0.08),
        FaultRule("launch-slowdown", probability=0.08, slowdown=6.0),
        FaultRule("launch-hang", probability=0.04),
        FaultRule("jit-failure", probability=0.3),
        FaultRule("alloc-failure", probability=0.04),
        FaultRule("poisoned-read", probability=0.04),
        FaultRule("scheduler-imbalance", probability=0.1),
        FaultRule("device-loss", probability=0.01, max_injections=2),
        FaultRule("exchange-stall", probability=0.08),
    ))


_PLANS = {
    "none": _none,
    "transient": _transient,
    "default": _default,
    "device-loss": _device_loss,
    "exchange": _exchange,
    "chaos": _chaos,
}

#: Plan names :func:`named_plan` accepts (CLI ``--plan`` choices).
PLAN_NAMES = tuple(sorted(_PLANS))


def named_plan(name: str) -> FaultPlan:
    """Build a fresh named :class:`FaultPlan`."""
    try:
        return _PLANS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown fault plan {name!r}; expected one of "
            f"{PLAN_NAMES}") from None
