"""Fault injection and recovery for the simulated oneAPI runtime.

The layer has two halves that meet at the runtime's injection sites:

* **faults** (:mod:`~repro.resilience.faults`,
  :mod:`~repro.resilience.plans`) — a deterministic, seedable
  :class:`FaultInjector` that makes the simulated stack fail the ways
  real oneAPI deployments do: failed or hung kernel launches, JIT
  compile errors, refused USM allocations, poisoned reads, scheduler
  imbalance, whole-device loss;
* **recovery** (:mod:`~repro.resilience.recovery`,
  :mod:`~repro.resilience.checkpoint`,
  :mod:`~repro.resilience.runner`) — bounded retries with exponential
  backoff charged to the *simulated* clock, a launch watchdog,
  step-granular checkpoints, and a device fallback chain that restores
  and replays after a loss.

Everything is off by default: without an installed injector the
runtime behaves exactly as before this package existed.  See
``docs/RESILIENCE.md`` for the fault taxonomy, the determinism
contract and the recovery semantics.

Typical use::

    from repro.resilience import fault_injection, named_plan
    with fault_injection(named_plan("transient"), seed=7) as injector:
        records, report = runner.run(steps=40)
    print(report.summary())
"""

from .faults import (FAULT_KINDS, FaultInjector, FaultPlan, FaultRule,
                     InjectedFault, active_fault_injector, fault_injection,
                     install_fault_injector)
from .plans import PLAN_NAMES, named_plan
from .recovery import (RecoveryStats, RetryPolicy, Watchdog,
                       allocate_with_retry, launch_with_retry,
                       run_with_retry)
from .checkpoint import Checkpointer
from .runner import DEVICE_LADDER, RecoveryReport, ResilientPushEngine
from .selfcheck import SelfCheckResult, chaos_self_check

__all__ = [
    "FAULT_KINDS",
    "FaultRule",
    "FaultPlan",
    "InjectedFault",
    "FaultInjector",
    "active_fault_injector",
    "install_fault_injector",
    "fault_injection",
    "PLAN_NAMES",
    "named_plan",
    "RetryPolicy",
    "Watchdog",
    "RecoveryStats",
    "run_with_retry",
    "launch_with_retry",
    "allocate_with_retry",
    "Checkpointer",
    "DEVICE_LADDER",
    "RecoveryReport",
    "ResilientPushEngine",
    "SelfCheckResult",
    "chaos_self_check",
]
