"""Step-granular checkpoint management for long runs.

A :class:`Checkpointer` owns a directory of ``.npz`` checkpoints named
by step number, writes one every ``every`` steps, prunes old ones down
to ``keep``, and restores the latest on demand.  Two payload flavours
share the naming and pruning logic:

* **push state** (:meth:`save_push` / :meth:`load_push`) — one
  ensemble plus its (step, time) pair, for bare Boris-push loops
  (:class:`~repro.resilience.runner.ResilientPushEngine`, the
  ``checkpoint_resume`` example);
* **simulation state** (:meth:`save_simulation` /
  :meth:`load_simulation`) — a whole
  :class:`~repro.pic.simulation.PicSimulation`, offered to
  ``PicSimulation.run(checkpointer=...)`` after every step.

Restores are bit-identical (the `.npz` round trip preserves every
array exactly), which is what lets a device-loss recovery replay from
the last checkpoint and still produce the same final particle state as
an uninterrupted run.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..observability.tracer import active_tracer
from .. import io

__all__ = ["Checkpointer"]

#: Checkpoint filename pattern: ``ckpt-<step>.npz``.
_CKPT_RE = re.compile(r"^ckpt-(\d{8})\.npz$")


class Checkpointer:
    """Manages a directory of step-granular checkpoints.

    Args:
        directory: Where checkpoints live (created if missing).
        every: Save cadence in steps (``maybe_*`` saves when
            ``step % every == 0`` and ``step > 0``; explicit ``save_*``
            calls always write).
        keep: How many most-recent checkpoints survive pruning.
    """

    def __init__(self, directory, every: int = 10, keep: int = 3) -> None:
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every}")
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every = int(every)
        self.keep = int(keep)
        self.saved_count = 0

    # -- directory bookkeeping -------------------------------------------

    def path_for(self, step: int) -> Path:
        """Path of the checkpoint for one step."""
        return self.directory / f"ckpt-{step:08d}.npz"

    def steps_on_disk(self) -> List[int]:
        """Checkpointed step numbers, ascending."""
        steps = []
        for name in os.listdir(self.directory):
            match = _CKPT_RE.match(name)
            if match:
                steps.append(int(match.group(1)))
        return sorted(steps)

    def latest_step(self) -> Optional[int]:
        """Most recent checkpointed step (None when empty)."""
        steps = self.steps_on_disk()
        return steps[-1] if steps else None

    def should_save(self, step: int) -> bool:
        """Whether the cadence calls for a checkpoint at ``step``."""
        return step > 0 and step % self.every == 0

    def _prune(self) -> None:
        for step in self.steps_on_disk()[:-self.keep]:
            self.path_for(step).unlink()

    def gc(self) -> int:
        """Delete every checkpoint in the directory; returns the count.

        The end-of-life prune: once a run has completed successfully
        its checkpoints are pure disk liability (restoring one would
        *rewind* finished work), so the service layer calls this in a
        job's cleanup phase.  Emits a ``checkpoint:gc`` tracer instant
        recording how much was reclaimed.  Failed runs skip GC — their
        checkpoints are the evidence.
        """
        steps = self.steps_on_disk()
        reclaimed = 0
        for step in steps:
            path = self.path_for(step)
            reclaimed += path.stat().st_size
            path.unlink()
        tracer = active_tracer()
        if tracer is not None:
            tracer.instant("checkpoint:gc", "recovery",
                           directory=str(self.directory),
                           pruned=len(steps), bytes=reclaimed)
        return len(steps)

    def _trace(self, step: int) -> None:
        self.saved_count += 1
        tracer = active_tracer()
        if tracer is not None:
            tracer.recovery("checkpoint", step=step,
                            saved=self.saved_count)

    # -- push-state flavour ----------------------------------------------

    def save_push(self, step: int, ensemble, time: float) -> Path:
        """Checkpoint a push loop's state at ``step``; returns the path."""
        path = self.path_for(step)
        io.save_push_state(path, ensemble, time, step)
        self._trace(step)
        self._prune()
        return path

    def maybe_save_push(self, step: int, ensemble, time: float
                        ) -> Optional[Path]:
        """:meth:`save_push` when the cadence says so, else None."""
        if self.should_save(step):
            return self.save_push(step, ensemble, time)
        return None

    def load_push(self, step: Optional[int] = None
                  ) -> Tuple[int, float, object]:
        """Restore ``(step, time, ensemble)`` (latest when unspecified)."""
        step = self.latest_step() if step is None else step
        if step is None:
            raise ConfigurationError(
                f"no checkpoints in {self.directory}")
        return io.load_push_state(self.path_for(step))

    # -- whole-simulation flavour ----------------------------------------

    def save_simulation(self, simulation) -> Path:
        """Checkpoint a PIC simulation at its current step count."""
        path = self.path_for(simulation.step_count)
        io.save_simulation(path, simulation)
        self._trace(simulation.step_count)
        self._prune()
        return path

    def maybe_save_simulation(self, simulation) -> Optional[Path]:
        """:meth:`save_simulation` at the cadence, else None."""
        if self.should_save(simulation.step_count):
            return self.save_simulation(simulation)
        return None

    def load_simulation(self, step: Optional[int] = None, pusher=None):
        """Restore the PIC simulation (latest checkpoint by default)."""
        step = self.latest_step() if step is None else step
        if step is None:
            raise ConfigurationError(
                f"no checkpoints in {self.directory}")
        return io.load_simulation(self.path_for(step), pusher=pusher)
