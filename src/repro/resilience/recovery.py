"""Recovery primitives: bounded retries, backoff, the launch watchdog.

The counterpart of :mod:`~repro.resilience.faults`: faults make the
simulated runtime fail, this module makes workloads survive it.  All
recovery cost is charged to the *simulated* clock — a backoff sleeps on
the queue's timeline, a watchdog kill burns its timeout there — so
retries show up in makespans and NSPS exactly the way lost wall time
would on real hardware.

Error classification (see :mod:`repro.errors`):

* **transient** — ``KernelError`` (failed submit, failed JIT),
  ``LaunchTimeoutError`` (watchdog kill), ``AllocationFailedError`` and
  poisoned-read ``MemoryModelError``: bounded retry with exponential
  backoff + deterministic jitter;
* **fatal** — ``DeviceLostError``: never retried here; it propagates to
  the device-fallback logic in
  :class:`~repro.resilience.runner.ResilientPushEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

import numpy as np

from ..errors import (AllocationFailedError, ConfigurationError,
                      DeviceLostError, KernelError, LaunchTimeoutError,
                      MemoryModelError)
from ..observability.tracer import active_tracer
from .faults import active_fault_injector

__all__ = ["RetryPolicy", "Watchdog", "RecoveryStats", "run_with_retry",
           "launch_with_retry", "allocate_with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Attributes:
        max_attempts: Total tries (first attempt + retries).
        base_backoff: Simulated seconds before the first retry.
        multiplier: Backoff growth factor per retry.
        jitter: Relative jitter amplitude; the delay for retry ``k`` is
            ``base * multiplier**k * (1 + jitter * (2u - 1))`` with
            ``u`` drawn from a ``default_rng(seed)`` stream that is
            re-created per retried operation — two runs (and an
            expectation computed via :meth:`delay_sequence`) see the
            same delays.
        seed: Seed of the jitter stream.
    """

    max_attempts: int = 4
    base_backoff: float = 1.0e-3
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff < 0.0 or self.multiplier < 1.0:
            raise ConfigurationError(
                "base_backoff must be >= 0 and multiplier >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}")

    def delay_sequence(self) -> Iterator[float]:
        """Fresh, deterministic iterator of backoff delays [sim s]."""
        rng = np.random.default_rng(self.seed)
        attempt = 0
        while True:
            jitter = self.jitter * (2.0 * rng.random() - 1.0)
            yield self.base_backoff * self.multiplier ** attempt \
                * (1.0 + jitter)
            attempt += 1


@dataclass(frozen=True)
class Watchdog:
    """Kernel-launch watchdog: how long a hung launch burns before the
    runtime kills it (charged to the simulated timeline)."""

    timeout_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout_seconds <= 0.0:
            raise ConfigurationError(
                f"timeout_seconds must be > 0, got {self.timeout_seconds}")


@dataclass
class RecoveryStats:
    """Mutable tally of recovery actions (shared across operations)."""

    retries: int = 0
    backoff_seconds: float = 0.0
    watchdog_seconds: float = 0.0
    scrubbed_allocations: int = 0
    giveups: int = 0


def _scrub_poison(spec) -> int:
    """Clear poison from every allocation feeding ``spec``; returns the
    number scrubbed (0 means the failure was not a poisoned read)."""
    scrubbed = 0
    for stream in spec.streams:
        allocation = stream.allocation
        if allocation is not None and allocation.poisoned:
            allocation.scrub()
            scrubbed += 1
    return scrubbed


def _trace_recovery(action: str, **args) -> None:
    tracer = active_tracer()
    if tracer is not None:
        tracer.recovery(action, **args)


def run_with_retry(operation: Callable[[], object], queue, spec,
                   policy: Optional[RetryPolicy] = None,
                   watchdog: Optional[Watchdog] = None,
                   stats: Optional[RecoveryStats] = None):
    """Run ``operation`` under the retry policy, on ``queue``'s clock.

    ``operation`` is any no-argument callable whose failure modes are
    the runtime's (it typically wraps ``queue.parallel_for`` or one
    :meth:`~repro.oneapi.runtime.PushEngine.step`); ``spec`` is the
    kernel spec it launches (used to scrub poisoned allocations and to
    label timeline slices).  Transient failures charge the simulated
    timeline — ``watchdog:<kernel>`` for the burned timeout of a hung
    launch, ``backoff:<kernel>`` for each retry delay — then retry, at
    most ``policy.max_attempts`` times.  The recovery cost of all
    failed attempts is also folded into the returned launch record's
    ``timing.recovery_seconds`` (and its total), so NSPS computed from
    records reflects the faults.  :class:`~repro.errors.DeviceLostError`
    is fatal and propagates immediately.
    """
    policy = policy if policy is not None else RetryPolicy()
    watchdog = watchdog if watchdog is not None else Watchdog()
    delays = policy.delay_sequence()
    penalty = 0.0
    for attempt in range(policy.max_attempts):
        try:
            result = operation()
        except DeviceLostError:
            raise
        except (KernelError, LaunchTimeoutError, MemoryModelError) as exc:
            if isinstance(exc, MemoryModelError):
                scrubbed = _scrub_poison(spec)
                if scrubbed == 0:
                    raise    # a genuine memory-model bug, not a fault
                if stats is not None:
                    stats.scrubbed_allocations += scrubbed
                _trace_recovery("scrub", kernel=spec.name, count=scrubbed)
            if isinstance(exc, LaunchTimeoutError):
                # the hung launch burned the whole watchdog window
                queue.timeline.schedule(f"watchdog:{spec.name}",
                                        watchdog.timeout_seconds)
                penalty += watchdog.timeout_seconds
                if stats is not None:
                    stats.watchdog_seconds += watchdog.timeout_seconds
            if attempt + 1 >= policy.max_attempts:
                if stats is not None:
                    stats.giveups += 1
                _trace_recovery("giveup", kernel=spec.name,
                                attempts=policy.max_attempts,
                                error=type(exc).__name__)
                raise
            delay = next(delays)
            queue.timeline.schedule(f"backoff:{spec.name}", delay)
            penalty += delay
            if stats is not None:
                stats.retries += 1
                stats.backoff_seconds += delay
            _trace_recovery("retry", kernel=spec.name, attempt=attempt,
                            delay_seconds=delay,
                            error=type(exc).__name__)
        else:
            timing = getattr(result, "timing", None)
            if penalty > 0.0 and timing is not None:
                timing.recovery_seconds += penalty
                timing.total_seconds += penalty
            return result
    raise AssertionError("unreachable: retry loop neither returned "
                         "nor raised")


def launch_with_retry(queue, n_items: int, spec, kernel=None,
                      precision=None, *,
                      policy: Optional[RetryPolicy] = None,
                      watchdog: Optional[Watchdog] = None,
                      stats: Optional[RecoveryStats] = None):
    """``queue.parallel_for`` with recovery; a 1:1 drop-in when faults
    are off.

    Fast path: with no installed fault injector this is exactly one
    ``queue.parallel_for`` call — no retry machinery, no timeline
    writes — so fault-free callers (the bench harness) keep their
    behaviour bit-identical.
    """
    kwargs = {} if precision is None else {"precision": precision}
    if active_fault_injector() is None:
        return queue.parallel_for(n_items, spec, kernel=kernel, **kwargs)
    return run_with_retry(
        lambda: queue.parallel_for(n_items, spec, kernel=kernel, **kwargs),
        queue, spec, policy=policy, watchdog=watchdog, stats=stats)


def allocate_with_retry(build: Callable[[], object], queue,
                        *, policy: Optional[RetryPolicy] = None,
                        stats: Optional[RecoveryStats] = None):
    """Run an allocating ``build`` callable, retrying USM exhaustion.

    Spec construction (:func:`repro.oneapi.runtime.build_virtual_push_spec`)
    registers USM allocations *before* any launch exists, so an injected
    ``alloc-failure`` there cannot be caught by :func:`run_with_retry`
    — it has no spec to scrub and no launch record to charge.  This
    wrapper retries only :class:`~repro.errors.AllocationFailedError`,
    charging each backoff to ``queue``'s timeline as ``backoff:alloc``.
    Fast path: with no installed fault injector, exactly one ``build()``
    call.
    """
    if active_fault_injector() is None:
        return build()
    policy = policy if policy is not None else RetryPolicy()
    delays = policy.delay_sequence()
    for attempt in range(policy.max_attempts):
        try:
            return build()
        except AllocationFailedError as exc:
            if attempt + 1 >= policy.max_attempts:
                if stats is not None:
                    stats.giveups += 1
                _trace_recovery("giveup", kernel="alloc",
                                attempts=policy.max_attempts,
                                error=type(exc).__name__)
                raise
            delay = next(delays)
            queue.timeline.schedule("backoff:alloc", delay)
            if stats is not None:
                stats.retries += 1
                stats.backoff_seconds += delay
            _trace_recovery("retry", kernel="alloc", attempt=attempt,
                            delay_seconds=delay,
                            error=type(exc).__name__)
    raise AssertionError("unreachable: retry loop neither returned "
                         "nor raised")
