"""Sharding strategies: how a particle ensemble splits across devices.

Because the Boris push is embarrassingly parallel over particles, a
multi-device run is a 1-D block decomposition of the particle index
space: device *i* owns one contiguous slice.  The whole load-balancing
problem reduces to choosing the slice sizes, and this module provides
the three policies the scaling study compares:

* :class:`EvenSharding` — equal counts, the naive baseline.  Optimal
  for homogeneous groups, badly skewed for heterogeneous ones (the
  slowest device paces every step).
* :class:`ProportionalSharding` — counts proportional to a static
  device capability: calibrated memory bandwidth (right for the
  memory-bound precalculated scenario) or achievable flops (right for
  the compute-bound analytical scenario).
* :class:`NspsRebalancer` — dynamic: starts from any initial split and
  repartitions from *measured* per-shard NSPS, the paper's figure of
  merit.  Device *i*'s throughput is ``1 / nsps_i`` particles per
  nanosecond, so weights proportional to ``1/nsps`` equalise per-step
  times; exponential smoothing keeps one noisy step from thrashing the
  partition.

All strategies produce counts through :func:`split_counts`
(largest-remainder rounding), so shard counts always sum *exactly* to
the ensemble size — acceptance-critical for heterogeneous splits, where
naive ``int(n * w)`` rounding loses particles.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..fp import Precision
from ..oneapi.device import DeviceDescriptor

__all__ = ["split_counts", "ShardingStrategy", "EvenSharding",
           "ProportionalSharding", "NspsRebalancer", "strategy_by_name",
           "STRATEGY_NAMES"]


def split_counts(n: int, weights: Sequence[float]) -> List[int]:
    """Split ``n`` items into ``len(weights)`` counts summing exactly to n.

    Largest-remainder (Hamilton) apportionment: each shard gets the
    floor of its exact share, then the leftover items go to the largest
    fractional remainders (ties broken toward lower shard index, which
    keeps the result deterministic).  Zero weights are legal and yield
    zero-particle shards; ``n`` smaller than the shard count simply
    leaves some shards empty.
    """
    weights = np.asarray(list(weights), dtype=np.float64)
    if weights.size == 0:
        raise ConfigurationError("split_counts needs at least one weight")
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
        raise ConfigurationError(
            f"weights must be finite and >= 0, got {weights.tolist()}")
    total = float(weights.sum())
    if total == 0.0:
        # No information: fall back to an even split.
        weights = np.ones_like(weights)
        total = float(weights.size)
    exact = n * weights / total
    counts = np.floor(exact).astype(int)
    remainder = int(n - counts.sum())
    if remainder:
        # Stable argsort on negated remainders → ties go to lower index.
        order = np.argsort(-(exact - counts), kind="stable")
        counts[order[:remainder]] += 1
    return counts.tolist()


class ShardingStrategy:
    """Base class: maps (ensemble size, device list) to shard counts."""

    #: Short name used by the CLI and reports.
    name = "base"

    def initial_counts(self, n: int,
                       devices: Sequence[DeviceDescriptor]) -> List[int]:
        """Initial partition of ``n`` particles over ``devices``."""
        raise NotImplementedError

    def rebalanced_counts(self, n: int, counts: Sequence[int],
                          nsps: Sequence[float]) -> Optional[List[int]]:
        """New partition given measured per-shard NSPS, or None to keep.

        Static strategies never repartition; only the rebalancer
        overrides this.
        """
        return None


class EvenSharding(ShardingStrategy):
    """Equal particle counts per device (the baseline)."""

    name = "even"

    def initial_counts(self, n: int,
                       devices: Sequence[DeviceDescriptor]) -> List[int]:
        if not devices:
            raise ConfigurationError("need at least one device")
        return split_counts(n, [1.0] * len(devices))


class ProportionalSharding(ShardingStrategy):
    """Counts proportional to a static device capability.

    Args:
        metric: ``"bandwidth"`` (calibrated aggregate DRAM bandwidth —
            the right proxy for the memory-bound precalculated
            scenario) or ``"flops"`` (achievable flops at ``precision``
            — right for the compute-bound analytical scenario).
        precision: Precision the flops metric is evaluated at; matters
            because DP emulation reshuffles the ranking (an Iris Xe Max
            outruns the P630 in SP but collapses below it in DP).
    """

    METRICS = ("bandwidth", "flops")

    def __init__(self, metric: str = "bandwidth",
                 precision: Precision = Precision.SINGLE) -> None:
        if metric not in self.METRICS:
            raise ConfigurationError(
                f"metric must be one of {self.METRICS}, got {metric!r}")
        self.metric = metric
        self.precision = precision
        self.name = metric

    def weight(self, device: DeviceDescriptor) -> float:
        """The capability weight of one device."""
        if self.metric == "bandwidth":
            return device.total_bandwidth
        return device.achievable_flops(self.precision,
                                       device.compute_units)

    def initial_counts(self, n: int,
                       devices: Sequence[DeviceDescriptor]) -> List[int]:
        if not devices:
            raise ConfigurationError("need at least one device")
        return split_counts(n, [self.weight(d) for d in devices])


class NspsRebalancer(ShardingStrategy):
    """Dynamic load balancing from measured per-shard NSPS.

    The initial partition comes from ``seed`` (even by default, so the
    rebalancer demonstrably *recovers* from a bad split); thereafter
    each call to :meth:`rebalanced_counts` moves the partition toward
    throughput-proportional weights ``1 / nsps``, exponentially
    smoothed by ``smoothing`` (1.0 = jump straight to the measurement,
    small values trust history more).  When the relative change of
    every count falls below ``tolerance`` the partition is declared
    converged and left alone — the stop condition that keeps a
    converged run from migrating one particle back and forth forever.
    """

    name = "nsps"

    def __init__(self, seed: Optional[ShardingStrategy] = None,
                 smoothing: float = 0.5, tolerance: float = 0.02) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError(
                f"smoothing must be in (0, 1], got {smoothing!r}")
        if tolerance < 0.0:
            raise ConfigurationError(
                f"tolerance must be >= 0, got {tolerance!r}")
        self.seed = seed if seed is not None else EvenSharding()
        self.smoothing = smoothing
        self.tolerance = tolerance
        self._weights: Optional[np.ndarray] = None
        self.converged = False

    def initial_counts(self, n: int,
                       devices: Sequence[DeviceDescriptor]) -> List[int]:
        counts = self.seed.initial_counts(n, devices)
        self._weights = None
        self.converged = False
        return counts

    def rebalanced_counts(self, n: int, counts: Sequence[int],
                          nsps: Sequence[float]) -> Optional[List[int]]:
        """Repartition from measured NSPS; None once converged.

        Shards that measured no throughput this round (zero particles,
        or NaN from a skipped step) keep their previous weight — an
        empty shard would otherwise be stuck empty, since it can never
        measure an NSPS to earn particles back.
        """
        if len(nsps) != len(counts):
            raise ConfigurationError(
                f"got {len(nsps)} NSPS samples for {len(counts)} shards")
        if self.converged:
            return None
        measured = np.asarray(list(nsps), dtype=np.float64)
        ok = np.isfinite(measured) & (measured > 0.0)
        fresh = np.where(ok, 1.0 / np.where(ok, measured, 1.0), np.nan)
        if self._weights is None:
            previous = np.where(ok, fresh, np.nanmean(fresh) if
                                np.any(ok) else 1.0)
        else:
            previous = self._weights
        weights = np.where(ok,
                           (1.0 - self.smoothing) * previous
                           + self.smoothing * fresh,
                           previous)
        self._weights = weights
        new_counts = split_counts(n, weights)
        old = np.asarray(list(counts), dtype=np.float64)
        delta = np.abs(np.asarray(new_counts) - old)
        scale = np.maximum(old, 1.0)
        if np.all(delta / scale <= self.tolerance):
            self.converged = True
            return None
        return new_counts

    def reset(self) -> None:
        """Forget smoothed weights and convergence (device-set change)."""
        self._weights = None
        self.converged = False


#: Strategy names accepted by :func:`strategy_by_name` / the CLI.
STRATEGY_NAMES = ("even", "bandwidth", "flops", "nsps")


def strategy_by_name(name: str,
                     precision: Precision = Precision.SINGLE
                     ) -> ShardingStrategy:
    """Build a strategy from its CLI name."""
    if name == "even":
        return EvenSharding()
    if name in ("bandwidth", "flops"):
        return ProportionalSharding(metric=name, precision=precision)
    if name == "nsps":
        return NspsRebalancer()
    raise ConfigurationError(
        f"unknown strategy {name!r}; expected one of {STRATEGY_NAMES}")
