"""Device groups: N simulated queues acting as one execution target.

A :class:`DeviceGroup` owns one out-of-order
:class:`~repro.oneapi.queue.Queue` per member device — homogeneous
("2 Iris Xe Max cards") or heterogeneous (the paper's whole zoo at
once: Xeon node + P630 + Iris Xe Max).  Members are built from the
calibrated descriptors but renamed per instance (``"Intel Iris Xe Max
#1"``), so traces, fault rules and reports can target one card of a
pair.

Groups are described by a compact spec string, the same grammar the
``repro shard`` CLI accepts::

    "2x iris-xe-max"            # homogeneous pair
    "cpu, p630, iris-xe-max"    # one of everything
    "cpu, 2x cuda:gpu0"         # mixed, spanning backends

Keys may be backend-qualified (see :mod:`repro.backends.registry`);
each member's queue comes from its own backend.  Out-of-order
ordering is *requested* so exchange commands can overlap push kernels
— oneAPI queues grant it (CPUs additionally get the paper's best
configuration, NUMA arenas), while CUDA streams are inherently
in-order and serialise instead.  The group's simulated completion
time is the *makespan over members* — devices run concurrently, so a
step costs what its slowest shard costs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..backends.registry import host_link_for, resolve_device
from ..errors import ConfigurationError
from ..oneapi.device import DeviceDescriptor
from ..oneapi.programcache import ProgramCache
from ..oneapi.queue import Queue
from .links import LinkDescriptor, LinkTable, default_link_table

__all__ = ["GroupMember", "DeviceGroup", "parse_group_spec"]


@dataclass
class GroupMember:
    """One device of a group: descriptor, queue, and host link.

    Attributes:
        key: Canonical device key ("cpu", "p630", "iris-xe-max") — what
            the link table and sharding strategies look up.
        index: Position in the group (shard index).
        device: Per-instance descriptor (renamed copy of the calibrated
            one, so two cards of the same model stay distinguishable).
        queue: The member's out-of-order queue.
        host_link: The member's link to host DRAM.
    """

    key: str
    index: int
    device: DeviceDescriptor
    queue: Queue
    host_link: LinkDescriptor

    @property
    def name(self) -> str:
        """Unique instance name (the renamed descriptor's name)."""
        return self.device.name


def parse_group_spec(spec: str) -> List[str]:
    """Expand a group spec string into a list of device keys.

    Grammar: comma-separated entries, each ``<key>`` or ``<n>x <key>``
    (whitespace optional).  Keys may be backend-qualified device specs
    (``"2x cuda:gpu0, cpu"``); each is validated through the backend
    registry, so an unknown device or backend raises a typed
    :class:`~repro.errors.ConfigurationError`.
    """
    keys: List[str] = []
    for raw in spec.split(","):
        entry = raw.strip()
        if not entry:
            raise ConfigurationError(
                f"empty entry in group spec {spec!r}")
        count = 1
        low = entry.lower()
        if "x" in low:
            head, _, tail = low.partition("x")
            if head.strip().isdigit():
                count = int(head.strip())
                entry = tail.strip()
        if count < 1:
            raise ConfigurationError(
                f"repeat count must be >= 1 in group spec entry {raw!r}")
        key = entry.strip().lower()
        resolve_device(key)   # raises ConfigurationError when unknown
        keys.extend([key] * count)
    if not keys:
        raise ConfigurationError(f"group spec {spec!r} names no devices")
    return keys


def _default_links(keys: Sequence[str]) -> LinkTable:
    """The built-in link table extended with every member's backend
    host link, so groups spanning backends (``"cpu, cuda:gpu0"``)
    price their exchanges without a hand-built table."""
    extra = {}
    for key in keys:
        if ":" in key:
            extra[key] = host_link_for(key)
    return default_link_table(extra or None)


class DeviceGroup:
    """An ordered set of simulated devices executing one workload.

    Args:
        keys: Device keys, one per member, in shard order (e.g. from
            :func:`parse_group_spec`).
        link_table: Interconnect table; defaults to the built-in one
            for the paper's devices.
        names: Explicit per-member instance names (same length as
            ``keys``).  Defaults to ``"<model> #<instance>"``.  Used by
            :meth:`drop` so survivors keep their identities — fault
            state and traces are keyed by instance name, and a renamed
            survivor would inherit the dead member's faults.
        program_cache: Shared JIT program cache backing every member's
            queue (one per group by default).  Programs are keyed by
            device *model*, so shard N+1 of a homogeneous pair never
            recompiles what shard 0 already built — the simulated
            analogue of SYCL's per-context program cache.
    """

    def __init__(self, keys: Sequence[str],
                 link_table: Optional[LinkTable] = None,
                 names: Optional[Sequence[str]] = None,
                 program_cache: Optional[ProgramCache] = None) -> None:
        if not keys:
            raise ConfigurationError("a device group needs >= 1 device")
        if names is not None and len(names) != len(keys):
            raise ConfigurationError(
                f"got {len(names)} names for {len(keys)} devices")
        self.link_table = link_table if link_table is not None \
            else _default_links(keys)
        self.program_cache = program_cache if program_cache is not None \
            else ProgramCache()
        per_key_count: Dict[str, int] = {}
        self.members: List[GroupMember] = []
        for index, key in enumerate(keys):
            backend, base = resolve_device(key)
            instance = per_key_count.get(key, 0)
            per_key_count[key] = instance + 1
            name = names[index] if names is not None \
                else f"{base.name} #{instance}"
            # The rename keeps cards distinguishable; ``model`` keeps
            # the JIT identity shared across same-model instances.
            device = replace(base, name=name, model=base.model or base.name)
            # Out-of-order is a *request* (exchange should overlap
            # pushes); a backend whose streams are inherently in-order
            # (CUDA) serialises instead — visible in the makespan.
            queue = backend.make_queue(device, out_of_order=True,
                                       program_cache=self.program_cache)
            self.members.append(GroupMember(
                key=key, index=index, device=device, queue=queue,
                host_link=self.link_table.host_link(key)))

    @classmethod
    def from_spec(cls, spec: str,
                  link_table: Optional[LinkTable] = None) -> "DeviceGroup":
        """Build a group from a spec string (see module docstring)."""
        return cls(parse_group_spec(spec), link_table=link_table)

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    @property
    def devices(self) -> List[DeviceDescriptor]:
        """Per-member device descriptors, in shard order."""
        return [m.device for m in self.members]

    @property
    def names(self) -> List[str]:
        """Unique instance names, in shard order."""
        return [m.name for m in self.members]

    def link_between(self, index_a: int, index_b: int) -> LinkDescriptor:
        """Effective link for an exchange between two members."""
        return self.link_table.between(self.members[index_a].key,
                                       self.members[index_b].key)

    @property
    def makespan(self) -> float:
        """Simulated completion time of the group [s].

        Members run concurrently, so the group finishes when its
        slowest member's timeline does.
        """
        return max(m.queue.timeline.makespan for m in self.members)

    def reset_records(self) -> None:
        """Clear every member's launch records and timeline."""
        for member in self.members:
            member.queue.reset_records()

    def drop(self, index: int) -> "DeviceGroup":
        """A new group of the survivors after losing member ``index``.

        Used by the sharded runner's device-loss recovery: the failed
        member's queue is abandoned mid-flight (its partial step never
        contributed physics) and the survivors are *re-created* with
        fresh queues — the simulated analogue of tearing down the SYCL
        context and rebuilding it without the dead card.
        """
        if not 0 <= index < len(self.members):
            raise ConfigurationError(
                f"member index {index} out of range [0, {len(self.members)})")
        survivors = [m for i, m in enumerate(self.members) if i != index]
        if not survivors:
            raise ConfigurationError(
                "cannot drop the last device of a group")
        # Survivors keep the shared program cache: a context rebuild
        # does not forget already-JIT-compiled programs.
        return DeviceGroup([m.key for m in survivors],
                           link_table=self.link_table,
                           names=[m.name for m in survivors],
                           program_cache=self.program_cache)
