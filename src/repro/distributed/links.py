"""Interconnect cost model: links between the devices of a group.

A :class:`LinkDescriptor` is to an interconnect what a
:class:`~repro.oneapi.device.DeviceDescriptor` is to a device: the
static numbers the cost model needs to price a transfer — achievable
bandwidth and per-message latency.  The paper's machine offers three
qualitatively different paths between its devices (Table 1):

* the **Iris Xe Max** is a discrete card on PCIe 3.0 x8 — every byte
  that leaves or enters it crosses the slowest link of the system;
* the **P630** is an integrated GPU sharing the host's DDR4 — its
  "link" is a DRAM copy at iGPU-visible bandwidth;
* the **Xeon node** exchanges through its own DRAM, with the
  cross-socket UPI fabric already folded into the device's descriptor.

Device-to-device exchange is host-mediated (store-and-forward through
host DRAM, the way a portable SYCL runtime without peer-to-peer copies
does it): latencies add, the slower endpoint's bandwidth wins.
:class:`LinkTable` owns the per-device host links and composes the
effective device-pair link.

Every number here is either a public interface specification (PCIe
3.0 x8 ≈ 7.9 GB/s achievable) or consistent with the calibrated device
descriptors in :mod:`repro.bench.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError

__all__ = ["LinkDescriptor", "LinkTable", "pcie3_x8", "igpu_dram_link",
           "host_dram_link", "default_link_table"]


@dataclass(frozen=True)
class LinkDescriptor:
    """Static description of one interconnect link.

    Attributes:
        name: Display name ("PCIe 3.0 x8", "host DDR4", ...).
        bandwidth: Achievable bandwidth per direction [bytes/s] (the
            STREAM-like fraction of the interface peak, matching how
            device bandwidths are calibrated).
        latency: Fixed per-message cost [s] — DMA setup, doorbell,
            driver submission; what makes many small exchanges slower
            than one large one.
    """

    name: str
    bandwidth: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0.0:
            raise ConfigurationError(
                f"link bandwidth must be positive, got {self.bandwidth!r}")
        if self.latency < 0.0:
            raise ConfigurationError(
                f"link latency must be >= 0, got {self.latency!r}")

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to move ``nbytes`` over this link [s]."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency + nbytes / self.bandwidth

    def compose(self, other: "LinkDescriptor") -> "LinkDescriptor":
        """Effective link of a host-mediated two-hop path.

        Store-and-forward through host DRAM: latencies add, the
        narrower hop's bandwidth bounds the pipeline.
        """
        return LinkDescriptor(
            name=f"{self.name} + {other.name}",
            bandwidth=min(self.bandwidth, other.bandwidth),
            latency=self.latency + other.latency)


def pcie3_x8() -> LinkDescriptor:
    """PCIe 3.0 x8 — the Iris Xe Max (DG1) host interface.

    7.88 GB/s per direction (8 GT/s x 8 lanes, 128b/130b encoding);
    ~5 us per transfer for DMA setup and submission.
    """
    return LinkDescriptor(name="PCIe 3.0 x8", bandwidth=7.88e9,
                          latency=5.0e-6)


def igpu_dram_link() -> LinkDescriptor:
    """Shared-DRAM path of the integrated P630.

    The iGPU "transfers" by copying within host DDR4 at its achievable
    device bandwidth (35 GB/s, the calibrated P630 figure); latency is
    one kernel-ish submission.
    """
    return LinkDescriptor(name="shared DDR4 (iGPU)", bandwidth=35.0e9,
                          latency=1.0e-6)


def host_dram_link() -> LinkDescriptor:
    """Host-DRAM exchange path of the CPU node.

    A socket-local copy runs at the calibrated per-domain STREAM
    bandwidth (82 GB/s); cross-socket traffic is already priced by the
    device's UPI term, so the link models the local copy.
    """
    return LinkDescriptor(name="host DDR4", bandwidth=82.0e9,
                          latency=0.5e-6)


#: Host-link factory per canonical device key (see
#: :data:`repro.bench.calibration.DEVICE_NAMES`).
_HOST_LINKS = {
    "cpu": host_dram_link,
    "p630": igpu_dram_link,
    "iris-xe-max": pcie3_x8,
}


class LinkTable:
    """Maps device keys to host links and composes device-pair links.

    Args:
        host_links: Mapping of device key -> :class:`LinkDescriptor`
            for the device's path to host DRAM.  Keys are the group's
            device keys (``"cpu"``, ``"p630"``, ``"iris-xe-max"`` for
            the built-in table; anything for custom machines).
    """

    def __init__(self, host_links: Dict[str, LinkDescriptor]) -> None:
        if not host_links:
            raise ConfigurationError("link table needs at least one link")
        self._host_links = dict(host_links)

    def host_link(self, device_key: str) -> LinkDescriptor:
        """The device's link to host DRAM."""
        try:
            return self._host_links[device_key]
        except KeyError:
            raise ConfigurationError(
                f"no link registered for device {device_key!r}; known: "
                f"{tuple(sorted(self._host_links))}") from None

    def between(self, key_a: str, key_b: str) -> LinkDescriptor:
        """Effective link for an exchange between two devices.

        Host-mediated: the composition of both host links.  An
        exchange of a device with itself (two shards on one physical
        device would be a configuration bug) is rejected — same-device
        shards never exchange through this table.
        """
        return self.host_link(key_a).compose(self.host_link(key_b))

    def known_keys(self):
        """Device keys this table can price (sorted)."""
        return tuple(sorted(self._host_links))


def default_link_table(extra: Optional[Dict[str, LinkDescriptor]] = None
                       ) -> LinkTable:
    """The built-in table for the paper's three devices.

    ``extra`` merges additional device keys in (overriding built-ins),
    for groups built around custom
    :class:`~repro.oneapi.device.DeviceDescriptor` machines.
    """
    links = {key: factory() for key, factory in _HOST_LINKS.items()}
    if extra:
        links.update(extra)
    return LinkTable(links)
