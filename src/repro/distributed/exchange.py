"""Cost-modeled inter-shard exchange: halos over the interconnect.

A particle decomposition needs its neighbours' boundary particles (and
in the precalculated scenario their field values) once per step.  The
simulated exchange follows the classic ring pattern of
domain-decomposed PIC: shard *i* trades a halo with shards *i±1*, and
each transfer is priced by the composed
:class:`~repro.distributed.links.LinkDescriptor` of the two endpoints
and placed on the *sending member's* out-of-order queue with
``memcpy_async`` — so with the right dependency wiring it overlaps the
next push kernel instead of extending it.

The halo is modeled as a fixed fraction of the shard's particles
(default 2%, the boundary-layer share of a mildly relativistic
ensemble crossing a cell per step); each halo particle moves its full
record (phase space + fields in the precalculated scenario).

Exchange is also the distributed layer's fault surface: under an
active injector ``memcpy_async`` may raise
:class:`~repro.errors.ExchangeTimeoutError`.  The model charges the
stalled watchdog window to the member's simulated timeline and
re-issues the copy, up to a bounded number of attempts — the same
burn-the-window-then-retry contract the resilience layer applies to
hung kernel launches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError, ExchangeTimeoutError
from ..observability.tracer import active_tracer
from ..oneapi.events import SimEvent
from .group import DeviceGroup

__all__ = ["ExchangePolicy", "ExchangeReport", "ExchangeModel"]


@dataclass(frozen=True)
class ExchangePolicy:
    """Tunables of the exchange cost model.

    Attributes:
        halo_fraction: Fraction of a shard's particles exchanged with
            *each* ring neighbour per step.
        bytes_per_particle_extra: Extra payload bytes per halo particle
            on top of the particle record (e.g. interpolated field
            values in the precalculated scenario).
        watchdog_seconds: Simulated window charged to the timeline when
            an exchange stalls before it is re-issued.
        max_attempts: Total tries per transfer (first issue + retries)
            before the stall is re-raised to the caller.
    """

    halo_fraction: float = 0.02
    bytes_per_particle_extra: int = 0
    watchdog_seconds: float = 5.0e-4
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.halo_fraction <= 1.0:
            raise ConfigurationError(
                f"halo_fraction must be in [0, 1], got {self.halo_fraction!r}")
        if self.bytes_per_particle_extra < 0:
            raise ConfigurationError("bytes_per_particle_extra must be >= 0")
        if self.watchdog_seconds < 0.0:
            raise ConfigurationError("watchdog_seconds must be >= 0")
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")

    def halo_count(self, shard_size: int) -> int:
        """Halo particles per neighbour for a shard of ``shard_size``."""
        if shard_size <= 0:
            return 0
        return max(1, math.ceil(self.halo_fraction * shard_size))


@dataclass
class ExchangeReport:
    """Accumulated exchange accounting over a run."""

    transfers: int = 0
    total_bytes: int = 0
    #: Sum of simulated transfer durations [s] (overlap not deducted).
    total_seconds: float = 0.0
    stalls: int = 0
    #: Stall-window seconds charged to timelines by retries.
    stalled_seconds: float = 0.0
    per_member_bytes: Dict[str, int] = field(default_factory=dict)


class ExchangeModel:
    """Prices and schedules the per-step ring exchange of a group.

    Args:
        group: The device group (link lookups + member queues).
        policy: Exchange tunables.
        bytes_per_particle: Size of one halo particle's record
            [bytes] — the ensemble's per-particle footprint, plus the
            policy's extra payload.
    """

    def __init__(self, group: DeviceGroup, policy: ExchangePolicy,
                 bytes_per_particle: int) -> None:
        if bytes_per_particle <= 0:
            raise ConfigurationError(
                f"bytes_per_particle must be positive, "
                f"got {bytes_per_particle}")
        self.group = group
        self.policy = policy
        self.bytes_per_particle = (bytes_per_particle
                                   + policy.bytes_per_particle_extra)
        self.report = ExchangeReport()

    def _neighbours(self, index: int) -> List[int]:
        """Ring neighbours of shard ``index`` (deduplicated)."""
        n = len(self.group)
        if n < 2:
            return []
        left = (index - 1) % n
        right = (index + 1) % n
        return [left] if left == right else [left, right]

    def _issue(self, member_index: int, neighbour_index: int,
               nbytes: int, step: int,
               depends_on: Optional[Sequence[SimEvent]]) -> SimEvent:
        """One transfer with stall-retry, charged to the member's queue."""
        member = self.group.members[member_index]
        link = self.group.link_between(member_index, neighbour_index)
        name = (f"exchange:{member_index}->{neighbour_index}"
                f":step{step}")
        deps = list(depends_on) if depends_on else None
        tracer = active_tracer()
        for attempt in range(self.policy.max_attempts):
            try:
                event = member.queue.memcpy_async(
                    name, nbytes, bandwidth=link.bandwidth,
                    latency=link.latency, depends_on=deps)
            except ExchangeTimeoutError:
                # Burn the watchdog window on the simulated clock, then
                # serialize the re-issue after it.
                self.report.stalls += 1
                self.report.stalled_seconds += self.policy.watchdog_seconds
                stall = member.queue.timeline.schedule(
                    f"{name}:stall{attempt}", self.policy.watchdog_seconds,
                    depends_on=deps,
                    trace_args={"bytes": nbytes, "stalled": True})
                deps = [stall]
                if tracer is not None:
                    tracer.fault("exchange-stall", device=member.name,
                                 detail=name, attempt=attempt)
                if attempt == self.policy.max_attempts - 1:
                    raise
            else:
                if tracer is not None:
                    tracer.exchange(name, event.duration, nbytes,
                                    link=link.name, attempt=attempt)
                return event
        raise AssertionError("unreachable")  # pragma: no cover

    def exchange_step(self, step: int, shard_sizes: Sequence[int],
                      depends_on: Sequence[Optional[List[SimEvent]]]
                      ) -> List[Optional[SimEvent]]:
        """Schedule one step's halo exchange for every shard.

        Args:
            step: Step index (event naming only).
            shard_sizes: Current particle count per shard.
            depends_on: Per-shard dependency lists — normally the
                shard's just-issued push event, so the exchange starts
                when the push finishes.

        Returns:
            Per-shard completion event of the *last* transfer the shard
            issued (None for shards with nothing to exchange — empty
            shards or a single-member group).  A shard's next
            non-overlapped push should depend on this event.
        """
        if len(shard_sizes) != len(self.group):
            raise ConfigurationError(
                f"got {len(shard_sizes)} shard sizes for "
                f"{len(self.group)} members")
        last_events: List[Optional[SimEvent]] = []
        for index, size in enumerate(shard_sizes):
            halo = self.policy.halo_count(int(size))
            nbytes = halo * self.bytes_per_particle
            event: Optional[SimEvent] = None
            if nbytes > 0:
                for neighbour in self._neighbours(index):
                    event = self._issue(index, neighbour, nbytes, step,
                                        depends_on[index])
                    self.report.transfers += 1
                    self.report.total_bytes += nbytes
                    self.report.total_seconds += event.duration
                    member_name = self.group.members[index].name
                    self.report.per_member_bytes[member_name] = \
                        self.report.per_member_bytes.get(member_name, 0) \
                        + nbytes
            last_events.append(event)
        return last_events
