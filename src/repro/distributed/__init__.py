"""Multi-device sharded execution over the simulated oneAPI runtime.

The paper benchmarks the Boris pusher on each device in isolation; this
layer asks the follow-up question its Section 5 gestures at — what the
*machine*, all devices at once, can deliver.  It decomposes one
particle ensemble across a :class:`~repro.distributed.group.DeviceGroup`
of simulated queues, prices the per-step halo exchange through an
interconnect cost model (:mod:`~repro.distributed.links`), overlaps
exchange with compute via the runtime's event graph, and balances load
statically (:mod:`~repro.distributed.sharding`) or dynamically from
measured NSPS.  See ``docs/DISTRIBUTED.md`` for the design.
"""

from .links import (LinkDescriptor, LinkTable, default_link_table,
                    host_dram_link, igpu_dram_link, pcie3_x8)
from .sharding import (STRATEGY_NAMES, EvenSharding, NspsRebalancer,
                       ProportionalSharding, ShardingStrategy,
                       split_counts, strategy_by_name)
from .group import DeviceGroup, GroupMember, parse_group_spec
from .exchange import ExchangeModel, ExchangePolicy, ExchangeReport
from .runner import GroupReport, ShardedPushEngine, ShardReport

__all__ = [
    "LinkDescriptor", "LinkTable", "default_link_table",
    "host_dram_link", "igpu_dram_link", "pcie3_x8",
    "STRATEGY_NAMES", "EvenSharding", "NspsRebalancer",
    "ProportionalSharding", "ShardingStrategy", "split_counts",
    "strategy_by_name",
    "DeviceGroup", "GroupMember", "parse_group_spec",
    "ExchangeModel", "ExchangePolicy", "ExchangeReport",
    "GroupReport", "ShardedPushEngine", "ShardReport",
]
