"""The sharded push runner: one workload over a device group.

:class:`ShardedPushEngine` is the distributed counterpart of
:class:`~repro.oneapi.runtime.PushEngine`: it partitions one master
ensemble into contiguous shards (one per group member), drives a real
per-shard push engine on every member's out-of-order queue, prices the
per-step halo exchange through the
:class:`~repro.distributed.exchange.ExchangeModel`, and reassembles the
master ensemble at every synchronisation point.

Because the Boris push is elementwise per particle — no cross-particle
reduction anywhere in the kernel — the gathered result of a sharded run
is **bit-identical** to a single-device run of the same ensemble, for
any partition.  That invariant is what the whole layer leans on: it
makes even-vs-proportional comparisons physics-free, lets the
rebalancer migrate particles mid-run without perturbing trajectories,
and turns device-loss recovery into plain bookkeeping (restore the
checkpoint, re-shard over the survivors, replay).

Scheduling semantics (per shard, on its member's out-of-order queue):

* push *k+1* depends on push *k* — a shard's pushes always serialize;
* exchange *k* depends on push *k* (the halo must exist) and on
  exchange *k-1* (one link, one transfer at a time);
* with ``overlap=True`` (default) the next push does *not* wait for the
  exchange — the transfer hides behind compute, the async pattern
  DPC++'s event graph exists for; with ``overlap=False`` push *k+1*
  additionally depends on exchange *k* (the naive bulk-synchronous
  schedule, kept as the comparison baseline).

Failure handling:

* transient faults (failed submits, hung launches, exchange stalls)
  are retried in place under the bounded
  :class:`~repro.resilience.recovery.RetryPolicy`, their cost charged
  to the simulated clock;
* a :class:`~repro.errors.DeviceLostError` is fatal for the member:
  the runner drops it from the group, restores the last checkpoint
  (one is always written at step 0), re-shards over the survivors and
  replays — producing the same final state as a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, DeviceLostError
from ..fields.base import FieldSource
from ..observability.tracer import active_tracer, trace_span
from ..oneapi.events import SimEvent
from ..oneapi.runtime import PushEngine
from ..particles.ensemble import COMPONENTS, ParticleEnsemble
from ..pic.diagnostics import load_imbalance
from ..resilience.checkpoint import Checkpointer
from ..resilience.faults import active_fault_injector
from ..resilience.recovery import (RecoveryStats, RetryPolicy, Watchdog,
                                   run_with_retry)
from .exchange import ExchangeModel, ExchangePolicy, ExchangeReport
from .group import DeviceGroup
from .sharding import EvenSharding, ShardingStrategy

__all__ = ["ShardReport", "GroupReport", "ShardedPushEngine"]


@dataclass
class ShardReport:
    """Final accounting of one shard."""

    name: str
    key: str
    particles: int
    steps: int
    busy_seconds: float
    mean_nsps: float


@dataclass
class GroupReport:
    """Final accounting of a sharded run."""

    n_devices: int
    strategy: str
    n_particles: int
    steps: int
    #: Simulated wall time of the whole run (sum of group makespans
    #: across device-set epochs; replayed steps are paid for again).
    simulated_seconds: float
    #: Group NSPS: simulated nanoseconds per particle per step.
    nsps: float
    #: ``max/mean - 1`` over per-shard busy seconds (final epoch).
    imbalance: float
    rebalances: int
    redistributions: int
    exchange: ExchangeReport
    recovery: RecoveryStats
    shards: List[ShardReport] = field(default_factory=list)


class _ShardState:
    """Mutable per-shard run state (one device-set epoch)."""

    def __init__(self, member, start: int, stop: int,
                 ensemble: Optional[ParticleEnsemble],
                 runner: Optional[PushEngine]) -> None:
        self.member = member
        self.start = start
        self.stop = stop
        self.ensemble = ensemble
        self.runner = runner
        self.last_push: Optional[SimEvent] = None
        self.last_exchange: Optional[SimEvent] = None
        self.busy_seconds = 0.0
        self.nsps_samples: List[float] = []
        self.steps = 0

    @property
    def size(self) -> int:
        return self.stop - self.start


class ShardedPushEngine:
    """Drives one ensemble across a device group, step by step.

    Args:
        group: The device group to execute on.
        ensemble: The master ensemble (stays authoritative at every
            synchronisation point; holds the final state after
            :meth:`run`).
        scenario: "precalculated" or "analytical".
        source: Field source (see :class:`~repro.oneapi.runtime.PushEngine`).
        dt: Time step [s].
        strategy: Sharding strategy (default even split).
        policy: Exchange policy (default :class:`ExchangePolicy`).
        overlap: Hide exchange behind the next push (default True).
        rebalance_every: Consult the strategy for a new partition every
            this many steps (0 = never; only the NSPS rebalancer ever
            answers with one).
        checkpointer: Enables device-loss recovery; a checkpoint is
            written at step 0 and at the checkpointer's cadence.
            Without one, a device loss propagates.
        retry_policy / watchdog: Transient-fault recovery knobs
            (defaults as in :mod:`repro.resilience.recovery`).
        fusion: Kernel-graph execution mode of every shard's
            :class:`~repro.oneapi.runtime.PushEngine` (None = legacy
            single-launch path).  All shards share the group's
            :class:`~repro.oneapi.programcache.ProgramCache`, so only
            the first shard of each device model pays the JIT cost.
    """

    def __init__(self, group: DeviceGroup, ensemble: ParticleEnsemble,
                 scenario: str, source: FieldSource, dt: float,
                 strategy: Optional[ShardingStrategy] = None,
                 policy: Optional[ExchangePolicy] = None,
                 overlap: bool = True,
                 rebalance_every: int = 0,
                 checkpointer: Optional[Checkpointer] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 watchdog: Optional[Watchdog] = None,
                 fusion: Optional[bool] = None) -> None:
        if rebalance_every < 0:
            raise ConfigurationError(
                f"rebalance_every must be >= 0, got {rebalance_every}")
        self.fusion = fusion
        self.group = group
        self.ensemble = ensemble
        self.scenario = scenario
        self.source = source
        self.dt = float(dt)
        self.strategy = strategy if strategy is not None else EvenSharding()
        self.policy = policy if policy is not None else ExchangePolicy()
        self.overlap = bool(overlap)
        self.rebalance_every = int(rebalance_every)
        self.checkpointer = checkpointer
        self.retry_policy = retry_policy
        self.watchdog = watchdog
        self.recovery_stats = RecoveryStats()
        self.time = 0.0
        self.steps_done = 0
        self.rebalances = 0
        self.redistributions = 0
        #: Makespan of completed device-set epochs (a redistribution
        #: abandons the old group's timelines, so their cost is banked
        #: here before the new epoch starts at zero).
        self._elapsed_base = 0.0
        self._steps_at_reset = 0
        self._busy_by_member: Dict[str, float] = {}
        self.exchange = self._make_exchange(group)
        self.counts = list(self.strategy.initial_counts(
            ensemble.size, group.devices))
        self.shards = self._partition(self.counts)

    # -- construction helpers --------------------------------------------

    def _make_exchange(self, group: DeviceGroup) -> ExchangeModel:
        precision = self.ensemble.precision
        bytes_per_particle = precision.particle_bytes
        if self.scenario == "precalculated":
            # Halo particles carry their interpolated field values too.
            bytes_per_particle += 6 * precision.itemsize
        model = ExchangeModel(group, self.policy, bytes_per_particle)
        if hasattr(self, "exchange"):
            model.report = self.exchange.report  # keep accounting across epochs
        return model

    def _partition(self, counts: Sequence[int]) -> List[_ShardState]:
        """Slice the master ensemble into per-member shard copies."""
        if len(counts) != len(self.group):
            raise ConfigurationError(
                f"got {len(counts)} shard counts for "
                f"{len(self.group)} members")
        if sum(counts) != self.ensemble.size:
            raise ConfigurationError(
                f"shard counts sum to {sum(counts)}, ensemble has "
                f"{self.ensemble.size} particles")
        shards: List[_ShardState] = []
        index = np.arange(self.ensemble.size)
        offset = 0
        for member, count in zip(self.group.members, counts):
            start, stop = offset, offset + int(count)
            offset = stop
            if count == 0:
                shards.append(_ShardState(member, start, stop, None, None))
                continue
            shard = self.ensemble.select((index >= start) & (index < stop))
            runner = PushEngine(member.queue, shard, self.scenario,
                                self.source, self.dt, fusion=self.fusion)
            runner.time = self.time
            shards.append(_ShardState(member, start, stop, shard, runner))
        return shards

    def _gather(self) -> None:
        """Write every shard's state back into the master ensemble."""
        for state in self.shards:
            if state.ensemble is None:
                continue
            for name in COMPONENTS:
                self.ensemble.component(name)[state.start:state.stop] = \
                    state.ensemble.component(name)
            self.ensemble.type_ids[state.start:state.stop] = \
                state.ensemble.type_ids

    # -- accounting -------------------------------------------------------

    @property
    def simulated_seconds(self) -> float:
        """Simulated wall time since the last measurement reset."""
        return self._elapsed_base + self.group.makespan

    def nsps(self) -> float:
        """Group NSPS over the steps since the last measurement reset."""
        work = self.ensemble.size * (self.steps_done - self._steps_at_reset)
        if work == 0:
            raise ConfigurationError("no particle-steps completed yet")
        return self.simulated_seconds * 1.0e9 / work

    def reset_measurement(self) -> None:
        """Start a fresh measurement epoch after warm-up steps.

        Clears every member's timeline and launch records (JIT caches
        and page state survive, as on a warm process), the exchange and
        busy-time accounting, and the step counter NSPS divides by —
        the group-level analogue of the harness's ``skip_warmup`` rule,
        so steady-state group NSPS excludes the one-off JIT charge.
        """
        self.group.reset_records()
        self._elapsed_base = 0.0
        self._steps_at_reset = self.steps_done
        self._busy_by_member.clear()
        self.exchange.report = ExchangeReport()
        for state in self.shards:
            state.busy_seconds = 0.0
            state.nsps_samples.clear()
            state.steps = 0
            # Old events belong to the cleared timelines; depending on
            # them would teleport their end times into the new epoch.
            state.last_push = None
            state.last_exchange = None

    def _total_busy(self) -> Dict[str, float]:
        """Per-member busy seconds across every epoch, banked + current."""
        totals = dict(self._busy_by_member)
        for s in self.shards:
            totals[s.member.name] = totals.get(s.member.name, 0.0) \
                + s.busy_seconds
        return totals

    def report(self) -> GroupReport:
        """Accounting snapshot (call after :meth:`run`)."""
        totals = self._total_busy()
        busy = [totals[s.member.name] for s in self.shards]
        shards = [ShardReport(
            name=s.member.name, key=s.member.key, particles=s.size,
            steps=s.steps, busy_seconds=totals[s.member.name],
            mean_nsps=(float(np.mean(s.nsps_samples))
                       if s.nsps_samples else float("nan")))
            for s in self.shards]
        return GroupReport(
            n_devices=len(self.group),
            strategy=self.strategy.name,
            n_particles=self.ensemble.size,
            steps=self.steps_done,
            simulated_seconds=self.simulated_seconds,
            nsps=(self.nsps() if self.steps_done > self._steps_at_reset
                  else float("nan")),
            imbalance=load_imbalance(busy) if any(b > 0.0 for b in busy)
            else 0.0,
            rebalances=self.rebalances,
            redistributions=self.redistributions,
            exchange=self.exchange.report,
            recovery=self.recovery_stats,
            shards=shards)

    # -- the run loop -----------------------------------------------------

    def queues(self) -> tuple:
        """Every member queue (uniform across engines).

        One entry per group member, each owning its own shard's address
        space — the hazard detector must replay them separately, never
        as one concatenated log, because members reuse stream names for
        *different* arrays.
        """
        return tuple(member.queue for member in self.group.members)

    def run(self, steps: int) -> GroupReport:
        """Advance the ensemble ``steps`` pushes across the group."""
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        if self.checkpointer is not None and self.steps_done == 0:
            self.checkpointer.save_push(0, self.ensemble, self.time)
        while self.steps_done < steps:
            try:
                self._step_all(self.steps_done)
            except DeviceLostError:
                self._redistribute()
                continue
            self.steps_done += 1
            self.time += self.dt
            if self.checkpointer is not None \
                    and self.checkpointer.should_save(self.steps_done):
                self._gather()
                self.checkpointer.save_push(self.steps_done, self.ensemble,
                                            self.time)
            if self.rebalance_every \
                    and self.steps_done % self.rebalance_every == 0 \
                    and self.steps_done < steps:
                self._maybe_rebalance()
        self._gather()
        return self.report()

    def _push_dependencies(self, state: _ShardState
                           ) -> Optional[List[SimEvent]]:
        deps = [state.last_push]
        if not self.overlap:
            deps.append(state.last_exchange)
        deps = [e for e in deps if e is not None]
        return deps or None

    def _step_all(self, step: int) -> None:
        """One synchronous step: every shard pushes, then exchanges."""
        injector = active_fault_injector()
        with trace_span(f"shard-step:{step}", "distributed",
                        n_devices=len(self.group)):
            for state in self.shards:
                if state.runner is None:
                    continue
                deps = self._push_dependencies(state)
                if injector is None:
                    record = state.runner.step(depends_on=deps)
                else:
                    record = run_with_retry(
                        lambda: state.runner.step(depends_on=deps),
                        state.member.queue, state.runner.spec,
                        policy=self.retry_policy, watchdog=self.watchdog,
                        stats=self.recovery_stats)
                state.last_push = record.event
                state.busy_seconds += record.simulated_seconds
                state.nsps_samples.append(record.nsps())
                state.steps += 1
            exchange_deps = [
                [e for e in (s.last_push, s.last_exchange) if e is not None]
                or None
                for s in self.shards]
            events = self.exchange.exchange_step(
                step, [s.size for s in self.shards], exchange_deps)
            for state, event in zip(self.shards, events):
                if event is not None:
                    state.last_exchange = event

    # -- dynamic rebalancing ----------------------------------------------

    def _shard_nsps(self) -> List[float]:
        """Mean NSPS per shard since the last repartition (NaN when the
        shard has no measurements — e.g. it was empty).

        The first sample after a repartition is dropped when more are
        available: a fresh partition touches fresh pages, and the
        cold-page charge would masquerade as the device being slow —
        feeding that to the rebalancer makes it oscillate.
        """
        out = []
        for state in self.shards:
            samples = state.nsps_samples
            if len(samples) > 1:
                samples = samples[1:]
            out.append(float(np.mean(samples)) if samples
                       else float("nan"))
        return out

    def _maybe_rebalance(self) -> None:
        new_counts = self.strategy.rebalanced_counts(
            self.ensemble.size, self.counts, self._shard_nsps())
        if new_counts is None or list(new_counts) == self.counts:
            return
        tracer = active_tracer()
        if tracer is not None:
            tracer.recovery("rebalance", step=self.steps_done,
                            counts=str(list(new_counts)))
        self._gather()
        self._bank_busy_seconds()
        self.counts = list(new_counts)
        self.shards = self._partition(self.counts)
        self.rebalances += 1

    def _bank_busy_seconds(self) -> None:
        """Carry per-member busy time across a repartition, so shard
        reports survive rebalances and redistributions."""
        for state in self.shards:
            self._busy_by_member[state.member.name] = \
                self._busy_by_member.get(state.member.name, 0.0) \
                + state.busy_seconds

    # -- device-loss recovery ---------------------------------------------

    def _redistribute(self) -> None:
        """Drop lost members, restore the checkpoint, re-shard, replay."""
        injector = active_fault_injector()
        lost = [i for i, m in enumerate(self.group.members)
                if injector is not None and m.name in injector.lost_devices]
        if not lost or self.checkpointer is None:
            # Not an injected loss we can recover from (or no
            # checkpoint to restore) — propagate as fatal.
            raise DeviceLostError(
                "device lost with no checkpointer attached"
                if self.checkpointer is None else
                "device lost but no group member is marked lost")
        # Bank the abandoned epoch's simulated time before its
        # timelines disappear with the old queues.
        self._elapsed_base += self.group.makespan
        self._bank_busy_seconds()
        group = self.group
        for index in sorted(lost, reverse=True):
            name = group.members[index].name
            tracer = active_tracer()
            if tracer is not None:
                tracer.recovery("redistribute", device=name,
                                step=self.steps_done,
                                survivors=len(group) - 1)
            group = group.drop(index)
        self.group = group
        self.exchange = self._make_exchange(group)
        reset = getattr(self.strategy, "reset", None)
        if callable(reset):
            reset()
        step, time, restored = self.checkpointer.load_push()
        for name in COMPONENTS:
            self.ensemble.component(name)[:] = restored.component(name)
        self.ensemble.type_ids[:] = restored.type_ids
        self.steps_done = int(step)
        self.time = float(time)
        self.counts = list(self.strategy.initial_counts(
            self.ensemble.size, group.devices))
        self.shards = self._partition(self.counts)
        self.redistributions += 1
