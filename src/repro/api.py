"""One front door for every push workload: ``run_push(RunConfig())``.

The facade keeps the three engine constructors —
:class:`~repro.oneapi.runtime.PushEngine` (single device),
:class:`~repro.resilience.runner.ResilientPushEngine` (fallback ladder
+ fault plans) and :class:`~repro.distributed.runner.ShardedPushEngine`
(device groups) — reachable through one declarative
:class:`RunConfig`, returning one :class:`RunReport`.  Device fields
accept backend-qualified specs (``"cuda:gpu0"``) next to the bare
oneAPI keys; see :mod:`repro.backends` and ``docs/BACKENDS.md``.

Mode selection is by configuration shape, not by flag:

* ``group`` set (a spec string like ``"2x iris-xe-max"``) — sharded
  run across a :class:`~repro.distributed.group.DeviceGroup`;
* ``devices`` ladder or ``fault_plan`` set — resilient run walking the
  fallback chain under the named fault plan;
* otherwise — a plain single-device run on ``device``.

Error surfacing: any exception escaping the scheduler, exchange or
kernel-graph paths that is not already a
:class:`~repro.errors.ReproError` is wrapped into the closest
documented class before it reaches the caller — the facade guarantee
stated in :mod:`repro.errors`.  Callers can therefore handle every
failure with one ``except ReproError`` arm.

Quickstart::

    from repro.api import RunConfig, run_push

    report = run_push(RunConfig(n_particles=100_000, steps=10,
                                device="iris-xe-max", fusion=True))
    print(report.nsps, report.cache_stats["misses"])

    # or let the roofline-driven autotuner pick layout, precision and
    # the execution path (see docs/TUNING.md):
    report = run_push(RunConfig(config="auto", device="cpu"))
    print(report.tuning.best.candidate.label,
          report.predicted_nsps, report.nsps)
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .errors import (AllocationFailedError, ConfigurationError, KernelError,
                     ReproError)
from .fp import Precision
from .particles.ensemble import Layout

__all__ = ["RunConfig", "RunReport", "run_push",
           "PicConfig", "PicReport", "run_pic"]

_LAYOUTS = {"aos": Layout.AOS, "soa": Layout.SOA}
_PRECISIONS = {"float": Precision.SINGLE, "single": Precision.SINGLE,
               "double": Precision.DOUBLE}


def _coerce_layout(value) -> Layout:
    """Accept a Layout enum or a spelling like "SoA"/"aos"."""
    if isinstance(value, Layout):
        return value
    try:
        return _LAYOUTS[str(value).lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown layout {value!r}; expected 'AoS' or 'SoA'") from None


def _coerce_precision(value) -> Precision:
    """Accept a Precision enum or "float"/"single"/"double"."""
    if isinstance(value, Precision):
        return value
    try:
        return _PRECISIONS[str(value).lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown precision {value!r}; expected 'float' or "
            f"'double'") from None


def _map_error(exc: BaseException) -> ReproError:
    """The facade guarantee: fold foreign exceptions into the taxonomy.

    ``ReproError`` instances pass through untouched.  Misuse-shaped
    builtins become :class:`ConfigurationError`, resource exhaustion
    becomes :class:`AllocationFailedError`, and anything else — a bug
    in a kernel body, a numpy broadcast error deep in the scheduler —
    surfaces as :class:`KernelError` with the original chained as
    ``__cause__`` so nothing is hidden.
    """
    if isinstance(exc, ReproError):
        return exc
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        mapped: ReproError = ConfigurationError(
            f"invalid run configuration: {exc}")
    elif isinstance(exc, MemoryError):
        mapped = AllocationFailedError(f"host allocation failed: {exc}")
    else:
        mapped = KernelError(
            f"push run failed ({type(exc).__name__}): {exc}")
    mapped.__cause__ = exc
    return mapped


@dataclass
class RunConfig:
    """Everything :func:`run_push` needs, in one declarative object.

    Attributes:
        scenario: "precalculated" or "analytical" field handling.
        layout: Particle storage layout (enum or "AoS"/"SoA").
        precision: Arithmetic precision (enum or "float"/"double").
        n_particles: Ensemble size.
        steps: Measured push steps (after ``warmup``).
        warmup: Warm-up steps excluded from the steady NSPS (they carry
            JIT and cold-page cost; the paper's "first iteration is
            ~1.5x slower" effect).
        dt: Time step [s]; None means the paper's T/100.
        device: Device spec for single-device runs — a bare oneAPI key
            ("cpu", "p630", "iris-xe-max") or a backend-qualified spec
            ("cuda:gpu0"); see :mod:`repro.backends.registry`.
        group: Device-group spec string ("2x iris-xe-max"); selects the
            sharded engine.
        devices: Fallback ladder of device keys; selects the resilient
            engine (default ladder when only ``fault_plan`` is set).
        fault_plan: Named fault plan to inject (see
            :mod:`repro.resilience.plans`).
        fault_seed: Fault injector RNG seed.
        fusion: Kernel-graph execution mode: True fuses compatible
            kernels, False runs the graph unfused, None keeps the
            legacy single-launch path (no graph, no program-cache
            interplay beyond the queue's own).
        diagnostics: Append the kinetic-energy diagnostic kernel to the
            per-step graph (graph mode only).
        trace_path: Write a Chrome ``trace_event`` JSON here.
        checkpoint_every: Step-granular checkpoint cadence for the
            resilient/sharded engines (0 = no checkpointing).
        persist_cache: On-disk path for the JIT program cache; warm
            across *processes*, the simulated analogue of
            ``SYCL_CACHE_PERSISTENT``.
        program_cache: A live
            :class:`~repro.oneapi.programcache.ProgramCache` instance
            to use instead of building a fresh one — pass the same
            instance to several ``run_push`` calls and only the first
            run of each program pays the JIT.  This is how
            :mod:`repro.service` amortizes compiles across a whole
            schedule of jobs (see ``docs/SERVICE.md``).  Mutually
            exclusive with ``persist_cache`` (a shared cache owns its
            own persistence policy).
        config: ``"auto"`` hands layout/precision/fusion (plus SMT
            tiling and shard strategy where the mode exposes them) to
            the roofline-driven autotuner
            (:mod:`repro.analysis.autotune`): the run executes the
            predicted-best candidate, the report carries the ranked
            :class:`~repro.analysis.autotune.TuningReport` and the
            predicted-vs-measured comparison.  ``None`` (default) runs
            the config as written.
        threads_per_unit: Hardware threads per core for single-device
            CPU runs (1 = SMT off, None = all; the paper's 48-vs-96
            thread axis).  Set by the autotuner's tiling search.
        strategy: Shard-split strategy name for group runs ("even",
            "bandwidth", "flops", "nsps"); None keeps the engine's
            even default.
        tune_device: Pricing-only device descriptor override for the
            autotuner — a calibration experiment: predictions use this
            (hypothetical, e.g. datasheet-derived) descriptor while
            the run executes on the calibrated one, so a deliberate
            gap surfaces as calibration warnings.  Leave None outside
            such experiments.
        tune_devices: Device specs the autotuner may *select between*
            (``config="auto"``, single mode only): candidates span
            these devices on top of layout/precision/fusion, the
            winner's device becomes the run's device.  This is the
            backend axis — ``("cpu", "cuda:gpu0")`` lets the tuner
            weigh an oneAPI CPU against a CUDA card.  None keeps the
            device fixed as written.
    """

    scenario: str = "precalculated"
    layout: object = Layout.SOA
    precision: object = Precision.SINGLE
    n_particles: int = 100_000
    steps: int = 10
    warmup: int = 2
    dt: Optional[float] = None
    device: str = "iris-xe-max"
    group: Optional[str] = None
    devices: Optional[Sequence[str]] = None
    fault_plan: Optional[str] = None
    fault_seed: int = 0
    fusion: Optional[bool] = None
    diagnostics: bool = False
    trace_path: Optional[str] = None
    checkpoint_every: int = 0
    persist_cache: Optional[str] = None
    program_cache: Optional[object] = None
    config: Optional[str] = None
    threads_per_unit: Optional[int] = None
    strategy: Optional[str] = None
    tune_device: Optional[object] = None
    tune_devices: Optional[Sequence[str]] = None

    def validate(self) -> "RunConfig":
        """Normalise enums and reject inconsistent combinations."""
        self.layout = _coerce_layout(self.layout)
        self.precision = _coerce_precision(self.precision)
        if self.scenario not in ("precalculated", "analytical"):
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r}")
        if self.n_particles < 1:
            raise ConfigurationError(
                f"n_particles must be >= 1, got {self.n_particles}")
        if self.steps < 1:
            raise ConfigurationError(f"steps must be >= 1, got {self.steps}")
        if self.warmup < 0:
            raise ConfigurationError(
                f"warmup must be >= 0, got {self.warmup}")
        if self.group is not None and self.devices is not None:
            raise ConfigurationError(
                "group and devices are mutually exclusive: a sharded "
                "run recovers by redistribution, not by ladder fallback")
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}")
        if self.config not in (None, "auto"):
            raise ConfigurationError(
                f"config must be None or 'auto', got {self.config!r}")
        if self.program_cache is not None \
                and self.persist_cache is not None:
            raise ConfigurationError(
                "program_cache and persist_cache are mutually "
                "exclusive: a shared cache instance owns its own "
                "persistence policy")
        if self.threads_per_unit is not None:
            if self.threads_per_unit < 1:
                raise ConfigurationError(
                    f"threads_per_unit must be >= 1, "
                    f"got {self.threads_per_unit}")
            if self.mode != "single":
                raise ConfigurationError(
                    "threads_per_unit applies to single-device runs "
                    "only; the resilient and sharded engines do not "
                    "expose SMT tiling")
        if self.strategy is not None:
            from .distributed.sharding import STRATEGY_NAMES
            if self.strategy not in STRATEGY_NAMES:
                raise ConfigurationError(
                    f"unknown strategy {self.strategy!r}; expected one "
                    f"of {STRATEGY_NAMES}")
            if self.mode != "sharded":
                raise ConfigurationError(
                    "strategy needs a device group (set group=...)")
        if self.tune_devices is not None:
            if self.config != "auto":
                raise ConfigurationError(
                    "tune_devices needs config='auto' — it is an "
                    "autotuner search axis, not a run setting")
            if self.mode != "single":
                raise ConfigurationError(
                    "tune_devices applies to single-device runs only; "
                    "group and ladder runs fix their devices")
            if not self.tune_devices:
                raise ConfigurationError(
                    "tune_devices must name at least one device spec")
            if self.tune_device is not None:
                raise ConfigurationError(
                    "tune_device and tune_devices are mutually "
                    "exclusive: a pricing override assumes a fixed "
                    "execution device")
            from .backends.registry import parse_device_spec
            for spec in self.tune_devices:
                parse_device_spec(spec)   # typed error on bad backend
        return self

    @property
    def mode(self) -> str:
        """Which engine the config selects: single/resilient/sharded."""
        if self.group is not None:
            return "sharded"
        if self.devices is not None or self.fault_plan is not None:
            return "resilient"
        return "single"


@dataclass
class RunReport:
    """What one :func:`run_push` call produced.

    ``nsps`` is the steady-state figure of merit (warm-up excluded);
    ``first_step_nsps`` keeps the cold cost visible so the JIT penalty
    of a cold program cache can be read off one report.  ``digest`` is
    the sha256 of the final particle state
    (:func:`repro.core.stepping.state_digest`) — two configs that must
    agree bit-for-bit (fused vs unfused) compare digests, not floats.

    Autotuned runs (``config="auto"``) additionally carry ``tuning``
    (the ranked :class:`~repro.analysis.autotune.TuningReport`),
    ``predicted_nsps`` (the winner's prediction, to compare against
    the measured ``nsps``) and ``calibration_warnings`` — non-empty
    when measurement and prediction disagree beyond the calibration
    tolerance (see ``docs/TUNING.md``).
    """

    mode: str
    scenario: str
    layout: str
    precision: str
    device: str
    n_particles: int
    steps: int
    nsps: float
    first_step_nsps: float
    simulated_seconds: float
    digest: str
    fusion: Optional[bool] = None
    fusion_groups: int = 0
    kernels_eliminated: int = 0
    cache_stats: Dict[str, float] = field(default_factory=dict)
    recovery: object = None
    group_report: object = None
    validation: object = None
    trace_path: Optional[str] = None
    tuning: object = None
    predicted_nsps: Optional[float] = None
    calibration_warnings: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready flat summary (sub-reports reduced to presence)."""
        summary = {
            "mode": self.mode, "scenario": self.scenario,
            "layout": self.layout, "precision": self.precision,
            "device": self.device, "n_particles": self.n_particles,
            "steps": self.steps, "nsps": self.nsps,
            "first_step_nsps": self.first_step_nsps,
            "simulated_seconds": self.simulated_seconds,
            "digest": self.digest, "fusion": self.fusion,
            "fusion_groups": self.fusion_groups,
            "kernels_eliminated": self.kernels_eliminated,
            "cache_stats": dict(self.cache_stats),
        }
        if self.predicted_nsps is not None:
            summary["predicted_nsps"] = self.predicted_nsps
            summary["calibration_warnings"] = \
                list(self.calibration_warnings)
        return summary

    def as_cell(self, suite: str, config: Optional[str] = None,
                tolerance: Optional[float] = None) -> Dict[str, object]:
        """Adapt this run into a regression test-case cell.

        The declarative regression farm (:mod:`repro.regress`) stores
        references as schema-v1 baseline cells — identity keys
        (``suite/backend/device/config`` plus the layout/precision/
        scenario axes), a named ``metrics`` mapping and a per-cell
        tolerance.  This is the one adapter from a live
        :class:`RunReport` to that shape; ``config`` defaults to the
        execution-path label (``legacy``/``unfused``/``fused``).
        """
        from .regress.baseline import backend_of_device
        fusion_label = {None: "legacy", True: "fused", False: "unfused"}
        metrics: Dict[str, float] = {
            "nsps": float(self.nsps),
            "cold_nsps": float(self.first_step_nsps),
        }
        if self.fusion is not None:
            metrics["fusion_groups"] = float(self.fusion_groups)
            metrics["kernels_eliminated"] = float(self.kernels_eliminated)
        if self.cache_stats:
            metrics["jit_seconds"] = float(
                self.cache_stats.get("jit_seconds_charged", 0.0))
        cell: Dict[str, object] = {
            "suite": suite,
            "backend": backend_of_device(self.device),
            "device": self.device,
            "config": config or fusion_label[self.fusion],
            "layout": self.layout, "precision": self.precision,
            "scenario": self.scenario,
            "metrics": metrics,
            "extra": {"digest": self.digest},
        }
        if tolerance is not None:
            cell["tolerance"] = tolerance
        return cell


def _make_ensemble(config: RunConfig):
    from .bench.scenarios import paper_ensemble
    return paper_ensemble(config.n_particles, config.layout,
                          config.precision)


def _program_cache(config: RunConfig):
    """The run's JIT cache: the caller-shared one, or a fresh one."""
    if config.program_cache is not None:
        return config.program_cache
    from .oneapi.programcache import ProgramCache
    return ProgramCache(persist_path=config.persist_cache)


def _plan_stats(executor) -> Tuple[int, int]:
    plan = getattr(executor, "last_plan", None) if executor else None
    if plan is None:
        return 0, 0
    return plan.fused_group_count, plan.kernels_eliminated


def _steady_nsps(step_seconds: Sequence[float], n: int,
                 warmup: int) -> float:
    """Steady-state NSPS over per-step simulated seconds.

    Graph-mode steps can span several launches, so this averages the
    engine's ``step_seconds`` (whole steps) rather than per-record
    NSPS, skipping the warm-up steps that carry JIT and cold pages.
    """
    steady = step_seconds[warmup:] if len(step_seconds) > warmup \
        else list(step_seconds)
    return sum(steady) / len(steady) * 1.0e9 / n


def _run_single(config: RunConfig, source, dt: float) -> "_RunOutcome":
    from .backends.registry import resolve_device
    from .core.stepping import state_digest
    from .oneapi.runtime import PushEngine

    ensemble = _make_ensemble(config)
    backend, device = resolve_device(config.device)
    cache = _program_cache(config)
    queue = backend.make_queue(device, program_cache=cache,
                               threads_per_unit=config.threads_per_unit)
    engine = PushEngine(queue, ensemble, config.scenario, source, dt,
                        fusion=config.fusion,
                        diagnostics=config.diagnostics)
    engine.run(config.warmup + config.steps)
    groups, eliminated = _plan_stats(getattr(engine, "executor", None))
    n = config.n_particles
    report = RunReport(
        mode="single", scenario=config.scenario,
        layout=config.layout.value, precision=config.precision.value,
        device=config.device, n_particles=n,
        steps=config.steps,
        nsps=_steady_nsps(engine.step_seconds, n, config.warmup),
        first_step_nsps=engine.step_seconds[0] * 1.0e9 / n,
        simulated_seconds=queue.timeline.makespan,
        digest=state_digest(ensemble),
        fusion=config.fusion, fusion_groups=groups,
        kernels_eliminated=eliminated,
        cache_stats=cache.stats.as_dict())
    return report, ensemble, engine.queues()


def _run_resilient(config: RunConfig, source, dt: float) -> "_RunOutcome":
    from .bench.metrics import nsps_from_records
    from .core.stepping import state_digest
    from .resilience import (Checkpointer, fault_injection, named_plan)
    from .resilience.runner import DEVICE_LADDER, ResilientPushEngine

    ensemble = _make_ensemble(config)
    ladder = tuple(config.devices) if config.devices is not None \
        else DEVICE_LADDER
    cache = _program_cache(config)

    def drive(checkpointer):
        engine = ResilientPushEngine(
            ensemble, config.scenario, source, dt, devices=ladder,
            checkpointer=checkpointer, fusion=config.fusion,
            program_cache=cache)
        if config.fault_plan is not None:
            with fault_injection(named_plan(config.fault_plan),
                                 seed=config.fault_seed):
                return engine, *engine.run(config.warmup + config.steps)
        return engine, *engine.run(config.warmup + config.steps)

    if config.checkpoint_every > 0:
        with tempfile.TemporaryDirectory() as scratch:
            engine, records, report = drive(
                Checkpointer(scratch, every=config.checkpoint_every))
    else:
        engine, records, report = drive(None)
    groups, eliminated = _plan_stats(
        getattr(engine.runner, "executor", None))
    run_report = RunReport(
        mode="resilient", scenario=config.scenario,
        layout=config.layout.value, precision=config.precision.value,
        device=report.final_device, n_particles=config.n_particles,
        steps=config.steps,
        nsps=nsps_from_records(records, skip_warmup=config.warmup),
        first_step_nsps=records[0].nsps(),
        simulated_seconds=engine.queue.timeline.makespan,
        digest=state_digest(ensemble),
        fusion=config.fusion, fusion_groups=groups,
        kernels_eliminated=eliminated,
        cache_stats=cache.stats.as_dict(), recovery=report)
    return run_report, ensemble, engine.queues()


def _run_sharded(config: RunConfig, source, dt: float) -> "_RunOutcome":
    from .core.stepping import state_digest
    from .distributed.group import DeviceGroup, parse_group_spec
    from .distributed.runner import ShardedPushEngine
    from .distributed.sharding import strategy_by_name
    from .resilience import Checkpointer

    ensemble = _make_ensemble(config)
    cache = _program_cache(config)
    group = DeviceGroup(parse_group_spec(config.group),
                        program_cache=cache)
    strategy = strategy_by_name(config.strategy, config.precision) \
        if config.strategy is not None else None

    def drive(checkpointer):
        engine = ShardedPushEngine(
            group, ensemble, config.scenario, source, dt,
            strategy=strategy,
            checkpointer=checkpointer, fusion=config.fusion)
        if config.warmup > 0:
            engine.run(config.warmup)
            engine.reset_measurement()
        return engine, engine.run(config.warmup + config.steps)

    if config.checkpoint_every > 0:
        with tempfile.TemporaryDirectory() as scratch:
            engine, report = drive(Checkpointer(
                scratch, every=config.checkpoint_every))
    else:
        engine, report = drive(None)
    run_report = RunReport(
        mode="sharded", scenario=config.scenario,
        layout=config.layout.value, precision=config.precision.value,
        device=config.group, n_particles=config.n_particles,
        steps=config.steps, nsps=report.nsps, first_step_nsps=report.nsps,
        simulated_seconds=report.simulated_seconds,
        digest=state_digest(ensemble),
        fusion=config.fusion,
        cache_stats=cache.stats.as_dict(), group_report=report)
    return run_report, ensemble, engine.queues()


#: What every ``_run_*`` returns: the report, the final ensemble, and
#: the queues the run submitted to (for post-run validation).
_RunOutcome = Tuple[RunReport, object, Tuple[object, ...]]

_RUNNERS = {"single": _run_single, "resilient": _run_resilient,
            "sharded": _run_sharded}


def _execute(config: RunConfig, source, dt: float,
             validate: bool) -> RunReport:
    tuning = None
    if config.config == "auto":
        from .analysis.autotune import (apply_candidate, check_calibration,
                                        tune)
        tuning = tune(config)
        config = apply_candidate(config, tuning.best.candidate)
    report, ensemble, queues = _RUNNERS[config.mode](config, source, dt)
    if tuning is not None:
        report.tuning = tuning
        report.predicted_nsps = tuning.best.predicted_nsps
        report.calibration_warnings = check_calibration(
            tuning.best, report.nsps, tuning.target)
    if validate:
        from .validation import validate_run
        report.validation = validate_run(config, ensemble, queues,
                                         source, dt)
    return report


def run_push(config: RunConfig, validate: bool = False) -> RunReport:
    """Run a Boris push workload described by ``config``.

    Dispatches to the single-device, resilient or sharded engine (see
    the module docstring for the selection rules), optionally under
    the tracer, and returns a :class:`RunReport`.  Every failure
    surfaces as a :class:`~repro.errors.ReproError` subclass.

    ``validate=True`` additionally replays every queue's command log
    through the hazard detector and diffs a particle sample of the
    final state against the scalar reference pusher
    (:func:`repro.validation.validate_run`); the evidence lands on
    ``report.validation``, a failure raises
    :class:`~repro.errors.HazardError` or
    :class:`~repro.errors.ValidationError`.
    """
    from .bench import paper_time_step, paper_wave

    try:
        config.validate()
        source = paper_wave()
        dt = config.dt if config.dt is not None else paper_time_step()
        if config.trace_path is not None:
            from .observability import Tracer, tracing, write_chrome_trace
            tracer = Tracer()
            try:
                with tracing(tracer):
                    report = _execute(config, source, dt, validate)
            finally:
                # Written even when validation raises: the trace holds
                # the hazard/validation events that explain the failure.
                write_chrome_trace(tracer, config.trace_path)
            report.trace_path = config.trace_path
        else:
            report = _execute(config, source, dt, validate)
    except ReproError:
        raise
    except Exception as exc:   # the facade guarantee (see _map_error)
        raise _map_error(exc) from exc
    return report


# -- the PIC facade --------------------------------------------------------


@dataclass
class PicConfig:
    """Everything :func:`run_pic` needs, mirroring :class:`RunConfig`.

    Attributes:
        scenario: A registered PIC scenario name
            (:data:`repro.pic.scenarios.SCENARIOS`): "laser-slab",
            "magnetic-mirror" or "relativistic-beam".
        layout: Particle storage layout (enum or "AoS"/"SoA").
        precision: Particle storage precision (enum or
            "float"/"double"); deposition always accumulates in
            float64 (see :mod:`repro.pic.deposition`).
        n_particles: Ensemble size; None takes the scenario default.
        steps: Measured PIC steps (after ``warmup``).
        warmup: Warm-up steps excluded from the steady NSPS.
        seed: Scenario seed — fixes the particle draw *and* every
            Monte Carlo operator, so two runs with equal
            (scenario, n, seed, layout, precision) are bit-exact.
        deposition: Override the scenario's deposition scheme
            ("esirkepov", "direct", "none"); None keeps the default.
        solver: Override the Maxwell solver ("fdtd", "spectral").
        device: Device spec, as in :class:`RunConfig`.
        fusion: True fuses the step's elementwise stages (gather,
            push, Monte Carlo) into one launch per species; False runs
            the graph unfused; None keeps the legacy per-stage path.
        trace_path: Write a Chrome ``trace_event`` JSON here.
        persist_cache / program_cache: As in :class:`RunConfig`.
    """

    scenario: str = "laser-slab"
    layout: object = Layout.SOA
    precision: object = Precision.DOUBLE
    n_particles: Optional[int] = None
    steps: int = 8
    warmup: int = 2
    seed: int = 0
    deposition: Optional[str] = None
    solver: Optional[str] = None
    device: str = "iris-xe-max"
    fusion: Optional[bool] = True
    trace_path: Optional[str] = None
    persist_cache: Optional[str] = None
    program_cache: Optional[object] = None

    def validate(self) -> "PicConfig":
        """Normalise enums and reject inconsistent combinations."""
        from .pic.scenarios import get_scenario
        from .pic.simulation import DEPOSITIONS
        self.layout = _coerce_layout(self.layout)
        self.precision = _coerce_precision(self.precision)
        get_scenario(self.scenario)       # typed error on unknown name
        if self.n_particles is not None and self.n_particles < 1:
            raise ConfigurationError(
                f"n_particles must be >= 1, got {self.n_particles}")
        if self.steps < 1:
            raise ConfigurationError(f"steps must be >= 1, got {self.steps}")
        if self.warmup < 0:
            raise ConfigurationError(
                f"warmup must be >= 0, got {self.warmup}")
        if self.deposition is not None \
                and self.deposition not in DEPOSITIONS:
            raise ConfigurationError(
                f"deposition must be one of {DEPOSITIONS}, "
                f"got {self.deposition!r}")
        if self.solver is not None \
                and self.solver not in ("fdtd", "spectral"):
            raise ConfigurationError(
                f"solver must be 'fdtd' or 'spectral', got {self.solver!r}")
        if self.program_cache is not None \
                and self.persist_cache is not None:
            raise ConfigurationError(
                "program_cache and persist_cache are mutually "
                "exclusive: a shared cache instance owns its own "
                "persistence policy")
        return self


@dataclass
class PicReport:
    """What one :func:`run_pic` call produced.

    ``digest`` is :func:`repro.pic.engine.pic_state_digest` over the
    final particles *and* grid — fused, unfused and legacy runs of the
    same config must agree bit-for-bit.  ``energy_drift`` is the
    relative total-energy excursion over the measured steps (the
    scenario's validation figure); ``nsps`` is steady-state simulated
    nanoseconds per particle-step, as everywhere else in the repo.
    """

    scenario: str
    layout: str
    precision: str
    device: str
    n_particles: int
    steps: int
    nsps: float
    first_step_nsps: float
    simulated_seconds: float
    digest: str
    energy_drift: float
    deposition: str
    solver: str
    fusion: Optional[bool] = None
    fusion_groups: int = 0
    kernels_eliminated: int = 0
    cache_stats: Dict[str, float] = field(default_factory=dict)
    trace_path: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready flat summary."""
        return {
            "scenario": self.scenario, "layout": self.layout,
            "precision": self.precision, "device": self.device,
            "n_particles": self.n_particles, "steps": self.steps,
            "nsps": self.nsps, "first_step_nsps": self.first_step_nsps,
            "simulated_seconds": self.simulated_seconds,
            "digest": self.digest, "energy_drift": self.energy_drift,
            "deposition": self.deposition, "solver": self.solver,
            "fusion": self.fusion, "fusion_groups": self.fusion_groups,
            "kernels_eliminated": self.kernels_eliminated,
            "cache_stats": dict(self.cache_stats),
        }

    def as_cell(self, suite: str = "pic", config: Optional[str] = None,
                tolerance: Optional[float] = None) -> Dict[str, object]:
        """Adapt this run into a schema-v1 regression cell."""
        from .regress.baseline import backend_of_device
        fusion_label = {None: "legacy", True: "fused", False: "unfused"}
        metrics: Dict[str, float] = {
            "nsps": float(self.nsps),
            "cold_nsps": float(self.first_step_nsps),
        }
        if self.fusion is not None:
            metrics["fusion_groups"] = float(self.fusion_groups)
            metrics["kernels_eliminated"] = float(self.kernels_eliminated)
        cell: Dict[str, object] = {
            "suite": suite,
            "backend": backend_of_device(self.device),
            "device": self.device,
            "config": config or fusion_label[self.fusion],
            "layout": self.layout, "precision": self.precision,
            "scenario": self.scenario,
            "metrics": metrics,
            "extra": {"digest": self.digest,
                      "energy_drift": self.energy_drift,
                      "deposition": self.deposition,
                      "solver": self.solver},
        }
        if tolerance is not None:
            cell["tolerance"] = tolerance
        return cell


def _execute_pic(config: PicConfig, validate: bool) -> PicReport:
    from .backends.registry import resolve_device
    from .pic.diagnostics import EnergyHistory
    from .pic.engine import PicEngine, pic_state_digest
    from .pic.scenarios import build_scenario

    simulation = build_scenario(
        config.scenario, config.n_particles, seed=config.seed,
        layout=config.layout, precision=config.precision,
        deposition=config.deposition, solver=config.solver)
    backend, device = resolve_device(config.device)
    cache = _program_cache(config)
    queue = backend.make_queue(device, program_cache=cache)
    engine = PicEngine(queue, simulation, fusion=config.fusion,
                       validate=validate and config.fusion is not None)
    history = EnergyHistory()
    history.record(simulation.time, simulation.grid,
                   simulation.ensembles)
    for _ in range(config.warmup + config.steps):
        engine.step()
        history.record(simulation.time, simulation.grid,
                       simulation.ensembles)
    if validate and config.fusion is None:
        from .validation.hazard import assert_hazard_free
        assert_hazard_free(queue.commands,
                           in_order=queue.timeline.in_order)
    groups, eliminated = _plan_stats(engine.executor)
    n = simulation.ensembles[0].size
    return PicReport(
        scenario=config.scenario, layout=config.layout.value,
        precision=config.precision.value, device=config.device,
        n_particles=n, steps=config.steps,
        nsps=_steady_nsps(engine.step_seconds, n, config.warmup),
        first_step_nsps=engine.step_seconds[0] * 1.0e9 / n,
        simulated_seconds=queue.timeline.makespan,
        digest=pic_state_digest(simulation),
        energy_drift=history.relative_drift(),
        deposition=simulation.deposition,
        solver=simulation.solver_kind,
        fusion=config.fusion, fusion_groups=groups,
        kernels_eliminated=eliminated,
        cache_stats=cache.stats.as_dict())


def run_pic(config: PicConfig, validate: bool = False) -> PicReport:
    """Run a full self-consistent PIC scenario described by ``config``.

    The scenario's four stages (gather, push, deposit, field advance)
    plus its Monte Carlo operators execute through the kernel-graph
    engine (:class:`~repro.pic.engine.PicEngine`) on the configured
    device, and the report carries performance, digest and
    energy-conservation evidence in one object.  ``validate=True``
    additionally replays every launch through the hazard detector.
    Every failure surfaces as a :class:`~repro.errors.ReproError`.
    """
    try:
        config.validate()
        if config.trace_path is not None:
            from .observability import Tracer, tracing, write_chrome_trace
            tracer = Tracer()
            try:
                with tracing(tracer):
                    report = _execute_pic(config, validate)
            finally:
                write_chrome_trace(tracer, config.trace_path)
            report.trace_path = config.trace_path
        else:
            report = _execute_pic(config, validate)
    except ReproError:
        raise
    except Exception as exc:   # the facade guarantee (see _map_error)
        raise _map_error(exc) from exc
    return report
