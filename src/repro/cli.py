"""Command-line interface: regenerate any of the paper's artefacts.

Usage::

    python -m repro bench --list      # the declared regression suites
    python -m repro bench table2      # one suite's artefact (model vs paper)
    python -m repro bench --regress --filter smoke   # drift-check matrix
    python -m repro bench fusion --record            # append a v1 snapshot
    python -m repro devices           # device inventory, every backend
    python -m repro portability       # Pennycook PP score sweep
    python -m repro trace table2 --out t.json   # traced run -> Chrome JSON

``repro bench`` is the one entry point over every benchmark artefact
and every committed baseline (see docs/BENCHMARKS.md): each suite is a
declarative :class:`repro.regress.RegressionTest`, ``--regress`` runs
the sanity + performance stages of the selected matrix and exits 1
with a per-cell diff on drift, ``--record`` appends a schema-v1
snapshot to ``benchmarks/BENCH_<suite>.json``.  The pre-PR9 artefact
subcommands (``table2 table3 fig1 first-iter threads measure``) remain
as deprecation shims with identical output and exit codes.

Device flags accept backend-qualified specs (``cuda:gpu0``) anywhere a
bare key (``cpu``, ``iris-xe-max``) works; ``repro devices --backend
cuda`` filters the inventory and ``repro portability`` scores the
portable configuration across the whole matrix (docs/BACKENDS.md).

``--particles`` scales the modelled ensemble (default: the paper's
1e7; the model is O(1) in memory, so the default is cheap).

Any command can also be traced in place with the ``--trace`` flag,
accepted before or after the command:
``python -m repro table2 --trace out.json``.
Both spellings write a Chrome ``trace_event`` file (open it in
``chrome://tracing`` or https://ui.perfetto.dev) and print the
per-kernel summary table; see ``docs/PROFILING.md``.

Fault injection (see ``docs/RESILIENCE.md``) follows the same pattern:
``--fault-plan PLAN --fault-seed N`` runs any command with the named
deterministic fault plan installed, and ``python -m repro faults``
drives a resilient push directly::

    python -m repro faults --plan device-loss --steps 20
    python -m repro faults --self-check        # chaos seed matrix
    python -m repro table2 --fault-plan transient --fault-seed 7

``python -m repro push`` is the facade command: one
:class:`repro.api.RunConfig` driven end to end (single-device,
resilient or sharded — the mode follows from the flags), with
``--fusion/--no-fusion`` selecting the kernel-graph execution path and
``--record`` regenerating the fused-vs-unfused comparison into
``benchmarks/BENCH_fusion.json``.

``python -m repro serve`` runs a multi-job demo schedule through the
fault-tolerant job scheduler (:mod:`repro.service`) — mixed priorities
and tenants, one job carrying an injected device loss — and ``python
-m repro submit`` pushes a single job through it with service-level
knobs (``--priority``, ``--tenant``, ``--deadline``, ``--budget``).
For these two commands the global ``--fault-plan`` scopes injection to
*per-job* injectors instead of installing one process-wide.  See
``docs/SERVICE.md``.

Runner commands (``table2 table3 shard faults push serve submit``, and
``trace`` passing through) share one normalized flag set —
``--device``, ``--group``, ``--precision``, ``--layout``, ``--record``,
``--record-dir`` — defined once in a parent parser, so every command
spells them identically.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .bench import (
    DEVICE_NAMES,
    device_by_name,
    format_table,
    paper_time_step,
    paper_wave,
)
from .bench.scenarios import paper_ensemble
from .fp import Precision
from .particles.ensemble import Layout

__all__ = ["main"]

#: The paper's ensemble size — the default of the legacy artefact
#: shims (``repro bench`` instead replays each suite's committed
#: baseline configuration when ``--particles`` is omitted).
DEFAULT_PARTICLES = 10_000_000


def _particles(args: argparse.Namespace) -> int:
    """The global ``--particles`` with the paper's default applied."""
    return args.particles if args.particles is not None \
        else DEFAULT_PARTICLES


def _baseline_dir(args: argparse.Namespace):
    return getattr(args, "record_dir", None)


def _record_cells(args: argparse.Namespace, suite: str, cells,
                  n_particles: int, params=None) -> None:
    """Append a schema-v1 baseline snapshot when ``--record`` was given.

    The normalized ``--layout/--precision/--device`` flags act as cell
    filters here: the printed model-vs-paper table always shows every
    cell (it mirrors the paper's layout), but the recorded snapshot
    can be narrowed to the cells under study.
    """
    if not getattr(args, "record", False):
        return
    for key in ("layout", "precision", "device"):
        want = getattr(args, key, None)
        if want is not None:
            cells = [c for c in cells if c.get(key) == want]
    from .regress import append_snapshot
    path = append_snapshot(suite, cells, n_particles,
                           directory=_baseline_dir(args), params=params)
    print(f"recorded snapshot -> {path}")


def _run_bench_suite(suite_name: str, args: argparse.Namespace,
                     n=None) -> None:
    """Display one declared suite: run, render, optionally record."""
    from .errors import ConfigurationError
    from .regress import get_suite
    test = get_suite(suite_name, directory=_baseline_dir(args))
    kwargs = {}
    if suite_name == "measure":
        kwargs["steps"] = getattr(args, "measure_steps", 5)
        n = getattr(args, "measure_particles", 200_000)
    if getattr(args, "record", False) and not test.has_baseline:
        raise ConfigurationError(
            f"suite {suite_name!r} records no baseline (sanity-only or "
            f"host-dependent); drop --record")
    artifact = test.run(n=n, **kwargs)
    print(test.render(artifact))
    if test.has_baseline:
        _record_cells(args, suite_name, test.cells(artifact),
                      artifact.n_particles, artifact.params)


def _cmd_bench(args: argparse.Namespace) -> None:
    from .errors import ConfigurationError
    from .regress import parse_filter, render_listing, run_regression
    directory = _baseline_dir(args)
    test_filter = parse_filter(getattr(args, "filter", None))
    suites = list(args.bench_suites) or None
    if getattr(args, "record", False) and args.regress:
        raise ConfigurationError(
            "--record and --regress are exclusive: a regression run "
            "must compare against the committed reference, not move it")
    if args.list_suites:
        print(render_listing(test_filter, directory=directory))
        return
    if getattr(args, "json", False) and not args.regress:
        raise ConfigurationError(
            "--json reports a regression run; pair it with --regress")
    if args.regress:
        emit_json = getattr(args, "json", False)
        report = run_regression(test_filter, directory=directory,
                                suites=suites, n=args.particles,
                                progress=None if emit_json else print)
        if emit_json:
            import json as json_module
            print(json_module.dumps(report.as_dict(), indent=2))
        else:
            print(report.render())
        if not report.passed:
            raise SystemExit(1)
        return
    if not suites:
        raise ConfigurationError(
            "repro bench: name a suite, or pass --list / --regress "
            "(try 'repro bench --list')")
    for name in suites:
        _run_bench_suite(name, args, n=args.particles)


def _deprecated_bench(suite_name: str, n_of=None):
    """A legacy artefact subcommand, now a shim over ``repro bench``.

    The shim warns only when invoked directly (``repro table2``), not
    when routed through ``repro trace table2`` — tracing a deprecated
    spelling the user never typed would be noise.  Output and exit
    codes are unchanged: the suite renders the same artefact the old
    handler printed.
    """
    def handler(args: argparse.Namespace) -> None:
        if args.command == suite_name:
            import warnings
            message = (f"'repro {suite_name}' is deprecated; use "
                       f"'repro bench {suite_name}'")
            warnings.warn(message, DeprecationWarning, stacklevel=2)
            print(f"note: {message}", file=sys.stderr)
        _run_bench_suite(suite_name, args,
                         n=None if n_of is None else n_of(args))
    return handler


_cmd_table2 = _deprecated_bench("table2", _particles)
_cmd_table3 = _deprecated_bench("table3", _particles)
_cmd_fig1 = _deprecated_bench("fig1", _particles)
_cmd_first_iter = _deprecated_bench("first-iter", _particles)
_cmd_threads = _deprecated_bench("threads", _particles)
_cmd_measure = _deprecated_bench("measure")


def _cmd_escape(args: argparse.Namespace) -> None:
    from .analysis import run_escape_study
    curve = run_escape_study(args.power_pw * 1.0e22,
                             n_particles=args.escape_particles,
                             cycles=args.cycles,
                             samples_per_cycle=2,
                             steps_per_cycle=200)
    rows = [[f"{t:.1f}", f"{fraction:.3f}"]
            for t, fraction in zip(curve.times, curve.fractions)]
    print(format_table(["t / T", "remaining"], rows,
                       f"Escape from the focal region at "
                       f"{args.power_pw} PW"))
    print(f"escape rate: {curve.escape_rate():.2f} per cycle, "
          f"max gamma {curve.max_gamma:.0f}")


def _cmd_roofline(args: argparse.Namespace) -> None:
    from .oneapi import UsmMemoryManager, analyze_kernel
    from .oneapi.runtime import build_virtual_push_spec
    from .fields import MDipoleWave

    rows = []
    for device_name in DEVICE_NAMES:
        device = device_by_name(device_name)
        for scenario in ("precalculated", "analytical"):
            field_flops = (MDipoleWave.flops_per_evaluation
                           if scenario == "analytical" else 0.0)
            spec = build_virtual_push_spec(
                1_000_000, Layout.SOA, Precision.SINGLE, scenario,
                UsmMemoryManager(), field_flops=field_flops)
            point = analyze_kernel(spec, device, Precision.SINGLE)
            rows.append([
                device_name, scenario,
                f"{point.arithmetic_intensity:.2f}",
                f"{point.ridge_intensity:.2f}",
                "memory" if point.memory_bound else "compute",
                f"{point.predicted_nsps:.2f}",
            ])
    print(format_table(
        ["device", "scenario", "flops/byte", "ridge", "bound",
         "roofline NSPS"],
        rows, "Roofline analysis — Boris push, SoA, single precision"))
    print("(the paper's explanation — 'the problem is memory bound' — "
          "holds left of each ridge)")


def _cmd_validate(args: argparse.Namespace) -> None:
    from .bench.validation import validate_against_paper
    report = validate_against_paper(n=_particles(args))
    print(report.render())
    failed = not report.all_passed
    if not getattr(args, "no_differential", False):
        # Differential half: every engine x layout x precision x fusion
        # combination against the scalar reference (plus per-queue
        # hazard replay, which raises on a missing depends_on edge).
        from .validation import run_differential
        print()
        diff = run_differential(
            n=getattr(args, "diff_particles", 192),
            steps=getattr(args, "diff_steps", 3))
        print(diff.render())
        failed = failed or not diff.all_passed
    if not getattr(args, "no_pic", False):
        # PIC half: every scenario x layout x execution mode of the
        # lowered PIC step must agree with the reference simulation to
        # the bit (see docs/PIC.md), with hazard-free engine replays.
        from .validation import run_pic_differential
        print()
        pic = run_pic_differential(
            n=getattr(args, "pic_diff_particles", 96),
            steps=getattr(args, "pic_diff_steps", 2))
        print(pic.render())
        failed = failed or not pic.all_passed
    if failed:
        raise SystemExit(1)


def _cmd_devices(args: argparse.Namespace) -> None:
    from .backends.registry import (all_device_specs, host_link_for,
                                    resolve_device)
    specs = all_device_specs(backend=getattr(args, "backend", None))
    rows = []
    for spec in specs:
        backend, device = resolve_device(spec)
        link = host_link_for(spec)
        rows.append([
            spec, backend.name, device.name, device.device_type.value,
            device.compute_units, device.threads_per_unit,
            device.numa_domains,
            f"{device.peak_flops(Precision.SINGLE) / 1e12:.2f} TF",
            f"{device.peak_flops(Precision.DOUBLE) / 1e12:.2f} TF",
            f"{device.total_bandwidth / 1e9:.0f} GB/s",
            f"{link.name} ({link.bandwidth / 1e9:.1f} GB/s)",
        ])
    print(format_table(
        ["spec", "backend", "device", "type", "units", "thr/u", "domains",
         "peak SP", "peak DP", "bandwidth", "host link"],
        rows, "Simulated devices (paper Table 1 + CUDA-class cards)"))
    print("(peak DP on the Iris Xe Max reflects emulated double "
          "precision; 'host link' prices sharded exchange — "
          "see docs/DISTRIBUTED.md and docs/BACKENDS.md)")


def _cmd_portability(args: argparse.Namespace) -> None:
    from .backends.portability import (PP_DRIFT_TOLERANCE,
                                       check_drift, load_baseline,
                                       measure_portability,
                                       write_baseline)
    if args.portability_devices:
        devices = [d.strip()
                   for d in args.portability_devices.split(",")]
    elif getattr(args, "device", None):
        devices = [args.device]
    else:
        devices = None
    report = measure_portability(
        devices=devices,
        n_particles=args.portability_particles,
        steps=args.steps, warmup=args.warmup)
    rows = [[row.device, row.backend,
             f"{row.best_nsps:.3f}", row.best_label,
             f"{row.portable_nsps:.3f}", f"{row.efficiency:.3f}"]
            for row in report.devices]
    print(format_table(
        ["device", "backend", "best NSPS", "best config",
         "portable NSPS", "efficiency"],
        rows,
        "Performance portability — autotuned vs fixed SoA/float/fused"))
    print(f"PP score (harmonic mean of efficiencies): {report.pp:.4f} "
          f"over {len(report.devices)} devices — see docs/BACKENDS.md")
    if getattr(args, "record", False):
        directory = getattr(args, "record_dir", None) or "benchmarks"
        path = write_baseline(
            report, os.path.join(directory, "BENCH_portability.json"))
        print(f"recorded baseline -> {path}")
    elif args.check_baseline:
        baseline = load_baseline(args.check_baseline)
        findings = check_drift(report, baseline)
        if findings:
            for finding in findings:
                print(f"drift: {finding}")
            raise SystemExit(1)
        print(f"within {PP_DRIFT_TOLERANCE:.0%} of the committed "
              f"baseline (PP {baseline.pp:.4f})")


def _cmd_shard(args: argparse.Namespace) -> None:
    import tempfile

    from .api import _coerce_layout, _coerce_precision
    from .bench.scenarios import paper_ensemble
    from .distributed import (DeviceGroup, ExchangePolicy,
                              ShardedPushEngine, strategy_by_name)
    from .resilience import Checkpointer

    group_spec = args.group or "2x iris-xe-max"
    layout = _coerce_layout(args.layout or Layout.SOA)
    precision = _coerce_precision(args.precision or Precision.SINGLE)
    ensemble = paper_ensemble(args.shard_particles, layout, precision)
    group = DeviceGroup.from_spec(group_spec)
    runner_args = dict(
        strategy=strategy_by_name(args.strategy, precision),
        policy=ExchangePolicy(halo_fraction=args.halo),
        overlap=not args.no_overlap,
        rebalance_every=args.rebalance_every,
    )
    warmup = min(2, args.steps)
    with tempfile.TemporaryDirectory() as scratch:
        runner = ShardedPushEngine(
            group, ensemble, "precalculated", paper_wave(),
            paper_time_step(),
            checkpointer=Checkpointer(scratch,
                                      every=args.checkpoint_every),
            **runner_args)
        runner.run(warmup)
        runner.reset_measurement()
        report = runner.run(warmup + args.steps)
    rows = [[s.name, s.key, s.particles, s.steps,
             f"{s.busy_seconds * 1e3:.2f} ms",
             "-" if s.mean_nsps != s.mean_nsps else f"{s.mean_nsps:.2f}"]
            for s in report.shards]
    print(format_table(
        ["shard", "key", "particles", "steps", "busy", "NSPS"],
        rows,
        f"Sharded push — {group_spec!r}, strategy {report.strategy}, "
        f"{'overlap' if not args.no_overlap else 'bulk-synchronous'}"))
    print(f"group NSPS {report.nsps:.3f} over {args.steps} steps "
          f"({report.n_particles} particles on {report.n_devices} "
          f"devices); imbalance {report.imbalance:.2f}")
    print(f"exchange: {report.exchange.transfers} transfers, "
          f"{report.exchange.total_bytes} bytes, "
          f"{report.exchange.stalls} stalls; "
          f"rebalances {report.rebalances}, "
          f"redistributions {report.redistributions}")
    if getattr(args, "record", False):
        from .regress import append_snapshot, get_suite
        suite = get_suite("shard", directory=_baseline_dir(args))
        cell = suite.make_cell(
            f"sharded/{report.strategy}", group_spec,
            {"nsps": float(report.nsps),
             "n_devices": float(report.n_devices),
             "imbalance": float(report.imbalance),
             "exchange_bytes": float(report.exchange.total_bytes)},
            layout=layout.value, precision=precision.value,
            scenario="precalculated")
        path = append_snapshot("shard", [cell], args.shard_particles,
                               directory=_baseline_dir(args),
                               params={"steps": args.steps,
                                       "warmup": warmup})
        print(f"recorded snapshot -> {path}")


def _cmd_faults(args: argparse.Namespace) -> None:
    from .api import _coerce_layout, _coerce_precision
    from .bench import paper_time_step, paper_wave
    from .bench.scenarios import paper_ensemble
    from .bench.metrics import nsps_from_records
    from .resilience import (Checkpointer, chaos_self_check,
                             fault_injection, named_plan)
    from .resilience.runner import DEVICE_LADDER, ResilientPushEngine
    import tempfile

    if args.self_check:
        results = chaos_self_check(seeds=tuple(range(args.check_seeds)),
                                   steps=args.steps)
        rows = [[r.plan, r.seed, r.outcome, r.faults, r.retries,
                 r.devices_lost]
                for r in results.values()]
        print(format_table(
            ["plan", "seed", "outcome", "faults", "retries", "lost"],
            rows, "Chaos self-check — every plan x seed matrix"))
        survived = sum(r.survived for r in results.values())
        print(f"{survived}/{len(results)} cells completed all steps; "
              f"every cell stayed within the documented error taxonomy "
              f"and kept finite physics")
        return

    layout = _coerce_layout(args.layout or Layout.SOA)
    precision = _coerce_precision(args.precision or Precision.SINGLE)
    # --device moves that rung to the front of the fallback ladder
    ladder = DEVICE_LADDER if args.device is None else \
        (args.device,) + tuple(d for d in DEVICE_LADDER
                               if d != args.device)
    ensemble = paper_ensemble(args.fault_particles, layout, precision)
    with tempfile.TemporaryDirectory() as scratch:
        checkpointer = Checkpointer(scratch, every=args.checkpoint_every)
        with fault_injection(named_plan(args.plan), seed=args.fault_seed):
            runner = ResilientPushEngine(
                ensemble, "precalculated", paper_wave(), paper_time_step(),
                devices=ladder, checkpointer=checkpointer)
            records, report = runner.run(args.steps)
    print(report.summary())
    if len(records) >= 3:
        print(f"  NSPS with recovery cost folded in: "
              f"{nsps_from_records(records):.2f}")


def _cmd_push(args: argparse.Namespace) -> None:
    from .api import RunConfig, run_push

    if getattr(args, "record", False):
        # --record regenerates the whole fusion artefact (fused vs
        # unfused, cold vs warm) — the same convention as table2
        # --record, which records all 24 cells, not one.
        from .bench.harness import fusion_rows
        from .regress import append_snapshot
        reports = fusion_rows(n=args.push_particles, steps=args.steps,
                              warmup=args.warmup,
                              device=args.device or "iris-xe-max")
        rows = [[name, f"{r.nsps:.3f}", f"{r.first_step_nsps:.3f}",
                 r.fusion_groups, r.kernels_eliminated, r.digest[:12]]
                for name, r in reports.items()]
        print(format_table(
            ["config", "warm NSPS", "cold NSPS", "groups", "elided",
             "digest"],
            rows, "Kernel-graph fusion — fused vs unfused "
                  "(identical digests = bit-exact)"))
        cells = [r.as_cell("fusion", config=name)
                 for name, r in reports.items()]
        path = append_snapshot("fusion", cells, args.push_particles,
                               directory=_baseline_dir(args),
                               params={"steps": args.steps,
                                       "warmup": args.warmup})
        print(f"recorded snapshot -> {path}")
        return

    config = RunConfig(
        scenario=args.scenario,
        layout=args.layout or Layout.SOA,
        precision=args.precision or Precision.SINGLE,
        n_particles=args.push_particles, steps=args.steps,
        warmup=args.warmup,
        device=args.device or "iris-xe-max", group=args.group,
        fault_plan=getattr(args, "fault_plan", None),
        fault_seed=getattr(args, "fault_seed", 0),
        fusion=args.fusion, diagnostics=args.diagnostics,
        checkpoint_every=args.checkpoint_every,
        persist_cache=args.persist_cache,
        config="auto" if getattr(args, "auto", False) else None)
    report = run_push(config, validate=getattr(args, "validate", False))
    if report.tuning is not None:
        print(format_table(
            ["candidate", "predicted NSPS", "bound"],
            [[p.candidate.label, f"{p.predicted_nsps:.3f}", p.bound]
             for p in report.tuning.ranked],
            f"Autotuner search — {report.tuning.mode} mode on "
            f"{report.tuning.target!r} (best first; see docs/TUNING.md)"))
        print()
    fusion_label = {None: "legacy", True: "fused", False: "unfused"}
    rows = [
        ["mode", report.mode],
        ["device", report.device],
        ["scenario/layout/precision",
         f"{report.scenario}/{report.layout}/{report.precision}"],
        ["execution", fusion_label[report.fusion]],
        ["steady NSPS", f"{report.nsps:.3f}"],
        ["first-step NSPS (cold)", f"{report.first_step_nsps:.3f}"],
        ["simulated seconds", f"{report.simulated_seconds:.6f}"],
        ["state digest", report.digest[:16]],
    ]
    if report.fusion is not None:
        rows.append(["fusion groups / kernels elided",
                     f"{report.fusion_groups} / "
                     f"{report.kernels_eliminated}"])
    if report.cache_stats:
        rows.append(["program cache",
                     f"{report.cache_stats['hits']:.0f} hits, "
                     f"{report.cache_stats['misses']:.0f} misses, "
                     f"{report.cache_stats['jit_seconds_charged']:.2f} s "
                     f"JIT"])
    if report.validation is not None:
        v = report.validation
        rows.append(["validation",
                     f"hazard-free ({v.commands_checked} commands); "
                     f"max {v.max_ulp:.1f} ULP on {v.worst_component!r} "
                     f"over {v.checked_particles} particles "
                     f"(tolerance {v.tolerance:.0f})"])
    if report.predicted_nsps is not None:
        rows.append(["autotuned",
                     f"{report.tuning.best.candidate.label} — predicted "
                     f"{report.predicted_nsps:.3f} NSPS, measured "
                     f"{report.nsps:.3f}"])
    print(format_table(["field", "value"], rows,
                       f"repro.api.run_push — {report.n_particles} "
                       f"particles x {report.steps} steps"))
    for warning in report.calibration_warnings:
        print(f"warning: {warning}")


def _cmd_pic(args: argparse.Namespace) -> None:
    from .api import PicConfig, run_pic

    if getattr(args, "record", False):
        # --record regenerates the suite's whole artefact (fused +
        # unfused) through the regress record path, exactly like
        # `repro bench pic --record`.
        from .regress import get_suite, record_suite
        suite = get_suite("pic", directory=_baseline_dir(args))
        path, artifact = record_suite(suite, n=args.pic_particles)
        print(suite.render(artifact))
        print(f"recorded snapshot -> {path}")
        return

    config = PicConfig(
        scenario=args.scenario,
        layout=args.layout or Layout.SOA,
        precision=args.precision or Precision.DOUBLE,
        n_particles=args.pic_particles, steps=args.steps,
        warmup=args.warmup, seed=args.seed,
        deposition=args.deposition, solver=args.solver,
        device=args.device or "iris-xe-max",
        fusion=None if getattr(args, "legacy", False) else args.fusion)
    report = run_pic(config, validate=getattr(args, "validate", False))
    fusion_label = {None: "legacy", True: "fused", False: "unfused"}
    rows = [
        ["scenario", report.scenario],
        ["device", report.device],
        ["layout/precision", f"{report.layout}/{report.precision}"],
        ["deposition/solver", f"{report.deposition}/{report.solver}"],
        ["execution", fusion_label[report.fusion]],
        ["steady NSPS", f"{report.nsps:.3f}"],
        ["first-step NSPS (cold)", f"{report.first_step_nsps:.3f}"],
        ["simulated seconds", f"{report.simulated_seconds:.6f}"],
        ["energy drift", f"{report.energy_drift:.3e}"],
        ["state digest (particles+grid)", report.digest[:16]],
    ]
    if report.fusion is not None:
        rows.append(["fusion groups / kernels elided",
                     f"{report.fusion_groups} / "
                     f"{report.kernels_eliminated}"])
    if report.cache_stats:
        rows.append(["program cache",
                     f"{report.cache_stats['hits']:.0f} hits, "
                     f"{report.cache_stats['misses']:.0f} misses, "
                     f"{report.cache_stats['jit_seconds_charged']:.2f} s "
                     f"JIT"])
    print(format_table(["field", "value"], rows,
                       f"repro.api.run_pic — {report.n_particles} "
                       f"particles x {report.steps} steps"))


def _service_stream(name: str, event: str, detail: str) -> None:
    """The ``on_event`` hook: one line per job lifecycle event."""
    print(f"  [{name}] {event}" + (f" — {detail}" if detail else ""))


def _cmd_serve(args: argparse.Namespace) -> None:
    from .api import RunConfig
    from .errors import JobRejectedError
    from .service import JobSpec, PushService

    service = PushService(
        fleet=args.fleet,
        on_event=None if args.quiet else _service_stream)
    plan = getattr(args, "fault_plan", None) or "device-loss"
    tenants = ("alice", "bob")
    print(f"schedule: {args.jobs} jobs on {args.fleet!r} "
          f"(job-1 carries the {plan!r} fault plan)")
    for index in range(args.jobs):
        spec = JobSpec(
            f"job-{index}",
            RunConfig(n_particles=args.serve_particles,
                      steps=args.steps, warmup=1,
                      device=args.device or "iris-xe-max",
                      layout=args.layout or Layout.SOA,
                      precision=args.precision or Precision.SINGLE),
            tenant=tenants[index % len(tenants)],
            priority=index % 3,
            fault_plan=plan if index == 1 else None,
            fault_seed=getattr(args, "fault_seed", 0))
        try:
            service.submit(spec)
        except JobRejectedError as exc:
            print(f"  rejected: {exc}")
    report = service.run()
    print()
    print(report.summary())
    if not report.all_completed:
        raise SystemExit(1)


def _cmd_submit(args: argparse.Namespace) -> None:
    from .api import RunConfig
    from .service import JobSpec, PushService

    config = RunConfig(
        scenario=args.scenario,
        layout=args.layout or Layout.SOA,
        precision=args.precision or Precision.SINGLE,
        n_particles=args.submit_particles, steps=args.steps,
        warmup=args.warmup,
        device=args.device or "iris-xe-max", group=args.group,
        fusion=args.fusion)
    spec = JobSpec(args.name, config, tenant=args.tenant,
                   priority=args.priority,
                   deadline_seconds=args.deadline,
                   budget_seconds=args.budget,
                   fault_plan=getattr(args, "fault_plan", None),
                   fault_seed=getattr(args, "fault_seed", 0))
    service = PushService(
        fleet=args.fleet,
        on_event=None if args.quiet else _service_stream)
    service.submit(spec)        # JobRejectedError -> exit 2 via main()
    report = service.run()
    job = report.jobs[args.name]
    print()
    print(job.summary())
    rows = [
        ["state", job.state],
        ["devices", ", ".join(job.devices) or "-"],
        ["queue wait", f"{job.queue_wait_seconds * 1e3:.3f} ms"],
        ["device seconds", f"{job.device_seconds * 1e3:.3f} ms"],
        ["retries / restores / preemptions",
         f"{job.retries} / {job.restores} / {job.preemptions}"],
        ["checkpoints saved / pruned",
         f"{job.checkpoints_saved} / {job.checkpoints_pruned}"],
    ]
    if job.completed:
        rows.insert(1, ["steady NSPS", f"{job.nsps:.3f}"])
        rows.insert(2, ["state digest", job.digest[:16]])
    else:
        rows.insert(1, ["error", f"{job.error_type}: {job.error}"])
    print(format_table(["field", "value"], rows,
                       f"repro submit — {args.name!r} on {args.fleet!r}"))
    if not job.completed:
        raise SystemExit(1)


def _add_trace_flag(parser: argparse.ArgumentParser, default) -> None:
    parser.add_argument("--trace", metavar="OUT.json", default=default,
                        help="run the command under the tracer and write "
                             "a Chrome trace_event JSON (open in "
                             "chrome://tracing or Perfetto)")


def _add_fault_flags(parser: argparse.ArgumentParser, default) -> None:
    from .resilience.plans import PLAN_NAMES
    parser.add_argument("--fault-plan", choices=PLAN_NAMES, default=default,
                        help="run the command with this deterministic "
                             "fault plan installed (see docs/RESILIENCE.md)")
    parser.add_argument("--fault-seed", type=int,
                        default=0 if default is None else default,
                        help="seed of the fault injector's RNG streams "
                             "(same plan + seed + workload => identical "
                             "faults; default 0)")


def _runner_parent() -> argparse.ArgumentParser:
    """The shared flag set of every runner command.

    One definition, attached as an argparse *parent*, so ``table2``,
    ``table3``, ``shard``, ``faults``, ``push`` and ``trace`` all spell
    device/group/precision/layout/record selection identically.
    Commands map each flag onto their own semantics (a table command
    filters recorded cells; ``shard`` builds its ensemble; ``faults``
    reorders the fallback ladder).
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--device", default=None, metavar="SPEC",
                        help="target device spec, optionally backend-"
                             "qualified ('iris-xe-max', 'cuda:gpu0'; "
                             "see 'repro devices'); validated by the "
                             "backend registry, so unknown backends "
                             "or keys exit 2 (command-specific "
                             "default; for tables, filters recorded "
                             "cells)")
    parent.add_argument("--group", default=None, metavar="SPEC",
                        help="device-group spec: comma-separated keys, "
                             "each optionally '<n>x <key>' (e.g. "
                             "'2x iris-xe-max'); selects sharded "
                             "execution where supported")
    parent.add_argument("--precision", choices=["float", "double"],
                        default=None,
                        help="arithmetic precision (command-specific "
                             "default)")
    parent.add_argument("--layout", choices=["AoS", "SoA"], default=None,
                        help="particle storage layout (command-specific "
                             "default)")
    parent.add_argument("--record", action="store_true",
                        help="append this run's cells as a schema-v1 "
                             "snapshot of the suite's "
                             "benchmarks/BENCH_*.json baseline file")
    parent.add_argument("--record-dir", default=None, metavar="DIR",
                        help="directory of the baseline files "
                             "(default: ./benchmarks)")
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the Boris-on-"
                    "DPC++ paper from the simulated oneAPI runtime.")
    parser.add_argument("--particles", type=int, default=None,
                        help="modelled particle count (default: the "
                             "paper's 1e7 for the legacy artefact "
                             "commands; 'repro bench' replays each "
                             "suite's committed baseline configuration)")
    _add_trace_flag(parser, default=None)
    _add_fault_flags(parser, default=None)
    sub = parser.add_subparsers(dest="command", required=True)
    parent = _runner_parent()
    bench = sub.add_parser(
        "bench", parents=[parent],
        help="the declarative regression farm: run, list, regress or "
             "record any declared suite (see docs/BENCHMARKS.md)")
    bench.add_argument("bench_suites", nargs="*", metavar="SUITE",
                       help="declared suite name(s) — see "
                            "'repro bench --list'; optional with "
                            "--list/--regress (then the filter selects)")
    bench.add_argument("--regress", action="store_true",
                       help="run the sanity + performance stages of the "
                            "selected matrix against the committed "
                            "baselines; exit 1 with a per-cell diff on "
                            "drift")
    bench.add_argument("--json", action="store_true",
                       help="with --regress: print the machine-readable "
                            "per-cell report as JSON instead of the "
                            "rendered diff (exit code unchanged)")
    bench.add_argument("--list", action="store_true", dest="list_suites",
                       help="list the declared suites, their tags, axes "
                            "and baseline state")
    bench.add_argument("--filter", action="append", default=None,
                       metavar="EXPR",
                       help="select suites: comma-separated terms, each "
                            "a bare suite/tag name or "
                            "suite=/device=/backend=/tag=NAME; repeat "
                            "to AND (e.g. --filter smoke, --filter "
                            "device=cpu,tag=paper)")
    bench.add_argument("--measure-particles", type=int, default=200_000,
                       help="ensemble size of the 'measure' suite "
                            "(default 200000)")
    bench.add_argument("--measure-steps", type=int, default=5,
                       help="timed steps of the 'measure' suite "
                            "(default 5)")
    commands = [
        bench,
        sub.add_parser("table2",
                       help="[deprecated: use 'bench table2'] "
                            "Table 2: CPU NSPS",
                       parents=[parent]),
        sub.add_parser("table3",
                       help="[deprecated: use 'bench table3'] "
                            "Table 3: GPU NSPS",
                       parents=[parent]),
        sub.add_parser("fig1",
                       help="[deprecated: use 'bench fig1'] "
                            "Fig. 1: strong-scaling speedup"),
        sub.add_parser("first-iter",
                       help="[deprecated: use 'bench first-iter'] "
                            "first-iteration slowdown"),
        sub.add_parser("threads",
                       help="[deprecated: use 'bench threads'] "
                            "hyperthreading sweep"),
    ]
    measure = sub.add_parser("measure",
                             help="[deprecated: use 'bench measure'] "
                                  "time the real numpy kernels here")
    measure.add_argument("--measure-particles", type=int, default=200_000)
    measure.add_argument("--measure-steps", type=int, default=5)
    escape = sub.add_parser("escape",
                            help="particle-escape physics study")
    escape.add_argument("--power-pw", type=float, default=0.1,
                        help="wave power in PW (paper: 0.1)")
    escape.add_argument("--escape-particles", type=int, default=5_000)
    escape.add_argument("--cycles", type=int, default=5)
    faults = sub.add_parser(
        "faults", parents=[parent],
        help="drive a resilient push under a named fault plan, or run "
             "the chaos self-check matrix")
    from .resilience.plans import PLAN_NAMES
    faults.add_argument("--plan", choices=PLAN_NAMES, default="default",
                        help="which named fault plan to inject "
                             "(default: 'default')")
    faults.add_argument("--steps", type=int, default=40,
                        help="push steps to run (default 40)")
    faults.add_argument("--fault-particles", type=int, default=4096,
                        help="ensemble size for the resilient push "
                             "(default 4096; physics-carrying, so keep "
                             "it modest)")
    faults.add_argument("--checkpoint-every", type=int, default=5,
                        help="step-granular checkpoint cadence (default 5)")
    faults.add_argument("--self-check", action="store_true",
                        help="run every plan x seed chaos cell and "
                             "verify nothing escapes the documented "
                             "error taxonomy")
    faults.add_argument("--check-seeds", type=int, default=3,
                        help="seeds per plan for --self-check (default 3)")
    from .distributed.sharding import STRATEGY_NAMES
    shard = sub.add_parser(
        "shard", parents=[parent],
        help="run a sharded push across a multi-device group "
             "(see docs/DISTRIBUTED.md; --group defaults to "
             "'2x iris-xe-max')")
    shard.add_argument("--strategy", choices=STRATEGY_NAMES,
                       default="even",
                       help="sharding strategy (default even)")
    shard.add_argument("--steps", type=int, default=12,
                       help="measured push steps (default 12; two "
                            "warm-up steps run and reset first)")
    shard.add_argument("--shard-particles", type=int, default=200_000,
                       help="ensemble size (default 200000; "
                            "physics-carrying, so keep it modest)")
    shard.add_argument("--no-overlap", action="store_true",
                       help="bulk-synchronous schedule: pushes wait "
                            "for the previous exchange")
    shard.add_argument("--halo", type=float, default=0.02,
                       help="halo fraction exchanged per neighbour per "
                            "step (default 0.02)")
    shard.add_argument("--rebalance-every", type=int, default=0,
                       help="consult the strategy for a new partition "
                            "every N steps (0 = never; pair with "
                            "--strategy nsps)")
    shard.add_argument("--checkpoint-every", type=int, default=5,
                       help="checkpoint cadence enabling device-loss "
                            "redistribution (default 5)")
    push = sub.add_parser(
        "push", parents=[parent],
        help="run one push workload through the repro.api facade "
             "(single-device, resilient or sharded — the mode follows "
             "from the flags; see docs/API.md)")
    push.add_argument("--scenario", choices=["precalculated", "analytical"],
                      default="precalculated",
                      help="field handling (default precalculated)")
    push.add_argument("--steps", type=int, default=10,
                      help="measured push steps (default 10)")
    push.add_argument("--warmup", type=int, default=2,
                      help="warm-up steps excluded from steady NSPS "
                           "(default 2)")
    push.add_argument("--push-particles", type=int, default=200_000,
                      help="ensemble size (default 200000; "
                           "physics-carrying, so keep it modest)")
    push.add_argument("--fusion", action=argparse.BooleanOptionalAction,
                      default=None,
                      help="kernel-graph execution: --fusion fuses "
                           "compatible kernels, --no-fusion runs the "
                           "graph unfused; omit both for the legacy "
                           "single-launch path")
    push.add_argument("--auto", action="store_true",
                      help="let the roofline-driven autotuner pick "
                           "layout, precision and execution path "
                           "(overrides --layout/--precision/--fusion; "
                           "prints the ranked search and the "
                           "predicted-vs-measured NSPS — see "
                           "docs/TUNING.md)")
    push.add_argument("--diagnostics", action="store_true",
                      help="append the kinetic-energy diagnostic kernel "
                           "to each step's graph")
    push.add_argument("--checkpoint-every", type=int, default=0,
                      help="step-granular checkpoint cadence for "
                           "resilient/sharded modes (default 0 = off)")
    push.add_argument("--persist-cache", default=None, metavar="PATH",
                      help="persist the JIT program cache to this file "
                           "(warm across processes, like "
                           "SYCL_CACHE_PERSISTENT)")
    push.add_argument("--validate", action="store_true",
                      help="after the run, replay every queue through "
                           "the hazard detector and diff a particle "
                           "sample against the scalar reference pusher "
                           "(see docs/VALIDATION.md)")
    from .pic.scenarios import scenario_names
    pic = sub.add_parser(
        "pic", parents=[parent],
        help="run a full self-consistent PIC scenario through the "
             "kernel-graph engine (gather/push/Monte Carlo/deposit/"
             "field-advance; see docs/PIC.md)")
    pic.add_argument("--scenario", choices=scenario_names(),
                     default="laser-slab",
                     help="registered PIC scenario (default laser-slab)")
    pic.add_argument("--pic-particles", type=int, default=None,
                     help="ensemble size (default: the scenario's; "
                          "physics-carrying, so keep it modest)")
    pic.add_argument("--steps", type=int, default=8,
                     help="measured PIC steps (default 8)")
    pic.add_argument("--warmup", type=int, default=2,
                     help="warm-up steps excluded from steady NSPS "
                          "(default 2)")
    pic.add_argument("--seed", type=int, default=0,
                     help="scenario seed: fixes the particle draw and "
                          "every Monte Carlo operator (default 0)")
    pic.add_argument("--deposition",
                     choices=["esirkepov", "direct", "none"],
                     default=None,
                     help="override the deposition scheme (default: "
                          "the scenario's, Esirkepov)")
    pic.add_argument("--solver", choices=["fdtd", "spectral"],
                     default=None,
                     help="override the Maxwell solver (default: the "
                          "scenario's, FDTD)")
    pic.add_argument("--fusion", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="kernel-graph execution: --fusion (default) "
                          "fuses the elementwise stages, --no-fusion "
                          "runs the graph unfused; --legacy for the "
                          "per-stage path")
    pic.add_argument("--legacy", action="store_true",
                     help="legacy per-stage launches (no graph, no "
                          "fusion planning)")
    pic.add_argument("--validate", action="store_true",
                     help="replay every launch through the hazard "
                          "detector after the run")
    from .service.scheduler import DEFAULT_FLEET
    serve = sub.add_parser(
        "serve", parents=[parent],
        help="run a demo multi-tenant job schedule through the "
             "fault-tolerant scheduler, with one injected device loss "
             "(see docs/SERVICE.md); exits 1 if any job fails")
    serve.add_argument("--fleet", default=DEFAULT_FLEET, metavar="SPEC",
                       help=f"device fleet spec (default "
                            f"{DEFAULT_FLEET!r})")
    serve.add_argument("--jobs", type=int, default=4,
                       help="how many jobs to submit (default 4; mixed "
                            "priorities and tenants)")
    serve.add_argument("--steps", type=int, default=6,
                       help="measured push steps per job (default 6)")
    serve.add_argument("--serve-particles", type=int, default=2000,
                       help="ensemble size per job (default 2000; "
                            "physics-carrying, so keep it modest)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress the streamed per-job lifecycle "
                            "events")
    submit = sub.add_parser(
        "submit", parents=[parent],
        help="submit one job to the scheduler with service-level knobs "
             "(priority, tenant, deadline, budget); --fault-plan "
             "injects faults scoped to this job; exits 1 if the job "
             "fails, 2 if admission rejects it")
    submit.add_argument("--name", default="job",
                        help="job name (default 'job')")
    submit.add_argument("--fleet", default=DEFAULT_FLEET, metavar="SPEC",
                        help=f"device fleet spec (default "
                             f"{DEFAULT_FLEET!r})")
    submit.add_argument("--scenario",
                        choices=["precalculated", "analytical"],
                        default="precalculated",
                        help="field handling (default precalculated)")
    submit.add_argument("--steps", type=int, default=10,
                        help="measured push steps (default 10)")
    submit.add_argument("--warmup", type=int, default=2,
                        help="warm-up steps excluded from steady NSPS "
                             "(default 2)")
    submit.add_argument("--submit-particles", type=int, default=2000,
                        help="ensemble size (default 2000)")
    submit.add_argument("--priority", type=int, default=0,
                        help="scheduling priority (larger = more "
                             "urgent; default 0)")
    submit.add_argument("--tenant", default="default",
                        help="fair-share tenant identity")
    submit.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="fail the job if not completed within this "
                             "many simulated seconds after arrival")
    submit.add_argument("--budget", type=float, default=None,
                        metavar="SECONDS",
                        help="cap on simulated device seconds the job "
                             "may consume (recovery cost included)")
    submit.add_argument("--fusion", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="kernel-graph execution mode (as in "
                             "'repro push')")
    submit.add_argument("--quiet", action="store_true",
                        help="suppress the streamed lifecycle events")
    validate = sub.add_parser(
        "validate",
        help="check every paper claim against the model, then run the "
             "differential sweep (every engine x layout x precision x "
             "fusion vs the scalar reference; see docs/VALIDATION.md)")
    validate.add_argument("--diff-particles", type=int, default=192,
                          help="ensemble size of the differential sweep "
                               "(default 192; the scalar reference is "
                               "O(N x steps) Python, keep it small)")
    validate.add_argument("--diff-steps", type=int, default=3,
                          help="push steps per sweep combination "
                               "(default 3)")
    validate.add_argument("--no-differential", action="store_true",
                          help="paper-claim checks only, skip the "
                               "differential sweep")
    validate.add_argument("--no-pic", action="store_true",
                          help="skip the PIC differential sweep (every "
                               "scenario x layout x mode must agree "
                               "bit-exactly; see docs/PIC.md)")
    validate.add_argument("--pic-diff-particles", type=int, default=96,
                          metavar="N",
                          help="particles per PIC sweep cell "
                               "(default 96)")
    validate.add_argument("--pic-diff-steps", type=int, default=2,
                          metavar="STEPS",
                          help="PIC steps per sweep cell (default 2)")
    devices = sub.add_parser(
        "devices",
        help="list simulated devices across every backend")
    devices.add_argument("--backend", default=None, metavar="NAME",
                         help="show one backend only ('oneapi' or "
                              "'cuda'); validated by the registry, so "
                              "an unknown name exits 2")
    portability = sub.add_parser(
        "portability", parents=[parent],
        help="Pennycook PP sweep: autotuned vs fixed-config NSPS on "
             "every device of every backend; --record writes "
             "benchmarks/BENCH_portability.json (see docs/BACKENDS.md)")
    portability.add_argument("--portability-devices", default=None,
                             metavar="SPECS",
                             help="comma-separated device specs to "
                                  "sweep (default: every registered "
                                  "device)")
    portability.add_argument("--portability-particles", type=int,
                             default=20_000,
                             help="ensemble size per run (default "
                                  "20000; physics-carrying, so keep "
                                  "it modest)")
    portability.add_argument("--steps", type=int, default=4,
                             help="measured push steps per run "
                                  "(default 4)")
    portability.add_argument("--warmup", type=int, default=2,
                             help="warm-up steps excluded from steady "
                                  "NSPS (default 2)")
    portability.add_argument("--check-baseline", default=None,
                             metavar="PATH",
                             help="compare against a committed "
                                  "baseline and exit 1 on PP-score "
                                  "drift beyond the tolerance")
    commands += [
        measure,
        escape,
        sub.add_parser("roofline",
                       help="arithmetic-intensity analysis per device"),
        validate,
        devices,
        portability,
        faults,
        shard,
        push,
        pic,
        serve,
        submit,
    ]
    for command in commands:
        # accept --trace after the command too; SUPPRESS keeps a value
        # given before the command from being clobbered by the default
        _add_trace_flag(command, default=argparse.SUPPRESS)
        _add_fault_flags(command, default=argparse.SUPPRESS)
    trace = sub.add_parser(
        "trace", parents=[parent],
        help="run a benchmark command under the tracer and write a "
             "Chrome trace_event JSON")
    trace.add_argument("trace_command", choices=sorted(TRACEABLE_COMMANDS),
                       help="which artefact runner to trace")
    trace.add_argument("--out", required=True, metavar="OUT.json",
                       help="path of the Chrome trace to write")
    return parser


_COMMANDS = {
    "bench": _cmd_bench,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "fig1": _cmd_fig1,
    "first-iter": _cmd_first_iter,
    "threads": _cmd_threads,
    "measure": _cmd_measure,
    "escape": _cmd_escape,
    "roofline": _cmd_roofline,
    "validate": _cmd_validate,
    "devices": _cmd_devices,
    "portability": _cmd_portability,
    "faults": _cmd_faults,
    "shard": _cmd_shard,
    "push": _cmd_push,
    "pic": _cmd_pic,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
}

#: Commands `repro trace CMD` accepts: every runner whose only knob is
#: the global --particles (commands with their own required options are
#: traced via the global --trace flag instead).
TRACEABLE_COMMANDS = ("table2", "table3", "fig1", "first-iter", "threads",
                      "validate")


def _run_traced(command: str, args: argparse.Namespace, out: str) -> None:
    """Run one command under a fresh tracer; write trace + summary."""
    from .observability import (Tracer, format_kernel_summary, tracing,
                                write_chrome_trace)
    tracer = Tracer()
    with tracing(tracer):
        _COMMANDS[command](args)
    write_chrome_trace(tracer, out)
    if tracer.kernel_stats:
        print()
        print(format_kernel_summary(tracer))
    print(f"\ntrace written to {out} "
          f"({len(tracer.sim_slices)} simulated launches, "
          f"{len(tracer.spans)} host spans); open it in chrome://tracing "
          f"or https://ui.perfetto.dev")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes: 0 success, 1 checks-failed (``repro validate``, or a
    ``serve``/``submit`` schedule with a failed job), 2 usage or
    configuration error — argparse rejections and any
    :class:`~repro.errors.ReproError` (a bad ``--group`` spec, an
    unknown fault plan, a :class:`~repro.errors.JobRejectedError` from
    admission) all land on 2 with the message on stderr.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    command = args.command
    out = getattr(args, "trace", None)
    if command == "trace":
        command = args.trace_command
        out = args.out
    if out is not None:
        # fail before the (possibly minutes-long) run, not at write time
        parent = os.path.dirname(os.path.abspath(out))
        if not os.path.isdir(parent):
            parser.error(f"--trace/--out: directory {parent!r} does not "
                         f"exist")
    plan_name = getattr(args, "fault_plan", None)
    if plan_name is not None and getattr(args, "record", False):
        # The trajectory files feed the regression harness; an epoch
        # whose NSPS carries injected backoff/replay cost would poison
        # every later comparison against it.
        parser.error("--record cannot be combined with --fault-plan: "
                     "faulted-epoch NSPS must not enter the "
                     "benchmarks/BENCH_*.json trajectory")
    if getattr(args, "auto", False) and getattr(args, "record", False):
        # --record replays the fixed fused-vs-unfused artefact; an
        # autotuned pick would record whichever config won today.
        parser.error("--record cannot be combined with --auto: "
                     "trajectory epochs must compare fixed configs")

    def dispatch() -> None:
        if out is not None:
            _run_traced(command, args, out)
        else:
            _COMMANDS[command](args)

    from .errors import ReproError
    try:
        if plan_name is not None and command not in ("faults", "push",
                                                     "serve", "submit"):
            # faults installs its own injector from --plan; push routes
            # --fault-plan through RunConfig (it selects resilient
            # mode); serve/submit scope injection to per-job injectors
            from .resilience import fault_injection, named_plan
            with fault_injection(named_plan(plan_name),
                                 seed=getattr(args, "fault_seed", 0)):
                dispatch()
        else:
            dispatch()
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
