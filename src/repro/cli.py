"""Command-line interface: regenerate any of the paper's artefacts.

Usage::

    python -m repro table2            # Table 2 (CPU NSPS, model vs paper)
    python -m repro table3            # Table 3 (GPU NSPS, model vs paper)
    python -m repro fig1              # Fig. 1 (scaling speedup series)
    python -m repro first-iter        # in-text first-iteration effect
    python -m repro threads           # in-text hyperthreading effect
    python -m repro measure           # real numpy kernel NSPS on this host
    python -m repro devices           # simulated device inventory
    python -m repro trace table2 --out t.json   # traced run -> Chrome JSON

``--particles`` scales the modelled ensemble (default: the paper's
1e7; the model is O(1) in memory, so the default is cheap).

Any command can also be traced in place with the ``--trace`` flag,
accepted before or after the command:
``python -m repro table2 --trace out.json``.
Both spellings write a Chrome ``trace_event`` file (open it in
``chrome://tracing`` or https://ui.perfetto.dev) and print the
per-kernel summary table; see ``docs/PROFILING.md``.

Fault injection (see ``docs/RESILIENCE.md``) follows the same pattern:
``--fault-plan PLAN --fault-seed N`` runs any command with the named
deterministic fault plan installed, and ``python -m repro faults``
drives a resilient push directly::

    python -m repro faults --plan device-loss --steps 20
    python -m repro faults --self-check        # chaos seed matrix
    python -m repro table2 --fault-plan transient --fault-seed 7
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .bench import (
    DEVICE_NAMES,
    PAPER_TABLE2,
    PAPER_TABLE3,
    comparison_table,
    device_by_name,
    fig1_series,
    first_iteration_ratio,
    format_table,
    measure_real_nsps,
    paper_time_step,
    paper_wave,
    table2_rows,
    table3_rows,
    thread_sweep,
)
from .bench.scenarios import paper_ensemble
from .fp import Precision
from .particles.ensemble import Layout

__all__ = ["main"]


def _record_cells(args: argparse.Namespace, scenario: str,
                  cells) -> None:
    """Append a trajectory snapshot when ``--record`` was given."""
    if not getattr(args, "record", False):
        return
    from .bench.trajectory import append_snapshot
    path = append_snapshot(scenario, cells, args.particles,
                           directory=getattr(args, "record_dir", None))
    print(f"recorded snapshot -> {path}")


def _cmd_table2(args: argparse.Namespace) -> None:
    rows = table2_rows(n=args.particles)
    print(comparison_table(rows, PAPER_TABLE2, "layout/impl",
                           "Table 2 — CPU NSPS, 6 implementations"))
    from .bench.trajectory import flatten_table2
    _record_cells(args, "table2", flatten_table2(rows))


def _cmd_table3(args: argparse.Namespace) -> None:
    rows = table3_rows(n=args.particles)
    print(comparison_table(rows, PAPER_TABLE3, "layout",
                           "Table 3 — GPU NSPS (single precision)"))
    from .bench.trajectory import flatten_table3
    _record_cells(args, "table3", flatten_table3(rows))


def _cmd_fig1(args: argparse.Namespace) -> None:
    series = fig1_series(n=args.particles)
    headers = ["cores"] + list(series)
    core_counts = [c for c, _ in next(iter(series.values()))]
    rows = []
    for i, cores in enumerate(core_counts):
        rows.append([cores] + [f"{points[i][1]:.1f}"
                               for points in series.values()])
    print(format_table(headers, rows,
                       "Fig. 1 — speedup vs single core "
                       "(precalculated fields, float)"))
    last = {name: points[-1][1] for name, points in series.items()}
    for name, speedup in last.items():
        print(f"{name}: {speedup:.1f}x at 48 cores "
              f"({100 * speedup / 48:.0f}% efficiency; paper reports ~63%)")


def _cmd_first_iter(args: argparse.Namespace) -> None:
    ratio = first_iteration_ratio(n=args.particles)
    print(f"first iteration / steady iteration = {ratio:.2f} "
          f"(paper: ~1.5)")


def _cmd_threads(args: argparse.Namespace) -> None:
    result = thread_sweep(n=args.particles)
    print(format_table(
        ["threads", "NSPS"],
        [[t, f"{v:.3f}"] for t, v in sorted(result.items())],
        "Hyperthreading sweep — OpenMP, precalculated, float"))
    best = min(result, key=result.get)
    print(f"best: {best} threads (paper: 96 threads is empirically best)")


def _cmd_measure(args: argparse.Namespace) -> None:
    wave = paper_wave()
    dt = paper_time_step()
    rows = []
    for layout in (Layout.AOS, Layout.SOA):
        for precision in (Precision.SINGLE, Precision.DOUBLE):
            for scenario in ("precalculated", "analytical"):
                ensemble = paper_ensemble(args.measure_particles,
                                          layout, precision)
                result = measure_real_nsps(ensemble, scenario, wave, dt,
                                           steps=args.measure_steps)
                rows.append([layout.value, precision.value, scenario,
                             f"{result.nsps:.2f}"])
    print(format_table(
        ["layout", "precision", "scenario", "NSPS"], rows,
        f"Measured numpy-kernel NSPS on this host "
        f"({args.measure_particles} particles)"))


def _cmd_escape(args: argparse.Namespace) -> None:
    from .analysis import run_escape_study
    curve = run_escape_study(args.power_pw * 1.0e22,
                             n_particles=args.escape_particles,
                             cycles=args.cycles,
                             samples_per_cycle=2,
                             steps_per_cycle=200)
    rows = [[f"{t:.1f}", f"{fraction:.3f}"]
            for t, fraction in zip(curve.times, curve.fractions)]
    print(format_table(["t / T", "remaining"], rows,
                       f"Escape from the focal region at "
                       f"{args.power_pw} PW"))
    print(f"escape rate: {curve.escape_rate():.2f} per cycle, "
          f"max gamma {curve.max_gamma:.0f}")


def _cmd_roofline(args: argparse.Namespace) -> None:
    from .oneapi import UsmMemoryManager, analyze_kernel
    from .oneapi.runtime import build_virtual_push_spec
    from .fields import MDipoleWave

    rows = []
    for device_name in DEVICE_NAMES:
        device = device_by_name(device_name)
        for scenario in ("precalculated", "analytical"):
            field_flops = (MDipoleWave.flops_per_evaluation
                           if scenario == "analytical" else 0.0)
            spec = build_virtual_push_spec(
                1_000_000, Layout.SOA, Precision.SINGLE, scenario,
                UsmMemoryManager(), field_flops=field_flops)
            point = analyze_kernel(spec, device, Precision.SINGLE)
            rows.append([
                device_name, scenario,
                f"{point.arithmetic_intensity:.2f}",
                f"{point.ridge_intensity:.2f}",
                "memory" if point.memory_bound else "compute",
                f"{point.predicted_nsps:.2f}",
            ])
    print(format_table(
        ["device", "scenario", "flops/byte", "ridge", "bound",
         "roofline NSPS"],
        rows, "Roofline analysis — Boris push, SoA, single precision"))
    print("(the paper's explanation — 'the problem is memory bound' — "
          "holds left of each ridge)")


def _cmd_validate(args: argparse.Namespace) -> None:
    from .bench.validation import validate_against_paper
    report = validate_against_paper(n=args.particles)
    print(report.render())
    if not report.all_passed:
        raise SystemExit(1)


def _cmd_devices(args: argparse.Namespace) -> None:
    from .distributed import default_link_table
    links = default_link_table()
    rows = []
    for name in DEVICE_NAMES:
        device = device_by_name(name)
        link = links.host_link(name)
        rows.append([
            name, device.name, device.device_type.value,
            device.compute_units, device.threads_per_unit,
            device.numa_domains,
            f"{device.peak_flops(Precision.SINGLE) / 1e12:.2f} TF",
            f"{device.peak_flops(Precision.DOUBLE) / 1e12:.2f} TF",
            f"{device.total_bandwidth / 1e9:.0f} GB/s",
            f"{link.name} ({link.bandwidth / 1e9:.1f} GB/s)",
        ])
    print(format_table(
        ["key", "device", "type", "units", "thr/u", "domains",
         "peak SP", "peak DP", "bandwidth", "host link"],
        rows, "Simulated devices (paper Table 1)"))
    print("(peak DP on the Iris Xe Max reflects emulated double "
          "precision; 'host link' prices sharded exchange — "
          "see docs/DISTRIBUTED.md)")


def _cmd_shard(args: argparse.Namespace) -> None:
    import tempfile

    from .bench.scenarios import paper_ensemble
    from .distributed import (DeviceGroup, ExchangePolicy,
                              ShardedPushRunner, strategy_by_name)
    from .resilience import Checkpointer

    ensemble = paper_ensemble(args.shard_particles, Layout.SOA,
                              Precision.SINGLE)
    group = DeviceGroup.from_spec(args.group)
    runner_args = dict(
        strategy=strategy_by_name(args.strategy, Precision.SINGLE),
        policy=ExchangePolicy(halo_fraction=args.halo),
        overlap=not args.no_overlap,
        rebalance_every=args.rebalance_every,
    )
    warmup = min(2, args.steps)
    with tempfile.TemporaryDirectory() as scratch:
        runner = ShardedPushRunner(
            group, ensemble, "precalculated", paper_wave(),
            paper_time_step(),
            checkpointer=Checkpointer(scratch,
                                      every=args.checkpoint_every),
            **runner_args)
        runner.run(warmup)
        runner.reset_measurement()
        report = runner.run(warmup + args.steps)
    rows = [[s.name, s.key, s.particles, s.steps,
             f"{s.busy_seconds * 1e3:.2f} ms",
             "-" if s.mean_nsps != s.mean_nsps else f"{s.mean_nsps:.2f}"]
            for s in report.shards]
    print(format_table(
        ["shard", "key", "particles", "steps", "busy", "NSPS"],
        rows,
        f"Sharded push — {args.group!r}, strategy {report.strategy}, "
        f"{'overlap' if not args.no_overlap else 'bulk-synchronous'}"))
    print(f"group NSPS {report.nsps:.3f} over {args.steps} steps "
          f"({report.n_particles} particles on {report.n_devices} "
          f"devices); imbalance {report.imbalance:.2f}")
    print(f"exchange: {report.exchange.transfers} transfers, "
          f"{report.exchange.total_bytes} bytes, "
          f"{report.exchange.stalls} stalls; "
          f"rebalances {report.rebalances}, "
          f"redistributions {report.redistributions}")
    if getattr(args, "record", False):
        from .bench.trajectory import flatten_group_report
        cells = flatten_group_report(report, args.group, Layout.SOA.value,
                                     Precision.SINGLE.value,
                                     "precalculated")
        from .bench.trajectory import append_snapshot
        path = append_snapshot("shard", cells, args.shard_particles,
                               directory=getattr(args, "record_dir", None))
        print(f"recorded snapshot -> {path}")


def _cmd_faults(args: argparse.Namespace) -> None:
    from .bench import paper_time_step, paper_wave
    from .bench.scenarios import paper_ensemble
    from .bench.metrics import nsps_from_records
    from .resilience import (Checkpointer, ResilientPushRunner,
                             chaos_self_check, fault_injection, named_plan)
    import tempfile

    if args.self_check:
        results = chaos_self_check(seeds=tuple(range(args.check_seeds)),
                                   steps=args.steps)
        rows = [[r.plan, r.seed, r.outcome, r.faults, r.retries,
                 r.devices_lost]
                for r in results.values()]
        print(format_table(
            ["plan", "seed", "outcome", "faults", "retries", "lost"],
            rows, "Chaos self-check — every plan x seed matrix"))
        survived = sum(r.survived for r in results.values())
        print(f"{survived}/{len(results)} cells completed all steps; "
              f"every cell stayed within the documented error taxonomy "
              f"and kept finite physics")
        return

    ensemble = paper_ensemble(args.fault_particles, Layout.SOA,
                              Precision.SINGLE)
    with tempfile.TemporaryDirectory() as scratch:
        checkpointer = Checkpointer(scratch, every=args.checkpoint_every)
        with fault_injection(named_plan(args.plan), seed=args.fault_seed):
            runner = ResilientPushRunner(
                ensemble, "precalculated", paper_wave(), paper_time_step(),
                checkpointer=checkpointer)
            records, report = runner.run(args.steps)
    print(report.summary())
    if len(records) >= 3:
        print(f"  NSPS with recovery cost folded in: "
              f"{nsps_from_records(records):.2f}")


def _add_trace_flag(parser: argparse.ArgumentParser, default) -> None:
    parser.add_argument("--trace", metavar="OUT.json", default=default,
                        help="run the command under the tracer and write "
                             "a Chrome trace_event JSON (open in "
                             "chrome://tracing or Perfetto)")


def _add_fault_flags(parser: argparse.ArgumentParser, default) -> None:
    from .resilience.plans import PLAN_NAMES
    parser.add_argument("--fault-plan", choices=PLAN_NAMES, default=default,
                        help="run the command with this deterministic "
                             "fault plan installed (see docs/RESILIENCE.md)")
    parser.add_argument("--fault-seed", type=int,
                        default=0 if default is None else default,
                        help="seed of the fault injector's RNG streams "
                             "(same plan + seed + workload => identical "
                             "faults; default 0)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the Boris-on-"
                    "DPC++ paper from the simulated oneAPI runtime.")
    parser.add_argument("--particles", type=int, default=10_000_000,
                        help="modelled particle count (default: the "
                             "paper's 1e7)")
    _add_trace_flag(parser, default=None)
    _add_fault_flags(parser, default=None)
    sub = parser.add_subparsers(dest="command", required=True)
    commands = [
        sub.add_parser("table2", help="Table 2: CPU NSPS"),
        sub.add_parser("table3", help="Table 3: GPU NSPS"),
        sub.add_parser("fig1", help="Fig. 1: strong-scaling speedup"),
        sub.add_parser("first-iter", help="first-iteration slowdown"),
        sub.add_parser("threads", help="hyperthreading sweep"),
    ]
    measure = sub.add_parser("measure",
                             help="time the real numpy kernels here")
    measure.add_argument("--measure-particles", type=int, default=200_000)
    measure.add_argument("--measure-steps", type=int, default=5)
    escape = sub.add_parser("escape",
                            help="particle-escape physics study")
    escape.add_argument("--power-pw", type=float, default=0.1,
                        help="wave power in PW (paper: 0.1)")
    escape.add_argument("--escape-particles", type=int, default=5_000)
    escape.add_argument("--cycles", type=int, default=5)
    faults = sub.add_parser(
        "faults",
        help="drive a resilient push under a named fault plan, or run "
             "the chaos self-check matrix")
    from .resilience.plans import PLAN_NAMES
    faults.add_argument("--plan", choices=PLAN_NAMES, default="default",
                        help="which named fault plan to inject "
                             "(default: 'default')")
    faults.add_argument("--steps", type=int, default=40,
                        help="push steps to run (default 40)")
    faults.add_argument("--fault-particles", type=int, default=4096,
                        help="ensemble size for the resilient push "
                             "(default 4096; physics-carrying, so keep "
                             "it modest)")
    faults.add_argument("--checkpoint-every", type=int, default=5,
                        help="step-granular checkpoint cadence (default 5)")
    faults.add_argument("--self-check", action="store_true",
                        help="run every plan x seed chaos cell and "
                             "verify nothing escapes the documented "
                             "error taxonomy")
    faults.add_argument("--check-seeds", type=int, default=3,
                        help="seeds per plan for --self-check (default 3)")
    from .distributed.sharding import STRATEGY_NAMES
    shard = sub.add_parser(
        "shard",
        help="run a sharded push across a multi-device group "
             "(see docs/DISTRIBUTED.md)")
    shard.add_argument("--group", default="2x iris-xe-max",
                       help="group spec: comma-separated device keys, "
                            "each optionally '<n>x <key>' "
                            "(default '2x iris-xe-max')")
    shard.add_argument("--strategy", choices=STRATEGY_NAMES,
                       default="even",
                       help="sharding strategy (default even)")
    shard.add_argument("--steps", type=int, default=12,
                       help="measured push steps (default 12; two "
                            "warm-up steps run and reset first)")
    shard.add_argument("--shard-particles", type=int, default=200_000,
                       help="ensemble size (default 200000; "
                            "physics-carrying, so keep it modest)")
    shard.add_argument("--no-overlap", action="store_true",
                       help="bulk-synchronous schedule: pushes wait "
                            "for the previous exchange")
    shard.add_argument("--halo", type=float, default=0.02,
                       help="halo fraction exchanged per neighbour per "
                            "step (default 0.02)")
    shard.add_argument("--rebalance-every", type=int, default=0,
                       help="consult the strategy for a new partition "
                            "every N steps (0 = never; pair with "
                            "--strategy nsps)")
    shard.add_argument("--checkpoint-every", type=int, default=5,
                       help="checkpoint cadence enabling device-loss "
                            "redistribution (default 5)")
    commands += [
        measure,
        escape,
        sub.add_parser("roofline",
                       help="arithmetic-intensity analysis per device"),
        sub.add_parser("validate",
                       help="check every paper claim against the model"),
        sub.add_parser("devices", help="list simulated devices"),
        faults,
        shard,
    ]
    for name, command in (("table2", commands[0]), ("table3", commands[1]),
                          ("shard", shard)):
        command.add_argument(
            "--record", action="store_true",
            help=f"append this run's NSPS cells to "
                 f"benchmarks/BENCH_{name}.json (the committed "
                 f"performance trajectory)")
        command.add_argument(
            "--record-dir", default=None, metavar="DIR",
            help="directory of the trajectory files "
                 "(default: ./benchmarks)")
    for command in commands:
        # accept --trace after the command too; SUPPRESS keeps a value
        # given before the command from being clobbered by the default
        _add_trace_flag(command, default=argparse.SUPPRESS)
        _add_fault_flags(command, default=argparse.SUPPRESS)
    trace = sub.add_parser(
        "trace",
        help="run a benchmark command under the tracer and write a "
             "Chrome trace_event JSON")
    trace.add_argument("trace_command", choices=sorted(TRACEABLE_COMMANDS),
                       help="which artefact runner to trace")
    trace.add_argument("--out", required=True, metavar="OUT.json",
                       help="path of the Chrome trace to write")
    return parser


_COMMANDS = {
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "fig1": _cmd_fig1,
    "first-iter": _cmd_first_iter,
    "threads": _cmd_threads,
    "measure": _cmd_measure,
    "escape": _cmd_escape,
    "roofline": _cmd_roofline,
    "validate": _cmd_validate,
    "devices": _cmd_devices,
    "faults": _cmd_faults,
    "shard": _cmd_shard,
}

#: Commands `repro trace CMD` accepts: every runner whose only knob is
#: the global --particles (commands with their own required options are
#: traced via the global --trace flag instead).
TRACEABLE_COMMANDS = ("table2", "table3", "fig1", "first-iter", "threads",
                      "validate")


def _run_traced(command: str, args: argparse.Namespace, out: str) -> None:
    """Run one command under a fresh tracer; write trace + summary."""
    from .observability import (Tracer, format_kernel_summary, tracing,
                                write_chrome_trace)
    tracer = Tracer()
    with tracing(tracer):
        _COMMANDS[command](args)
    write_chrome_trace(tracer, out)
    if tracer.kernel_stats:
        print()
        print(format_kernel_summary(tracer))
    print(f"\ntrace written to {out} "
          f"({len(tracer.sim_slices)} simulated launches, "
          f"{len(tracer.spans)} host spans); open it in chrome://tracing "
          f"or https://ui.perfetto.dev")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    command = args.command
    out = getattr(args, "trace", None)
    if command == "trace":
        command = args.trace_command
        out = args.out
    if out is not None:
        # fail before the (possibly minutes-long) run, not at write time
        parent = os.path.dirname(os.path.abspath(out))
        if not os.path.isdir(parent):
            parser.error(f"--trace/--out: directory {parent!r} does not "
                         f"exist")
    def dispatch() -> None:
        if out is not None:
            _run_traced(command, args, out)
        else:
            _COMMANDS[command](args)

    plan_name = getattr(args, "fault_plan", None)
    if plan_name is not None and command != "faults":
        # the faults command installs its own injector from --plan
        from .resilience import fault_injection, named_plan
        with fault_injection(named_plan(plan_name),
                             seed=getattr(args, "fault_seed", 0)):
            dispatch()
    else:
        dispatch()
    return 0


if __name__ == "__main__":
    sys.exit(main())
