"""Checkpointing: save and load ensembles, Yee grids and whole runs (.npz).

A practical necessity for long pushes and PIC runs.  Files are plain
``numpy.savez_compressed`` archives, so they need no extra
dependencies and stay inspectable::

    repro.io.save_ensemble("state.npz", electrons)
    electrons = repro.io.load_ensemble("state.npz")

Layout, precision and the species table travel with the data; loading
reconstructs the ensemble bit-for-bit (component arrays compare equal).

Three checkpoint granularities build on the same payload helpers:

* :func:`save_ensemble` / :func:`load_ensemble` — particle state only;
* :func:`save_push_state` / :func:`load_push_state` — particle state
  plus the (step, time) pair a push loop needs to resume exactly; the
  unit the step-granular :class:`~repro.resilience.Checkpointer`
  manages;
* :func:`save_simulation` / :func:`load_simulation` — a whole
  :class:`~repro.pic.simulation.PicSimulation` (grid fields + currents
  + every ensemble + solver clock + loop configuration), restoring a
  run that continues bit-identically to one that never stopped.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .errors import ConfigurationError
from .fields.grid import YeeGrid, YEE_STAGGER
from .fp import Precision
from .particles.ensemble import (COMPONENTS, Layout, ParticleEnsemble,
                                 make_ensemble)
from .particles.types import ParticleSpecies, ParticleTypeTable

__all__ = ["save_ensemble", "load_ensemble", "save_grid", "load_grid",
           "save_push_state", "load_push_state", "save_simulation",
           "load_simulation"]

_FORMAT_VERSION = 1

PathLike = Union[str, os.PathLike]


def _ensemble_payload(ensemble: ParticleEnsemble, prefix: str = "") -> dict:
    """Flat array dict describing one ensemble (``prefix`` namespaces it)."""
    table = ensemble.type_table
    payload = {
        f"{prefix}layout": ensemble.layout.value,
        f"{prefix}precision": ensemble.precision.value,
        f"{prefix}size": np.int64(ensemble.size),
        f"{prefix}type_ids": np.ascontiguousarray(ensemble.type_ids),
        f"{prefix}species_names": np.array([s.name for s in table]),
        f"{prefix}species_masses": np.array([s.mass for s in table]),
        f"{prefix}species_charges": np.array([s.charge for s in table]),
    }
    for name in COMPONENTS:
        payload[f"{prefix}{name}"] = \
            np.ascontiguousarray(ensemble.component(name))
    return payload


def _ensemble_from(data, prefix: str = "") -> ParticleEnsemble:
    """Rebuild one ensemble from a loaded archive (inverse of payload)."""
    layout = Layout(str(data[f"{prefix}layout"]))
    precision = Precision(str(data[f"{prefix}precision"]))
    size = int(data[f"{prefix}size"])
    table = ParticleTypeTable()
    for name, mass, charge in zip(data[f"{prefix}species_names"],
                                  data[f"{prefix}species_masses"],
                                  data[f"{prefix}species_charges"]):
        table.register(ParticleSpecies(str(name), float(mass),
                                       float(charge)))
    ensemble = make_ensemble(size, layout, precision, table)
    for name in COMPONENTS:
        ensemble.component(name)[:] = data[f"{prefix}{name}"]
    ensemble.type_ids[:] = data[f"{prefix}type_ids"]
    return ensemble


def save_ensemble(path: PathLike, ensemble: ParticleEnsemble) -> None:
    """Write an ensemble (data + layout + precision + species) to ``path``."""
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        kind="ensemble",
        **_ensemble_payload(ensemble),
    )


def load_ensemble(path: PathLike) -> ParticleEnsemble:
    """Reconstruct an ensemble written by :func:`save_ensemble`."""
    with np.load(path, allow_pickle=False) as data:
        _check_archive(data, "ensemble")
        return _ensemble_from(data)


def _grid_payload(grid: YeeGrid) -> dict:
    """Flat array dict describing one Yee grid."""
    payload = {
        "origin": np.asarray(grid.origin),
        "spacing": np.asarray(grid.spacing),
        "dims": np.asarray(grid.dims, dtype=np.int64),
    }
    payload.update({f"field_{name}": grid.fields[name]
                    for name in YEE_STAGGER})
    payload.update({f"current_{name}": grid.currents[name]
                    for name in ("jx", "jy", "jz")})
    return payload


def _grid_from(data) -> YeeGrid:
    """Rebuild a Yee grid from a loaded archive."""
    grid = YeeGrid(tuple(data["origin"]), tuple(data["spacing"]),
                   tuple(int(d) for d in data["dims"]))
    for name in YEE_STAGGER:
        grid.fields[name][:] = data[f"field_{name}"]
    for name in ("jx", "jy", "jz"):
        grid.currents[name][:] = data[f"current_{name}"]
    return grid


def save_grid(path: PathLike, grid: YeeGrid, time: float = 0.0) -> None:
    """Write a Yee grid (geometry + fields + currents) to ``path``."""
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        kind="yee-grid",
        time=np.float64(time),
        **_grid_payload(grid),
    )


def load_grid(path: PathLike):
    """Reconstruct ``(grid, time)`` written by :func:`save_grid`."""
    with np.load(path, allow_pickle=False) as data:
        _check_archive(data, "yee-grid")
        grid = _grid_from(data)
        time = float(data["time"])
    return grid, time


def save_push_state(path: PathLike, ensemble: ParticleEnsemble,
                    time: float, step: int) -> None:
    """Write one step-granular push checkpoint: ensemble + (step, time).

    The unit the :class:`~repro.resilience.Checkpointer` writes every N
    steps; :func:`load_push_state` restores exactly the state a push
    loop needs to continue (``advance(..., start_time=time)``).
    """
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        kind="push-state",
        time=np.float64(time),
        step=np.int64(step),
        **_ensemble_payload(ensemble),
    )


def load_push_state(path: PathLike):
    """Reconstruct ``(step, time, ensemble)`` from :func:`save_push_state`."""
    with np.load(path, allow_pickle=False) as data:
        _check_archive(data, "push-state")
        return int(data["step"]), float(data["time"]), _ensemble_from(data)


def save_simulation(path: PathLike, simulation) -> None:
    """Write a whole :class:`~repro.pic.simulation.PicSimulation`.

    Captures everything a bit-identical resume needs: the grid (fields
    *and* currents), every ensemble, the solver clock, the step count
    and the loop configuration (dt, deposition scheme, interpolation
    shape, field-solver family).
    """
    payload = {
        "time": np.float64(simulation.time),
        "step_count": np.int64(simulation.step_count),
        "dt": np.float64(simulation.dt),
        "deposition": simulation.deposition,
        "interpolation": simulation.interpolation.name,
        "field_solver": simulation.solver_kind,
        "n_ensembles": np.int64(len(simulation.ensembles)),
    }
    payload.update(_grid_payload(simulation.grid))
    for index, ensemble in enumerate(simulation.ensembles):
        payload.update(_ensemble_payload(ensemble, prefix=f"e{index}_"))
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        kind="pic-simulation",
        **payload,
    )


def load_simulation(path: PathLike, pusher=None):
    """Reconstruct a :class:`~repro.pic.simulation.PicSimulation`.

    ``pusher`` optionally overrides the momentum pusher (the pusher is
    stateless and not serialized; the default Boris matches
    :class:`~repro.pic.simulation.PicSimulation`'s own default).
    """
    from .fields.interpolation import Shape
    from .pic.simulation import PicSimulation

    with np.load(path, allow_pickle=False) as data:
        _check_archive(data, "pic-simulation")
        grid = _grid_from(data)
        ensembles = [_ensemble_from(data, prefix=f"e{index}_")
                     for index in range(int(data["n_ensembles"]))]
        simulation = PicSimulation(
            grid, ensembles, float(data["dt"]), pusher=pusher,
            deposition=str(data["deposition"]),
            interpolation=Shape[str(data["interpolation"])],
            field_solver=str(data["field_solver"]))
        simulation.step_count = int(data["step_count"])
        simulation.solver.time = float(data["time"])
    return simulation


def _check_archive(data, expected_kind: str) -> None:
    if "kind" not in data or str(data["kind"]) != expected_kind:
        raise ConfigurationError(
            f"archive is not a repro {expected_kind} checkpoint")
    version = int(data["format_version"])
    if version > _FORMAT_VERSION:
        raise ConfigurationError(
            f"checkpoint format {version} is newer than this library "
            f"supports ({_FORMAT_VERSION})")
