"""Checkpointing: save and load ensembles and Yee grids (.npz).

A practical necessity for long pushes and PIC runs.  Files are plain
``numpy.savez_compressed`` archives, so they need no extra
dependencies and stay inspectable::

    repro.io.save_ensemble("state.npz", electrons)
    electrons = repro.io.load_ensemble("state.npz")

Layout, precision and the species table travel with the data; loading
reconstructs the ensemble bit-for-bit (component arrays compare equal).
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .errors import ConfigurationError
from .fields.grid import YeeGrid, YEE_STAGGER
from .fp import Precision
from .particles.ensemble import (COMPONENTS, Layout, ParticleEnsemble,
                                 make_ensemble)
from .particles.types import ParticleSpecies, ParticleTypeTable

__all__ = ["save_ensemble", "load_ensemble", "save_grid", "load_grid"]

_FORMAT_VERSION = 1

PathLike = Union[str, os.PathLike]


def save_ensemble(path: PathLike, ensemble: ParticleEnsemble) -> None:
    """Write an ensemble (data + layout + precision + species) to ``path``."""
    table = ensemble.type_table
    species_names = np.array([s.name for s in table])
    species_masses = np.array([s.mass for s in table])
    species_charges = np.array([s.charge for s in table])
    arrays = {name: np.ascontiguousarray(ensemble.component(name))
              for name in COMPONENTS}
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        kind="ensemble",
        layout=ensemble.layout.value,
        precision=ensemble.precision.value,
        size=np.int64(ensemble.size),
        type_ids=np.ascontiguousarray(ensemble.type_ids),
        species_names=species_names,
        species_masses=species_masses,
        species_charges=species_charges,
        **arrays,
    )


def load_ensemble(path: PathLike) -> ParticleEnsemble:
    """Reconstruct an ensemble written by :func:`save_ensemble`."""
    with np.load(path, allow_pickle=False) as data:
        _check_archive(data, "ensemble")
        layout = Layout(str(data["layout"]))
        precision = Precision(str(data["precision"]))
        size = int(data["size"])
        table = ParticleTypeTable()
        for name, mass, charge in zip(data["species_names"],
                                      data["species_masses"],
                                      data["species_charges"]):
            table.register(ParticleSpecies(str(name), float(mass),
                                           float(charge)))
        ensemble = make_ensemble(size, layout, precision, table)
        for name in COMPONENTS:
            ensemble.component(name)[:] = data[name]
        ensemble.type_ids[:] = data["type_ids"]
    return ensemble


def save_grid(path: PathLike, grid: YeeGrid, time: float = 0.0) -> None:
    """Write a Yee grid (geometry + fields + currents) to ``path``."""
    arrays = {f"field_{name}": grid.fields[name] for name in YEE_STAGGER}
    arrays.update({f"current_{name}": grid.currents[name]
                   for name in ("jx", "jy", "jz")})
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        kind="yee-grid",
        origin=np.asarray(grid.origin),
        spacing=np.asarray(grid.spacing),
        dims=np.asarray(grid.dims, dtype=np.int64),
        time=np.float64(time),
        **arrays,
    )


def load_grid(path: PathLike):
    """Reconstruct ``(grid, time)`` written by :func:`save_grid`."""
    with np.load(path, allow_pickle=False) as data:
        _check_archive(data, "yee-grid")
        grid = YeeGrid(tuple(data["origin"]), tuple(data["spacing"]),
                       tuple(int(d) for d in data["dims"]))
        for name in YEE_STAGGER:
            grid.fields[name][:] = data[f"field_{name}"]
        for name in ("jx", "jy", "jz"):
            grid.currents[name][:] = data[f"current_{name}"]
        time = float(data["time"])
    return grid, time


def _check_archive(data, expected_kind: str) -> None:
    if "kind" not in data or str(data["kind"]) != expected_kind:
        raise ConfigurationError(
            f"archive is not a repro {expected_kind} checkpoint")
    version = int(data["format_version"])
    if version > _FORMAT_VERSION:
        raise ConfigurationError(
            f"checkpoint format {version} is newer than this library "
            f"supports ({_FORMAT_VERSION})")
