"""The tracer: nestable spans, counters, and the global no-op hook.

Two clocks run through every traced execution:

* the **host wall clock** (``time.perf_counter``) — real seconds spent
  in Python, recorded as nestable :class:`Span` objects;
* the **simulated device timeline** — the cost-model seconds that the
  queues' :class:`~repro.oneapi.events.Timeline` assigns to kernel
  launches, recorded as flat :class:`SimSlice` objects.

Instrumented code never holds a tracer; it asks :func:`active_tracer`
(a single module-global read) and does nothing when the answer is
``None``.  That is the "no-op by default" contract: an untraced run
executes the same arithmetic as before instrumentation, so the
traced-vs-untraced NSPS regression guard in
``tests/test_observability.py`` can demand exact equality.

This module deliberately imports nothing from :mod:`repro.oneapi` or
:mod:`repro.bench`; the runtime reports in via duck-typed payloads, so
there are no import cycles.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import TraceError
from .counters import KernelStats

__all__ = ["Span", "SimSlice", "TraceError", "Tracer", "active_tracer",
           "install_tracer", "tracing", "trace_span"]


@dataclass
class Span:
    """One nestable host-side interval (wall-clock seconds).

    ``start``/``end`` are seconds relative to the tracer's epoch;
    ``depth`` is the nesting level (0 = top) and ``parent`` the
    enclosing span's name, both fixed when the span closes.
    """

    name: str
    category: str = "host"
    start: float = 0.0
    end: Optional[float] = None
    depth: int = 0
    parent: Optional[str] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall seconds from start to end (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start


@dataclass(frozen=True)
class SimSlice:
    """One interval on a queue's *simulated* timeline (model seconds)."""

    name: str
    start: float
    end: float
    track: str = "sim"
    args: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker on the host wall clock."""

    name: str
    category: str
    timestamp: float
    args: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class CounterSample:
    """One sample of a named set of counter series."""

    name: str
    timestamp: float
    values: Tuple[Tuple[str, float], ...]


class Tracer:
    """Collects spans, instants, counters, simulated-timeline slices and
    per-kernel statistics for one traced execution.

    A tracer is cheap to construct and single-use: create one, run the
    workload under :func:`tracing`, then hand it to
    :func:`~repro.observability.export.write_chrome_trace` and
    :func:`~repro.observability.summary.kernel_summary`.

    Kernel statistics are keyed by ``(scope, kernel_name)`` where
    *scope* is the name of the innermost open span when the launch was
    reported — the bench harness opens one span per benchmark cell, so
    the same kernel name measured under different runtime
    configurations stays separable (see
    :meth:`~repro.observability.counters.KernelStats`).
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._stack: List[Span] = []
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.counters: List[CounterSample] = []
        self.sim_slices: List[SimSlice] = []
        self.kernel_stats: Dict[Tuple[str, str], KernelStats] = {}

    # -- clocks ----------------------------------------------------------

    def now(self) -> float:
        """Wall seconds since this tracer's epoch."""
        return self._clock() - self._epoch

    @property
    def open_depth(self) -> int:
        """Number of currently open (unclosed) spans."""
        return len(self._stack)

    @property
    def current_scope(self) -> str:
        """Name of the innermost open span ("" at top level)."""
        return self._stack[-1].name if self._stack else ""

    # -- spans -----------------------------------------------------------

    def begin_span(self, name: str, category: str = "host", /,
                   **args: Any) -> Span:
        """Open a span; it nests under any span already open."""
        span = Span(name=name, category=category, start=self.now(),
                    depth=len(self._stack),
                    parent=self._stack[-1].name if self._stack else None,
                    args=dict(args))
        self._stack.append(span)
        return span

    def end_span(self, span: Optional[Span] = None, **args: Any) -> Span:
        """Close the innermost span (which must be ``span`` if given)."""
        if not self._stack:
            raise TraceError("end_span with no span open")
        top = self._stack.pop()
        if span is not None and span is not top:
            self._stack.append(top)
            raise TraceError(
                f"unbalanced span exit: tried to close {span.name!r} "
                f"but {top.name!r} is innermost")
        top.end = self.now()
        top.args.update(args)
        self.spans.append(top)
        return top

    @contextlib.contextmanager
    def span(self, name: str, category: str = "host", /,
             **args: Any) -> Iterator[Span]:
        """Context manager recording one nestable wall-clock span."""
        opened = self.begin_span(name, category, **args)
        try:
            yield opened
        finally:
            self.end_span(opened)

    # -- point events ----------------------------------------------------

    def instant(self, name: str, category: str = "host", /,
                **args: Any) -> None:
        """Record a zero-duration marker at the current wall time."""
        self.instants.append(Instant(name=name, category=category,
                                     timestamp=self.now(),
                                     args=tuple(args.items())))

    def counter(self, name: str, /, **values: float) -> None:
        """Record a sample of one or more named counter series."""
        self.counters.append(CounterSample(
            name=name, timestamp=self.now(),
            values=tuple((k, float(v)) for k, v in values.items())))

    # -- simulated timeline ----------------------------------------------

    def sim_slice(self, name: str, start: float, end: float,
                  track: str = "sim", /, **args: Any) -> None:
        """Record one interval of a queue's simulated timeline.

        ``start``/``end`` are cost-model seconds; ``track`` names the
        timeline (one per queue) so concurrent queues get separate rows
        in the exported trace.
        """
        if end < start:
            raise TraceError(
                f"sim slice {name!r} ends before it starts ({end} < {start})")
        self.sim_slices.append(SimSlice(name=name, start=start, end=end,
                                        track=track,
                                        args=tuple(args.items())))

    # -- kernel accounting -----------------------------------------------

    def kernel_launch(self, name: str, n_items: int, timing: Any,
                      wall_seconds: float = 0.0,
                      scope: Optional[str] = None) -> KernelStats:
        """Report one completed kernel launch.

        ``timing`` is duck-typed against
        :class:`~repro.oneapi.costmodel.LaunchTiming` (the tracer reads
        its public float fields); ``wall_seconds`` is the real time the
        numpy kernel body took (0.0 for timing-only launches).
        """
        key = (self.current_scope if scope is None else scope, name)
        stats = self.kernel_stats.get(key)
        if stats is None:
            stats = self.kernel_stats[key] = KernelStats(name=name,
                                                         scope=key[0])
        stats.add_launch(n_items, timing, wall_seconds)
        return stats

    def transfer(self, name: str, seconds: float, nbytes: int,
                 scope: Optional[str] = None) -> None:
        """Report host<->device transfer charged to a kernel's last
        launch (buffer/accessor submissions add it after the fact)."""
        key = (self.current_scope if scope is None else scope, name)
        stats = self.kernel_stats.get(key)
        if stats is not None:
            stats.add_transfer(seconds, nbytes)
        self.instant(f"transfer:{name}", "memory",
                     seconds=seconds, bytes=nbytes)

    # -- distributed events ----------------------------------------------

    def exchange(self, name: str, seconds: float, nbytes: int, /,
                 **args: Any) -> None:
        """Report one cost-modeled inter-device exchange.

        ``name`` identifies the transfer (typically
        ``"<src> -> <dst>"``), ``seconds`` is the simulated link time it
        was charged, ``nbytes`` the payload.  Recorded as an
        ``exchange``-category instant plus a sample of the
        ``exchange-bytes`` counter series, so traces show both the
        individual transfers and the cumulative per-link traffic.
        """
        self.instant(f"exchange:{name}", "exchange",
                     seconds=seconds, bytes=nbytes, **args)
        self.counter("exchange-bytes", **{name: float(nbytes)})

    # -- kernel-graph events ---------------------------------------------

    def fusion_plan(self, groups: List[List[str]],
                    kernels_eliminated: int,
                    refusals: Optional[Dict[str, str]] = None) -> None:
        """Report one fusion pass over a kernel graph.

        ``groups`` are the planned launch groups as kernel-name lists,
        ``kernels_eliminated`` the launches saved versus the unfused
        graph, ``refusals`` the boundaries left unfused and why.
        Recorded as a ``fusion``-category instant plus a sample of the
        ``fusion`` counter series, so traces show both the plan shape
        and the cumulative launch savings.
        """
        self.instant(
            "fusion:plan", "fusion",
            groups=" | ".join("+".join(g) for g in groups),
            kernels_eliminated=kernels_eliminated,
            **({"refusals": "; ".join(f"{k}: {v}" for k, v
                                      in refusals.items())}
               if refusals else {}))
        self.counter("fusion", kernels_eliminated=float(kernels_eliminated),
                     groups=float(len(groups)))

    def program_cache(self, key: Any, warm: bool,
                      stats: Optional[Any] = None) -> None:
        """Report one program-cache lookup.

        ``key`` is duck-typed against
        :class:`~repro.oneapi.programcache.ProgramKey` (the tracer reads
        ``chain`` and ``device``); ``stats`` — when given — is the
        cache's running :class:`~repro.oneapi.programcache.CacheStats`,
        sampled into the ``program-cache`` counter series so traces
        show the hit/miss totals over time.
        """
        self.instant(
            f"program-cache:{'hit' if warm else 'miss'}", "jit",
            chain="+".join(getattr(key, "chain", ())),
            device=getattr(key, "device", ""))
        if stats is not None:
            self.counter("program-cache",
                         hits=float(stats.hits),
                         misses=float(stats.misses),
                         jit_seconds_charged=float(stats.jit_seconds_charged))

    # -- resilience events -----------------------------------------------

    def fault(self, kind: str, /, **args: Any) -> None:
        """Report one injected fault (an instant in the ``fault``
        category; ``args`` carry the injector's audit fields)."""
        self.instant(f"fault:{kind}", "fault", **args)

    def recovery(self, action: str, /, **args: Any) -> None:
        """Report one recovery action (retry, scrub, watchdog giveup,
        checkpoint, restore, device fallback) as a ``recovery``-category
        instant."""
        self.instant(f"recovery:{action}", "recovery", **args)

    # -- validation events -----------------------------------------------

    def hazard(self, kind: str, earlier: str, later: str,
               streams: Any, /, **args: Any) -> None:
        """Report one detected memory hazard.

        ``kind`` is "RAW", "WAR" or "WAW"; ``earlier``/``later`` name
        the two conflicting commands in submission order; ``streams``
        are the shared stream names they race on.  Recorded as a
        ``hazard``-category instant — the detector raises
        :class:`~repro.errors.HazardError` afterwards, so the trace
        keeps the evidence even when the exception is caught.
        """
        self.instant(f"hazard:{kind}", "hazard",
                     earlier=earlier, later=later,
                     streams=",".join(sorted(streams)), **args)

    def validation(self, check: str, passed: bool, /, **args: Any) -> None:
        """Report one differential-validation check outcome.

        ``check`` identifies the comparison (e.g. ``"ulp:single/AoS"``
        or ``"digest:sharded-gather"``); ``args`` carry its measured
        numbers (max ULP distance, digests).  A ``validation``-category
        instant, so traced runs record what was compared and how close
        it came to the tolerance, not just pass/fail.
        """
        self.instant(f"validation:{'pass' if passed else 'fail'}:{check}",
                     "validation", **args)

    # -- service events ----------------------------------------------------

    def job(self, name: str, event: str, /, **args: Any) -> None:
        """Report one scheduler job lifecycle event.

        ``name`` is the job's name, ``event`` the lifecycle transition
        (``"submitted"``, ``"admitted"``, ``"launched"``,
        ``"preempted"``, ``"device-lost"``, ``"restored"``,
        ``"collected"``, ``"completed"``, ``"failed"``, ``"rejected"``
        — see ``docs/SERVICE.md``).  Recorded as a ``service``-category
        instant carrying the job name and the scheduler's simulated
        clock, so a traced schedule shows every job's history next to
        the kernel launches it caused.
        """
        self.instant(f"job:{event}", "service", job=name, **args)

    # -- autotuning events -----------------------------------------------

    def autotune(self, event: str, /, **args: Any) -> None:
        """Report one autotuner event as an ``autotune``-category instant.

        ``event`` is the stage: ``"search"`` (one candidate priced),
        ``"selected"`` (the winning config), ``"calibrated"`` (measured
        NSPS landed within tolerance of the prediction) or
        ``"mispredict"`` (it did not — the cost model's picture of the
        device disagrees with the simulated measurement; see
        ``docs/TUNING.md`` for how to read these).  ``args`` carry the
        candidate label and the predicted/measured numbers.
        """
        self.instant(f"autotune:{event}", "autotune", **args)


# -- the process-wide hook --------------------------------------------------

_lock = threading.Lock()
_active: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is off (the default).

    Instrumentation sites call this once and skip all reporting on
    ``None`` — the entire cost of the observability layer for untraced
    runs is this one global read per site.
    """
    return _active


def install_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the process-wide tracer; returns the
    previously installed one (None to uninstall)."""
    global _active
    with _lock:
        previous = _active
        _active = tracer
    return previous


@contextlib.contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of a ``with`` block.

    Creates a fresh :class:`Tracer` when none is given and always
    restores the previous hook on exit, so traced regions can nest.
    """
    own = Tracer() if tracer is None else tracer
    previous = install_tracer(own)
    try:
        yield own
    finally:
        install_tracer(previous)


@contextlib.contextmanager
def trace_span(name: str, category: str = "host", /,
               **args: Any) -> Iterator[Optional[Span]]:
    """Span on the active tracer, or a no-op when tracing is off.

    The convenience used by coarse-grained instrumentation sites
    (bench runners, PIC stages) where a context manager reads better
    than an explicit ``if`` guard.
    """
    tracer = _active
    if tracer is None:
        yield None
        return
    with tracer.span(name, category, **args) as span:
        yield span
