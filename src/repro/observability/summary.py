"""The flat per-kernel summary table and steady-state NSPS agreement.

:func:`kernel_summary` reduces a tracer's per-kernel statistics to one
row per ``(scope, kernel)`` pair; :func:`steady_nsps` applies *exactly*
the warm-up-skipping average that
:func:`repro.bench.metrics.nsps_from_records` applies to queue records,
so the NSPS printed from a trace is bit-identical to the NSPS the bench
harness reports for the same launches — the invariant the
``repro trace`` CLI and the regression-guard test rely on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..errors import ConfigurationError
from .counters import KernelStats, LaunchSample
from .tracer import Tracer

__all__ = ["steady_nsps", "kernel_summary", "format_kernel_summary"]


def steady_nsps(samples: Sequence[LaunchSample],
                skip_warmup: int = 2) -> float:
    """Steady-state modelled NSPS over launch samples.

    Mirrors :func:`repro.bench.metrics.nsps_from_records`: drop the
    first ``skip_warmup`` launches (JIT + cold pages) when more than
    that many exist, then average per-launch NSPS.
    """
    if not samples:
        raise ConfigurationError("no launch samples to average")
    steady = samples[skip_warmup:] if len(samples) > skip_warmup else samples
    return sum(s.nsps() for s in steady) / len(steady)


def kernel_summary(tracer: Tracer,
                   skip_warmup: int = 2) -> List[Dict[str, Any]]:
    """One summary row per (scope, kernel), sorted by scope then name.

    Each row carries: ``scope``, ``kernel``, ``launches``, ``items``,
    ``steady_nsps`` (modelled ns/item/step after warm-up),
    ``first_nsps`` (the cold first launch), ``modelled_seconds``,
    ``wall_seconds``, ``warmup_seconds`` (JIT + first-touch),
    ``bytes_moved``, ``remote_fraction``, ``cold_pages`` and ``bound``.
    """
    rows: List[Dict[str, Any]] = []
    for (scope, name), stats in sorted(tracer.kernel_stats.items()):
        rows.append(_row(scope, name, stats, skip_warmup))
    return rows


def _row(scope: str, name: str, stats: KernelStats,
         skip_warmup: int) -> Dict[str, Any]:
    first = stats.samples[0] if stats.samples else None
    return {
        "scope": scope,
        "kernel": name,
        "launches": stats.launches,
        "items": stats.items,
        "steady_nsps": steady_nsps(stats.samples, skip_warmup)
        if stats.samples else 0.0,
        "first_nsps": first.nsps() if first is not None else 0.0,
        "modelled_seconds": stats.modelled_seconds,
        "wall_seconds": stats.wall_seconds,
        "warmup_seconds": stats.warmup_seconds,
        "bytes_moved": stats.bytes_moved,
        "remote_fraction": (stats.remote_bytes / stats.bytes_moved
                            if stats.bytes_moved else 0.0),
        "cold_pages": stats.cold_pages,
        "bound": stats.samples[-1].bound if stats.samples else "-",
    }


_COLUMNS = (
    ("scope", "scope", "{}"),
    ("kernel", "kernel", "{}"),
    ("launches", "launches", "{}"),
    ("steady_nsps", "steady NSPS", "{:.3f}"),
    ("first_nsps", "first NSPS", "{:.3f}"),
    ("warmup_seconds", "warm-up s", "{:.4f}"),
    ("wall_seconds", "wall s", "{:.4f}"),
    ("remote_fraction", "remote", "{:.0%}"),
    ("bound", "bound", "{}"),
)


def format_kernel_summary(tracer: Tracer, skip_warmup: int = 2,
                          title: str = "Per-kernel trace summary") -> str:
    """Render :func:`kernel_summary` as an aligned text table.

    Deliberately self-contained (no :mod:`repro.bench.tables` import)
    so the observability package stays dependency-free of the layers it
    measures.
    """
    rows = kernel_summary(tracer, skip_warmup)
    cells = [[fmt.format(row[key]) for key, _, fmt in _COLUMNS]
             for row in rows]
    headers = [header for _, header, _ in _COLUMNS]
    widths = [max(len(headers[i]), *(len(r[i]) for r in cells))
              if cells else len(headers[i]) for i in range(len(headers))]
    lines = [title,
             "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
