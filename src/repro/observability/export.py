"""Chrome ``trace_event`` JSON export.

Produces the JSON-object flavour of the Trace Event Format (the one
``chrome://tracing`` and https://ui.perfetto.dev load directly):
``{"traceEvents": [...], "displayTimeUnit": "ms", ...}``.

Two synthetic processes separate the two clocks:

* **pid 0 — "host (wall clock)"**: the nestable Python spans, instants
  and counter series, in real microseconds since the tracer's epoch;
* **pid 1 — "simulated device"**: the cost-model timeline, one thread
  row per queue, in *simulated* microseconds — this is the row where
  the paper's effects (slow first launch, NUMA gap) are visible.

Event field set emitted per phase, matching the format spec:

========  =======================================================
``ph``    required fields
========  =======================================================
``"X"``   ``name, cat, ph, ts, dur, pid, tid`` (+ ``args``)
``"i"``   ``name, cat, ph, ts, pid, tid, s`` (+ ``args``)
``"C"``   ``name, ph, ts, pid, tid, args`` (one series per key)
``"M"``   ``name, ph, pid, args`` (process/thread naming)
========  =======================================================
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .tracer import Tracer

__all__ = ["HOST_PID", "SIM_PID", "chrome_trace_events", "to_chrome_trace",
           "write_chrome_trace"]

#: Synthetic process id of the host wall-clock rows.
HOST_PID = 0
#: Synthetic process id of the simulated-timeline rows.
SIM_PID = 1

_US = 1.0e6   # seconds -> microseconds (the format's time unit)


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Flatten a tracer's records into trace_event dictionaries."""
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": HOST_PID,
         "args": {"name": "host (wall clock)"}},
        {"name": "process_name", "ph": "M", "pid": SIM_PID,
         "args": {"name": "simulated device"}},
        {"name": "thread_name", "ph": "M", "pid": HOST_PID, "tid": 0,
         "args": {"name": "python"}},
    ]

    for span in tracer.spans:
        events.append({
            "name": span.name, "cat": span.category, "ph": "X",
            "ts": span.start * _US, "dur": span.duration * _US,
            "pid": HOST_PID, "tid": 0,
            "args": dict(span.args, depth=span.depth,
                         **({"parent": span.parent} if span.parent else {})),
        })

    for inst in tracer.instants:
        events.append({
            "name": inst.name, "cat": inst.category, "ph": "i",
            "ts": inst.timestamp * _US, "pid": HOST_PID, "tid": 0,
            "s": "t", "args": dict(inst.args),
        })

    for sample in tracer.counters:
        events.append({
            "name": sample.name, "ph": "C",
            "ts": sample.timestamp * _US, "pid": HOST_PID, "tid": 0,
            "args": dict(sample.values),
        })

    track_tids: Dict[str, int] = {}
    for sim in tracer.sim_slices:
        tid = track_tids.get(sim.track)
        if tid is None:
            tid = track_tids[sim.track] = len(track_tids)
            events.append({"name": "thread_name", "ph": "M", "pid": SIM_PID,
                           "tid": tid, "args": {"name": sim.track}})
        events.append({
            "name": sim.name, "cat": "sim", "ph": "X",
            "ts": sim.start * _US, "dur": sim.duration * _US,
            "pid": SIM_PID, "tid": tid, "args": dict(sim.args),
        })
    return events


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The complete JSON-object-format trace document."""
    per_kernel = {}
    for (scope, name), stats in sorted(tracer.kernel_stats.items()):
        per_kernel.setdefault(name, []).append({
            "scope": scope,
            "launches": stats.launches,
            "items": stats.items,
            "modelled_seconds": stats.modelled_seconds,
            "wall_seconds": stats.wall_seconds,
            "warmup_seconds": stats.warmup_seconds,
            "bytes_moved": stats.bytes_moved,
            "remote_bytes": stats.remote_bytes,
            "cold_pages": stats.cold_pages,
        })
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.observability",
            "kernels": per_kernel,
        },
    }


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    """Serialise the trace document to ``path`` (UTF-8 JSON)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(tracer), handle, indent=1)
        handle.write("\n")
