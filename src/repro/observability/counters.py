"""Per-kernel accumulators: what every launch contributed, and where.

A :class:`KernelStats` aggregates all launches of one kernel name
within one tracing scope (the bench harness scopes by benchmark cell).
It keeps both the running totals — flops, DRAM and interconnect bytes,
modelled vs. real wall seconds, JIT and first-touch warm-up — and the
full per-launch :class:`LaunchSample` list, so the summary layer can
recompute steady-state NSPS with exactly the warm-up-skipping rule the
bench harness uses (:func:`repro.bench.metrics.nsps_from_records`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

__all__ = ["LaunchSample", "KernelStats"]


@dataclass
class LaunchSample:
    """Timing snapshot of one kernel launch (seconds; modelled unless
    named otherwise)."""

    n_items: int
    total_seconds: float
    memory_seconds: float
    compute_seconds: float
    scheduling_seconds: float
    jit_seconds: float
    cold_page_seconds: float
    transfer_seconds: float
    wall_seconds: float
    bytes_moved: float
    remote_bytes: float
    cold_pages: int
    bound: str

    def nsps(self) -> float:
        """Modelled nanoseconds per item for this launch."""
        if self.n_items <= 0:
            return 0.0
        return self.total_seconds * 1.0e9 / self.n_items


@dataclass
class KernelStats:
    """Accumulated statistics of one kernel under one tracing scope.

    ``name`` is the kernel-spec name — the same key
    :func:`repro.oneapi.roofline.analyze_kernel` reports, so roofline
    predictions and traced measurements join on it directly.
    """

    name: str
    scope: str = ""
    launches: int = 0
    items: int = 0
    flops: float = 0.0
    modelled_seconds: float = 0.0
    wall_seconds: float = 0.0
    jit_seconds: float = 0.0
    cold_page_seconds: float = 0.0
    transfer_seconds: float = 0.0
    bytes_moved: float = 0.0
    remote_bytes: float = 0.0
    cold_pages: int = 0
    samples: List[LaunchSample] = field(default_factory=list)

    def add_launch(self, n_items: int, timing: Any,
                   wall_seconds: float = 0.0) -> LaunchSample:
        """Fold one launch in.  ``timing`` is duck-typed against
        :class:`~repro.oneapi.costmodel.LaunchTiming`."""
        sample = LaunchSample(
            n_items=int(n_items),
            total_seconds=timing.total_seconds,
            memory_seconds=timing.memory_seconds,
            compute_seconds=timing.compute_seconds,
            scheduling_seconds=timing.scheduling_seconds,
            jit_seconds=timing.jit_seconds,
            cold_page_seconds=timing.cold_page_seconds,
            transfer_seconds=timing.transfer_seconds,
            wall_seconds=float(wall_seconds),
            bytes_moved=timing.bytes_moved,
            remote_bytes=timing.remote_bytes,
            cold_pages=timing.cold_pages,
            bound=timing.bound,
        )
        self.samples.append(sample)
        self.launches += 1
        self.items += sample.n_items
        self.modelled_seconds += sample.total_seconds
        self.wall_seconds += sample.wall_seconds
        self.jit_seconds += sample.jit_seconds
        self.cold_page_seconds += sample.cold_page_seconds
        self.transfer_seconds += sample.transfer_seconds
        self.bytes_moved += sample.bytes_moved
        self.remote_bytes += sample.remote_bytes
        self.cold_pages += sample.cold_pages
        return sample

    def add_transfer(self, seconds: float, nbytes: int) -> None:
        """Charge buffer/accessor transfer to the most recent launch
        (mirrors how :meth:`repro.oneapi.queue.Queue.submit` extends the
        launch's timing after the fact)."""
        if not self.samples:
            return
        last = self.samples[-1]
        last.transfer_seconds += seconds
        last.total_seconds += seconds
        last.bytes_moved += nbytes
        self.transfer_seconds += seconds
        self.modelled_seconds += seconds
        self.bytes_moved += nbytes

    @property
    def first_launch_seconds(self) -> float:
        """Modelled seconds of the first (JIT + cold-page) launch."""
        return self.samples[0].total_seconds if self.samples else 0.0

    @property
    def warmup_seconds(self) -> float:
        """Total one-off warm-up charged across all launches (JIT plus
        first-touch cold pages — the paper's first-iteration penalty)."""
        return self.jit_seconds + self.cold_page_seconds
