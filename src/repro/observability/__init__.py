"""Structured tracing and profiling for the simulated oneAPI stack.

The paper's results are *timing* claims — NSPS tables, a scaling
figure, a "first iteration is ~50% slower" observation.  This package
is the measurement substrate that lets you see where modelled and real
time go inside a run, the way VTune or ``sycl::event`` profiling would
on real oneAPI hardware:

* :mod:`~repro.observability.tracer` — the :class:`Tracer`: nestable
  wall-clock spans, instants and counters, a simulated-timeline event
  stream, and the process-wide no-op-by-default hook
  (:func:`tracing` / :func:`active_tracer`) that the instrumented
  runtime reports into.  Untraced runs pay a single ``None`` check per
  instrumentation site;
* :mod:`~repro.observability.counters` — per-kernel accumulators
  (launches, flops, bytes, modelled vs. wall seconds, JIT and
  first-touch penalties) keyed by the same kernel names
  :mod:`repro.oneapi.roofline` analyses;
* :mod:`~repro.observability.export` — Chrome ``trace_event`` JSON
  export, loadable in ``chrome://tracing`` or https://ui.perfetto.dev;
* :mod:`~repro.observability.summary` — the flat per-kernel summary
  table and the steady-state NSPS recomputation that must agree with
  the bench harness exactly (the traced-vs-untraced regression guard).

Capture a trace around any code that drives the simulated runtime::

    from repro.observability import Tracer, tracing, write_chrome_trace

    tracer = Tracer()
    with tracing(tracer):
        ...  # run kernels / bench runners / PIC steps
    write_chrome_trace(tracer, "trace.json")

or from the command line: ``python -m repro trace table2 --out t.json``.
See ``docs/PROFILING.md`` for the full guide and
``docs/ARCHITECTURE.md`` for how the instrumented modules fit together.
"""

from .tracer import (
    Span,
    SimSlice,
    TraceError,
    Tracer,
    active_tracer,
    install_tracer,
    trace_span,
    tracing,
)
from .counters import KernelStats, LaunchSample
from .export import chrome_trace_events, to_chrome_trace, write_chrome_trace
from .summary import format_kernel_summary, kernel_summary, steady_nsps

__all__ = [
    "Span",
    "SimSlice",
    "TraceError",
    "Tracer",
    "active_tracer",
    "install_tracer",
    "trace_span",
    "tracing",
    "KernelStats",
    "LaunchSample",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "format_kernel_summary",
    "kernel_summary",
    "steady_nsps",
]
