"""Charge and current deposition onto the Yee grid.

Deposition closes the PIC loop ("the grid values of the current J are
computed and added to Maxwell's equations forming the self-consistent
system").  Two current schemes are provided:

* :func:`deposit_current_direct` — straightforward form-factor
  weighting of ``q w v`` onto each staggered current component.
  Simple but does not satisfy the discrete continuity equation.
* :func:`deposit_current_esirkepov` — the charge-conserving scheme of
  Esirkepov (CPC 135, 2001): the current is built from the *motion* of
  the particle shape between two positions, so
  ``(rho1 - rho0)/dt + div J = 0`` holds to round-off — the property
  the test suite checks.

Both work at any of the implemented form-factor orders (NGP, CIC, TSC
— the paper's "fixed localized shape function"); the Esirkepov density
decomposition is shape-agnostic, only the stencil window widens.  All
deposition is periodic and vectorized over particles (the stencil
loops are fixed small iteration counts of ``np.add.at``).

**Accumulation precision contract.**  Deposition always *accumulates*
in float64 (:data:`ACCUMULATION_DTYPE`), whatever the ensemble's
storage precision: the grid's current arrays are float64, and a
single-precision scatter-add over many particles per cell loses the
small per-particle contributions to cancellation — which would break
the discrete continuity equation the Esirkepov scheme exists to
satisfy.  A float32 ensemble therefore yields *bit-identical* grid
currents across engine modes (the storage precision shows up in the
particle state, where the differential sweep's per-precision ULP
groups compare it), and :func:`charge_weight` deliberately upcasts
once, not per call.
"""

from __future__ import annotations

import weakref
from typing import Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..fields.grid import YeeGrid
from ..fields.interpolation import Shape, shape_weights
from ..particles.ensemble import ParticleEnsemble

__all__ = ["ACCUMULATION_DTYPE", "charge_weight",
           "invalidate_charge_weight", "deposit_charge",
           "deposit_current_direct", "deposit_current_esirkepov"]

#: The dtype every deposition accumulates in (see the module docstring).
ACCUMULATION_DTYPE = np.dtype(np.float64)

#: Per-ensemble cache of the float64 ``q * w`` array.  Keyed weakly so
#: a discarded ensemble releases its entry.
_CHARGE_WEIGHT_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def charge_weight(ensemble: ParticleEnsemble) -> np.ndarray:
    """Cached float64 per-particle ``q * w`` [statC].

    Every deposition needs the charge-times-weight array; recomputing
    it per call costs an O(N) type-table gather plus an O(N) upcast of
    the weight component on the hot path — the same per-call-cast bug
    class PR 5 fixed in the Boris species LUTs.  The product is
    constant for ordinary ensembles, so it is computed once per
    ensemble and returned as a read-only array.

    Callers that mutate ``weight`` or the type ids (the ionization
    operator grows weights) must call
    :func:`invalidate_charge_weight` afterwards; everything in this
    repo that does so already does.
    """
    cached = _CHARGE_WEIGHT_CACHE.get(ensemble)
    if cached is not None and cached.shape[0] == ensemble.size:
        return cached
    qw = (ensemble.charges()
          * ensemble.component("weight").astype(ACCUMULATION_DTYPE))
    qw.setflags(write=False)
    _CHARGE_WEIGHT_CACHE[ensemble] = qw
    return qw


def invalidate_charge_weight(ensemble: Optional[ParticleEnsemble] = None
                             ) -> None:
    """Drop the cached ``q * w`` of ``ensemble`` (or of everyone)."""
    if ensemble is None:
        _CHARGE_WEIGHT_CACHE.clear()
    else:
        _CHARGE_WEIGHT_CACHE.pop(ensemble, None)


def _fractions(positions: np.ndarray, origin, spacing) -> np.ndarray:
    """Particle coordinates in cell units (may be any real value)."""
    pos = np.asarray(positions, dtype=np.float64)
    org = np.asarray(origin, dtype=np.float64)
    spc = np.asarray(spacing, dtype=np.float64)
    return (pos - org) / spc


def _check_accumulator(target: np.ndarray) -> None:
    """Enforce the module's float64 accumulation contract."""
    if target.dtype != ACCUMULATION_DTYPE:
        raise SimulationError(
            f"deposition accumulates in {ACCUMULATION_DTYPE} by contract "
            f"(see repro.pic.deposition); got a {target.dtype} target")


def _deposit_scalar(target: np.ndarray, frac: np.ndarray,
                    values: np.ndarray, dims,
                    staggers: Tuple[float, float, float],
                    shape: Shape) -> None:
    """Scatter ``values`` onto ``target`` with the given form factor."""
    _check_accumulator(target)
    stencils = []
    for axis in range(3):
        idx, wgt = shape_weights(shape, frac[:, axis] - staggers[axis])
        stencils.append((np.mod(idx, dims[axis]), wgt))
    (ix, wx), (iy, wy), (iz, wz) = stencils
    for a in range(ix.shape[1]):
        for b in range(iy.shape[1]):
            for c in range(iz.shape[1]):
                weight = wx[:, a] * wy[:, b] * wz[:, c]
                np.add.at(target, (ix[:, a], iy[:, b], iz[:, c]),
                          values * weight)


def deposit_charge(grid: YeeGrid, ensemble: ParticleEnsemble,
                   positions: Optional[np.ndarray] = None,
                   shape: Shape = Shape.CIC) -> np.ndarray:
    """Charge density at the grid nodes [statC/cm^3].

    ``positions`` overrides the ensemble's current positions (used by
    the continuity test to evaluate rho before and after a push).
    """
    pos = ensemble.positions() if positions is None else positions
    frac = _fractions(pos, grid.origin, grid.spacing)
    charge = charge_weight(ensemble) / grid.cell_volume
    rho = np.zeros(grid.dims)
    _deposit_scalar(rho, frac, charge, grid.dims, (0.0, 0.0, 0.0), shape)
    return rho


def deposit_current_direct(grid: YeeGrid, ensemble: ParticleEnsemble,
                           shape: Shape = Shape.CIC) -> None:
    """Deposit ``q w v`` onto the staggered current components.

    Adds into ``grid.currents`` (call ``grid.clear_currents()`` first
    for a fresh deposition).  Not charge-conserving; kept as the
    baseline the Esirkepov scheme is compared against.
    """
    pos = ensemble.positions()
    vel = ensemble.velocities()
    frac = _fractions(pos, grid.origin, grid.spacing)
    qw = charge_weight(ensemble) / grid.cell_volume
    staggers = {"jx": (0.5, 0.0, 0.0), "jy": (0.0, 0.5, 0.0),
                "jz": (0.0, 0.0, 0.5)}
    for axis, name in enumerate(("jx", "jy", "jz")):
        _deposit_scalar(grid.currents[name], frac, qw * vel[:, axis],
                        grid.dims, staggers[name], shape)


def _window_parameters(shape: Shape) -> Tuple[int, int]:
    """(extra margin below the shape's own support, window size).

    Sub-cell motion shifts the support by at most one node in either
    direction, so the common window is the shape's support plus one
    node on each side.
    """
    if shape is Shape.CIC:
        return 1, 4
    if shape is Shape.TSC:
        # Support spans 3 nodes about round(x); sub-cell motion can
        # shift the centre node by one either way.
        return 2, 5
    raise SimulationError(
        "Esirkepov deposition requires a CIC or TSC form factor "
        f"(got {shape}); NGP carries no sub-cell motion information")


def _shape_on_window(frac: np.ndarray, base: np.ndarray,
                     shape: Shape, margin: int, width: int) -> np.ndarray:
    """Form-factor values on the common window ``base-margin ..``.

    Returns shape ``(width, N)``; column sums are exactly 1 when the
    window covers the full support (guaranteed for sub-cell motion).
    """
    offsets = (np.arange(width) - margin)[:, None]
    distance = np.abs(frac[None, :] - (base[None, :] + offsets))
    if shape is Shape.CIC:
        return np.maximum(0.0, 1.0 - distance)
    # TSC: quadratic spline of support 1.5 cells.
    inner = 0.75 - distance ** 2
    outer = 0.5 * (1.5 - distance) ** 2
    return np.where(distance <= 0.5, inner,
                    np.where(distance <= 1.5, outer, 0.0))


def deposit_current_esirkepov(grid: YeeGrid, ensemble: ParticleEnsemble,
                              old_positions: np.ndarray,
                              dt: float,
                              shape: Shape = Shape.CIC) -> None:
    """Charge-conserving current deposition (Esirkepov).

    ``old_positions`` are the particle positions *before* the push (in
    the same, unwrapped coordinates as the current ensemble positions);
    each particle must move less than one cell per axis per step, which
    any CFL-respecting simulation guarantees.

    Adds into ``grid.currents`` so that the discrete continuity
    equation holds against :func:`deposit_charge` (with the same
    ``shape``) evaluated at the old and new positions.
    """
    if dt <= 0.0:
        raise SimulationError(f"dt must be positive, got {dt!r}")
    new_pos = ensemble.positions()
    old = np.asarray(old_positions, dtype=np.float64)
    if old.shape != new_pos.shape:
        raise SimulationError(
            f"old_positions shape {old.shape} does not match ensemble "
            f"({new_pos.shape})")
    f0 = _fractions(old, grid.origin, grid.spacing)
    f1 = _fractions(new_pos, grid.origin, grid.spacing)
    if np.any(np.abs(f1 - f0) >= 1.0):
        raise SimulationError(
            "a particle moved a full cell or more in one step; "
            "Esirkepov deposition requires sub-cell motion (reduce dt)")

    margin, width = _window_parameters(shape)
    dims = grid.dims
    qw = charge_weight(ensemble)
    if shape is Shape.CIC:
        base = [np.floor(f0[:, a]).astype(np.int64) for a in range(3)]
    else:
        base = [np.round(f0[:, a]).astype(np.int64) for a in range(3)]
    s0 = [_shape_on_window(f0[:, a], base[a], shape, margin, width)
          for a in range(3)]
    s1 = [_shape_on_window(f1[:, a], base[a], shape, margin, width)
          for a in range(3)]
    ds = [s1[a] - s0[a] for a in range(3)]

    # Esirkepov density-decomposition weights, shape (w, w, w, N).
    def w_factor(a: int, b: int, c: int) -> np.ndarray:
        """W along axis ``a`` with transverse axes ``b`` and ``c``."""
        return ds[a][:, None, None, :] * (
            s0[b][None, :, None, :] * s0[c][None, None, :, :]
            + 0.5 * ds[b][None, :, None, :] * s0[c][None, None, :, :]
            + 0.5 * s0[b][None, :, None, :] * ds[c][None, None, :, :]
            + ds[b][None, :, None, :] * ds[c][None, None, :, :] / 3.0)

    # J_a(i+1/2) = J_a(i-1/2) - (q w d_a / (V dt)) W_a  =>  cumulative sum.
    cell_volume = grid.cell_volume
    spacing = grid.spacing
    names = ("jx", "jy", "jz")
    for name in names:
        _check_accumulator(grid.currents[name])
    # Transverse axis order per component keeps the (l, m, n) index
    # meaning (a-axis, b-axis, c-axis).
    transverse = {0: (1, 2), 1: (0, 2), 2: (0, 1)}
    offsets = np.arange(width) - margin
    for a in range(3):
        b, c = transverse[a]
        w = w_factor(a, b, c)
        flux = -np.cumsum(w, axis=0) * (qw * spacing[a]
                                        / (cell_volume * dt))[None, None, None, :]
        target = grid.currents[names[a]]
        # Map the (l, m, n) window onto grid axes: l runs along axis a,
        # m along axis b, n along axis c.
        for li, l_off in enumerate(offsets):
            ga = np.mod(base[a] + l_off, dims[a])
            for mi, m_off in enumerate(offsets):
                gb = np.mod(base[b] + m_off, dims[b])
                for ni, n_off in enumerate(offsets):
                    gc = np.mod(base[c] + n_off, dims[c])
                    index = [None, None, None]
                    index[a] = ga
                    index[b] = gb
                    index[c] = gc
                    np.add.at(target, tuple(index), flux[li, mi, ni, :])
