"""Seeded Monte Carlo operators for the PIC loop.

Following "Multi-GPU Hybrid Particle-in-Cell Monte Carlo Simulations
for Exascale Computing Systems", collisions and field ionization enter
the device loop as first-class kernels between the push and the
deposit.  Two operators are provided:

* :class:`CollisionOperator` — elastic small-angle scattering against
  a stationary background (a Takizuka–Abe-style pitch-angle kick):
  each particle's momentum vector is rotated by a random polar angle
  drawn from the collision frequency, preserving ``|p|`` — and hence
  kinetic energy — exactly up to round-off.
* :class:`IonizationOperator` — field ionization with an ADK-like
  exponential rate in the *gathered* per-particle electric field:
  macroparticles sitting in strong fields grow their weight (newly
  freed physical electrons joining the macroparticle), which is why
  the operator invalidates the deposition layer's cached ``q·w``.

**Determinism contract.**  Every random draw comes from a
*counter-based* generator (:func:`step_generator`, numpy's Philox)
keyed on ``(seed, operator tag)`` with the counter set from
``(step index, ensemble stream)``.  Draws therefore depend only on the
logical step — never on how kernels were grouped into launches — so
fused, unfused and legacy engine modes are bit-exact, and two runs
with the same seed are bit-exact across engine modes and processes.
"""

from __future__ import annotations

import zlib
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..fields.base import FieldValues
from ..particles.ensemble import ParticleEnsemble
from .deposition import invalidate_charge_weight

__all__ = ["step_generator", "PicOperator", "CollisionOperator",
           "IonizationOperator"]

#: Floating-point work per particle of each operator (single-precision
#: equivalent flops) — what their kernel specs declare.
COLLISION_FLOPS = 60
IONIZATION_FLOPS = 25


def step_generator(seed: int, tag: str, step: int,
                   stream: int = 0) -> np.random.Generator:
    """Counter-based generator for one (operator, step, stream) cell.

    Philox is a counter-based RNG: the key is ``(seed, crc32(tag))``
    and the counter encodes ``(step, stream)``, so the draw sequence is
    a pure function of those four values — no hidden state advances
    between steps, which is what keeps fused and unfused executions of
    the same logical step bit-exact.
    """
    if step < 0:
        raise ConfigurationError(f"step must be >= 0, got {step}")
    key = np.array([np.uint64(seed & 0xFFFFFFFFFFFFFFFF),
                    np.uint64(zlib.crc32(tag.encode("utf-8")))],
                   dtype=np.uint64)
    counter = np.array([np.uint64(step), np.uint64(stream),
                        np.uint64(0), np.uint64(0)], dtype=np.uint64)
    return np.random.Generator(np.random.Philox(key=key, counter=counter))


class PicOperator:
    """Interface of a Monte Carlo operator in the PIC loop.

    Operators run after the push and before the deposit, once per
    ensemble per step.  Subclasses declare:

    * ``tag`` — the RNG key component and the kernel-node tag;
    * ``reads_fields`` — whether :meth:`apply` consumes the gathered
      per-particle field arrays (decides whether the operator's kernel
      node reads the gather stage's transient streams);
    * ``mutates_weight`` — whether weights change (decides whether the
      node declares the weight stream and must invalidate the
      deposition ``q·w`` cache);
    * ``flops_per_item`` — the arithmetic its kernel spec declares.
    """

    tag: str = "operator"
    reads_fields: bool = False
    mutates_weight: bool = False
    flops_per_item: float = 10.0

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def apply(self, ensemble: ParticleEnsemble,
              fields: Optional[FieldValues], step: int, dt: float,
              stream: int = 0) -> None:
        """Apply the operator in place for one logical step."""
        raise NotImplementedError


class CollisionOperator(PicOperator):
    """Elastic pitch-angle scattering against a stationary background.

    ``frequency`` [1/s] is the momentum-transfer collision frequency
    ``nu``; each step every particle's momentum direction is rotated by
    a polar angle with variance ``2 nu dt`` (the small-angle Lorentz
    limit) and a uniform azimuth.  ``|p|`` is preserved, so the
    operator conserves kinetic energy to round-off — the property the
    scenario energy-drift tests lean on.
    """

    tag = "collide"
    reads_fields = False
    mutates_weight = False
    flops_per_item = float(COLLISION_FLOPS)

    def __init__(self, frequency: float, seed: int = 0) -> None:
        super().__init__(seed)
        if frequency < 0.0:
            raise ConfigurationError(
                f"collision frequency must be >= 0, got {frequency!r}")
        self.frequency = float(frequency)

    def apply(self, ensemble: ParticleEnsemble,
              fields: Optional[FieldValues], step: int, dt: float,
              stream: int = 0) -> None:
        n = ensemble.size
        if n == 0 or self.frequency == 0.0:
            return
        rng = step_generator(self.seed, self.tag, step, stream)
        # Fixed draw order: polar kick first, then azimuth.
        theta = rng.standard_normal(n) * np.sqrt(
            2.0 * self.frequency * float(dt))
        phi = rng.random(n) * (2.0 * np.pi)

        px = ensemble.component("px").astype(np.float64)
        py = ensemble.component("py").astype(np.float64)
        pz = ensemble.component("pz").astype(np.float64)
        p = np.sqrt(px * px + py * py + pz * pz)
        moving = p > 0.0
        safe = np.where(moving, p, 1.0)
        ux, uy, uz = px / safe, py / safe, pz / safe

        # An orthonormal frame about the momentum direction: pick the
        # seed axis least aligned with u so the cross product is stable.
        ax = np.where(np.abs(ux) < 0.9, 1.0, 0.0)
        ay = 1.0 - ax
        e1x = uy * 0.0 - uz * ay
        e1y = uz * ax - ux * 0.0
        e1z = ux * ay - uy * ax
        norm = np.sqrt(e1x * e1x + e1y * e1y + e1z * e1z)
        norm = np.where(norm > 0.0, norm, 1.0)
        e1x, e1y, e1z = e1x / norm, e1y / norm, e1z / norm
        e2x = uy * e1z - uz * e1y
        e2y = uz * e1x - ux * e1z
        e2z = ux * e1y - uy * e1x

        sin_t, cos_t = np.sin(theta), np.cos(theta)
        sin_p, cos_p = np.sin(phi), np.cos(phi)
        kick = sin_t * cos_p
        lift = sin_t * sin_p
        nx = cos_t * ux + kick * e1x + lift * e2x
        ny = cos_t * uy + kick * e1y + lift * e2y
        nz = cos_t * uz + kick * e1z + lift * e2z

        ensemble.component("px")[:] = np.where(moving, p * nx, px)
        ensemble.component("py")[:] = np.where(moving, p * ny, py)
        ensemble.component("pz")[:] = np.where(moving, p * nz, pz)


class IonizationOperator(PicOperator):
    """Field ionization feeding the macroparticle weights.

    The per-particle ionization rate is the tunnelling-style
    exponential ``rate0 * exp(-critical_field / |E|)`` evaluated in the
    *gathered* electric field (the operator's kernel node reads the
    gather stage's per-particle field streams).  A macroparticle
    ionizes with probability ``1 - exp(-rate dt)`` per step; an
    ionizing macroparticle's weight grows by ``yield_fraction`` —
    newly freed physical electrons joining it — so the operator
    invalidates the deposition layer's cached ``q·w``.
    """

    tag = "ionize"
    reads_fields = True
    mutates_weight = True
    flops_per_item = float(IONIZATION_FLOPS)

    def __init__(self, rate: float, critical_field: float,
                 yield_fraction: float = 0.02, seed: int = 0) -> None:
        super().__init__(seed)
        if rate < 0.0:
            raise ConfigurationError(
                f"ionization rate must be >= 0, got {rate!r}")
        if critical_field <= 0.0:
            raise ConfigurationError(
                f"critical_field must be positive, got {critical_field!r}")
        if yield_fraction < 0.0:
            raise ConfigurationError(
                f"yield_fraction must be >= 0, got {yield_fraction!r}")
        self.rate = float(rate)
        self.critical_field = float(critical_field)
        self.yield_fraction = float(yield_fraction)

    def apply(self, ensemble: ParticleEnsemble,
              fields: Optional[FieldValues], step: int, dt: float,
              stream: int = 0) -> None:
        if fields is None:
            raise ConfigurationError(
                "IonizationOperator needs the gathered per-particle "
                "fields (reads_fields is True)")
        n = ensemble.size
        if n == 0 or self.rate == 0.0:
            return
        ex = np.asarray(fields.ex, dtype=np.float64)
        ey = np.asarray(fields.ey, dtype=np.float64)
        ez = np.asarray(fields.ez, dtype=np.float64)
        magnitude = np.sqrt(ex * ex + ey * ey + ez * ez)
        rate = np.where(magnitude > 0.0,
                        self.rate * np.exp(-self.critical_field
                                           / np.where(magnitude > 0.0,
                                                      magnitude, 1.0)),
                        0.0)
        probability = -np.expm1(-rate * float(dt))
        rng = step_generator(self.seed, self.tag, step, stream)
        draws = rng.random(n)
        ionized = draws < probability
        if np.any(ionized):
            weight = ensemble.component("weight")
            weight[ionized] = weight[ionized] * (1.0 + self.yield_fraction)
            invalidate_charge_weight(ensemble)
