"""The PIC loop lowered onto the kernel-graph IR.

:class:`PicEngine` drives a :class:`~repro.pic.simulation.PicSimulation`
through a simulated :class:`~repro.oneapi.queue.Queue`, recording every
step as a :class:`~repro.oneapi.graph.KernelGraph`:

* **gather** — interpolate E and B from the Yee grid to per-particle
  arrays (elementwise; its output streams are declared ``transient``
  so a fused group carries them in registers);
* **push** — the Boris push over the gathered fields (elementwise);
* **Monte Carlo operators** — collisions / field ionization
  (elementwise, counter-based RNG — see :mod:`repro.pic.montecarlo`);
* **deposit** — current deposition + the periodic position wrap
  (a *barrier* node: scatter-add has cross-particle dependencies, so
  nothing fuses across it — the canonical barrier kernel of the graph
  IR's docstring);
* **field-advance** — the Maxwell solve over the grid cells (barrier).

Because the executor runs node bodies in recorded order whether or not
launches are fused, fused and unfused runs are bit-exact; because the
Monte Carlo draws are keyed on the logical step, the legacy path is
bit-exact too.  The declared read/write sets make the whole step
visible to the fusion pass, the hazard detector, the roofline
analyzer, tracing and fault injection — the same machinery the push
engines enjoy.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..fields.interpolation import interpolate_from_yee_grid
from ..observability.tracer import trace_span
from ..oneapi.graph import GraphExecutor, KernelGraph, KernelNode
from ..oneapi.kernelspec import KernelSpec, MemoryStream, StreamKind
from ..oneapi.queue import Queue
from ..oneapi.runtime import PUSH_FLOPS
from ..particles.ensemble import COMPONENTS, Layout, ParticleEnsemble
from ..resilience.faults import active_fault_injector
from .deposition import deposit_current_direct, deposit_current_esirkepov
from .simulation import PicSimulation

__all__ = ["GATHER_FLOPS", "DEPOSIT_FLOPS", "ADVANCE_FLOPS",
           "pic_state_digest", "build_gather_spec", "build_push_spec",
           "build_operator_spec", "build_deposit_spec",
           "build_advance_spec", "PicEngine"]

#: Arithmetic per particle of the six-component staggered gather
#: (support^3 weighted sum per component, CIC support assumed for the
#: estimate; the builders scale by the actual support).
GATHER_FLOPS = 5.0
#: Arithmetic per particle of the Esirkepov window scatter (per window
#: point); the builders scale by the window volume.
DEPOSIT_FLOPS = 14.0
#: Arithmetic per grid cell of one FDTD leapfrog step.
ADVANCE_FLOPS = {"fdtd": 36.0, "spectral": 220.0}

#: The six per-particle gathered field components.
_FIELD_COMPONENTS = ("ex", "ey", "ez", "bx", "by", "bz")


def pic_state_digest(simulation: PicSimulation) -> str:
    """SHA-256 digest of the complete PIC state.

    Hashes every floating-point component of every ensemble (weight
    included — ionization grows it) plus the grid's fields and
    currents, in a fixed order, so two runs agree iff they are
    bit-exact end to end.
    """
    digest = hashlib.sha256()
    for ensemble in simulation.ensembles:
        for name in COMPONENTS:
            digest.update(np.ascontiguousarray(
                ensemble.component(name)).tobytes())
    grid = simulation.grid
    for name in sorted(grid.fields):
        digest.update(grid.fields[name].tobytes())
    for name in sorted(grid.currents):
        digest.update(grid.currents[name].tobytes())
    return digest.hexdigest()


# -- stream builders -------------------------------------------------------


def _suffix(species: int, count: int) -> str:
    """Stream-name suffix keeping multi-species streams distinct."""
    return "" if count == 1 else f"@{species}"


def _aos_stream(ensemble: ParticleEnsemble, memory, kind: StreamKind,
                suffix: str) -> MemoryStream:
    precision = ensemble.precision
    name = f"particles-aos{suffix}"
    allocation = memory.register(ensemble.records, name=name) \
        if memory is not None else None
    return MemoryStream(
        name=name, kind=kind, bytes_per_item=precision.particle_bytes,
        span_bytes_per_item=precision.particle_bytes_aligned,
        contiguous=False, allocation=allocation)


def _soa_stream(ensemble: ParticleEnsemble, memory, component: str,
                kind: StreamKind, suffix: str) -> MemoryStream:
    name = f"soa-{component}{suffix}"
    if component == "type":
        array, nbytes = ensemble.type_ids, 2
    else:
        array, nbytes = ensemble.component(component), \
            ensemble.precision.itemsize
    allocation = memory.register(array, name=name) \
        if memory is not None else None
    return MemoryStream(name=name, kind=kind, bytes_per_item=nbytes,
                        contiguous=True, allocation=allocation)


def _gathered_field_streams(ensemble: ParticleEnsemble, memory,
                            kind: StreamKind, suffix: str,
                            components=_FIELD_COMPONENTS) -> List[MemoryStream]:
    """The per-particle gathered field arrays (always float64)."""
    streams = []
    for component in components:
        name = f"pic-fields-{component}{suffix}"
        allocation = memory.virtual(ensemble.size * 8, name=name) \
            if memory is not None else None
        streams.append(MemoryStream(
            name=name, kind=kind, bytes_per_item=8, contiguous=True,
            allocation=allocation))
    return streams


def _grid_streams(grid, memory, names, kind: StreamKind,
                  bytes_per_item: float,
                  contiguous: bool = True) -> List[MemoryStream]:
    streams = []
    for name in names:
        store = grid.currents[name] if name.startswith("j") \
            else grid.fields[name]
        allocation = memory.register(store, name=f"grid-{name}") \
            if memory is not None else None
        streams.append(MemoryStream(
            name=f"grid-{name}", kind=kind, bytes_per_item=bytes_per_item,
            contiguous=contiguous, allocation=allocation))
    return streams


def _particle_streams(ensemble: ParticleEnsemble, memory, suffix: str,
                      read_write, read=(), write=()) -> List[MemoryStream]:
    """Particle streams in the ensemble's layout.

    In AoS every access touches the one record stream (strided); the
    strongest requested kind wins.  In SoA each component is its own
    contiguous stream with its own kind.
    """
    if ensemble.layout is Layout.AOS:
        if read_write or (read and write):
            kind = StreamKind.READ_WRITE
        elif write:
            kind = StreamKind.WRITE
        else:
            kind = StreamKind.READ
        return [_aos_stream(ensemble, memory, kind, suffix)]
    streams = []
    for component in read_write:
        streams.append(_soa_stream(ensemble, memory, component,
                                   StreamKind.READ_WRITE, suffix))
    for component in read:
        streams.append(_soa_stream(ensemble, memory, component,
                                   StreamKind.READ, suffix))
    for component in write:
        streams.append(_soa_stream(ensemble, memory, component,
                                   StreamKind.WRITE, suffix))
    return streams


# -- spec builders ---------------------------------------------------------


def build_gather_spec(ensemble: ParticleEnsemble, shape, memory,
                      suffix: str = "") -> KernelSpec:
    """Gather stage: read positions, write the six per-particle fields."""
    support = shape.support
    streams = _particle_streams(ensemble, memory, suffix, (),
                                read=("x", "y", "z"))
    streams += _gathered_field_streams(ensemble, memory, StreamKind.WRITE,
                                       suffix)
    flops = 6.0 * support ** 3 * GATHER_FLOPS + 15.0
    name = (f"pic-gather-{shape.name.lower()}-{ensemble.layout.value}"
            f"-{ensemble.precision.value}{suffix}")
    return KernelSpec(name=name, streams=tuple(streams),
                      flops_per_item=flops)


def build_push_spec(ensemble: ParticleEnsemble, memory,
                    suffix: str = "") -> KernelSpec:
    """Push stage: Boris rotation over the gathered per-particle fields."""
    streams = _particle_streams(
        ensemble, memory, suffix,
        ("x", "y", "z", "px", "py", "pz"),
        read=("type",), write=("gamma",))
    streams += _gathered_field_streams(ensemble, memory, StreamKind.READ,
                                       suffix)
    name = (f"pic-push-{ensemble.layout.value}"
            f"-{ensemble.precision.value}{suffix}")
    return KernelSpec(name=name, streams=tuple(streams),
                      flops_per_item=float(PUSH_FLOPS))


def build_operator_spec(ensemble: ParticleEnsemble, operator, memory,
                        suffix: str = "") -> KernelSpec:
    """Monte Carlo operator stage (collision / ionization)."""
    read_write = ["px", "py", "pz"]
    if operator.mutates_weight:
        read_write.append("weight")
    streams = _particle_streams(ensemble, memory, suffix,
                                tuple(read_write))
    if operator.reads_fields:
        streams += _gathered_field_streams(
            ensemble, memory, StreamKind.READ, suffix,
            components=("ex", "ey", "ez"))
    name = (f"pic-{operator.tag}-{ensemble.layout.value}"
            f"-{ensemble.precision.value}{suffix}")
    return KernelSpec(name=name, streams=tuple(streams),
                      flops_per_item=float(operator.flops_per_item))


def build_deposit_spec(ensemble: ParticleEnsemble, deposition: str,
                       shape, grid, memory,
                       suffix: str = "") -> KernelSpec:
    """Deposit stage: scatter-add currents + the periodic wrap (barrier)."""
    from .deposition import _window_parameters
    if deposition == "esirkepov":
        _, width = _window_parameters(shape)
    else:
        width = shape.support
    streams = _particle_streams(
        ensemble, memory, suffix, ("x", "y", "z"),
        read=("px", "py", "pz", "gamma", "weight", "type"))
    streams += _grid_streams(grid, memory, ("jx", "jy", "jz"),
                             StreamKind.READ_WRITE,
                             bytes_per_item=width ** 3 * 8.0,
                             contiguous=False)
    flops = 3.0 * width ** 3 * DEPOSIT_FLOPS + 30.0
    name = (f"pic-deposit-{deposition}-{ensemble.layout.value}"
            f"-{ensemble.precision.value}{suffix}")
    return KernelSpec(name=name, streams=tuple(streams),
                      flops_per_item=flops)


def build_advance_spec(grid, solver_kind: str, memory) -> KernelSpec:
    """Field-advance stage: the Maxwell solve over the grid (barrier)."""
    streams = _grid_streams(grid, memory, ("jx", "jy", "jz"),
                            StreamKind.READ, bytes_per_item=8.0)
    streams += _grid_streams(grid, memory, _FIELD_COMPONENTS,
                             StreamKind.READ_WRITE, bytes_per_item=8.0)
    return KernelSpec(name=f"pic-advance-{solver_kind}",
                      streams=tuple(streams),
                      flops_per_item=float(ADVANCE_FLOPS[solver_kind]))


class _SpeciesPlan:
    """The per-ensemble specs of one step (built once, launched often)."""

    def __init__(self, engine: "PicEngine", species: int,
                 ensemble: ParticleEnsemble) -> None:
        simulation = engine.simulation
        memory = engine.queue.memory
        suffix = _suffix(species, len(simulation.ensembles))
        shape = simulation.interpolation
        self.ensemble = ensemble
        self.suffix = suffix
        self.gather = build_gather_spec(ensemble, shape, memory, suffix)
        self.push = build_push_spec(ensemble, memory, suffix)
        self.operators = [
            (operator, build_operator_spec(ensemble, operator, memory,
                                           suffix))
            for operator in simulation.operators]
        self.deposit = None
        if simulation.deposition != "none":
            self.deposit = build_deposit_spec(
                ensemble, simulation.deposition, shape, simulation.grid,
                memory, suffix)
        self.transient = frozenset(
            f"pic-fields-{c}{suffix}" for c in _FIELD_COMPONENTS)


class PicEngine:
    """Drives real PIC steps through a queue.

    The same two execution paths as :class:`~repro.oneapi.runtime.PushEngine`:

    * **legacy** (``fusion=None``): one timed launch per stage through
      ``queue.parallel_for`` — no graph, no fusion planning;
    * **kernel graph** (``fusion=True``/``False``): each step is
      recorded as a :class:`~repro.oneapi.graph.KernelGraph` and run
      through a :class:`~repro.oneapi.graph.GraphExecutor`; with
      fusion on, gather + push + Monte Carlo operators merge into one
      launch per species (the deposit and field-advance barriers never
      fuse).

    All three modes run identical stage bodies in identical order, so
    their final state digests (:func:`pic_state_digest`) are equal.

    Args:
        queue: The simulated queue (device + runtime + scheduling).
        simulation: The PIC loop to lower; its ensembles, grid, solver
            and Monte Carlo operators are used in place.
        fusion: None = legacy per-stage launches; True/False = graph
            path with the fusion pass on/off.
        validate: Graph path only — replay every step's launches
            through the hazard detector.
    """

    def __init__(self, queue: Queue, simulation: PicSimulation,
                 fusion: Optional[bool] = None,
                 validate: bool = False) -> None:
        self.queue = queue
        self.simulation = simulation
        self.fusion = fusion
        self.step_seconds: List[float] = []
        count = len(simulation.ensembles)
        self._gathered: List = [None] * count
        self._old_positions: List = [None] * count
        self._species = [_SpeciesPlan(self, i, ensemble)
                         for i, ensemble in
                         enumerate(simulation.ensembles)]
        self._advance_spec = build_advance_spec(
            simulation.grid, simulation.solver_kind, queue.memory)
        self.executor: Optional[GraphExecutor] = None
        if fusion is not None:
            self.executor = GraphExecutor(queue, fusion=bool(fusion),
                                          validate=validate)
        elif validate:
            raise ConfigurationError(
                "validate=True needs the graph path (fusion=True/False); "
                "the legacy path records no fusion plan to replay")

    @property
    def time(self) -> float:
        """Current simulation time [s]."""
        return self.simulation.time

    # -- stage bodies ------------------------------------------------------

    def _gather_body(self, species: int):
        simulation = self.simulation
        ensemble = simulation.ensembles[species]

        def body() -> None:
            self._gathered[species] = interpolate_from_yee_grid(
                simulation.grid, ensemble.positions(),
                simulation.interpolation)
        return body

    def _push_body(self, species: int):
        simulation = self.simulation
        ensemble = simulation.ensembles[species]

        def body() -> None:
            self._old_positions[species] = ensemble.positions()
            simulation.pusher.push(ensemble, self._gathered[species],
                                   simulation.dt)
        return body

    def _operator_body(self, species: int, operator, step: int):
        simulation = self.simulation
        ensemble = simulation.ensembles[species]

        def body() -> None:
            operator.apply(ensemble, self._gathered[species], step,
                           simulation.dt, stream=species)
        return body

    def _deposit_body(self, species: int):
        simulation = self.simulation
        ensemble = simulation.ensembles[species]

        def body() -> None:
            if simulation.deposition == "esirkepov":
                deposit_current_esirkepov(
                    simulation.grid, ensemble,
                    self._old_positions[species], simulation.dt,
                    shape=simulation.interpolation)
            elif simulation.deposition == "direct":
                deposit_current_direct(simulation.grid, ensemble,
                                       shape=simulation.interpolation)
            simulation._wrap(ensemble)
        return body

    # -- graph recording ---------------------------------------------------

    def record_graph(self) -> KernelGraph:
        """Record one step's kernel graph (usable on any path)."""
        simulation = self.simulation
        step = simulation.step_count
        graph = KernelGraph()
        for species, plan in enumerate(self._species):
            ensemble = plan.ensemble
            layout = ensemble.layout.value
            precision = ensemble.precision
            graph.add(KernelNode(
                spec=plan.gather, n_items=ensemble.size,
                body=self._gather_body(species), layout=layout,
                precision=precision, transient=plan.transient,
                tag="gather"))
            graph.add(KernelNode(
                spec=plan.push, n_items=ensemble.size,
                body=self._push_body(species), layout=layout,
                precision=precision, tag="push"))
            for operator, spec in plan.operators:
                graph.add(KernelNode(
                    spec=spec, n_items=ensemble.size,
                    body=self._operator_body(species, operator, step),
                    layout=layout, precision=precision,
                    tag=f"mc:{operator.tag}"))
            if plan.deposit is not None:
                graph.add(KernelNode(
                    spec=plan.deposit, n_items=ensemble.size,
                    body=self._deposit_body(species), layout=layout,
                    precision=precision, barrier=True, tag="deposit"))
        graph.add(KernelNode(
            spec=self._advance_spec,
            n_items=simulation.grid.num_cells,
            body=simulation.solver.step, layout="grid",
            barrier=True, tag="field-advance"))
        return graph

    # -- stepping ----------------------------------------------------------

    def step(self, depends_on=None):
        """Advance the whole PIC loop by one timed step.

        Returns the last launch record (whose event is the step's
        completion, for dependency chaining).  Under an active fault
        injector the step is a device-loss opportunity before any
        state changes, exactly like the push engines.
        """
        injector = active_fault_injector()
        if injector is not None:
            injector.on_device_step(self.queue.device.name)
        simulation = self.simulation
        with trace_span("pic-engine-step", "runner",
                        step=simulation.step_count):
            simulation.grid.clear_currents()
            graph = self.record_graph()
            if self.executor is not None:
                records = self.executor.run(graph, depends_on=depends_on)
            else:
                records = []
                deps = depends_on
                for node in graph:
                    record = self.queue.parallel_for(
                        node.n_items, node.spec, kernel=node.body,
                        precision=node.precision, depends_on=deps)
                    records.append(record)
                    deps = [record.event] if record.event is not None \
                        else None
        simulation.step_count += 1
        self.step_seconds.append(
            sum(r.simulated_seconds for r in records))
        return records[-1]

    def run(self, steps: int):
        """Run ``steps`` full PIC steps; returns the last records."""
        return [self.step() for _ in range(steps)]

    def queues(self) -> tuple:
        """Every queue this engine submits to (uniform across engines)."""
        return (self.queue,)
