"""FDTD Maxwell solver on the Yee grid (eqs. 1-2 of the paper).

Gaussian units::

    dE/dt =  c curl B - 4 pi J
    dB/dt = -c curl E

Standard staggered leapfrog with the magnetic field split into two half
steps around the electric update, so E lives at integer time levels and
B is time-centred for the particle push:

    B^(n+1/2) = B^n       - (c dt / 2) curl E^n
    E^(n+1)   = E^n       +  c dt      curl B^(n+1/2) - 4 pi dt J^(n+1/2)
    B^(n+1)   = B^(n+1/2) - (c dt / 2) curl E^(n+1)

Boundaries are periodic (``numpy.roll``), matching the deposition and
interpolation modules.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..constants import SPEED_OF_LIGHT
from ..errors import SimulationError
from ..fields.grid import YeeGrid

__all__ = ["max_stable_dt", "FdtdSolver"]


def max_stable_dt(spacing: Tuple[float, float, float],
                  safety: float = 0.99) -> float:
    """Largest stable FDTD step: ``dt <= 1 / (c sqrt(sum 1/dx_i^2))``."""
    if not 0.0 < safety <= 1.0:
        raise SimulationError(f"safety must be in (0, 1], got {safety!r}")
    inv2 = sum(1.0 / (s * s) for s in spacing)
    return safety / (SPEED_OF_LIGHT * math.sqrt(inv2))


def _curl_e(grid: YeeGrid) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """curl E evaluated at the B component positions (forward differences)."""
    ex, ey, ez = (grid.fields[c] for c in ("ex", "ey", "ez"))
    dx, dy, dz = grid.spacing
    d_roll = lambda a, axis: np.roll(a, -1, axis=axis) - a
    curl_x = d_roll(ez, 1) / dy - d_roll(ey, 2) / dz
    curl_y = d_roll(ex, 2) / dz - d_roll(ez, 0) / dx
    curl_z = d_roll(ey, 0) / dx - d_roll(ex, 1) / dy
    return curl_x, curl_y, curl_z


def _curl_b(grid: YeeGrid) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """curl B evaluated at the E component positions (backward differences)."""
    bx, by, bz = (grid.fields[c] for c in ("bx", "by", "bz"))
    dx, dy, dz = grid.spacing
    d_roll = lambda a, axis: a - np.roll(a, 1, axis=axis)
    curl_x = d_roll(bz, 1) / dy - d_roll(by, 2) / dz
    curl_y = d_roll(bx, 2) / dz - d_roll(bz, 0) / dx
    curl_z = d_roll(by, 0) / dx - d_roll(bx, 1) / dy
    return curl_x, curl_y, curl_z


class FdtdSolver:
    """Advances a :class:`~repro.fields.grid.YeeGrid` in time.

    The solver validates the CFL condition at construction and tracks
    the simulation time.  Current densities are read from
    ``grid.currents`` at each electric update (zero them or deposit
    into them between steps).
    """

    def __init__(self, grid: YeeGrid, dt: float) -> None:
        limit = max_stable_dt(grid.spacing, safety=1.0)
        if dt <= 0.0:
            raise SimulationError(f"dt must be positive, got {dt!r}")
        if dt > limit:
            raise SimulationError(
                f"dt = {dt:.4g} violates the CFL limit {limit:.4g} "
                f"for spacing {grid.spacing}")
        self.grid = grid
        self.dt = float(dt)
        self.time = 0.0

    def advance_b_half(self) -> None:
        """Half magnetic step: ``B -= (c dt / 2) curl E``."""
        factor = 0.5 * SPEED_OF_LIGHT * self.dt
        cx, cy, cz = _curl_e(self.grid)
        self.grid.fields["bx"] -= factor * cx
        self.grid.fields["by"] -= factor * cy
        self.grid.fields["bz"] -= factor * cz

    def advance_e_full(self) -> None:
        """Full electric step: ``E += c dt curl B - 4 pi dt J``."""
        factor = SPEED_OF_LIGHT * self.dt
        j_factor = 4.0 * math.pi * self.dt
        cx, cy, cz = _curl_b(self.grid)
        self.grid.fields["ex"] += factor * cx - j_factor * self.grid.currents["jx"]
        self.grid.fields["ey"] += factor * cy - j_factor * self.grid.currents["jy"]
        self.grid.fields["ez"] += factor * cz - j_factor * self.grid.currents["jz"]

    def step(self) -> None:
        """One full leapfrog step (B half, E full, B half)."""
        self.advance_b_half()
        self.advance_e_full()
        self.advance_b_half()
        self.time += self.dt

    def run(self, steps: int) -> None:
        """Advance ``steps`` full steps."""
        if steps < 0:
            raise SimulationError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            self.step()

    def divergence_b(self) -> np.ndarray:
        """Discrete div B at cell centres — conserved exactly by the scheme."""
        grid = self.grid
        dx, dy, dz = grid.spacing
        d_roll = lambda a, axis: np.roll(a, -1, axis=axis) - a
        return (d_roll(grid.fields["bx"], 0) / dx
                + d_roll(grid.fields["by"], 1) / dy
                + d_roll(grid.fields["bz"], 2) / dz)

    def divergence_e(self) -> np.ndarray:
        """Discrete div E at cell corners (compare against 4 pi rho)."""
        grid = self.grid
        dx, dy, dz = grid.spacing
        d_roll = lambda a, axis: a - np.roll(a, 1, axis=axis)
        return (d_roll(grid.fields["ex"], 0) / dx
                + d_roll(grid.fields["ey"], 1) / dy
                + d_roll(grid.fields["ez"], 2) / dz)
