"""The Particle-in-Cell substrate (Section 2 of the paper).

The paper situates the Boris pusher inside the conventional PIC loop:
solve Maxwell's equations on a grid, interpolate fields to particles,
push particles, deposit the current back onto the grid.  This
subpackage implements that loop end to end:

* :mod:`~repro.pic.fdtd` — Yee-grid FDTD Maxwell solver (eqs. 1-2),
  periodic boundaries, CFL checking;
* :mod:`~repro.pic.deposition` — charge and current deposition,
  including the charge-conserving Esirkepov scheme;
* :mod:`~repro.pic.simulation` — the self-consistent loop;
* :mod:`~repro.pic.diagnostics` — energy/momentum/charge accounting.
"""

from .fdtd import FdtdSolver, max_stable_dt
from .spectral import SpectralSolver
from .deposition import (
    deposit_charge,
    deposit_current_direct,
    deposit_current_esirkepov,
)
from .simulation import PicSimulation
from .diagnostics import (
    field_energy,
    kinetic_energy,
    total_momentum,
    EnergyHistory,
    load_imbalance,
    plasma_frequency,
)

__all__ = [
    "FdtdSolver",
    "SpectralSolver",
    "max_stable_dt",
    "deposit_charge",
    "deposit_current_direct",
    "deposit_current_esirkepov",
    "PicSimulation",
    "field_energy",
    "kinetic_energy",
    "total_momentum",
    "EnergyHistory",
    "load_imbalance",
    "plasma_frequency",
]
