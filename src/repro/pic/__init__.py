"""The Particle-in-Cell substrate (Section 2 of the paper).

The paper situates the Boris pusher inside the conventional PIC loop:
solve Maxwell's equations on a grid, interpolate fields to particles,
push particles, deposit the current back onto the grid.  This
subpackage implements that loop end to end:

* :mod:`~repro.pic.fdtd` — Yee-grid FDTD Maxwell solver (eqs. 1-2),
  periodic boundaries, CFL checking;
* :mod:`~repro.pic.deposition` — charge and current deposition,
  including the charge-conserving Esirkepov scheme;
* :mod:`~repro.pic.simulation` — the self-consistent loop;
* :mod:`~repro.pic.montecarlo` — seeded collision / ionization
  operators (counter-based RNG, bit-exact across engine modes);
* :mod:`~repro.pic.engine` — the loop lowered onto the kernel-graph
  IR (:class:`~repro.pic.engine.PicEngine`);
* :mod:`~repro.pic.scenarios` — seeded, validated plasma scenarios;
* :mod:`~repro.pic.diagnostics` — energy/momentum/charge accounting.
"""

from .fdtd import FdtdSolver, max_stable_dt
from .spectral import SpectralSolver
from .deposition import (
    ACCUMULATION_DTYPE,
    charge_weight,
    deposit_charge,
    deposit_current_direct,
    deposit_current_esirkepov,
    invalidate_charge_weight,
)
from .simulation import PicSimulation
from .montecarlo import (
    CollisionOperator,
    IonizationOperator,
    PicOperator,
    step_generator,
)
from .engine import PicEngine, pic_state_digest
from .scenarios import (
    SCENARIOS,
    PicScenario,
    build_scenario,
    get_scenario,
    scenario_names,
)
from .diagnostics import (
    field_energy,
    kinetic_energy,
    total_momentum,
    EnergyHistory,
    load_imbalance,
    plasma_frequency,
)

__all__ = [
    "FdtdSolver",
    "SpectralSolver",
    "max_stable_dt",
    "ACCUMULATION_DTYPE",
    "charge_weight",
    "invalidate_charge_weight",
    "deposit_charge",
    "deposit_current_direct",
    "deposit_current_esirkepov",
    "PicSimulation",
    "PicOperator",
    "CollisionOperator",
    "IonizationOperator",
    "step_generator",
    "PicEngine",
    "pic_state_digest",
    "PicScenario",
    "SCENARIOS",
    "build_scenario",
    "get_scenario",
    "scenario_names",
    "field_energy",
    "kinetic_energy",
    "total_momentum",
    "EnergyHistory",
    "load_imbalance",
    "plasma_frequency",
]
