"""PIC diagnostics: energies, momentum, and plasma parameters."""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..fields.grid import YeeGrid
from ..particles.ensemble import ParticleEnsemble

__all__ = ["field_energy", "kinetic_energy", "total_momentum",
           "plasma_frequency", "load_imbalance", "EnergyHistory"]


def field_energy(grid: YeeGrid) -> float:
    """Electromagnetic energy ``sum (E^2 + B^2)/(8 pi) dV`` [erg]."""
    return grid.field_energy()


def kinetic_energy(ensemble: ParticleEnsemble) -> float:
    """Weighted total kinetic energy ``sum w (gamma - 1) m c^2`` [erg]."""
    return ensemble.total_kinetic_energy()


def total_momentum(ensemble: ParticleEnsemble) -> np.ndarray:
    """Weighted total momentum vector [g cm/s]."""
    weights = ensemble.component("weight").astype(np.float64)
    return (ensemble.momenta() * weights[:, None]).sum(axis=0)


def plasma_frequency(density: float, mass: float, charge: float) -> float:
    """Cold plasma frequency ``sqrt(4 pi n q^2 / m)`` [1/s].

    ``density`` in particles/cm^3 (CGS).
    """
    if density < 0.0:
        raise ConfigurationError(f"density must be >= 0, got {density!r}")
    if mass <= 0.0:
        raise ConfigurationError(f"mass must be positive, got {mass!r}")
    return math.sqrt(4.0 * math.pi * density * charge * charge / mass)


def load_imbalance(loads) -> float:
    """Load-imbalance factor ``max / mean - 1`` over per-shard loads.

    The standard figure of merit of domain-decomposed PIC (zero for a
    perfectly even decomposition; 1.0 means the busiest shard carries
    twice the average).  ``loads`` are per-shard work measures —
    particle counts, per-step shard times, or anything proportional to
    work.  Zero-weight shards are legal (a device can own an empty
    domain); an all-zero load vector is perfectly balanced by
    convention.  Used by the distributed layer's rebalancer reports and
    the ``repro shard`` CLI.
    """
    values = np.asarray(list(loads), dtype=np.float64)
    if values.size == 0:
        raise ConfigurationError("load_imbalance needs at least one shard")
    if np.any(values < 0.0):
        raise ConfigurationError("shard loads must be >= 0")
    mean = float(values.mean())
    if mean == 0.0:
        return 0.0
    return float(values.max()) / mean - 1.0


class EnergyHistory:
    """Records field/kinetic/total energy over a PIC run.

    Use as the ``callback`` of :meth:`repro.pic.simulation.PicSimulation.run`;
    energy conservation of the full loop is then
    ``max |total - total[0]| / total[0]``.
    """

    def __init__(self) -> None:
        self.times: List[float] = []
        self.field: List[float] = []
        self.kinetic: List[float] = []

    def record(self, time: float, grid: YeeGrid,
               ensembles) -> None:
        """Append one sample (called by the simulation)."""
        self.times.append(time)
        self.field.append(field_energy(grid))
        self.kinetic.append(sum(kinetic_energy(e) for e in ensembles))

    @property
    def total(self) -> np.ndarray:
        """Field + kinetic energy per sample."""
        return np.asarray(self.field) + np.asarray(self.kinetic)

    def relative_drift(self) -> float:
        """Max relative deviation of the total energy from its start."""
        total = self.total
        if total.size == 0:
            raise ConfigurationError("no samples recorded")
        if total[0] == 0.0:
            return float(np.abs(total - total[0]).max())
        return float(np.abs(total / total[0] - 1.0).max())

    def dominant_frequency(self, signal: Optional[np.ndarray] = None
                           ) -> float:
        """Dominant angular frequency of a recorded signal [1/s].

        Defaults to the field-energy history; note the energy of an
        oscillation at ``omega`` oscillates at ``2 omega``.
        """
        values = np.asarray(self.field if signal is None else signal,
                            dtype=np.float64)
        if values.size < 4:
            raise ConfigurationError("need at least 4 samples for a spectrum")
        times = np.asarray(self.times)
        dt = float(times[1] - times[0])
        centred = values - values.mean()
        spectrum = np.abs(np.fft.rfft(centred))
        frequencies = np.fft.rfftfreq(values.size, d=dt)
        peak = int(spectrum[1:].argmax()) + 1
        return 2.0 * math.pi * float(frequencies[peak])
