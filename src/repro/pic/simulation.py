"""The self-consistent Particle-in-Cell loop.

One :class:`PicSimulation` step performs the conventional four stages
(Section 2 of the paper):

1. interpolate E and B from the Yee grid to the particles (CIC);
2. push the particles (Boris by default);
3. deposit the current of the motion onto the grid
   (charge-conserving Esirkepov by default);
4. advance the fields with the FDTD solver, driven by that current.

Positions are wrapped into the periodic box *after* deposition, since
the Esirkepov scheme needs the unwrapped displacement.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..core.boris import BorisPusher
from ..core.pushers import MomentumPusher
from ..errors import SimulationError
from ..fields.grid import YeeGrid
from ..fields.interpolation import Shape, interpolate_from_yee_grid
from ..observability.tracer import trace_span
from ..particles.ensemble import ParticleEnsemble
from .deposition import deposit_current_direct, deposit_current_esirkepov
from .fdtd import FdtdSolver

__all__ = ["PicSimulation"]

#: Valid deposition scheme names.
DEPOSITIONS = ("esirkepov", "direct", "none")


class PicSimulation:
    """A periodic electromagnetic PIC simulation.

    Args:
        grid: The Yee grid carrying fields and currents (initialise its
            fields before running, e.g. via ``grid.fill_from_source``).
        ensembles: One ensemble or a sequence of them (e.g. electrons
            and ions).
        dt: Time step [s]; must satisfy the FDTD CFL condition.
        pusher: Momentum pusher (default Boris).
        deposition: "esirkepov" (charge-conserving, default), "direct",
            or "none" (external-field test mode — particles do not feed
            back on the fields).
        interpolation: Particle form factor for field gathering.
        field_solver: "fdtd" (Yee leapfrog, default) or "spectral"
            (FFT-based PSATD; dispersion-free, no Courant limit) — the
            two Maxwell-solver families the paper's Section 2 names.
        operators: Monte Carlo operators
            (:class:`~repro.pic.montecarlo.PicOperator`) applied after
            the push and before the deposit, in order, once per
            ensemble per step.  Their draws are counter-based on the
            step index, so this loop and the graph-lowered
            :class:`~repro.pic.engine.PicEngine` stay bit-exact.
            Operators are not part of checkpoints — a restored
            simulation must be handed them again.
    """

    def __init__(self, grid: YeeGrid,
                 ensembles: Union[ParticleEnsemble,
                                  Sequence[ParticleEnsemble]],
                 dt: float,
                 pusher: Optional[MomentumPusher] = None,
                 deposition: str = "esirkepov",
                 interpolation: Shape = Shape.CIC,
                 field_solver: str = "fdtd",
                 operators: Sequence = ()) -> None:
        if deposition not in DEPOSITIONS:
            raise SimulationError(
                f"deposition must be one of {DEPOSITIONS}, "
                f"got {deposition!r}")
        if deposition == "esirkepov" and interpolation is Shape.NGP:
            raise SimulationError(
                "Esirkepov deposition needs a CIC or TSC form factor; "
                "NGP carries no sub-cell motion information")
        self.grid = grid
        if isinstance(ensembles, ParticleEnsemble):
            ensembles = [ensembles]
        self.ensembles: List[ParticleEnsemble] = list(ensembles)
        if not self.ensembles:
            raise SimulationError("need at least one particle ensemble")
        if field_solver == "fdtd":
            self.solver = FdtdSolver(grid, dt)
        elif field_solver == "spectral":
            from .spectral import SpectralSolver
            self.solver = SpectralSolver(grid, dt)
        else:
            raise SimulationError(
                f"field_solver must be 'fdtd' or 'spectral', "
                f"got {field_solver!r}")
        #: Which Maxwell-solver family runs ("fdtd" or "spectral");
        #: checkpoints record it so restore rebuilds the same solver.
        self.solver_kind = field_solver
        self.dt = float(dt)
        self.pusher = pusher if pusher is not None else BorisPusher()
        self.deposition = deposition
        self.interpolation = interpolation
        self.operators = list(operators)
        self.step_count = 0

    @property
    def time(self) -> float:
        """Current simulation time [s]."""
        return self.solver.time

    def _wrap(self, ensemble: ParticleEnsemble) -> None:
        wrapped = self.grid.wrap_positions(ensemble.positions())
        ensemble.set_positions(wrapped)

    def step(self) -> None:
        """Advance fields and particles by one time step.

        Under an active tracer each of the four PIC stages
        (interpolate, push, deposit, field solve) is recorded as a
        nested wall-clock span — the per-stage breakdown a VTune
        timeline would show for the real Hi-Chi loop.
        """
        grid = self.grid
        with trace_span("pic-step", "pic", step=self.step_count):
            grid.clear_currents()
            for species, ensemble in enumerate(self.ensembles):
                with trace_span("interpolate", "pic",
                                n_particles=ensemble.size):
                    fields = interpolate_from_yee_grid(
                        grid, ensemble.positions(), self.interpolation)
                old_positions = ensemble.positions()
                with trace_span("push", "pic",
                                n_particles=ensemble.size):
                    self.pusher.push(ensemble, fields, self.dt)
                for operator in self.operators:
                    with trace_span(f"mc:{operator.tag}", "pic"):
                        operator.apply(ensemble, fields, self.step_count,
                                       self.dt, stream=species)
                with trace_span(f"deposit:{self.deposition}", "pic"):
                    if self.deposition == "esirkepov":
                        deposit_current_esirkepov(grid, ensemble,
                                                  old_positions, self.dt,
                                                  shape=self.interpolation)
                    elif self.deposition == "direct":
                        deposit_current_direct(grid, ensemble,
                                               shape=self.interpolation)
                self._wrap(ensemble)
            with trace_span("field-solve", "pic"):
                self.solver.step()
        self.step_count += 1

    def run(self, steps: int,
            callback: Optional[Callable[["PicSimulation"], None]] = None,
            energy_history=None, checkpointer=None) -> None:
        """Advance ``steps`` steps.

        ``callback(simulation)`` fires after every step;
        ``energy_history`` (an
        :class:`~repro.pic.diagnostics.EnergyHistory`) is sampled after
        every step as well, including an initial sample at the start.
        ``checkpointer`` (a :class:`~repro.resilience.Checkpointer`) is
        offered the simulation after every step and writes a
        step-granular checkpoint at its configured cadence.
        """
        if steps < 0:
            raise SimulationError(f"steps must be >= 0, got {steps}")
        if energy_history is not None:
            energy_history.record(self.time, self.grid, self.ensembles)
        for _ in range(steps):
            self.step()
            if energy_history is not None:
                energy_history.record(self.time, self.grid, self.ensembles)
            if checkpointer is not None:
                checkpointer.maybe_save_simulation(self)
            if callback is not None:
                callback(self)

    # -- checkpointing ---------------------------------------------------

    def save_checkpoint(self, path) -> None:
        """Write the full simulation state (grid + particles + clocks).

        The archive restores via :meth:`load_checkpoint` to a
        simulation that continues *bit-identically* to one that never
        stopped — the guarantee the resilience layer's device-loss
        recovery builds on (see ``docs/RESILIENCE.md``).
        """
        from .. import io
        io.save_simulation(path, self)

    @classmethod
    def load_checkpoint(cls, path, pusher=None) -> "PicSimulation":
        """Reconstruct a simulation saved by :meth:`save_checkpoint`."""
        from .. import io
        return io.load_simulation(path, pusher=pusher)

    def check_state(self) -> None:
        """Raise :class:`SimulationError` on NaN/inf fields or particles."""
        for name, array in self.grid.fields.items():
            if not np.all(np.isfinite(array)):
                raise SimulationError(f"non-finite field component {name!r} "
                                      f"at step {self.step_count}")
        for ensemble in self.ensembles:
            if not np.all(np.isfinite(ensemble.component("x"))):
                raise SimulationError(
                    f"non-finite particle positions at step {self.step_count}")
