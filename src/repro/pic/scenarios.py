"""Seeded, validated PIC scenarios.

Three canonical plasma set-ups exercising the full self-consistent
loop, each reproducible bit-for-bit from its seed:

* **laser-slab** — a travelling plane wave crossing a thin electron
  slab, with field ionization feeding the macroparticle weights in the
  wave crests (the laser–plasma interaction configuration the Hi-Chi
  benchmarks target);
* **magnetic-mirror** — a thermal electron population in a paraxial
  magnetic-mirror field with elastic pitch-angle collisions; the
  static B does no work and collisions preserve ``|p|``, so total
  energy is conserved tightly — the scenario's validation handle;
* **relativistic-beam** — a ``gamma ~ 10`` drifting electron beam with
  a small thermal spread, stressing the relativistic push and the
  charge-conserving deposition at near-luminal displacement per step.

Every builder draws its particles from ``numpy.random.default_rng(seed)``
and keys its Monte Carlo operators on the same seed, so two builds of
the same (scenario, n, seed, layout, precision) are identical and the
differential harness can digest-compare engine modes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..constants import (ELECTRON_MASS, MICRON, SPEED_OF_LIGHT,
                         relativistic_field_amplitude)
from ..errors import ConfigurationError
from ..fields.grid import YEE_STAGGER, YeeGrid
from ..fields.interpolation import Shape
from ..fp import Precision
from ..particles.ensemble import Layout, ParticleEnsemble
from .fdtd import max_stable_dt
from .montecarlo import CollisionOperator, IonizationOperator
from .simulation import PicSimulation

__all__ = ["PicScenario", "SCENARIOS", "scenario_names", "get_scenario",
           "build_scenario"]

#: CFL safety factor every scenario uses; at half the Courant limit a
#: luminal particle moves at most half a cell per step, comfortably
#: inside the Esirkepov sub-cell-motion requirement.
CFL_SAFETY = 0.5


@dataclass(frozen=True)
class PicScenario:
    """A named, validated PIC set-up.

    Args:
        name: Registry key (also the CLI / differential label).
        descr: One-line description.
        builder: ``builder(n, seed, layout, precision, deposition,
            solver) -> PicSimulation``.
        default_particles: Particle count used when the caller does not
            pick one (CLI default, regress suite fallback).
        default_steps: Step count giving a meaningful but quick run.
        energy_tolerance: Relative total-energy drift bound the
            scenario's validation test enforces over
            ``default_steps`` steps.
    """

    name: str
    descr: str
    builder: Callable[..., PicSimulation]
    default_particles: int = 2048
    default_steps: int = 8
    energy_tolerance: float = 1.0e-2

    def build(self, n_particles: Optional[int] = None, seed: int = 0,
              layout: Layout = Layout.SOA,
              precision: Precision = Precision.DOUBLE,
              deposition: Optional[str] = None,
              solver: Optional[str] = None) -> PicSimulation:
        """Construct the scenario's simulation (see :func:`build_scenario`)."""
        n = self.default_particles if n_particles is None else n_particles
        if n <= 0:
            raise ConfigurationError(
                f"n_particles must be positive, got {n!r}")
        return self.builder(n, seed, layout, precision,
                            deposition or "esirkepov", solver or "fdtd")


def _uniform_cube_grid(dims: Tuple[int, int, int],
                       spacing: float) -> YeeGrid:
    return YeeGrid(origin=(0.0, 0.0, 0.0),
                   spacing=(spacing, spacing, spacing), dims=dims)


def _stagger_coordinate(grid: YeeGrid, component: str) -> np.ndarray:
    """The x coordinates of ``component``'s sample points, broadcastable."""
    x = grid.node_coordinates(0, YEE_STAGGER[component][0])
    return x[:, None, None]


def _thermal_momenta(rng: np.random.Generator, n: int,
                     spread: float) -> np.ndarray:
    """Isotropic Gaussian momenta with std ``spread * m_e c`` [g cm/s]."""
    scale = spread * ELECTRON_MASS * SPEED_OF_LIGHT
    return rng.standard_normal((n, 3)) * scale


def _make_ensemble(positions: np.ndarray, momenta: np.ndarray,
                   layout: Layout,
                   precision: Precision) -> ParticleEnsemble:
    return ParticleEnsemble.from_arrays(positions, momenta,
                                        precision=precision,
                                        layout=layout)


def _laser_slab(n: int, seed: int, layout: Layout, precision: Precision,
                deposition: str, solver: str) -> PicSimulation:
    """Travelling wave + electron slab + field ionization."""
    wavelength = 0.8 * MICRON
    nx, ny, nz = 32, 8, 8
    dx = 2.0 * wavelength / nx          # two periods fit the box
    grid = _uniform_cube_grid((nx, ny, nz), dx)
    k = 2.0 * math.pi / wavelength
    omega = SPEED_OF_LIGHT * k
    e0 = 0.05 * relativistic_field_amplitude(omega)
    # Exact vacuum travelling wave along +x: Ey = Bz = E0 sin(kx).
    grid.fields["ey"] += e0 * np.sin(k * _stagger_coordinate(grid, "ey"))
    grid.fields["bz"] += e0 * np.sin(k * _stagger_coordinate(grid, "bz"))

    rng = np.random.default_rng(seed)
    extent = np.asarray(grid.extent)
    positions = rng.random((n, 3)) * extent
    # Concentrate the slab in the middle fifth of x.
    positions[:, 0] = (0.4 + 0.2 * rng.random(n)) * extent[0]
    momenta = _thermal_momenta(rng, n, spread=0.01)
    ensemble = _make_ensemble(positions, momenta, layout, precision)

    dt = max_stable_dt(grid.spacing, safety=CFL_SAFETY)
    ionization = IonizationOperator(rate=0.05 * omega,
                                    critical_field=2.0 * e0, seed=seed)
    return PicSimulation(grid, ensemble, dt, deposition=deposition,
                         interpolation=Shape.CIC, field_solver=solver,
                         operators=(ionization,))


def _magnetic_mirror(n: int, seed: int, layout: Layout,
                     precision: Precision, deposition: str,
                     solver: str) -> PicSimulation:
    """Thermal plasma in a paraxial mirror field with collisions."""
    dims = (16, 16, 16)
    dx = 0.25 * MICRON
    grid = _uniform_cube_grid(dims, dx)
    length = dims[0] * dx
    k = 2.0 * math.pi / length
    b0, alpha = 5.0e4, 0.3            # 50 kG bottle, 30% mirror depth
    centre = 0.5 * dims[1] * dx
    # Paraxial expansion of a periodic mirror: div B = 0 to O(r^2).
    x_bx = grid.node_coordinates(0, YEE_STAGGER["bx"][0])[:, None, None]
    grid.fields["bx"] += b0 * (1.0 + alpha * np.cos(k * x_bx))
    for name, axis in (("by", 1), ("bz", 2)):
        x = grid.node_coordinates(0, YEE_STAGGER[name][0])[:, None, None]
        r = grid.node_coordinates(axis, YEE_STAGGER[name][axis]) - centre
        shape = [1, 1, 1]
        shape[axis] = dims[axis]
        transverse = r.reshape(shape)
        grid.fields[name] += (0.5 * alpha * b0 * k * transverse
                              * np.sin(k * x))

    rng = np.random.default_rng(seed)
    positions = rng.random((n, 3)) * np.asarray(grid.extent)
    momenta = _thermal_momenta(rng, n, spread=0.05)
    ensemble = _make_ensemble(positions, momenta, layout, precision)

    dt = max_stable_dt(grid.spacing, safety=CFL_SAFETY)
    collisions = CollisionOperator(frequency=2.0e-3 / dt, seed=seed)
    return PicSimulation(grid, ensemble, dt, deposition=deposition,
                         interpolation=Shape.CIC, field_solver=solver,
                         operators=(collisions,))


def _relativistic_beam(n: int, seed: int, layout: Layout,
                       precision: Precision, deposition: str,
                       solver: str) -> PicSimulation:
    """A gamma ~ 10 drifting beam with a small thermal spread."""
    dims = (32, 8, 8)
    dx = 0.5 * MICRON
    grid = _uniform_cube_grid(dims, dx)

    rng = np.random.default_rng(seed)
    extent = np.asarray(grid.extent)
    positions = rng.random((n, 3)) * extent
    # Gaussian transverse profile about the axis, sigma = one cell.
    for axis in (1, 2):
        centre = 0.5 * extent[axis]
        positions[:, axis] = np.mod(
            centre + rng.standard_normal(n) * dx, extent[axis])
    momenta = _thermal_momenta(rng, n, spread=0.02)
    momenta[:, 0] += 10.0 * ELECTRON_MASS * SPEED_OF_LIGHT
    ensemble = _make_ensemble(positions, momenta, layout, precision)

    dt = max_stable_dt(grid.spacing, safety=CFL_SAFETY)
    return PicSimulation(grid, ensemble, dt, deposition=deposition,
                         interpolation=Shape.CIC, field_solver=solver)


#: The scenario registry, keyed by name.
SCENARIOS: Dict[str, PicScenario] = {
    scenario.name: scenario for scenario in (
        PicScenario(
            name="laser-slab",
            descr="travelling wave through an electron slab with "
                  "field ionization",
            builder=_laser_slab,
            energy_tolerance=2.0e-2),
        PicScenario(
            name="magnetic-mirror",
            descr="thermal electrons in a paraxial mirror field with "
                  "pitch-angle collisions",
            builder=_magnetic_mirror,
            energy_tolerance=5.0e-3),
        PicScenario(
            name="relativistic-beam",
            descr="gamma ~ 10 drifting beam stressing the "
                  "relativistic push and deposition",
            builder=_relativistic_beam,
            energy_tolerance=5.0e-3),
    )
}


def scenario_names() -> Tuple[str, ...]:
    """The registered scenario names, in registry order."""
    return tuple(SCENARIOS)


def get_scenario(name: str) -> PicScenario:
    """Look up a scenario by name (:class:`ConfigurationError` if absent)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown PIC scenario {name!r}; expected one of "
            f"{scenario_names()}") from None


def build_scenario(name: str, n_particles: Optional[int] = None,
                   seed: int = 0, layout: Layout = Layout.SOA,
                   precision: Precision = Precision.DOUBLE,
                   deposition: Optional[str] = None,
                   solver: Optional[str] = None) -> PicSimulation:
    """Build a registered scenario's simulation.

    ``deposition`` and ``solver`` default to the scenario's canonical
    choices (Esirkepov + FDTD); pass explicit values to sweep the
    alternatives.
    """
    return get_scenario(name).build(n_particles, seed, layout, precision,
                                    deposition, solver)
