"""FFT-based (pseudo-spectral analytical time-domain) Maxwell solver.

Section 2 of the paper: Maxwell's equations "can be solved using FDTD
[9] or FFT-based [8] techniques."  This module implements the FFT
route: the PSATD scheme, which integrates the field equations *exactly*
in k-space over each time step (assuming the current constant across
the step).  Consequences worth having next to the FDTD solver:

* no Courant limit — any dt is stable;
* no numerical dispersion — a vacuum wave propagates at exactly c,
  which the test suite verifies to machine precision;
* E and B live at the *same* time level (no Yee time stagger).

In Gaussian units, with hats denoting spatial Fourier transforms and
``k = |k|``, the exact vacuum rotation over dt is::

    E(t+dt) = C E + i S (khat x B)       C = cos(k c dt)
    B(t+dt) = C B - i S (khat x E)       S = sin(k c dt)

with the standard particular terms for a constant current density
(transverse drive and the longitudinal/k=0 parts ``E -= 4 pi J dt``).

The solver reuses :class:`~repro.fields.grid.YeeGrid` for storage but
treats every component as co-located at the cell corner (the spatial
stagger is a second-order effect the spectral solver does not need;
interpolation continues to use the staggered sample positions, which is
consistent at the CIC order used here).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..constants import SPEED_OF_LIGHT
from ..errors import SimulationError
from ..fields.grid import YeeGrid

__all__ = ["SpectralSolver"]


class SpectralSolver:
    """Advances a grid's fields with the exact k-space propagator.

    Drop-in alternative to :class:`~repro.pic.fdtd.FdtdSolver`: same
    ``step`` / ``run`` / ``time`` interface, same use of
    ``grid.currents`` as the source read every step.
    """

    def __init__(self, grid: YeeGrid, dt: float) -> None:
        if dt <= 0.0:
            raise SimulationError(f"dt must be positive, got {dt!r}")
        self.grid = grid
        self.dt = float(dt)
        self.time = 0.0
        self._build_propagator()

    def _build_propagator(self) -> None:
        dims = self.grid.dims
        spacing = self.grid.spacing
        axes_k = [2.0 * math.pi * np.fft.fftfreq(dims[i], d=spacing[i])
                  for i in range(3)]
        kx, ky, kz = np.meshgrid(*axes_k, indexing="ij")
        k = np.sqrt(kx * kx + ky * ky + kz * kz)
        self._k = k
        safe_k = np.where(k == 0.0, 1.0, k)
        self._khat = (kx / safe_k, ky / safe_k, kz / safe_k)
        phase = k * SPEED_OF_LIGHT * self.dt
        self._cos = np.cos(phase)
        self._sin = np.sin(phase)
        # S / (k c): finite (-> dt) at k = 0.
        self._sin_over_kc = np.where(
            k == 0.0, self.dt, self._sin / (safe_k * SPEED_OF_LIGHT))
        # (1 - C) / (k c): finite (-> 0) at k = 0.
        self._one_minus_cos_over_kc = np.where(
            k == 0.0, 0.0, (1.0 - self._cos) / (safe_k * SPEED_OF_LIGHT))
        self._zero_mode = k == 0.0

    def _fft_fields(self) -> Tuple[list, list, list]:
        e = [np.fft.fftn(self.grid.fields[c]) for c in ("ex", "ey", "ez")]
        b = [np.fft.fftn(self.grid.fields[c]) for c in ("bx", "by", "bz")]
        j = [np.fft.fftn(self.grid.currents[c]) for c in ("jx", "jy", "jz")]
        return e, b, j

    @staticmethod
    def _cross(khat, vec):
        kx, ky, kz = khat
        vx, vy, vz = vec
        return (ky * vz - kz * vy, kz * vx - kx * vz, kx * vy - ky * vx)

    @staticmethod
    def _dot(khat, vec):
        return sum(h * v for h, v in zip(khat, vec))

    def step(self) -> None:
        """One exact field step of size dt (current held constant)."""
        e_hat, b_hat, j_hat = self._fft_fields()
        khat = self._khat
        cos, sin = self._cos, self._sin
        four_pi = 4.0 * math.pi

        k_cross_b = self._cross(khat, b_hat)
        k_cross_e = self._cross(khat, e_hat)
        k_cross_j = self._cross(khat, j_hat)
        k_dot_e = self._dot(khat, e_hat)
        k_dot_j = self._dot(khat, j_hat)

        new_e = []
        new_b = []
        for axis in range(3):
            e_l = khat[axis] * k_dot_e         # longitudinal E
            e_t = e_hat[axis] - e_l            # transverse E
            j_l = khat[axis] * k_dot_j
            j_t = j_hat[axis] - j_l
            # Transverse: driven rotation; longitudinal: dE/dt = -4 pi J.
            e_new = (cos * e_t
                     + 1j * sin * k_cross_b[axis]
                     - four_pi * self._sin_over_kc * j_t
                     + e_l
                     - four_pi * self.dt * j_l)
            b_new = (cos * b_hat[axis]
                     - 1j * sin * k_cross_e[axis]
                     + 1j * four_pi * self._one_minus_cos_over_kc
                     * k_cross_j[axis])
            # k = 0 mode: no rotation, uniform current decelerates E.
            e_new = np.where(self._zero_mode,
                             e_hat[axis] - four_pi * self.dt * j_hat[axis],
                             e_new)
            b_new = np.where(self._zero_mode, b_hat[axis], b_new)
            new_e.append(e_new)
            new_b.append(b_new)

        for axis, name in enumerate(("ex", "ey", "ez")):
            self.grid.fields[name][:] = np.fft.ifftn(new_e[axis]).real
        for axis, name in enumerate(("bx", "by", "bz")):
            self.grid.fields[name][:] = np.fft.ifftn(new_b[axis]).real
        self.time += self.dt

    def run(self, steps: int) -> None:
        """Advance ``steps`` steps."""
        if steps < 0:
            raise SimulationError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            self.step()

    def divergence_b(self) -> np.ndarray:
        """Spectral div B (zero to round-off for any evolution here)."""
        b_hat = [np.fft.fftn(self.grid.fields[c])
                 for c in ("bx", "by", "bz")]
        div = 1j * self._k * self._dot(self._khat, b_hat)
        return np.fft.ifftn(div).real
