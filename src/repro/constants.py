"""Physical constants and unit helpers in Gaussian (CGS) units.

The Hi-Chi code that the paper ports works in Gaussian units, where the
Lorentz force reads ``F = q (E + v x B / c)`` and electric and magnetic
fields share the same unit (statvolt/cm == gauss).  All of :mod:`repro`
follows that convention.

Values are CODATA-2018, expressed in CGS:

* lengths in centimetres,
* times in seconds,
* masses in grams,
* charges in statcoulombs (esu),
* energies in ergs.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum [cm/s].
SPEED_OF_LIGHT = 2.99792458e10

#: Elementary charge magnitude [statC].  The electron charge is
#: ``-ELEMENTARY_CHARGE``.
ELEMENTARY_CHARGE = 4.80320471257e-10

#: Electron rest mass [g].
ELECTRON_MASS = 9.1093837015e-28

#: Proton rest mass [g].
PROTON_MASS = 1.67262192369e-24

#: Planck constant [erg*s] (not used by the pusher, provided for field
#: normalisation helpers and examples).
PLANCK_CONSTANT = 6.62607015e-27

#: One electronvolt [erg].
ELECTRON_VOLT = 1.602176634e-12

#: One watt expressed in CGS power units [erg/s].
WATT = 1.0e7

#: One petawatt [erg/s].
PETAWATT = 1.0e15 * WATT

#: One micrometre [cm].
MICRON = 1.0e-4


def wavelength_to_frequency(wavelength: float) -> float:
    """Return the angular frequency [1/s] of light of ``wavelength`` [cm].

    >>> round(wavelength_to_frequency(0.9e-4) / 1e15, 2)
    2.09
    """
    if wavelength <= 0.0:
        raise ValueError(f"wavelength must be positive, got {wavelength!r}")
    return 2.0 * math.pi * SPEED_OF_LIGHT / wavelength


def frequency_to_wavelength(omega: float) -> float:
    """Return the vacuum wavelength [cm] for angular frequency ``omega`` [1/s]."""
    if omega <= 0.0:
        raise ValueError(f"omega must be positive, got {omega!r}")
    return 2.0 * math.pi * SPEED_OF_LIGHT / omega


def relativistic_field_amplitude(omega: float,
                                 mass: float = ELECTRON_MASS,
                                 charge: float = ELEMENTARY_CHARGE) -> float:
    """Return the relativistic field scale ``m c omega / |q|`` [statvolt/cm].

    A wave of this amplitude accelerates a particle of the given mass and
    charge to relativistic momentum within one optical cycle; it is the
    natural yard-stick for "are the fields relativistic" questions such
    as the paper's choice of the P = 0.1 PW benchmark.
    """
    if omega <= 0.0:
        raise ValueError(f"omega must be positive, got {omega!r}")
    if mass <= 0.0:
        raise ValueError(f"mass must be positive, got {mass!r}")
    if charge == 0.0:
        raise ValueError("charge must be non-zero")
    return mass * SPEED_OF_LIGHT * omega / abs(charge)


def cyclotron_frequency(field: float,
                        gamma: float = 1.0,
                        mass: float = ELECTRON_MASS,
                        charge: float = ELEMENTARY_CHARGE) -> float:
    """Return the (relativistic) cyclotron frequency ``|q| B / (gamma m c)`` [1/s]."""
    if gamma < 1.0:
        raise ValueError(f"gamma must be >= 1, got {gamma!r}")
    if mass <= 0.0:
        raise ValueError(f"mass must be positive, got {mass!r}")
    return abs(charge) * abs(field) / (gamma * mass * SPEED_OF_LIGHT)
