"""The declared regression suites: every committed baseline as a test.

One :class:`~repro.regress.base.RegressionTest` subclass per suite:

========== ============================ ======== ==================
suite      artefact                     baseline tags
========== ============================ ======== ==================
table2     paper Table 2 (24 CPU cells) yes      paper, table, full
table3     paper Table 3 (12 GPU cells) yes      paper, table, full
fig1       paper Fig. 1 scaling series  no       paper, sanity
first-iter in-text first-iteration cost no       paper, sanity
threads    in-text hyperthreading       no       paper, sanity
measure    real numpy kernels (host)    no       manual, real
shard      multi-device group NSPS      yes      smoke, distributed
fusion     fused-vs-unfused pair        yes      smoke, graph
portability Pennycook PP sweep          yes      smoke, backends
pic        full PIC step (kernel graph) yes      smoke, pic, graph
========== ============================ ======== ==================

Baseline-backed suites replay the *committed configuration* (particle
count and parameters come from the latest snapshot of their
``BENCH_<suite>.json``), so ``repro bench --regress`` compares like
with like.  Sanity-only suites re-judge the paper's qualitative bands
(:mod:`repro.bench.validation`) without a committed reference; the
``measure`` suite is listed but never regressed — its numbers belong
to the host, not to the repo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .base import RegressionTest, SanityCheck
from .baseline import load_baseline

__all__ = ["SuiteArtifact", "SUITES", "get_suite", "all_suites",
           "Table2Suite", "Table3Suite", "Fig1Suite", "FirstIterSuite",
           "ThreadsSuite", "MeasureSuite", "ShardSuite", "FusionSuite",
           "PortabilitySuite", "PicSuite"]

#: Paper-scale default particle count (the tables' recorded baseline n).
PAPER_N = 10_000_000

#: Particle count of the sanity-only paper suites under ``--regress``:
#: large enough to stay out of the caches (the memory-bound regime the
#: paper measures), small enough for the smoke budget.
SANITY_N = 4_000_000


@dataclass
class SuiteArtifact:
    """What one suite run produced: the harness artefact + provenance."""

    data: object
    n_particles: int
    params: Dict[str, object]


def _checks_to_sanity(checks) -> List[SanityCheck]:
    """Adapt :class:`repro.bench.validation.Check` lists."""
    return [SanityCheck(c.claim, c.detail, c.passed) for c in checks]


class _BaselineParamsMixin:
    """Replaying the committed configuration: n and params come from
    the latest snapshot when one exists."""

    def __init__(self, directory=None):
        self.directory = directory

    def _latest(self):
        baseline = load_baseline(self.suite, self.directory)
        return baseline.latest if baseline is not None else None

    def baseline_n(self, fallback: int) -> int:
        snapshot = self._latest()
        if snapshot is not None and snapshot.n_particles > 0:
            return snapshot.n_particles
        return fallback

    def baseline_param(self, name: str, fallback):
        snapshot = self._latest()
        if snapshot is not None and name in snapshot.params:
            return snapshot.params[name]
        return fallback


class Table2Suite(_BaselineParamsMixin, RegressionTest):
    suite = "table2"
    descr = "paper Table 2: CPU NSPS, 6 implementations x 4 columns"
    tags = frozenset({"paper", "table", "full"})
    devices = ("cpu",)
    backends = ("oneapi",)
    parameters = {"layout": ("AoS", "SoA"),
                  "config": ("OpenMP", "DPC++", "DPC++ NUMA"),
                  "precision": ("float", "double"),
                  "scenario": ("precalculated", "analytical")}

    def run(self, n: Optional[int] = None) -> SuiteArtifact:
        from ..bench.harness import table2_rows
        n = n if n is not None else self.baseline_n(PAPER_N)
        return SuiteArtifact(table2_rows(n=n), n, {})

    def cells(self, artifact: SuiteArtifact) -> List[Dict[str, object]]:
        cells = []
        for (layout, parallelization), row in artifact.data.items():
            for (scenario, precision), nsps in row.items():
                cells.append(self.make_cell(
                    parallelization, "cpu", {"nsps": float(nsps)},
                    layout=layout, precision=precision,
                    scenario=scenario))
        return cells

    def sanity(self, artifact, cells) -> List[SanityCheck]:
        from ..bench.validation import check_table2_claims
        return super().sanity(artifact, cells) \
            + _checks_to_sanity(check_table2_claims(artifact.data))

    def render(self, artifact: SuiteArtifact) -> str:
        from ..bench.tables import PAPER_TABLE2, comparison_table
        return comparison_table(artifact.data, PAPER_TABLE2,
                                "layout/impl",
                                "Table 2 — CPU NSPS, 6 implementations")


class Table3Suite(_BaselineParamsMixin, RegressionTest):
    suite = "table3"
    descr = "paper Table 3: GPU NSPS (single precision) vs 2-CPU node"
    tags = frozenset({"paper", "table", "full"})
    devices = ("cpu", "p630", "iris-xe-max")
    backends = ("oneapi",)
    parameters = {"layout": ("AoS", "SoA"),
                  "device": ("cpu", "p630", "iris-xe-max"),
                  "scenario": ("precalculated", "analytical")}

    def run(self, n: Optional[int] = None) -> SuiteArtifact:
        from ..bench.harness import table3_rows
        n = n if n is not None else self.baseline_n(PAPER_N)
        return SuiteArtifact(table3_rows(n=n), n, {})

    def cells(self, artifact: SuiteArtifact) -> List[Dict[str, object]]:
        cells = []
        for layout, row in artifact.data.items():
            for (scenario, device), nsps in row.items():
                cells.append(self.make_cell(
                    "DPC++", device, {"nsps": float(nsps)},
                    layout=layout, precision="float", scenario=scenario))
        return cells

    def sanity(self, artifact, cells) -> List[SanityCheck]:
        from ..bench.validation import check_table3_claims
        return super().sanity(artifact, cells) \
            + _checks_to_sanity(check_table3_claims(artifact.data))

    def render(self, artifact: SuiteArtifact) -> str:
        from ..bench.tables import PAPER_TABLE3, comparison_table
        return comparison_table(artifact.data, PAPER_TABLE3, "layout",
                                "Table 3 — GPU NSPS (single precision)")


class Fig1Suite(RegressionTest):
    suite = "fig1"
    descr = "paper Fig. 1: strong-scaling speedup, sanity bands only"
    tags = frozenset({"paper", "sanity"})
    devices = ("cpu",)
    backends = ("oneapi",)
    parameters = {"config": ("OpenMP", "DPC++ NUMA"),
                  "layout": ("AoS", "SoA")}
    has_baseline = False

    #: Core counts the sanity bands need (4/24/48 + the speedup base).
    REGRESS_CORES = (1, 2, 4, 24, 48)

    def __init__(self, directory=None):
        self.directory = directory

    def run(self, n: Optional[int] = None,
            core_counts=None) -> SuiteArtifact:
        from ..bench.harness import fig1_series
        n = n if n is not None else SANITY_N
        series = fig1_series(core_counts=core_counts, n=n)
        return SuiteArtifact(series, n, {})

    def cells(self, artifact: SuiteArtifact) -> List[Dict[str, object]]:
        cells = []
        for name, points in artifact.data.items():
            config, layout = name.split("/", 1)
            cores, speedup = points[-1]
            cells.append(self.make_cell(
                config, "cpu", {"speedup": float(speedup),
                                "cores": float(cores)},
                layout=layout, precision="float",
                scenario="precalculated"))
        return cells

    compared_metrics = ()   # sanity-only: no committed reference

    def sanity(self, artifact, cells) -> List[SanityCheck]:
        from ..bench.validation import check_fig1_claims
        return _checks_to_sanity(check_fig1_claims(artifact.data))

    def render(self, artifact: SuiteArtifact) -> str:
        from ..bench.tables import format_table
        series = artifact.data
        headers = ["cores"] + list(series)
        core_counts = [c for c, _ in next(iter(series.values()))]
        rows = []
        for i, cores in enumerate(core_counts):
            rows.append([cores] + [f"{points[i][1]:.1f}"
                                   for points in series.values()])
        lines = [format_table(headers, rows,
                              "Fig. 1 — speedup vs single core "
                              "(precalculated fields, float)")]
        for name, points in series.items():
            speedup = points[-1][1]
            lines.append(
                f"{name}: {speedup:.1f}x at 48 cores "
                f"({100 * speedup / 48:.0f}% efficiency; paper reports "
                f"~63%)")
        return "\n".join(lines)


class FirstIterSuite(RegressionTest):
    suite = "first-iter"
    descr = "in-text claim: first iteration ~50% slower (JIT + cold)"
    tags = frozenset({"paper", "sanity"})
    devices = ("cpu",)
    backends = ("oneapi",)
    has_baseline = False
    compared_metrics = ()

    def __init__(self, directory=None):
        self.directory = directory

    def run(self, n: Optional[int] = None) -> SuiteArtifact:
        from ..bench.harness import first_iteration_ratio
        n = n if n is not None else SANITY_N
        return SuiteArtifact(first_iteration_ratio(n=n), n, {})

    def cells(self, artifact: SuiteArtifact) -> List[Dict[str, object]]:
        return [self.make_cell("DPC++ NUMA", "cpu",
                               {"first_iteration_ratio":
                                float(artifact.data)},
                               layout="SoA", precision="float",
                               scenario="precalculated")]

    def sanity(self, artifact, cells) -> List[SanityCheck]:
        from ..bench.validation import check_first_iteration_claim
        return _checks_to_sanity(
            check_first_iteration_claim(artifact.data))

    def render(self, artifact: SuiteArtifact) -> str:
        return (f"first iteration / steady iteration = "
                f"{artifact.data:.2f} (paper: ~1.5)")


class ThreadsSuite(RegressionTest):
    suite = "threads"
    descr = "in-text claim: hyperthreading helps (96 threads beat 48)"
    tags = frozenset({"paper", "sanity"})
    devices = ("cpu",)
    backends = ("oneapi",)
    has_baseline = False
    compared_metrics = ()

    def __init__(self, directory=None):
        self.directory = directory

    def run(self, n: Optional[int] = None) -> SuiteArtifact:
        from ..bench.harness import thread_sweep
        n = n if n is not None else SANITY_N
        return SuiteArtifact(thread_sweep(n=n), n, {})

    def cells(self, artifact: SuiteArtifact) -> List[Dict[str, object]]:
        return [self.make_cell("OpenMP", "cpu",
                               {"nsps": float(nsps),
                                "threads": float(threads)},
                               layout="SoA", precision="float",
                               scenario="precalculated")
                for threads, nsps in sorted(artifact.data.items())]

    def sanity(self, artifact, cells) -> List[SanityCheck]:
        from ..bench.validation import check_threads_claim
        return _checks_to_sanity(check_threads_claim(artifact.data))

    def render(self, artifact: SuiteArtifact) -> str:
        from ..bench.tables import format_table
        result = artifact.data
        table = format_table(
            ["threads", "NSPS"],
            [[t, f"{v:.3f}"] for t, v in sorted(result.items())],
            "Hyperthreading sweep — OpenMP, precalculated, float")
        best = min(result, key=result.get)
        return (f"{table}\nbest: {best} threads (paper: 96 threads is "
                f"empirically best)")


class MeasureSuite(RegressionTest):
    suite = "measure"
    descr = "real numpy-kernel NSPS on this host (never regressed)"
    tags = frozenset({"manual", "real"})
    devices = ("host",)
    backends = ("host",)
    has_baseline = False
    regressable = False
    compared_metrics = ()

    def __init__(self, directory=None):
        self.directory = directory

    def run(self, n: Optional[int] = None,
            steps: Optional[int] = None) -> SuiteArtifact:
        from ..bench import measure_real_nsps, paper_time_step, paper_wave
        from ..bench.scenarios import paper_ensemble
        from ..fp import Precision
        from ..particles.ensemble import Layout
        n = n if n is not None else 200_000
        steps = steps if steps is not None else 5
        wave, dt = paper_wave(), paper_time_step()
        rows = []
        for layout in (Layout.AOS, Layout.SOA):
            for precision in (Precision.SINGLE, Precision.DOUBLE):
                for scenario in ("precalculated", "analytical"):
                    ensemble = paper_ensemble(n, layout, precision)
                    result = measure_real_nsps(ensemble, scenario, wave,
                                               dt, steps=steps)
                    rows.append((layout.value, precision.value, scenario,
                                 result.nsps))
        return SuiteArtifact(rows, n, {"steps": steps})

    def cells(self, artifact: SuiteArtifact) -> List[Dict[str, object]]:
        return []    # host-dependent: never recorded, never compared

    def sanity(self, artifact, cells) -> List[SanityCheck]:
        return []

    def render(self, artifact: SuiteArtifact) -> str:
        from ..bench.tables import format_table
        return format_table(
            ["layout", "precision", "scenario", "NSPS"],
            [[la, p, s, f"{nsps:.2f}"]
             for la, p, s, nsps in artifact.data],
            f"Measured numpy-kernel NSPS on this host "
            f"({artifact.n_particles} particles)")


class ShardSuite(_BaselineParamsMixin, RegressionTest):
    suite = "shard"
    descr = "multi-device sharded group NSPS (halo exchange priced)"
    tags = frozenset({"smoke", "distributed"})
    devices = ("2x iris-xe-max",)
    backends = ("oneapi",)
    parameters = {"strategy": ("even", "bandwidth", "flops", "nsps")}

    DEFAULT_SPEC = "2x iris-xe-max"
    DEFAULT_N = 200_000
    DEFAULT_STEPS = 8
    DEFAULT_WARMUP = 2

    def _replay_config(self) -> Tuple[str, str]:
        """(group spec, strategy) of the committed cell, or defaults."""
        snapshot = self._latest()
        if snapshot is not None and snapshot.cells:
            cell = snapshot.cells[0]
            config = cell.keys.get("config", "sharded/even")
            strategy = config.split("/", 1)[1] if "/" in config else "even"
            return cell.keys.get("device", self.DEFAULT_SPEC), strategy
        return self.DEFAULT_SPEC, "even"

    def run(self, n: Optional[int] = None) -> SuiteArtifact:
        from ..bench import paper_time_step, paper_wave
        from ..bench.scenarios import paper_ensemble
        from ..distributed import (DeviceGroup, ShardedPushEngine,
                                   strategy_by_name)
        from ..fp import Precision
        from ..particles.ensemble import Layout
        spec, strategy_name = self._replay_config()
        n = n if n is not None else self.baseline_n(self.DEFAULT_N)
        steps = int(self.baseline_param("steps", self.DEFAULT_STEPS))
        warmup = int(self.baseline_param("warmup", self.DEFAULT_WARMUP))
        ensemble = paper_ensemble(n, Layout.SOA, Precision.SINGLE)
        group = DeviceGroup.from_spec(spec)
        engine = ShardedPushEngine(
            group, ensemble, "precalculated", paper_wave(),
            paper_time_step(),
            strategy=strategy_by_name(strategy_name, Precision.SINGLE))
        engine.run(warmup)
        engine.reset_measurement()
        report = engine.run(warmup + steps)
        return SuiteArtifact((report, spec), n,
                             {"steps": steps, "warmup": warmup})

    def cells(self, artifact: SuiteArtifact) -> List[Dict[str, object]]:
        report, spec = artifact.data
        return [self.make_cell(
            f"sharded/{report.strategy}", spec,
            {"nsps": float(report.nsps),
             "n_devices": float(report.n_devices),
             "imbalance": float(report.imbalance),
             "exchange_bytes": float(report.exchange.total_bytes)},
            layout="SoA", precision="float", scenario="precalculated")]

    def sanity(self, artifact, cells) -> List[SanityCheck]:
        report, spec = artifact.data
        checks = super().sanity(artifact, cells)
        particles = sum(s.particles for s in report.shards)
        checks.append(SanityCheck(
            "shard: particles conserved across the split",
            f"{particles} across {report.n_devices} devices",
            particles == artifact.n_particles))
        if report.n_devices > 1:
            checks.append(SanityCheck(
                "shard: halo exchange was priced, not skipped",
                f"{report.exchange.transfers} transfers, "
                f"{report.exchange.total_bytes} bytes",
                report.exchange.transfers > 0
                and report.exchange.total_bytes > 0))
        return checks

    def render(self, artifact: SuiteArtifact) -> str:
        from ..bench.tables import format_table
        report, spec = artifact.data
        rows = [[s.name, s.key, s.particles, s.steps,
                 f"{s.busy_seconds * 1e3:.2f} ms"]
                for s in report.shards]
        table = format_table(
            ["shard", "key", "particles", "steps", "busy"], rows,
            f"Sharded push — {spec!r}, strategy {report.strategy}")
        return (f"{table}\ngroup NSPS {report.nsps:.3f} "
                f"({report.n_particles} particles on "
                f"{report.n_devices} devices)")


class FusionSuite(_BaselineParamsMixin, RegressionTest):
    suite = "fusion"
    descr = "kernel-graph fusion: fused vs unfused, bit-exact, JIT cost"
    tags = frozenset({"smoke", "graph"})
    devices = ("iris-xe-max",)
    backends = ("oneapi",)
    parameters = {"config": ("unfused", "fused")}

    DEFAULT_N = 200_000
    DEFAULT_STEPS = 8
    DEFAULT_WARMUP = 2

    def _device(self) -> str:
        snapshot = self._latest()
        if snapshot is not None and snapshot.cells:
            return snapshot.cells[0].keys.get("device", "iris-xe-max")
        return "iris-xe-max"

    def run(self, n: Optional[int] = None) -> SuiteArtifact:
        from ..bench.harness import fusion_rows
        n = n if n is not None else self.baseline_n(self.DEFAULT_N)
        steps = int(self.baseline_param("steps", self.DEFAULT_STEPS))
        warmup = int(self.baseline_param("warmup", self.DEFAULT_WARMUP))
        reports = fusion_rows(n=n, steps=steps, warmup=warmup,
                              device=self._device())
        return SuiteArtifact(reports, n,
                             {"steps": steps, "warmup": warmup})

    def cells(self, artifact: SuiteArtifact) -> List[Dict[str, object]]:
        cells = []
        for config, report in artifact.data.items():
            cell = report.as_cell(self.suite, config=config,
                                  tolerance=self.default_tolerance)
            cells.append(cell)
        return cells

    def sanity(self, artifact, cells) -> List[SanityCheck]:
        reports = artifact.data
        checks = super().sanity(artifact, cells)
        fused, unfused = reports["fused"], reports["unfused"]
        checks.append(SanityCheck(
            "fusion: fused and unfused states bit-identical",
            f"digests {fused.digest[:12]} / {unfused.digest[:12]}",
            fused.digest == unfused.digest))
        checks.append(SanityCheck(
            "fusion: warm fused NSPS beats unfused",
            f"fused {fused.nsps:.3f} vs unfused {unfused.nsps:.3f}",
            fused.nsps < unfused.nsps))
        checks.append(SanityCheck(
            "fusion: fused chain compiles cheaper than unfused",
            f"JIT {fused.cache_stats.get('jit_seconds_charged', 0.0):.2f}"
            f" vs "
            f"{unfused.cache_stats.get('jit_seconds_charged', 0.0):.2f} s",
            fused.cache_stats.get("jit_seconds_charged", 0.0)
            <= unfused.cache_stats.get("jit_seconds_charged", 0.0)))
        return checks

    def render(self, artifact: SuiteArtifact) -> str:
        from ..bench.tables import format_table
        rows = [[name, f"{r.nsps:.3f}", f"{r.first_step_nsps:.3f}",
                 r.fusion_groups, r.kernels_eliminated, r.digest[:12]]
                for name, r in artifact.data.items()]
        return format_table(
            ["config", "warm NSPS", "cold NSPS", "groups", "elided",
             "digest"],
            rows, "Kernel-graph fusion — fused vs unfused "
                  "(identical digests = bit-exact)")


class PortabilitySuite(_BaselineParamsMixin, RegressionTest):
    suite = "portability"
    descr = "Pennycook PP: autotuned vs portable config, every backend"
    tags = frozenset({"smoke", "backends"})
    backends = ("oneapi", "cuda")
    parameters = {"config": ("auto", "portable")}

    def __init__(self, directory=None):
        super().__init__(directory)
        from ..backends.registry import all_device_specs
        self.devices = tuple(all_device_specs())

    @property
    def default_tolerance(self) -> float:
        from ..backends.portability import PP_DRIFT_TOLERANCE
        return PP_DRIFT_TOLERANCE

    compared_metrics = ("pp",)

    def _replay_devices(self) -> Optional[List[str]]:
        snapshot = self._latest()
        if snapshot is None:
            return None
        devices = [cell.keys["device"] for cell in snapshot.cells
                   if cell.keys.get("config") == "efficiency"]
        return devices or None

    def run(self, n: Optional[int] = None) -> SuiteArtifact:
        from ..backends.portability import (DEFAULT_N_PARTICLES,
                                            DEFAULT_STEPS, DEFAULT_WARMUP,
                                            measure_portability)
        n = n if n is not None else self.baseline_n(DEFAULT_N_PARTICLES)
        steps = int(self.baseline_param("steps", DEFAULT_STEPS))
        warmup = int(self.baseline_param("warmup", DEFAULT_WARMUP))
        report = measure_portability(devices=self._replay_devices(),
                                     n_particles=n, steps=steps,
                                     warmup=warmup)
        return SuiteArtifact(report, n,
                             {"steps": steps, "warmup": warmup})

    def cells(self, artifact: SuiteArtifact) -> List[Dict[str, object]]:
        report = artifact.data
        cells = []
        for row in report.devices:
            metrics = {"best_nsps": row.best_nsps,
                       "portable_nsps": row.portable_nsps,
                       "efficiency": row.efficiency}
            if row.predicted_nsps is not None:
                metrics["predicted_nsps"] = float(row.predicted_nsps)
            cells.append(self.make_cell(
                "efficiency", row.device, metrics, backend=row.backend,
                best_label=row.best_label))
        pp_cell = self.make_cell("pp", "*", {"pp": report.pp},
                                 backend="*")
        pp_cell["extra"] = {
            "portable_config": dict(report.portable_config)}
        cells.append(pp_cell)
        return cells

    def sanity(self, artifact, cells) -> List[SanityCheck]:
        report = artifact.data
        checks = super().sanity(artifact, cells)
        checks.append(SanityCheck(
            "portability: PP score within (0, 1]",
            f"pp = {report.pp:.4f}", 0.0 < report.pp <= 1.0))
        baseline = load_baseline(self.suite, self.directory)
        if baseline is not None and baseline.latest is not None:
            recorded = {cell.keys["device"]
                        for cell in baseline.latest.cells
                        if cell.keys.get("config") == "efficiency"}
            current = {row.device for row in report.devices}
            missing = sorted(recorded - current)
            added = sorted(current - recorded)
            checks.append(SanityCheck(
                "portability: device set matches the baseline",
                "; ".join([f"missing {missing}"] * bool(missing)
                          + [f"added {added}"] * bool(added))
                or f"{len(current)} devices",
                not missing and not added))
        return checks

    def render(self, artifact: SuiteArtifact) -> str:
        from ..bench.tables import format_table
        report = artifact.data
        rows = [[row.device, row.backend,
                 f"{row.best_nsps:.3f}", row.best_label,
                 f"{row.portable_nsps:.3f}", f"{row.efficiency:.3f}"]
                for row in report.devices]
        table = format_table(
            ["device", "backend", "best NSPS", "best config",
             "portable NSPS", "efficiency"],
            rows,
            "Performance portability — autotuned vs fixed "
            "SoA/float/fused")
        return (f"{table}\nPP score (harmonic mean of efficiencies): "
                f"{report.pp:.4f} over {len(report.devices)} devices — "
                f"see docs/BACKENDS.md")


class PicSuite(_BaselineParamsMixin, RegressionTest):
    suite = "pic"
    descr = "self-consistent PIC step through the kernel graph " \
            "(fused vs unfused, energy-conserving)"
    tags = frozenset({"smoke", "pic", "graph"})
    devices = ("iris-xe-max",)
    backends = ("oneapi",)
    parameters = {"config": ("unfused", "fused"),
                  "scenario": ("laser-slab",)}

    DEFAULT_N = 2048
    DEFAULT_STEPS = 6
    DEFAULT_WARMUP = 2
    DEFAULT_SCENARIO = "laser-slab"
    DEFAULT_SEED = 7

    def _replay_config(self) -> Tuple[str, str]:
        """(scenario, device) of the committed cell, or defaults."""
        snapshot = self._latest()
        if snapshot is not None and snapshot.cells:
            cell = snapshot.cells[0]
            return (cell.keys.get("scenario", self.DEFAULT_SCENARIO),
                    cell.keys.get("device", "iris-xe-max"))
        return self.DEFAULT_SCENARIO, "iris-xe-max"

    def run(self, n: Optional[int] = None) -> SuiteArtifact:
        from ..api import PicConfig, run_pic
        scenario, device = self._replay_config()
        n = n if n is not None else self.baseline_n(self.DEFAULT_N)
        steps = int(self.baseline_param("steps", self.DEFAULT_STEPS))
        warmup = int(self.baseline_param("warmup", self.DEFAULT_WARMUP))
        seed = int(self.baseline_param("seed", self.DEFAULT_SEED))
        reports = {}
        for name, fusion in (("fused", True), ("unfused", False)):
            config = PicConfig(scenario=scenario, n_particles=n,
                               steps=steps, warmup=warmup, seed=seed,
                               device=device, fusion=fusion)
            # validate=True replays every launch through the hazard
            # detector — the suite run doubles as the hazard gate.
            reports[name] = run_pic(config, validate=True)
        return SuiteArtifact(reports, n,
                             {"steps": steps, "warmup": warmup,
                              "seed": seed})

    def cells(self, artifact: SuiteArtifact) -> List[Dict[str, object]]:
        return [report.as_cell(self.suite, config=name,
                               tolerance=self.default_tolerance)
                for name, report in artifact.data.items()]

    def sanity(self, artifact, cells) -> List[SanityCheck]:
        from ..pic.scenarios import get_scenario
        reports = artifact.data
        checks = super().sanity(artifact, cells)
        fused, unfused = reports["fused"], reports["unfused"]
        checks.append(SanityCheck(
            "pic: fused and unfused end states bit-identical "
            "(particles + grid)",
            f"digests {fused.digest[:12]} / {unfused.digest[:12]}",
            fused.digest == unfused.digest))
        checks.append(SanityCheck(
            "pic: warm fused NSPS beats unfused",
            f"fused {fused.nsps:.3f} vs unfused {unfused.nsps:.3f}",
            fused.nsps < unfused.nsps))
        bound = get_scenario(fused.scenario).energy_tolerance
        for name, report in reports.items():
            checks.append(SanityCheck(
                f"pic: {name} total-energy drift within the "
                f"{fused.scenario!r} bound",
                f"{report.energy_drift:.2e} <= {bound:.0e}",
                report.energy_drift <= bound))
        return checks

    def render(self, artifact: SuiteArtifact) -> str:
        from ..bench.tables import format_table
        rows = [[name, f"{r.nsps:.3f}", f"{r.first_step_nsps:.3f}",
                 r.fusion_groups, r.kernels_eliminated,
                 f"{r.energy_drift:.2e}", r.digest[:12]]
                for name, r in artifact.data.items()]
        sample = next(iter(artifact.data.values()))
        return format_table(
            ["config", "warm NSPS", "cold NSPS", "groups", "elided",
             "energy drift", "digest"],
            rows, f"PIC step through the kernel graph — "
                  f"{sample.scenario}, {sample.deposition} deposition, "
                  f"{sample.solver} solver")


#: Declaration order is execution and listing order.
SUITES: Dict[str, type] = {
    "table2": Table2Suite,
    "table3": Table3Suite,
    "fig1": Fig1Suite,
    "first-iter": FirstIterSuite,
    "threads": ThreadsSuite,
    "measure": MeasureSuite,
    "shard": ShardSuite,
    "fusion": FusionSuite,
    "portability": PortabilitySuite,
    "pic": PicSuite,
}


def get_suite(name: str, directory=None) -> RegressionTest:
    """Instantiate one declared suite by name (typed error on unknown)."""
    try:
        factory = SUITES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown bench suite {name!r}; declared suites: "
            f"{', '.join(SUITES)}") from None
    return factory(directory=directory)


def all_suites(directory=None) -> List[RegressionTest]:
    """Every declared suite, in declaration order."""
    return [factory(directory=directory)
            for factory in SUITES.values()]
