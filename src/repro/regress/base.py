"""Declarative regression tests over the committed benchmark baselines.

Modeled on ReFrame's ``RunOnlyRegressionTest`` pattern: each benchmark
expectation is a :class:`RegressionTest` object declaring *where* it is
valid (device/backend filters, tags), *what* it runs (the artefact —
one harness invocation producing a set of cells), a **sanity stage**
(structural invariants: digests agree, the device set is complete, the
paper's qualitative claims hold) and a **performance stage** (every
cell's metric within a reference value ± tolerance, the references
coming from the committed versioned baseline — see
:mod:`repro.regress.baseline`).

This module owns the *one* tolerance-comparison code path of the repo:
:func:`within_tolerance` / :func:`relative_drift`.  Every drift check —
``repro bench --regress``, the benchmark smoke files under
``benchmarks/``, the portability PP-score check — routes through it, so
"within tolerance" means exactly one thing everywhere: the closed
interval ``|measured - reference| <= tolerance * |reference|`` (a cell
landing exactly on the bound passes; one epsilon over fails).

Concrete suites live in :mod:`repro.regress.suites`; the matrix runner
and its per-cell diff report in :mod:`repro.regress.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["within_tolerance", "relative_drift", "cell_key", "cell_label",
           "SanityCheck", "RegressionTest", "TestFilter", "parse_filter"]

#: Key fields identifying one cell, in canonical display order.  The
#: first three are required on every versioned-baseline cell; the rest
#: appear where the suite's matrix has that axis.
KEY_FIELDS = ("suite", "backend", "device", "config", "layout",
              "precision", "scenario")

#: Key fields every v1 baseline cell must carry.
REQUIRED_KEY_FIELDS = ("backend", "device", "config")


def within_tolerance(measured: float, reference: float,
                     tolerance: float) -> bool:
    """The repo's single tolerance predicate (closed interval).

    True iff ``|measured - reference| <= tolerance * |reference|``.
    A measurement exactly at the bound passes; one epsilon over fails.
    ``tolerance`` is relative (0.10 = ±10%) and must be >= 0.
    """
    if tolerance < 0.0:
        raise ConfigurationError(
            f"tolerance must be >= 0, got {tolerance}")
    return abs(measured - reference) <= tolerance * abs(reference)


def relative_drift(measured: float, reference: float) -> float:
    """Signed relative drift of a measurement from its reference.

    ``(measured - reference) / |reference|``; infinite when the
    reference is zero and the measurement is not (a zero reference can
    only be reproduced exactly).
    """
    if reference == 0.0:
        return 0.0 if measured == 0.0 else float("inf")
    return (measured - reference) / abs(reference)


def cell_key(keys: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    """Canonical identity of a cell: its sorted (field, value) pairs."""
    return tuple(sorted((str(k), str(v)) for k, v in keys.items()))


def cell_label(keys: Dict[str, object]) -> str:
    """Human-readable cell name: suite/backend:device/config[axes]."""
    suite = keys.get("suite", "?")
    backend = keys.get("backend", "?")
    device = keys.get("device", "?")
    config = keys.get("config", "?")
    axes = [str(keys[k]) for k in ("layout", "precision", "scenario")
            if k in keys]
    extras = sorted(k for k in keys
                    if k not in KEY_FIELDS)
    axes += [f"{k}={keys[k]}" for k in extras]
    label = f"{suite}/{backend}:{device}/{config}"
    return label + (f"[{'/'.join(axes)}]" if axes else "")


@dataclass
class SanityCheck:
    """One sanity-stage verdict: a claim, its evidence, pass/fail."""

    claim: str
    detail: str
    passed: bool


class RegressionTest:
    """Base class of every declarative benchmark expectation.

    Subclasses (one per suite, :mod:`repro.regress.suites`) declare:

    * ``suite`` — the registry name, also the ``BENCH_<suite>.json``
      baseline stem;
    * ``descr`` — one line for ``repro bench --list``;
    * ``tags`` — free-form selection labels (``smoke``, ``paper``,
      ``manual``...);
    * ``devices`` / ``backends`` — where the test is valid (what
      ``--filter device=…`` and ``--filter backend=…`` match against);
    * ``parameters`` — the declared axes (layout × precision × …) for
      the listing;
    * ``has_baseline`` — whether a committed reference exists (the
      performance stage needs one);
    * ``regressable`` — whether ``--regress`` may run it at all
      (host-dependent measurements are listed but never regressed);
    * ``default_tolerance`` — the relative tolerance recorded on every
      cell this suite writes.

    And implement:

    * :meth:`run` — produce the artefact (one harness invocation);
    * :meth:`cells` — flatten the artefact into v1 cells (each a dict
      with ``suite/backend/device/config`` keys, a ``metrics`` mapping
      and the suite tolerance);
    * :meth:`sanity` — the sanity stage over the artefact + cells;
    * :meth:`render` — the human-readable artefact (what the CLI
      prints for ``repro bench <suite>``).

    The performance stage is *not* implemented here — it is uniform,
    owned by :func:`repro.regress.runner.compare_cells`, and driven by
    the committed baseline's per-cell references.
    """

    suite: str = ""
    descr: str = ""
    tags: frozenset = frozenset()
    devices: Tuple[str, ...] = ()
    backends: Tuple[str, ...] = ("oneapi",)
    parameters: Dict[str, Tuple[str, ...]] = {}
    has_baseline: bool = True
    regressable: bool = True
    default_tolerance: float = 0.10
    #: Metric names the performance stage compares (others recorded in
    #: cells are informational context, e.g. ``cold_nsps``).
    compared_metrics: Tuple[str, ...] = ("nsps",)

    def run(self, n: Optional[int] = None):
        """Produce the suite's artefact (harness return shape)."""
        raise NotImplementedError

    def cells(self, artifact) -> List[Dict[str, object]]:
        """Flatten the artefact into v1 baseline cells."""
        raise NotImplementedError

    def sanity(self, artifact, cells) -> List[SanityCheck]:
        """The sanity stage; default: every compared metric is finite
        and positive (NSPS of a real run can be neither)."""
        checks: List[SanityCheck] = []
        bad = []
        for cell in cells:
            for metric in self.compared_metrics:
                value = cell.get("metrics", {}).get(metric)
                if value is None:
                    continue
                if not (value == value and 0.0 < value < float("inf")):
                    bad.append(f"{cell_label(cell)}:{metric}={value}")
        checks.append(SanityCheck(
            f"{self.suite}: compared metrics finite and positive",
            "; ".join(bad) if bad else f"{len(cells)} cells ok",
            not bad))
        return checks

    def render(self, artifact) -> str:
        """Human-readable artefact for ``repro bench <suite>``."""
        raise NotImplementedError

    def make_cell(self, config: str, device: str,
                  metrics: Dict[str, float],
                  **keys) -> Dict[str, object]:
        """One v1 cell with the suite's identity and tolerance filled
        in; ``backend`` is inferred from the device spec unless given."""
        from .baseline import backend_of_device
        cell: Dict[str, object] = {
            "suite": self.suite,
            "backend": keys.pop("backend", None) or backend_of_device(device),
            "device": device, "config": config,
        }
        for axis in ("layout", "precision", "scenario"):
            if axis in keys:
                cell[axis] = keys.pop(axis)
        cell["metrics"] = {k: float(v) for k, v in metrics.items()}
        cell["tolerance"] = self.default_tolerance
        if keys:
            cell["extra"] = dict(keys)
        return cell


@dataclass
class TestFilter:
    """What ``--filter`` selects: suites, devices, backends, tags.

    Terms are ANDed; values within one category are ORed.  A bare term
    matches a suite name or a tag (``smoke`` selects everything tagged
    smoke); ``device=cpu``, ``backend=cuda``, ``suite=table2`` and
    ``tag=paper`` pin one category.  Matching is case-sensitive and
    exact per value.
    """

    __test__ = False          # "Test" prefix, but not a pytest class

    suites: Tuple[str, ...] = ()
    devices: Tuple[str, ...] = ()
    backends: Tuple[str, ...] = ()
    tags: Tuple[str, ...] = ()
    #: Bare terms: each must match the suite name OR a tag.
    terms: Tuple[str, ...] = ()

    def matches(self, test: RegressionTest) -> bool:
        if self.suites and test.suite not in self.suites:
            return False
        if self.devices and not set(self.devices) & set(test.devices):
            return False
        if self.backends and not set(self.backends) & set(test.backends):
            return False
        if self.tags and not set(self.tags) & set(test.tags):
            return False
        for term in self.terms:
            if term != test.suite and term not in test.tags:
                return False
        return True


def parse_filter(expressions: Optional[Iterable[str]]) -> TestFilter:
    """Build a :class:`TestFilter` from ``--filter`` strings.

    Each expression is a comma-separated list of terms; several
    ``--filter`` flags AND together with their commas flattened.
    """
    suites: List[str] = []
    devices: List[str] = []
    backends: List[str] = []
    tags: List[str] = []
    terms: List[str] = []
    buckets = {"suite": suites, "device": devices,
               "backend": backends, "tag": tags}
    for expression in expressions or ():
        for raw in expression.split(","):
            term = raw.strip()
            if not term:
                continue
            if "=" in term:
                key, _, value = term.partition("=")
                key, value = key.strip(), value.strip()
                if key not in buckets or not value:
                    raise ConfigurationError(
                        f"bad filter term {term!r}; expected "
                        f"suite=/device=/backend=/tag=NAME or a bare "
                        f"suite/tag name")
                buckets[key].append(value)
            else:
                terms.append(term)
    return TestFilter(suites=tuple(suites), devices=tuple(devices),
                      backends=tuple(backends), tags=tuple(tags),
                      terms=tuple(terms))
