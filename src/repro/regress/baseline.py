"""Versioned baseline files: one schema over every committed reference.

PR 3 grew ``benchmarks/BENCH_<scenario>.json`` trajectory files (v0:
``{"scenario": ..., "snapshots": [...]}`` with flat per-snapshot cell
lists) and PR 8 added a portability baseline in a third, flat shape
(``{"pp": ..., "devices": [...]}``).  This module unifies them:

**Schema v1** — one JSON object per suite::

    {"schema_version": 1,
     "suite": "fusion",
     "snapshots": [
        {"git_sha": "...", "date": "2026-08-08", "n_particles": 200000,
         "params": {"steps": 8, "warmup": 2},
         "cells": [
            {"suite": "fusion", "backend": "oneapi",
             "device": "iris-xe-max", "config": "fused",
             "layout": "SoA", "precision": "float",
             "scenario": "precalculated",
             "metrics": {"nsps": 1.0417, "cold_nsps": 1548.08},
             "tolerance": 0.10,
             "extra": {"digest": "bdb5e35b..."}},
            ...]},
        ...]}

* ``snapshots`` stays append-only: the file is the committed
  performance trajectory, and the latest snapshot is the regression
  reference.
* Every cell carries the three required key fields (``backend``,
  ``device``, ``config``), the optional axes (``layout``,
  ``precision``, ``scenario``), a named ``metrics`` mapping, and its
  own ``tolerance`` — per-cell references, so one file can mix a 10%
  NSPS band with a 2% PP-score band.

**Loading** accepts v0 files of both legacy shapes and migrates them
in memory (``backend`` inferred from the device spec, the single
``nsps`` value moved under ``metrics``), so a checkout that still
carries v0 baselines regresses fine.  **Writing** only ever emits v1:
appending a snapshot to a v0 file first migrates its whole history.
"""

from __future__ import annotations

import datetime
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import ConfigurationError, ValidationError
from .base import REQUIRED_KEY_FIELDS, cell_key

__all__ = ["SCHEMA_VERSION", "BaselineCell", "BaselineSnapshot",
           "Baseline", "backend_of_device", "baseline_path",
           "load_baseline", "write_baseline", "append_snapshot",
           "migrate_document", "baseline_suites"]

#: The only schema version the writer emits.
SCHEMA_VERSION = 1

#: Default directory of the committed baseline files.
DEFAULT_DIRECTORY = "benchmarks"

#: Cell fields that are identity, not payload (see base.KEY_FIELDS).
_CELL_KEY_FIELDS = ("suite", "backend", "device", "config", "layout",
                    "precision", "scenario")


def backend_of_device(device_spec: str) -> str:
    """Backend name a device spec belongs to (``cuda:gpu0`` → cuda).

    Bare keys and group specs (``"2x iris-xe-max"``) are oneAPI — the
    registry's own convention (:mod:`repro.backends.registry`).
    """
    from ..backends.registry import parse_device_spec
    try:
        backend, _ = parse_device_spec(str(device_spec))
    except Exception:
        return "oneapi"
    return backend


@dataclass
class BaselineCell:
    """One reference cell: identity keys, metrics, its tolerance."""

    keys: Dict[str, str]
    metrics: Dict[str, float]
    tolerance: Optional[float] = None
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def identity(self):
        return cell_key(self.keys)

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = dict(self.keys)
        data["metrics"] = {k: float(v) for k, v in self.metrics.items()}
        if self.tolerance is not None:
            data["tolerance"] = self.tolerance
        if self.extra:
            data["extra"] = dict(self.extra)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BaselineCell":
        missing = [k for k in REQUIRED_KEY_FIELDS if k not in data]
        if missing or "metrics" not in data:
            raise ValidationError(
                f"baseline cell missing required fields "
                f"{missing + (['metrics'] if 'metrics' not in data else [])}"
                f": {sorted(data)}")
        keys = {k: str(data[k]) for k in _CELL_KEY_FIELDS if k in data}
        metrics = {str(k): float(v)
                   for k, v in dict(data["metrics"]).items()}
        tolerance = data.get("tolerance")
        return cls(keys=keys, metrics=metrics,
                   tolerance=None if tolerance is None
                   else float(tolerance),
                   extra=dict(data.get("extra", {})))

    @classmethod
    def from_flat(cls, suite: str, flat: Dict[str, object],
                  tolerance: Optional[float] = None) -> "BaselineCell":
        """Migrate one v0 trajectory cell (flat dict, bare ``nsps``)."""
        keys = {"suite": suite}
        metrics: Dict[str, float] = {}
        extra: Dict[str, object] = {}
        for key, value in flat.items():
            if key in ("config", "layout", "precision", "scenario",
                       "device"):
                keys[key] = str(value)
            elif isinstance(value, bool):
                extra[key] = value
            elif isinstance(value, (int, float)):
                metrics[key] = float(value)
            else:
                extra[key] = value
        keys.setdefault("config", "default")
        keys.setdefault("device", "unknown")
        keys["backend"] = backend_of_device(keys["device"])
        if "nsps" not in metrics:
            raise ValidationError(
                f"v0 cell has no nsps metric: {sorted(flat)}")
        return cls(keys=keys, metrics=metrics, tolerance=tolerance,
                   extra=extra)


@dataclass
class BaselineSnapshot:
    """One recorded run: provenance plus its cell list."""

    git_sha: str
    date: str
    n_particles: int
    cells: List[BaselineCell] = field(default_factory=list)
    params: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "git_sha": self.git_sha, "date": self.date,
            "n_particles": self.n_particles,
        }
        if self.params:
            data["params"] = dict(self.params)
        data["cells"] = [cell.as_dict() for cell in self.cells]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BaselineSnapshot":
        return cls(git_sha=str(data.get("git_sha", "unknown")),
                   date=str(data.get("date", "")),
                   n_particles=int(data.get("n_particles", 0)),
                   cells=[BaselineCell.from_dict(c)
                          for c in data.get("cells", [])],
                   params=dict(data.get("params", {})))


@dataclass
class Baseline:
    """A suite's whole committed trajectory (v1 in memory)."""

    suite: str
    snapshots: List[BaselineSnapshot] = field(default_factory=list)

    @property
    def latest(self) -> Optional[BaselineSnapshot]:
        return self.snapshots[-1] if self.snapshots else None

    def as_dict(self) -> Dict[str, object]:
        return {"schema_version": SCHEMA_VERSION, "suite": self.suite,
                "snapshots": [s.as_dict() for s in self.snapshots]}


def baseline_path(suite: str, directory=None) -> Path:
    """Path of a suite's baseline file (``BENCH_<suite>.json``)."""
    if not suite or any(c in suite for c in "/\\"):
        raise ConfigurationError(f"bad suite name {suite!r}")
    base = Path(directory) if directory is not None \
        else Path(DEFAULT_DIRECTORY)
    return base / f"BENCH_{suite}.json"


def baseline_suites(directory=None) -> List[str]:
    """Suites with a baseline file present in ``directory``."""
    base = Path(directory) if directory is not None \
        else Path(DEFAULT_DIRECTORY)
    return sorted(p.stem[len("BENCH_"):]
                  for p in base.glob("BENCH_*.json"))


# -- migration: the two v0 shapes -> v1 ---------------------------------

def _migrate_trajectory_v0(suite: str,
                           document: Dict[str, object]) -> Baseline:
    """v0 trajectory files: {"scenario": ..., "snapshots": [...]}."""
    snapshots = []
    for snap in document.get("snapshots", []):
        snapshots.append(BaselineSnapshot(
            git_sha=str(snap.get("git_sha", "unknown")),
            date=str(snap.get("date", "")),
            n_particles=int(snap.get("n_particles", 0)),
            cells=[BaselineCell.from_flat(suite, cell)
                   for cell in snap.get("cells", [])]))
    return Baseline(suite=suite, snapshots=snapshots)


def _migrate_portability_v0(suite: str,
                            document: Dict[str, object]) -> Baseline:
    """v0 portability baseline: the flat PortabilityReport dump.

    Becomes one snapshot: one cell per device (efficiency metrics) plus
    the ``pp`` summary cell the performance stage compares — matching
    the legacy check, which compared the PP score and the device set
    but not per-device NSPS.
    """
    from ..backends.portability import PP_DRIFT_TOLERANCE
    cells = []
    for row in document.get("devices", []):
        device = str(row.get("device", "unknown"))
        metrics = {k: float(row[k])
                   for k in ("best_nsps", "portable_nsps", "efficiency")
                   if k in row and row[k] is not None}
        if row.get("predicted_nsps") is not None:
            metrics["predicted_nsps"] = float(row["predicted_nsps"])
        cells.append(BaselineCell(
            keys={"suite": suite,
                  "backend": str(row.get("backend")
                                 or backend_of_device(device)),
                  "device": device, "config": "efficiency"},
            metrics=metrics, tolerance=None,
            extra={"best_label": row.get("best_label", "")}))
    cells.append(BaselineCell(
        keys={"suite": suite, "backend": "*", "device": "*",
              "config": "pp"},
        metrics={"pp": float(document.get("pp", 0.0))},
        tolerance=PP_DRIFT_TOLERANCE,
        extra={"portable_config": dict(document.get("portable_config",
                                                    {}))}))
    snapshot = BaselineSnapshot(
        git_sha="unknown", date="",
        n_particles=int(document.get("n_particles", 0)),
        cells=cells,
        params={k: document[k] for k in ("steps", "warmup")
                if k in document})
    return Baseline(suite=suite, snapshots=[snapshot])


def migrate_document(suite: str, document: Dict[str, object]) -> Baseline:
    """Parse any schema version into an in-memory v1 :class:`Baseline`."""
    if not isinstance(document, dict):
        raise ValidationError(
            f"baseline for {suite!r} is not a JSON object")
    version = document.get("schema_version")
    if version is not None:
        if int(version) != SCHEMA_VERSION:
            raise ValidationError(
                f"baseline for {suite!r} has unsupported schema_version "
                f"{version} (this build reads v0 and v{SCHEMA_VERSION})")
        if document.get("suite") != suite:
            raise ValidationError(
                f"baseline file claims suite "
                f"{document.get('suite')!r}, expected {suite!r}")
        return Baseline(
            suite=suite,
            snapshots=[BaselineSnapshot.from_dict(s)
                       for s in document.get("snapshots", [])])
    if "snapshots" in document:           # v0 trajectory
        if document.get("scenario") != suite:
            raise ValidationError(
                f"v0 trajectory claims scenario "
                f"{document.get('scenario')!r}, expected {suite!r}")
        return _migrate_trajectory_v0(suite, document)
    if "pp" in document and "devices" in document:   # v0 portability
        return _migrate_portability_v0(suite, document)
    raise ValidationError(
        f"unrecognised baseline shape for {suite!r}: {sorted(document)}")


# -- file I/O -----------------------------------------------------------

def load_baseline(suite: str, directory=None) -> Optional[Baseline]:
    """Load a suite's baseline, migrating v0 shapes in memory.

    Returns None when no file exists (a missing baseline skips the
    performance stage; a *corrupt* one raises
    :class:`~repro.errors.ValidationError` — the drift check must not
    silently pass).
    """
    path = baseline_path(suite, directory)
    if not path.exists():
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ValidationError(
            f"unreadable baseline {path}: "
            f"{type(exc).__name__}: {exc}") from exc
    return migrate_document(suite, document)


def write_baseline(baseline: Baseline, directory=None) -> Path:
    """Write a whole baseline file — always schema v1, pretty-printed
    with a trailing newline (diff-friendly, like every committed
    artefact)."""
    path = baseline_path(baseline.suite, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline.as_dict(), handle, indent=1)
        handle.write("\n")
    return path


def append_snapshot(suite: str, cells: List[Dict[str, object]],
                    n_particles: int, directory=None,
                    sha: Optional[str] = None,
                    params: Optional[Dict[str, object]] = None) -> Path:
    """Append one recorded snapshot; the file comes out v1.

    ``cells`` are v1 cell dicts (:meth:`RegressionTest.make_cell`).  An
    existing v0 file is migrated wholesale first, so its recorded
    history survives the schema change.
    """
    if not cells:
        raise ConfigurationError("refusing to record an empty snapshot")
    parsed = [BaselineCell.from_dict(cell) for cell in cells]
    baseline = load_baseline(suite, directory) or Baseline(suite=suite)
    from ..bench.trajectory import git_sha
    baseline.snapshots.append(BaselineSnapshot(
        git_sha=sha if sha is not None else git_sha(),
        date=datetime.date.today().isoformat(),
        n_particles=int(n_particles), cells=parsed,
        params=dict(params or {})))
    return write_baseline(baseline, directory)
