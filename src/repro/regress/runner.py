"""The matrix runner: sanity + performance stages, per-cell diff report.

:func:`run_regression` is what ``repro bench --regress`` calls: select
suites through a :class:`~repro.regress.base.TestFilter`, run each
one's artefact, evaluate its sanity stage, and drive the **uniform
performance stage** — every compared metric of every cell against the
latest committed snapshot's reference, through the repo's single
tolerance predicate (:func:`repro.regress.base.within_tolerance`).

The report names every failing cell by its full identity
(``suite/backend:device/config[axes]``), the reference, the measured
value and the signed drift, so a red CI run reads as a diff, not a
stack trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .base import (RegressionTest, SanityCheck, TestFilter, cell_key,
                   cell_label, relative_drift, within_tolerance)
from .baseline import append_snapshot, load_baseline
from .suites import all_suites, get_suite

__all__ = ["CellResult", "SuiteResult", "RegressionReport",
           "compare_cells", "run_suite", "run_regression",
           "record_suite", "render_listing"]

#: Cell statuses: only ``drift`` and ``missing`` fail the run.
OK, DRIFT, MISSING, NEW = "ok", "drift", "missing", "new"


@dataclass
class CellResult:
    """One performance-stage comparison: a cell metric vs its reference."""

    keys: Dict[str, str]
    metric: str
    measured: Optional[float]
    reference: Optional[float]
    tolerance: float
    status: str

    @property
    def passed(self) -> bool:
        return self.status in (OK, NEW)

    @property
    def drift(self) -> Optional[float]:
        if self.measured is None or self.reference is None:
            return None
        return relative_drift(self.measured, self.reference)

    @property
    def label(self) -> str:
        return cell_label(self.keys)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready comparison record."""
        return {
            "cell": self.label, "keys": dict(self.keys),
            "metric": self.metric, "measured": self.measured,
            "reference": self.reference, "drift": self.drift,
            "tolerance": self.tolerance, "status": self.status,
            "passed": self.passed,
        }


@dataclass
class SuiteResult:
    """One suite's verdict: sanity checks + per-cell comparisons."""

    suite: str
    sanity: List[SanityCheck] = field(default_factory=list)
    cells: List[CellResult] = field(default_factory=list)
    skipped: Optional[str] = None
    error: Optional[str] = None

    @property
    def passed(self) -> bool:
        if self.skipped is not None:
            return True
        return (self.error is None
                and all(c.passed for c in self.sanity)
                and all(c.passed for c in self.cells))

    @property
    def n_compared(self) -> int:
        return sum(1 for c in self.cells if c.status != NEW)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready suite verdict."""
        return {
            "suite": self.suite, "passed": self.passed,
            "skipped": self.skipped, "error": self.error,
            "sanity": [{"claim": c.claim, "detail": c.detail,
                        "passed": c.passed} for c in self.sanity],
            "cells": [c.as_dict() for c in self.cells],
        }


@dataclass
class RegressionReport:
    """The whole matrix run, renderable as a per-cell diff."""

    results: List[SuiteResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    def as_dict(self) -> Dict[str, object]:
        """The machine-readable report ``repro bench --regress --json``
        prints: one verdict object per suite, schema-stable for CI
        consumers."""
        return {
            "passed": self.passed,
            "suites": [r.as_dict() for r in self.results],
            "cells_compared": sum(r.n_compared for r in self.results),
            "cells_failed": sum(1 for r in self.results
                                for c in r.cells if not c.passed),
        }

    def render(self) -> str:
        from ..bench.tables import format_table
        lines: List[str] = []
        rows = []
        for result in self.results:
            if result.skipped is not None:
                verdict = f"SKIP ({result.skipped})"
            elif result.passed:
                verdict = "PASS"
            else:
                verdict = "FAIL"
            sanity = (f"{sum(c.passed for c in result.sanity)}"
                      f"/{len(result.sanity)}")
            rows.append([result.suite, verdict, sanity,
                         str(result.n_compared)])
        lines.append(format_table(
            ["suite", "verdict", "sanity", "cells compared"], rows,
            "Regression matrix — latest committed snapshot is the "
            "reference"))
        for result in self.results:
            failures = [c for c in result.cells if not c.passed]
            news = [c for c in result.cells if c.status == NEW]
            bad_sanity = [c for c in result.sanity if not c.passed]
            if result.error is not None:
                lines.append("")
                lines.append(f"{result.suite}: ERROR {result.error}")
            if bad_sanity:
                lines.append("")
                lines.append(f"{result.suite}: sanity failures")
                for check in bad_sanity:
                    lines.append(f"  [FAIL] {check.claim}")
                    lines.append(f"         {check.detail}")
            if failures:
                lines.append("")
                lines.append(f"{result.suite}: per-cell diff "
                             f"(reference ± tolerance from the "
                             f"committed baseline)")
                diff_rows = []
                for cell in failures:
                    diff_rows.append([
                        cell.label, cell.metric,
                        "-" if cell.reference is None
                        else f"{cell.reference:.4f}",
                        "-" if cell.measured is None
                        else f"{cell.measured:.4f}",
                        "-" if cell.drift is None
                        else f"{cell.drift:+.1%}",
                        f"±{cell.tolerance:.0%}", cell.status])
                lines.append(format_table(
                    ["cell", "metric", "reference", "measured",
                     "drift", "tolerance", "status"], diff_rows))
            if news:
                lines.append("")
                lines.append(
                    f"{result.suite}: {len(news)} cell(s) not in the "
                    f"baseline (new axes?) — record with "
                    f"`repro bench {result.suite} --record`")
        total = sum(r.n_compared for r in self.results)
        failed = sum(1 for r in self.results for c in r.cells
                     if not c.passed)
        lines.append("")
        lines.append(
            f"{'PASS' if self.passed else 'FAIL'}: "
            f"{len(self.results)} suite(s), {total} cell(s) compared, "
            f"{failed} drifted/missing")
        return "\n".join(lines)


def compare_cells(test: RegressionTest,
                  measured_cells: List[Dict[str, object]],
                  baseline_cells) -> List[CellResult]:
    """The uniform performance stage over one suite.

    Every baseline cell carrying a compared metric must be reproduced
    by a measured cell of the same identity, within the cell's recorded
    tolerance (fallback: the suite default).  Measured cells absent
    from the baseline come back as ``new`` — informational, so adding
    an axis never turns CI red before ``--record`` runs.
    """
    measured_by_key = {}
    for cell in measured_cells:
        keys = {k: str(cell[k]) for k in
                ("suite", "backend", "device", "config", "layout",
                 "precision", "scenario") if k in cell}
        measured_by_key[cell_key(keys)] = (keys, cell)
    results: List[CellResult] = []
    matched = set()
    for ref_cell in baseline_cells:
        metrics = [m for m in test.compared_metrics
                   if m in ref_cell.metrics]
        if not metrics:
            continue            # context-only cell (e.g. efficiencies)
        tolerance = ref_cell.tolerance \
            if ref_cell.tolerance is not None else test.default_tolerance
        identity = ref_cell.identity
        hit = measured_by_key.get(identity)
        if hit is not None:
            matched.add(identity)
        for metric in metrics:
            reference = ref_cell.metrics[metric]
            measured = None if hit is None \
                else hit[1].get("metrics", {}).get(metric)
            if measured is None:
                results.append(CellResult(
                    keys=dict(ref_cell.keys), metric=metric,
                    measured=None, reference=reference,
                    tolerance=tolerance, status=MISSING))
                continue
            ok = within_tolerance(float(measured), float(reference),
                                  tolerance)
            results.append(CellResult(
                keys=dict(ref_cell.keys), metric=metric,
                measured=float(measured), reference=float(reference),
                tolerance=tolerance, status=OK if ok else DRIFT))
    for identity, (keys, cell) in measured_by_key.items():
        if identity in matched:
            continue
        for metric in test.compared_metrics:
            measured = cell.get("metrics", {}).get(metric)
            if measured is None:
                continue
            results.append(CellResult(
                keys=keys, metric=metric, measured=float(measured),
                reference=None,
                tolerance=float(cell.get("tolerance",
                                         test.default_tolerance)),
                status=NEW))
    return results


def run_suite(test: RegressionTest,
              n: Optional[int] = None) -> SuiteResult:
    """Run one suite's sanity + performance stages."""
    if not test.regressable:
        return SuiteResult(test.suite,
                           skipped="host-dependent, never regressed")
    result = SuiteResult(test.suite)
    try:
        artifact = test.run(n=n)
        cells = test.cells(artifact)
        result.sanity = test.sanity(artifact, cells)
    except Exception as exc:       # a crashed suite is a failed suite
        result.error = f"{type(exc).__name__}: {exc}"
        return result
    if not test.has_baseline:
        return result
    baseline = load_baseline(test.suite, test.directory)
    if baseline is None or baseline.latest is None:
        result.error = (f"no committed baseline "
                        f"(record one: repro bench {test.suite} "
                        f"--record)")
        return result
    result.cells = compare_cells(test, cells, baseline.latest.cells)
    return result


def run_regression(test_filter: Optional[TestFilter] = None,
                   directory=None, n: Optional[int] = None,
                   suites: Optional[List[str]] = None,
                   progress=None) -> RegressionReport:
    """Run the declared matrix (optionally filtered) and report.

    ``suites`` pins an explicit suite list (``repro bench fusion
    --regress``); ``test_filter`` then still applies on top.
    ``progress`` is an optional callable fed one line per suite.
    """
    if suites is not None:
        tests = [get_suite(name, directory=directory)
                 for name in suites]
    else:
        tests = all_suites(directory=directory)
    if test_filter is not None:
        tests = [t for t in tests if test_filter.matches(t)]
    report = RegressionReport()
    for test in tests:
        if progress is not None:
            progress(f"[{test.suite}] running "
                     f"({'baseline' if test.has_baseline else 'sanity'}"
                     f" suite)")
        report.results.append(run_suite(test, n=n))
    return report


def record_suite(test: RegressionTest, n: Optional[int] = None):
    """Run one suite and append its cells as a new v1 snapshot.

    Returns ``(path, artifact)`` so the caller can still render the
    artefact it just recorded.
    """
    from ..errors import ConfigurationError
    if not test.has_baseline:
        raise ConfigurationError(
            f"suite {test.suite!r} records no baseline "
            f"(sanity-only or host-dependent)")
    artifact = test.run(n=n)
    cells = test.cells(artifact)
    path = append_snapshot(test.suite, cells, artifact.n_particles,
                           directory=test.directory,
                           params=artifact.params)
    return path, artifact


def render_listing(test_filter: Optional[TestFilter] = None,
                   directory=None) -> str:
    """The ``repro bench --list`` table."""
    from ..bench.tables import format_table
    tests = all_suites(directory=directory)
    if test_filter is not None:
        tests = [t for t in tests if test_filter.matches(t)]
    rows = []
    for test in tests:
        baseline = load_baseline(test.suite, test.directory) \
            if test.has_baseline else None
        if not test.has_baseline:
            ref = "sanity-only"
        elif baseline is None or baseline.latest is None:
            ref = "NOT RECORDED"
        else:
            ref = (f"{len(baseline.snapshots)} snapshot(s), "
                   f"n={baseline.latest.n_particles}")
        axes = " x ".join(f"{name}({len(values)})"
                          for name, values in test.parameters.items())
        rows.append([test.suite,
                     ",".join(sorted(test.tags)),
                     ",".join(test.devices), axes or "-", ref,
                     test.descr])
    return format_table(
        ["suite", "tags", "devices", "axes", "baseline", "description"],
        rows, "Declared regression suites (repro bench <suite>)")
