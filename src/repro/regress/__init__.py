"""Declarative regression farm over the committed benchmark baselines.

One ``repro bench`` API over every committed reference: suites are
declared as :class:`~repro.regress.base.RegressionTest` objects
(ReFrame's run-only pattern — validity filters, a sanity stage, a
performance stage with per-cell references ± tolerance), the committed
``benchmarks/BENCH_*.json`` files carry the references in one
versioned schema (:mod:`repro.regress.baseline`), and
:func:`~repro.regress.runner.run_regression` drives the whole matrix
and renders the per-cell diff.

This package owns the repo's single tolerance-comparison code path:
:func:`~repro.regress.base.within_tolerance`.
"""

from .base import (RegressionTest, SanityCheck, TestFilter, cell_key,
                   cell_label, parse_filter, relative_drift,
                   within_tolerance)
from .baseline import (SCHEMA_VERSION, Baseline, BaselineCell,
                       BaselineSnapshot, append_snapshot,
                       backend_of_device, baseline_path, baseline_suites,
                       load_baseline, migrate_document, write_baseline)
from .runner import (CellResult, RegressionReport, SuiteResult,
                     compare_cells, record_suite, render_listing,
                     run_regression, run_suite)
from .suites import SUITES, all_suites, get_suite

__all__ = [
    "within_tolerance", "relative_drift", "cell_key", "cell_label",
    "RegressionTest", "SanityCheck", "TestFilter", "parse_filter",
    "SCHEMA_VERSION", "Baseline", "BaselineCell", "BaselineSnapshot",
    "backend_of_device", "baseline_path", "baseline_suites",
    "load_baseline", "write_baseline", "append_snapshot",
    "migrate_document",
    "CellResult", "SuiteResult", "RegressionReport", "compare_cells",
    "run_suite", "run_regression", "record_suite", "render_listing",
    "SUITES", "get_suite", "all_suites",
]
