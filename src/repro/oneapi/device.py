"""Simulated device descriptors.

A :class:`DeviceDescriptor` carries everything the cost model needs to
time a kernel on a device: compute topology (units, threads, NUMA
domains), clocks, per-unit SIMD throughput, and the memory system
(per-domain DRAM bandwidth, cross-domain interconnect, per-core
bandwidth limits, access-granularity for coalescing analysis).

The concrete descriptors for the paper's hardware (Table 1: 2x Xeon
Platinum 8260L, Intel P630, Iris Xe Max) live in
:mod:`repro.bench.calibration`, together with the justification of
every number.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..fp import Precision

__all__ = ["DeviceType", "DeviceDescriptor"]


class DeviceType(enum.Enum):
    """Kind of compute device."""

    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class DeviceDescriptor:
    """Static hardware description used by the cost model.

    Attributes:
        name: Display name ("2x Xeon Platinum 8260L", ...).
        device_type: CPU or GPU.
        compute_units: Physical cores (CPU) or execution units (GPU),
            total across all domains.
        threads_per_unit: Hardware threads per unit (2 with
            hyperthreading; 7 on Gen9 EUs).
        numa_domains: Memory domains (CPU sockets; 1 for the GPUs here).
        clock_hz: Sustained all-core/EU clock under vector load [Hz].
        flops_per_cycle_sp: Peak single-precision flops per unit per
            cycle (e.g. 2 AVX-512 FMA ports x 16 lanes x 2 = 64 on
            Cascade Lake; 16 on a Gen9 EU).
        dp_throughput_ratio: Double- to single-precision throughput
            ratio (0.5 for native DP; ~0.03 when DP is emulated, as on
            Iris Xe Max).
        vector_efficiency: Fraction of peak vector throughput the
            compiled pusher loop achieves (calibration constant; real
            loops never reach peak because of dependency chains and
            non-FMA operations).
        domain_bandwidth: Achievable DRAM bandwidth of one NUMA domain
            [bytes/s] (STREAM-like, not the theoretical peak).
        interconnect_bandwidth: Achievable cross-domain (UPI) bandwidth
            [bytes/s], all links combined; irrelevant when
            ``numa_domains == 1``.
        unit_bandwidth: Bandwidth one unit can extract by itself
            [bytes/s] (line-fill-buffer limited on CPUs); this is what
            makes low-core-count runs compute the Fig. 1 shape.
        smt_bandwidth_boost: Multiplier on ``unit_bandwidth`` when both
            hardware threads of a unit are active (latency hiding; >1).
        smt_domain_efficiency: Fraction of ``domain_bandwidth``
            achievable with only one thread per unit — even a full
            socket of single-threaded cores keeps fewer memory requests
            in flight than with SMT, which is why the paper finds 96
            threads on 48 cores "empirically the best".  1.0 disables
            the effect (GPUs).
        access_granularity: Memory transaction size [bytes] used by the
            coalescing model (cache line / GPU transaction).
        cache_per_domain: Last-level cache per domain [bytes]; working
            sets below this are considered cache-resident.
        write_allocate: Whether a streaming store still reads the line
            first (true for ordinary stores on these CPUs/GPUs); makes
            a write cost 2x its bytes.
        kernel_launch_overhead: Fixed host-side cost per kernel launch
            [s] (SYCL runtime submission, barriers).
        jit_compile_seconds: One-off cost of the first launch of each
            kernel (SPIR-V to ISA JIT).
        host_transfer_bandwidth: Host<->device copy bandwidth [bytes/s]
            used by the buffer/accessor model.  Effectively infinite
            for CPUs and integrated GPUs sharing host DRAM; PCIe-bound
            for discrete cards (the Iris Xe Max).
        model: Hardware model identity shared by all cards of the same
            kind.  A :class:`~repro.distributed.DeviceGroup` renames
            its member copies ("Iris Xe Max #1"), but a JIT-compiled
            program is valid on every card of the model, so program
            caching keys on :attr:`jit_key`, which prefers this field.
            Empty means "the name is the model" (the single-device
            case).
        backend: Name of the runtime backend that owns this device
            (see :mod:`repro.backends`).  Program-cache keys carry it
            so a kernel chain compiled by one backend is never a warm
            hit for another — a SPIR-V program and a cubin are
            different artefacts even for the same chain.
    """

    name: str
    device_type: DeviceType
    compute_units: int
    threads_per_unit: int
    numa_domains: int
    clock_hz: float
    flops_per_cycle_sp: float
    dp_throughput_ratio: float
    vector_efficiency: float
    domain_bandwidth: float
    interconnect_bandwidth: float
    unit_bandwidth: float
    smt_bandwidth_boost: float
    smt_domain_efficiency: float = 1.0
    access_granularity: int = 64
    cache_per_domain: float = 32.0e6
    write_allocate: bool = True
    kernel_launch_overhead: float = 5.0e-6
    jit_compile_seconds: float = 0.15
    host_transfer_bandwidth: float = 1.0e15
    model: str = ""
    backend: str = "oneapi"

    def __post_init__(self) -> None:
        if self.compute_units < 1:
            raise ConfigurationError(f"compute_units must be >= 1, "
                                     f"got {self.compute_units}")
        if self.numa_domains < 1:
            raise ConfigurationError(f"numa_domains must be >= 1, "
                                     f"got {self.numa_domains}")
        if self.compute_units % self.numa_domains != 0:
            raise ConfigurationError(
                f"compute_units ({self.compute_units}) must divide evenly "
                f"into numa_domains ({self.numa_domains})")
        if self.threads_per_unit < 1:
            raise ConfigurationError(f"threads_per_unit must be >= 1, "
                                     f"got {self.threads_per_unit}")
        for attr in ("clock_hz", "flops_per_cycle_sp", "domain_bandwidth",
                     "unit_bandwidth"):
            if getattr(self, attr) <= 0.0:
                raise ConfigurationError(f"{attr} must be positive")
        if not 0.0 < self.vector_efficiency <= 1.0:
            raise ConfigurationError(
                f"vector_efficiency must be in (0, 1], "
                f"got {self.vector_efficiency}")
        if not 0.0 < self.dp_throughput_ratio <= 1.0:
            raise ConfigurationError(
                f"dp_throughput_ratio must be in (0, 1], "
                f"got {self.dp_throughput_ratio}")

    @property
    def jit_key(self) -> str:
        """Program-cache identity: the model when set, else the name."""
        return self.model or self.name

    @property
    def units_per_domain(self) -> int:
        """Compute units in each NUMA domain."""
        return self.compute_units // self.numa_domains

    @property
    def max_threads(self) -> int:
        """Total hardware threads on the device."""
        return self.compute_units * self.threads_per_unit

    @property
    def total_bandwidth(self) -> float:
        """Aggregate DRAM bandwidth across all domains [bytes/s]."""
        return self.domain_bandwidth * self.numa_domains

    def peak_flops(self, precision: Precision) -> float:
        """Theoretical peak flops of the whole device at a precision."""
        sp = self.compute_units * self.clock_hz * self.flops_per_cycle_sp
        if precision is Precision.SINGLE:
            return sp
        return sp * self.dp_throughput_ratio

    def achievable_flops(self, precision: Precision, units: int) -> float:
        """Flops the pusher loop can sustain on ``units`` compute units."""
        if not 1 <= units <= self.compute_units:
            raise ConfigurationError(
                f"units must be in [1, {self.compute_units}], got {units}")
        per_unit = self.clock_hz * self.flops_per_cycle_sp \
            * self.vector_efficiency
        if precision is Precision.DOUBLE:
            per_unit *= self.dp_throughput_ratio
        return per_unit * units

    def domain_of_unit(self, unit: int) -> int:
        """NUMA domain that compute unit ``unit`` belongs to.

        Units are numbered domain-major: units ``[0, units_per_domain)``
        are domain 0, and so on — matching how cores are enumerated and
        pinned on the real machines.
        """
        if not 0 <= unit < self.compute_units:
            raise ConfigurationError(
                f"unit {unit} out of range [0, {self.compute_units})")
        return unit // self.units_per_domain
