"""Bridging kernels to the simulated runtime: spec builders and runners.

Builds :class:`~repro.oneapi.kernelspec.KernelSpec` objects for the
Boris push under the paper's two scenarios, in either layout and
precision, and provides :class:`PushEngine`, which drives the *real*
numpy kernels through a :class:`~repro.oneapi.queue.Queue` so each
step produces both physics and a simulated launch time.

Two spec flavours:

* *bound* specs (:func:`build_push_spec`) reference the live USM
  allocations of an actual ensemble, enabling genuine first-touch NUMA
  accounting while the kernels run;
* *virtual* specs (:func:`build_virtual_push_spec`) describe the
  paper's full 1e7-particle working set without allocating it — used
  by the table/figure harnesses where only timing matters.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.kernels import (BORIS_FLOPS, DIAGNOSTIC_FLOPS,
                            FIELD_STAGE_FLOPS, GAMMA_FLOPS, POSITION_FLOPS,
                            boris_push_analytical, boris_push_precalculated,
                            kinetic_energy_diagnostic, sample_fields)
from ..errors import ConfigurationError
from ..fields.base import FieldSource
from ..fields.precalculated import PrecalculatedField
from ..fp import Precision
from ..observability.tracer import trace_span
from ..resilience.faults import active_fault_injector
from ..particles.ensemble import Layout, ParticleEnsemble
from .graph import GraphExecutor, KernelGraph, KernelNode
from .kernelspec import KernelSpec, MemoryStream, StreamKind
from .memory import UsmMemoryManager
from .queue import KernelLaunchRecord, Queue

__all__ = ["PUSH_FLOPS", "build_push_spec", "build_virtual_push_spec",
           "build_field_eval_spec", "build_diagnostics_spec",
           "build_virtual_field_eval_spec", "build_virtual_diagnostics_spec",
           "build_virtual_step_graph", "PushEngine"]

#: Arithmetic of the Boris push per particle-step (single-precision
#: equivalent flops): momentum update + two gamma evaluations +
#: position drift.
PUSH_FLOPS = BORIS_FLOPS + 2 * GAMMA_FLOPS + POSITION_FLOPS

#: Scenario labels (the paper's two benchmark problems).
PRECALCULATED = "precalculated"
ANALYTICAL = "analytical"
SCENARIOS = (PRECALCULATED, ANALYTICAL)

#: Components the push kernel reads and writes in SoA layout.
_SOA_READ_WRITE = ("x", "y", "z", "px", "py", "pz")


def _check_scenario(scenario: str) -> None:
    if scenario not in SCENARIOS:
        raise ConfigurationError(
            f"scenario must be one of {SCENARIOS}, got {scenario!r}")


def _particle_streams(layout: Layout, precision: Precision,
                      n: int, memory: Optional[UsmMemoryManager],
                      ensemble: Optional[ParticleEnsemble]):
    """Memory streams for the particle data in the given layout."""
    fp = precision.itemsize
    streams = []
    if layout is Layout.AOS:
        if ensemble is not None and memory is not None:
            allocation = memory.register(ensemble.records,  # type: ignore[attr-defined]
                                         name="particles-aos")
        elif memory is not None:
            allocation = memory.virtual(
                n * precision.particle_bytes_aligned, name="particles-aos")
        else:
            allocation = None
        streams.append(MemoryStream(
            name="particles-aos", kind=StreamKind.READ_WRITE,
            bytes_per_item=precision.particle_bytes,
            span_bytes_per_item=precision.particle_bytes_aligned,
            contiguous=False, allocation=allocation))
        return streams

    def alloc(name, component, nbytes):
        if ensemble is not None and memory is not None:
            return memory.register(ensemble.component(component)
                                   if component != "type"
                                   else ensemble.type_ids, name=name)
        if memory is not None:
            return memory.virtual(nbytes, name=name)
        return None

    for component in _SOA_READ_WRITE:
        streams.append(MemoryStream(
            name=f"soa-{component}", kind=StreamKind.READ_WRITE,
            bytes_per_item=fp, contiguous=True,
            allocation=alloc(f"soa-{component}", component, n * fp)))
    streams.append(MemoryStream(
        name="soa-gamma", kind=StreamKind.WRITE, bytes_per_item=fp,
        contiguous=True,
        allocation=alloc("soa-gamma", "gamma", n * fp)))
    streams.append(MemoryStream(
        name="soa-type", kind=StreamKind.READ, bytes_per_item=2,
        contiguous=True, allocation=alloc("soa-type", "type", n * 2)))
    return streams


def _field_streams(layout: Layout, precision: Precision, n: int,
                   memory: Optional[UsmMemoryManager],
                   precalc: Optional[PrecalculatedField]):
    """Memory streams for the precalculated field arrays."""
    fp = precision.itemsize
    if layout is Layout.AOS:
        if precalc is not None and memory is not None:
            # The AoS PrecalculatedField stores one structured array.
            allocation = memory.register(precalc.component("ex"),
                                         name="fields-aos")
        elif memory is not None:
            allocation = memory.virtual(n * 6 * fp, name="fields-aos")
        else:
            allocation = None
        return [MemoryStream(
            name="fields-aos", kind=StreamKind.READ,
            bytes_per_item=6 * fp, span_bytes_per_item=6 * fp,
            contiguous=False, allocation=allocation)]
    streams = []
    for component in ("ex", "ey", "ez", "bx", "by", "bz"):
        if precalc is not None and memory is not None:
            allocation = memory.register(precalc.component(component),
                                         name=f"fields-{component}")
        elif memory is not None:
            allocation = memory.virtual(n * fp, name=f"fields-{component}")
        else:
            allocation = None
        streams.append(MemoryStream(
            name=f"fields-{component}", kind=StreamKind.READ,
            bytes_per_item=fp, contiguous=True, allocation=allocation))
    return streams


def build_push_spec(ensemble: ParticleEnsemble, scenario: str,
                    memory: UsmMemoryManager,
                    precalc: Optional[PrecalculatedField] = None,
                    field_flops: float = 0.0) -> KernelSpec:
    """Kernel spec for the Boris push bound to a live ensemble.

    For the precalculated scenario pass the matching ``precalc`` array;
    for the analytical scenario pass the source's
    ``flops_per_evaluation`` as ``field_flops``.
    """
    _check_scenario(scenario)
    layout = ensemble.layout
    precision = ensemble.precision
    streams = _particle_streams(layout, precision, ensemble.size,
                                memory, ensemble)
    flops = float(PUSH_FLOPS)
    if scenario == PRECALCULATED:
        if precalc is None:
            raise ConfigurationError(
                "precalculated scenario needs the precalc field array")
        if precalc.layout is not layout or precalc.size != ensemble.size:
            raise ConfigurationError(
                "precalc array must match the ensemble's layout and size")
        streams += _field_streams(layout, precision, ensemble.size,
                                  memory, precalc)
    else:
        flops += float(field_flops)
    name = f"boris-{scenario}-{layout.value}-{precision.value}"
    return KernelSpec(name=name, streams=tuple(streams),
                      flops_per_item=flops)


def build_virtual_push_spec(n: int, layout: Layout, precision: Precision,
                            scenario: str,
                            memory: Optional[UsmMemoryManager],
                            field_flops: float = 0.0) -> KernelSpec:
    """Kernel spec over *virtual* allocations of ``n`` particles.

    Used to model the paper's 1e7-particle runs without allocating the
    arrays; first-touch NUMA accounting still works because virtual
    allocations carry page state.  ``memory=None`` drops even the
    virtual allocations (no page state): a pure traffic/flop
    description, enough for the planning estimators and the autotuner.
    """
    _check_scenario(scenario)
    streams = _particle_streams(layout, precision, n, memory, None)
    flops = float(PUSH_FLOPS)
    if scenario == PRECALCULATED:
        streams += _field_streams(layout, precision, n, memory, None)
    else:
        flops += float(field_flops)
    name = f"boris-{scenario}-{layout.value}-{precision.value}"
    return KernelSpec(name=name, streams=tuple(streams),
                      flops_per_item=flops)


def _field_stream_names(layout: Layout) -> tuple:
    """Names of the per-particle field streams in the given layout."""
    if layout is Layout.AOS:
        return ("fields-aos",)
    return tuple(f"fields-{c}" for c in ("ex", "ey", "ez", "bx", "by", "bz"))


def build_virtual_field_eval_spec(n: int, layout: Layout,
                                  precision: Precision,
                                  scenario: str,
                                  field_flops: float = 0.0) -> KernelSpec:
    """Allocation-free twin of :func:`build_field_eval_spec`.

    Same stream names, kinds, sizes and flops as the bound spec the
    graph path launches — so a fusion pass planning over it makes the
    same decisions — but without an ensemble or memory manager.
    """
    _check_scenario(scenario)
    fp = precision.itemsize
    streams: List[MemoryStream] = []
    if layout is Layout.AOS:
        streams.append(MemoryStream(
            name="particles-aos", kind=StreamKind.READ,
            bytes_per_item=precision.particle_bytes,
            span_bytes_per_item=precision.particle_bytes_aligned,
            contiguous=False))
    else:
        for component in ("x", "y", "z"):
            streams.append(MemoryStream(
                name=f"soa-{component}", kind=StreamKind.READ,
                bytes_per_item=fp, contiguous=True))
    for stream in _field_streams(layout, precision, n, None, None):
        streams.append(MemoryStream(
            name=stream.name, kind=StreamKind.WRITE,
            bytes_per_item=stream.bytes_per_item,
            span_bytes_per_item=stream.span_bytes_per_item,
            contiguous=stream.contiguous))
    name = f"field-eval-{scenario}-{layout.value}-{precision.value}"
    return KernelSpec(name=name, streams=tuple(streams),
                      flops_per_item=(float(FIELD_STAGE_FLOPS)
                                      + float(field_flops)))


def build_virtual_diagnostics_spec(layout: Layout,
                                   precision: Precision) -> KernelSpec:
    """Allocation-free twin of :func:`build_diagnostics_spec`."""
    fp = precision.itemsize
    if layout is Layout.AOS:
        gamma = MemoryStream(
            name="particles-aos", kind=StreamKind.READ,
            bytes_per_item=precision.particle_bytes,
            span_bytes_per_item=precision.particle_bytes_aligned,
            contiguous=False)
    else:
        gamma = MemoryStream(name="soa-gamma", kind=StreamKind.READ,
                             bytes_per_item=fp, contiguous=True)
    energy = MemoryStream(name="diag-energy", kind=StreamKind.WRITE,
                          bytes_per_item=fp, contiguous=True)
    return KernelSpec(name=f"diag-energy-{layout.value}-{precision.value}",
                      streams=(gamma, energy),
                      flops_per_item=float(DIAGNOSTIC_FLOPS))


def build_virtual_step_graph(n: int, layout: Layout, precision: Precision,
                             scenario: str, field_flops: float = 0.0,
                             diagnostics: bool = False) -> KernelGraph:
    """Timing-only :class:`KernelGraph` of one graph-mode push step.

    Mirrors :meth:`PushEngine.record_graph` without constructing an
    engine: the same node order (field-eval, push, optional
    diagnostics), the same stream declarations and the same transient
    flags, but with no bodies and no allocations.  The autotuner plans
    fusion over this graph and prices its groups exactly as the
    executor would launch them.

    ``field_flops`` is the analytical source's per-particle evaluation
    cost (``flops_per_evaluation``); pass 0 for the precalculated
    scenario, as the engine does.
    """
    _check_scenario(scenario)
    graph = KernelGraph()
    graph.add(KernelNode(
        spec=build_virtual_field_eval_spec(n, layout, precision, scenario,
                                           field_flops=field_flops),
        n_items=n, layout=layout.value, precision=precision,
        transient=frozenset(_field_stream_names(layout)),
        tag="field-eval"))
    graph.add(KernelNode(
        spec=build_virtual_push_spec(n, layout, precision, PRECALCULATED,
                                     None),
        n_items=n, layout=layout.value, precision=precision, tag="push"))
    if diagnostics:
        graph.add(KernelNode(
            spec=build_virtual_diagnostics_spec(layout, precision),
            n_items=n, layout=layout.value, precision=precision,
            tag="diagnostics"))
    return graph


def build_field_eval_spec(ensemble: ParticleEnsemble,
                          precalc: PrecalculatedField,
                          memory: UsmMemoryManager,
                          field_flops: float = 0.0,
                          scenario: str = PRECALCULATED) -> KernelSpec:
    """Kernel spec of the field-evaluation graph node.

    Reads the particle positions, writes the six per-particle field
    components of ``precalc``.  ``field_flops`` is the per-particle
    evaluation cost (the source's ``flops_per_evaluation`` in the
    analytical scenario; ~0 for the precalculated scenario, where the
    values are given and the node is pure staging traffic).

    The position streams are declared exactly as the push node declares
    them (same names, sizes, access shape) so the fusion pass can merge
    the two nodes; the field streams are declared ``WRITE`` here and
    ``READ`` by the push — the pair fusion elides.
    """
    layout = ensemble.layout
    precision = ensemble.precision
    fp = precision.itemsize
    streams: List[MemoryStream] = []
    if layout is Layout.AOS:
        # The record stream is declared with the full particle span,
        # like the push node: reading three position members pulls the
        # whole cache-line-spanning record anyway, and identical
        # declarations are what makes the streams mergeable.
        allocation = memory.register(ensemble.records,  # type: ignore[attr-defined]
                                     name="particles-aos")
        streams.append(MemoryStream(
            name="particles-aos", kind=StreamKind.READ,
            bytes_per_item=precision.particle_bytes,
            span_bytes_per_item=precision.particle_bytes_aligned,
            contiguous=False, allocation=allocation))
    else:
        for component in ("x", "y", "z"):
            streams.append(MemoryStream(
                name=f"soa-{component}", kind=StreamKind.READ,
                bytes_per_item=fp, contiguous=True,
                allocation=memory.register(ensemble.component(component),
                                           name=f"soa-{component}")))
    for stream in _field_streams(layout, precision, ensemble.size,
                                 memory, precalc):
        streams.append(MemoryStream(
            name=stream.name, kind=StreamKind.WRITE,
            bytes_per_item=stream.bytes_per_item,
            span_bytes_per_item=stream.span_bytes_per_item,
            contiguous=stream.contiguous, allocation=stream.allocation))
    _check_scenario(scenario)
    name = f"field-eval-{scenario}-{layout.value}-{precision.value}"
    return KernelSpec(name=name, streams=tuple(streams),
                      flops_per_item=float(FIELD_STAGE_FLOPS) + float(field_flops))


def build_diagnostics_spec(ensemble: ParticleEnsemble,
                           memory: UsmMemoryManager,
                           out: np.ndarray) -> KernelSpec:
    """Kernel spec of the kinetic-energy diagnostics graph node.

    Reads the gamma component the push stored, writes the per-particle
    energy array ``out`` — elementwise, so it fuses onto the push.
    """
    precision = ensemble.precision
    fp = precision.itemsize
    if ensemble.layout is Layout.AOS:
        gamma = MemoryStream(
            name="particles-aos", kind=StreamKind.READ,
            bytes_per_item=precision.particle_bytes,
            span_bytes_per_item=precision.particle_bytes_aligned,
            contiguous=False,
            allocation=memory.register(ensemble.records,  # type: ignore[attr-defined]
                                       name="particles-aos"))
    else:
        gamma = MemoryStream(
            name="soa-gamma", kind=StreamKind.READ, bytes_per_item=fp,
            contiguous=True,
            allocation=memory.register(ensemble.component("gamma"),
                                       name="soa-gamma"))
    energy = MemoryStream(
        name="diag-energy", kind=StreamKind.WRITE, bytes_per_item=fp,
        contiguous=True, allocation=memory.register(out, name="diag-energy"))
    name = f"diag-energy-{ensemble.layout.value}-{precision.value}"
    return KernelSpec(name=name, streams=(gamma, energy),
                      flops_per_item=float(DIAGNOSTIC_FLOPS))


class PushEngine:
    """Drives real Boris steps through a queue.

    Two execution paths share the same physics:

    * **legacy** (``fusion=None``, the default): one timed launch per
      step, exactly the paper's harness — in the precalculated scenario
      the field refresh happens *untimed* between launches.
    * **kernel graph** (``fusion=True``/``False``): each step is
      recorded as a :class:`~repro.oneapi.graph.KernelGraph` — a timed
      field-eval node staging the six per-particle field components,
      the push node loading them, and (with ``diagnostics=True``) a
      kinetic-energy node — and executed through a
      :class:`~repro.oneapi.graph.GraphExecutor`.  With ``fusion=True``
      the cost-model-driven pass merges the nodes, eliding the staged
      field arrays; with ``False`` every node launches separately (the
      fusion baseline).  Both run identical kernel bodies in identical
      order, so fused and unfused state is bit-identical.

    Args:
        queue: The simulated queue (device + runtime + scheduling).
        ensemble: The particle ensemble to advance.
        scenario: "precalculated" or "analytical".
        source: The analytical field source (evaluated in-kernel in the
            analytical scenario; sampled into the precalculated array
            in the precalculated scenario).
        dt: Time step [s].
        fusion: None = legacy single-launch path; True/False = graph
            path with the fusion pass on/off.
        diagnostics: Record the kinetic-energy node (graph path only).
    """

    def __init__(self, queue: Queue, ensemble: ParticleEnsemble,
                 scenario: str, source: FieldSource, dt: float,
                 fusion: Optional[bool] = None,
                 diagnostics: bool = False) -> None:
        _check_scenario(scenario)
        self.queue = queue
        self.ensemble = ensemble
        self.scenario = scenario
        self.source = source
        self.dt = float(dt)
        self.time = 0.0
        self.fusion = fusion
        self.diagnostics = bool(diagnostics)
        #: Simulated seconds of each completed step — in graph mode a
        #: step can span several launches, so per-record NSPS would
        #: undercount it; consumers (the facade, the fusion bench)
        #: average this instead.
        self.step_seconds: List[float] = []
        self.executor: Optional[GraphExecutor] = None
        self.diag_energy: Optional[np.ndarray] = None
        if fusion is None:
            if scenario == PRECALCULATED:
                self.precalc: Optional[PrecalculatedField] = \
                    PrecalculatedField(ensemble.size, ensemble.precision,
                                       ensemble.layout)
                self.spec = build_push_spec(ensemble, scenario, queue.memory,
                                            precalc=self.precalc)
            else:
                self.precalc = None
                self.spec = build_push_spec(
                    ensemble, scenario, queue.memory,
                    field_flops=source.flops_per_evaluation)
            return
        # Graph path: both scenarios stage fields through the
        # per-particle array; the scenarios differ only in the eval
        # node's arithmetic (staging vs m-dipole formulas).
        self.precalc = PrecalculatedField(ensemble.size, ensemble.precision,
                                          ensemble.layout)
        field_flops = (source.flops_per_evaluation
                       if scenario == ANALYTICAL else 0.0)
        self._field_spec = build_field_eval_spec(
            ensemble, self.precalc, queue.memory, field_flops=field_flops,
            scenario=scenario)
        self.spec = build_push_spec(ensemble, PRECALCULATED, queue.memory,
                                    precalc=self.precalc)
        if self.diagnostics:
            self.diag_energy = np.zeros(ensemble.size,
                                        dtype=ensemble.precision.dtype)
            self._diag_spec = build_diagnostics_spec(
                ensemble, queue.memory, self.diag_energy)
        self.executor = GraphExecutor(queue, fusion=bool(fusion))

    # -- graph recording ---------------------------------------------------

    def record_graph(self) -> KernelGraph:
        """Record this step's kernel graph (graph path only)."""
        ensemble = self.ensemble
        layout = ensemble.layout.value
        precision = ensemble.precision
        time_now = self.time
        graph = KernelGraph()
        graph.add(KernelNode(
            spec=self._field_spec, n_items=ensemble.size,
            body=lambda: sample_fields(self.precalc, self.source,
                                       ensemble, time_now),
            layout=layout, precision=precision,
            transient=frozenset(_field_stream_names(ensemble.layout)),
            tag="field-eval"))
        graph.add(KernelNode(
            spec=self.spec, n_items=ensemble.size,
            body=lambda: boris_push_precalculated(ensemble, self.precalc,
                                                  self.dt),
            layout=layout, precision=precision, tag="push"))
        if self.diagnostics:
            graph.add(KernelNode(
                spec=self._diag_spec, n_items=ensemble.size,
                body=lambda: kinetic_energy_diagnostic(ensemble,
                                                       self.diag_energy),
                layout=layout, precision=precision, tag="diagnostics"))
        return graph

    def step(self, depends_on=None) -> KernelLaunchRecord:
        """One timed push step (plus the untimed field refresh if any).

        ``depends_on`` (a list of :class:`~repro.oneapi.events.SimEvent`)
        orders the launch after other commands on an out-of-order queue
        — the sharded runner uses it to serialize a shard's successive
        pushes while letting exchange commands overlap them.

        Under an active tracer the step appears as a ``runner``-category
        span, with the untimed field refresh as a nested child — making
        visible the host work the simulated clock deliberately excludes.

        Under an active fault injector the step is a device-loss
        opportunity: the injector may kill the whole device here
        (:class:`~repro.errors.DeviceLostError`), *before* any particle
        state changes, so a fallback runner can resume cleanly.
        """
        injector = active_fault_injector()
        if injector is not None:
            injector.on_device_step(self.queue.device.name)
        with trace_span(f"push-step:{self.scenario}", "runner",
                        step_time=self.time):
            if self.executor is not None:
                records = self.executor.run(self.record_graph(),
                                            depends_on=depends_on)
                self.time += self.dt
                self.step_seconds.append(
                    sum(r.simulated_seconds for r in records))
                # The last record's event is the step's completion —
                # what dependency chaining (the sharded runner) needs.
                return records[-1]
            if self.precalc is not None:
                with trace_span("field-refresh", "runner"):
                    self.precalc.refresh(self.source, self.ensemble,
                                         self.time)

                def kernel() -> None:
                    boris_push_precalculated(self.ensemble, self.precalc,
                                             self.dt)
            else:
                time_now = self.time

                def kernel() -> None:
                    boris_push_analytical(self.ensemble, self.source,
                                          time_now, self.dt)
            record = self.queue.parallel_for(
                self.ensemble.size, self.spec, kernel=kernel,
                precision=self.ensemble.precision,
                depends_on=depends_on)
        self.time += self.dt
        self.step_seconds.append(record.simulated_seconds)
        return record

    def run(self, steps: int):
        """Run ``steps`` pushes; returns the list of launch records."""
        return [self.step() for _ in range(steps)]

    def queues(self) -> tuple:
        """Every queue this engine submits to (uniform across engines).

        The validation layer replays each returned queue's command log
        through the hazard detector; all three engines expose the same
        method so callers need not know the engine shape.
        """
        return (self.queue,)
