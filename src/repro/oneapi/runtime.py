"""Bridging kernels to the simulated runtime: spec builders and runners.

Builds :class:`~repro.oneapi.kernelspec.KernelSpec` objects for the
Boris push under the paper's two scenarios, in either layout and
precision, and provides :class:`PushRunner`, which drives the *real*
numpy kernels through a :class:`~repro.oneapi.queue.Queue` so each
step produces both physics and a simulated launch time.

Two spec flavours:

* *bound* specs (:func:`build_push_spec`) reference the live USM
  allocations of an actual ensemble, enabling genuine first-touch NUMA
  accounting while the kernels run;
* *virtual* specs (:func:`build_virtual_push_spec`) describe the
  paper's full 1e7-particle working set without allocating it — used
  by the table/figure harnesses where only timing matters.
"""

from __future__ import annotations

from typing import Optional

from ..core.kernels import (BORIS_FLOPS, GAMMA_FLOPS, POSITION_FLOPS,
                            boris_push_analytical, boris_push_precalculated)
from ..errors import ConfigurationError
from ..fields.base import FieldSource
from ..fields.precalculated import PrecalculatedField
from ..fp import Precision
from ..observability.tracer import trace_span
from ..resilience.faults import active_fault_injector
from ..particles.ensemble import Layout, ParticleEnsemble
from .kernelspec import KernelSpec, MemoryStream, StreamKind
from .memory import UsmMemoryManager
from .queue import KernelLaunchRecord, Queue

__all__ = ["PUSH_FLOPS", "build_push_spec", "build_virtual_push_spec",
           "PushRunner"]

#: Arithmetic of the Boris push per particle-step (single-precision
#: equivalent flops): momentum update + two gamma evaluations +
#: position drift.
PUSH_FLOPS = BORIS_FLOPS + 2 * GAMMA_FLOPS + POSITION_FLOPS

#: Scenario labels (the paper's two benchmark problems).
PRECALCULATED = "precalculated"
ANALYTICAL = "analytical"
SCENARIOS = (PRECALCULATED, ANALYTICAL)

#: Components the push kernel reads and writes in SoA layout.
_SOA_READ_WRITE = ("x", "y", "z", "px", "py", "pz")


def _check_scenario(scenario: str) -> None:
    if scenario not in SCENARIOS:
        raise ConfigurationError(
            f"scenario must be one of {SCENARIOS}, got {scenario!r}")


def _particle_streams(layout: Layout, precision: Precision,
                      n: int, memory: Optional[UsmMemoryManager],
                      ensemble: Optional[ParticleEnsemble]):
    """Memory streams for the particle data in the given layout."""
    fp = precision.itemsize
    streams = []
    if layout is Layout.AOS:
        if ensemble is not None and memory is not None:
            allocation = memory.register(ensemble.records,  # type: ignore[attr-defined]
                                         name="particles-aos")
        elif memory is not None:
            allocation = memory.virtual(
                n * precision.particle_bytes_aligned, name="particles-aos")
        else:
            allocation = None
        streams.append(MemoryStream(
            name="particles-aos", kind=StreamKind.READ_WRITE,
            bytes_per_item=precision.particle_bytes,
            span_bytes_per_item=precision.particle_bytes_aligned,
            contiguous=False, allocation=allocation))
        return streams

    def alloc(name, component, nbytes):
        if ensemble is not None and memory is not None:
            return memory.register(ensemble.component(component)
                                   if component != "type"
                                   else ensemble.type_ids, name=name)
        if memory is not None:
            return memory.virtual(nbytes, name=name)
        return None

    for component in _SOA_READ_WRITE:
        streams.append(MemoryStream(
            name=f"soa-{component}", kind=StreamKind.READ_WRITE,
            bytes_per_item=fp, contiguous=True,
            allocation=alloc(f"soa-{component}", component, n * fp)))
    streams.append(MemoryStream(
        name="soa-gamma", kind=StreamKind.WRITE, bytes_per_item=fp,
        contiguous=True,
        allocation=alloc("soa-gamma", "gamma", n * fp)))
    streams.append(MemoryStream(
        name="soa-type", kind=StreamKind.READ, bytes_per_item=2,
        contiguous=True, allocation=alloc("soa-type", "type", n * 2)))
    return streams


def _field_streams(layout: Layout, precision: Precision, n: int,
                   memory: Optional[UsmMemoryManager],
                   precalc: Optional[PrecalculatedField]):
    """Memory streams for the precalculated field arrays."""
    fp = precision.itemsize
    if layout is Layout.AOS:
        if precalc is not None and memory is not None:
            # The AoS PrecalculatedField stores one structured array.
            allocation = memory.register(precalc.component("ex"),
                                         name="fields-aos")
        elif memory is not None:
            allocation = memory.virtual(n * 6 * fp, name="fields-aos")
        else:
            allocation = None
        return [MemoryStream(
            name="fields-aos", kind=StreamKind.READ,
            bytes_per_item=6 * fp, span_bytes_per_item=6 * fp,
            contiguous=False, allocation=allocation)]
    streams = []
    for component in ("ex", "ey", "ez", "bx", "by", "bz"):
        if precalc is not None and memory is not None:
            allocation = memory.register(precalc.component(component),
                                         name=f"fields-{component}")
        elif memory is not None:
            allocation = memory.virtual(n * fp, name=f"fields-{component}")
        else:
            allocation = None
        streams.append(MemoryStream(
            name=f"fields-{component}", kind=StreamKind.READ,
            bytes_per_item=fp, contiguous=True, allocation=allocation))
    return streams


def build_push_spec(ensemble: ParticleEnsemble, scenario: str,
                    memory: UsmMemoryManager,
                    precalc: Optional[PrecalculatedField] = None,
                    field_flops: float = 0.0) -> KernelSpec:
    """Kernel spec for the Boris push bound to a live ensemble.

    For the precalculated scenario pass the matching ``precalc`` array;
    for the analytical scenario pass the source's
    ``flops_per_evaluation`` as ``field_flops``.
    """
    _check_scenario(scenario)
    layout = ensemble.layout
    precision = ensemble.precision
    streams = _particle_streams(layout, precision, ensemble.size,
                                memory, ensemble)
    flops = float(PUSH_FLOPS)
    if scenario == PRECALCULATED:
        if precalc is None:
            raise ConfigurationError(
                "precalculated scenario needs the precalc field array")
        if precalc.layout is not layout or precalc.size != ensemble.size:
            raise ConfigurationError(
                "precalc array must match the ensemble's layout and size")
        streams += _field_streams(layout, precision, ensemble.size,
                                  memory, precalc)
    else:
        flops += float(field_flops)
    name = f"boris-{scenario}-{layout.value}-{precision.value}"
    return KernelSpec(name=name, streams=tuple(streams),
                      flops_per_item=flops)


def build_virtual_push_spec(n: int, layout: Layout, precision: Precision,
                            scenario: str, memory: UsmMemoryManager,
                            field_flops: float = 0.0) -> KernelSpec:
    """Kernel spec over *virtual* allocations of ``n`` particles.

    Used to model the paper's 1e7-particle runs without allocating the
    arrays; first-touch NUMA accounting still works because virtual
    allocations carry page state.
    """
    _check_scenario(scenario)
    streams = _particle_streams(layout, precision, n, memory, None)
    flops = float(PUSH_FLOPS)
    if scenario == PRECALCULATED:
        streams += _field_streams(layout, precision, n, memory, None)
    else:
        flops += float(field_flops)
    name = f"boris-{scenario}-{layout.value}-{precision.value}"
    return KernelSpec(name=name, streams=tuple(streams),
                      flops_per_item=flops)


class PushRunner:
    """Drives real Boris steps through a queue, one launch per step.

    Args:
        queue: The simulated queue (device + runtime + scheduling).
        ensemble: The particle ensemble to advance.
        scenario: "precalculated" or "analytical".
        source: The analytical field source (used directly in the
            analytical scenario; used to refresh the precalculated
            array — untimed — in the precalculated scenario).
        dt: Time step [s].
    """

    def __init__(self, queue: Queue, ensemble: ParticleEnsemble,
                 scenario: str, source: FieldSource, dt: float) -> None:
        _check_scenario(scenario)
        self.queue = queue
        self.ensemble = ensemble
        self.scenario = scenario
        self.source = source
        self.dt = float(dt)
        self.time = 0.0
        if scenario == PRECALCULATED:
            self.precalc: Optional[PrecalculatedField] = \
                PrecalculatedField(ensemble.size, ensemble.precision,
                                   ensemble.layout)
            self.spec = build_push_spec(ensemble, scenario, queue.memory,
                                        precalc=self.precalc)
        else:
            self.precalc = None
            self.spec = build_push_spec(
                ensemble, scenario, queue.memory,
                field_flops=source.flops_per_evaluation)

    def step(self, depends_on=None) -> KernelLaunchRecord:
        """One timed push step (plus the untimed field refresh if any).

        ``depends_on`` (a list of :class:`~repro.oneapi.events.SimEvent`)
        orders the launch after other commands on an out-of-order queue
        — the sharded runner uses it to serialize a shard's successive
        pushes while letting exchange commands overlap them.

        Under an active tracer the step appears as a ``runner``-category
        span, with the untimed field refresh as a nested child — making
        visible the host work the simulated clock deliberately excludes.

        Under an active fault injector the step is a device-loss
        opportunity: the injector may kill the whole device here
        (:class:`~repro.errors.DeviceLostError`), *before* any particle
        state changes, so a fallback runner can resume cleanly.
        """
        injector = active_fault_injector()
        if injector is not None:
            injector.on_device_step(self.queue.device.name)
        with trace_span(f"push-step:{self.scenario}", "runner",
                        step_time=self.time):
            if self.precalc is not None:
                with trace_span("field-refresh", "runner"):
                    self.precalc.refresh(self.source, self.ensemble,
                                         self.time)

                def kernel() -> None:
                    boris_push_precalculated(self.ensemble, self.precalc,
                                             self.dt)
            else:
                time_now = self.time

                def kernel() -> None:
                    boris_push_analytical(self.ensemble, self.source,
                                          time_now, self.dt)
            record = self.queue.parallel_for(
                self.ensemble.size, self.spec, kernel=kernel,
                precision=self.ensemble.precision,
                depends_on=depends_on)
        self.time += self.dt
        return record

    def run(self, steps: int):
        """Run ``steps`` pushes; returns the list of launch records."""
        return [self.step() for _ in range(steps)]
