"""SYCL-like queue: submit kernels, get real results and simulated times.

A :class:`Queue` binds a simulated device, a cost model, a USM memory
manager and a scheduling policy.  ``parallel_for`` optionally executes a
real (vectorized numpy) kernel body — so the physics is genuine — while
the launch is *timed* by the cost model against the declared
:class:`~repro.oneapi.kernelspec.KernelSpec`.

The queue also models the two runtimes the paper compares:

* ``runtime="dpcpp"`` — TBB dynamic scheduling (or NUMA arenas when
  ``RuntimeConfig.cpu_places == "numa_domains"``, the paper's
  ``DPCPP_CPU_PLACES`` knob), kernel JIT on first launch;
* ``runtime="openmp"`` — the reference implementation: static
  scheduling, no JIT, no dynamic-runtime penalty.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError, KernelError
from ..fp import Precision
from ..observability.tracer import active_tracer
from ..resilience.faults import active_fault_injector
from .costmodel import CostModel, LaunchTiming
from .device import DeviceDescriptor, DeviceType
from .events import SimEvent, Timeline
from .kernelspec import KernelSpec
from .memory import UsmMemoryManager
from .programcache import ProgramCache, ProgramKey
from .scheduler import (DynamicScheduler, GpuScheduler, NumaArenaScheduler,
                        Scheduler, StaticScheduler, ThreadTopology)

__all__ = ["RuntimeConfig", "KernelLaunchRecord", "CommandRecord", "Queue"]

#: Value of the environment variable the paper sets for NUMA arenas.
NUMA_DOMAINS = "numa_domains"

#: Sequence numbers distinguishing trace tracks of queues that share a
#: device (each queue owns one simulated-timeline row in a trace).
_QUEUE_SEQ = itertools.count()


@dataclass
class RuntimeConfig:
    """Launch-time configuration of a queue.

    Attributes:
        runtime: "dpcpp" or "openmp" (the reference parallelisation).
        cpu_places: "" or "numa_domains" — mirrors the
            ``DPCPP_CPU_PLACES`` environment variable; only meaningful
            for the dpcpp runtime on CPUs.
        units: Compute units (cores) to use; None = all.
        threads_per_unit: Hardware threads per unit; None = all
            (hyperthreading on).
        scheduler: Explicit scheduler override (None = derive from the
            other fields).
        in_order: Queue ordering semantics.  True serializes launches
            (``sycl::queue{property::queue::in_order{}}`` — the
            pattern the paper's port uses); False (DPC++'s default)
            lets independent launches overlap on the simulated
            timeline, ordered only by explicit ``depends_on`` events.
    """

    runtime: str = "dpcpp"
    cpu_places: str = ""
    units: Optional[int] = None
    threads_per_unit: Optional[int] = None
    scheduler: Optional[Scheduler] = None
    in_order: bool = True

    def __post_init__(self) -> None:
        if self.runtime not in ("dpcpp", "openmp"):
            raise ConfigurationError(
                f"runtime must be 'dpcpp' or 'openmp', got {self.runtime!r}")
        if self.cpu_places not in ("", NUMA_DOMAINS):
            raise ConfigurationError(
                f"cpu_places must be '' or {NUMA_DOMAINS!r}, "
                f"got {self.cpu_places!r}")


@dataclass
class KernelLaunchRecord:
    """One completed launch: what ran, on how many items, how long."""

    kernel_name: str
    n_items: int
    precision: Precision
    timing: LaunchTiming
    #: Timeline placement (filled by the queue at submission).
    event: Optional[SimEvent] = None

    @property
    def simulated_seconds(self) -> float:
        """Total simulated wall time of the launch."""
        return self.timing.total_seconds

    def nsps(self) -> float:
        """Simulated nanoseconds per item for this launch."""
        return self.timing.nsps(self.n_items)


@dataclass(frozen=True)
class CommandRecord:
    """One entry of a queue's command log: what a command touched.

    The log is the evidence the hazard detector
    (:mod:`repro.validation.hazard`) replays: ``reads``/``writes`` are
    the stream names the command *declared* (via its
    :class:`~repro.oneapi.kernelspec.KernelSpec` for kernels, or the
    explicit sets a :meth:`Queue.memcpy_async` caller passes), and
    ``depends_on`` are the event edges it was ordered after.  A pair of
    commands that conflict on a stream without a ``depends_on`` path
    between them is a race on an out-of-order queue.
    """

    name: str
    event: SimEvent
    reads: FrozenSet[str]
    writes: FrozenSet[str]
    depends_on: Tuple[SimEvent, ...]


class Queue:
    """An in-order queue on one simulated device."""

    def __init__(self, device: DeviceDescriptor,
                 config: Optional[RuntimeConfig] = None,
                 cost_model: Optional[CostModel] = None,
                 program_cache: Optional[ProgramCache] = None) -> None:
        self.device = device
        self.config = config if config is not None else RuntimeConfig()
        self.cost_model = cost_model if cost_model is not None \
            else CostModel(device)
        if self.cost_model.device is not device:
            raise ConfigurationError(
                "cost_model was built for a different device")
        self.memory = UsmMemoryManager()
        self.records: List[KernelLaunchRecord] = []
        #: Submission-ordered log of every command (kernel launches and
        #: async copies) with its declared access sets and dependency
        #: edges — the input of :func:`repro.validation.hazard.find_hazards`.
        self.commands: List[CommandRecord] = []
        self.timeline = Timeline(
            in_order=self.config.in_order,
            label=f"{device.name} [q{next(_QUEUE_SEQ)}]")
        #: Compiled-program registry; pass a shared instance to let
        #: several queues (the shards of a device group) reuse each
        #: other's JIT work, as SYCL's per-context program cache does.
        self.program_cache = program_cache if program_cache is not None \
            else ProgramCache()
        self._topology = ThreadTopology(device, self.config.units,
                                        self.config.threads_per_unit)
        self._scheduler = self._make_scheduler()

    def _make_scheduler(self) -> Scheduler:
        if self.config.scheduler is not None:
            return self.config.scheduler
        if self.device.device_type is DeviceType.GPU:
            return GpuScheduler()
        if self.config.runtime == "openmp":
            return StaticScheduler()
        if self.config.cpu_places == NUMA_DOMAINS:
            return NumaArenaScheduler()
        return DynamicScheduler()

    @property
    def topology(self) -> ThreadTopology:
        """Thread placement this queue launches kernels with."""
        return self._topology

    @property
    def scheduler(self) -> Scheduler:
        """Scheduler derived from the runtime configuration."""
        return self._scheduler

    # -- USM convenience ----------------------------------------------------

    def malloc_shared(self, shape, dtype, name: str = ""):
        """Allocate a shared USM array on this queue."""
        return self.memory.malloc_shared(shape, dtype, name)

    # -- kernel submission ------------------------------------------------

    def parallel_for(self, n_items: int, spec: KernelSpec,
                     kernel: Optional[Callable[[], None]] = None,
                     precision: Precision = Precision.DOUBLE,
                     depends_on: Optional[List[SimEvent]] = None,
                     program_key: Optional[ProgramKey] = None,
                     ) -> KernelLaunchRecord:
        """Launch a kernel over ``n_items`` work items.

        ``kernel`` (if given) is a no-argument callable performing the
        real vectorized work over the full range; it executes exactly
        once.  The simulated time comes from the cost model and the
        queue's scheduling policy.  JIT compile time is charged through
        the queue's :class:`~repro.oneapi.programcache.ProgramCache` on
        the first (cold) build of the launch's program under the dpcpp
        runtime; ``program_key`` overrides the default single-kernel
        identity — the graph executor passes the fused chain's key so a
        fused program compiles once as a whole.  ``depends_on`` orders
        this launch after other launches' events (only meaningful on
        out-of-order queues; an in-order queue serializes regardless).
        """
        if n_items < 0:
            raise KernelError(f"n_items must be >= 0, got {n_items}")
        tracer = active_tracer()
        injector = active_fault_injector()
        if injector is not None:
            # May fail the submit, hang the launch, or poison a USM
            # allocation feeding it; all raise *before* the kernel
            # body runs, so a failed launch never advances physics.
            injector.on_launch(self.device.name, spec)
            injector.check_readable(spec)
        schedule = self._scheduler.schedule(n_items, self._topology)
        if program_key is None:
            program_key = ProgramKey(chain=(spec.name,),
                                     device=self.device.jit_key,
                                     precision=precision.value,
                                     backend=self.device.backend)
        jit_done = (self.config.runtime == "openmp"
                    or self.program_cache.is_warm(program_key))
        if not jit_done and injector is not None:
            # A JIT failure leaves the cache cold: the retry compiles
            # (and is charged for) the kernel again.
            injector.on_jit(spec.name, self.device.name)
        timing = self.cost_model.time_launch(
            spec, schedule, precision=precision, jit_compiled=jit_done)
        if self.config.runtime != "openmp":
            self.program_cache.build(program_key,
                                     self.device.jit_compile_seconds)
            if tracer is not None:
                tracer.program_cache(program_key, warm=jit_done,
                                     stats=self.program_cache.stats)
        if injector is not None:
            factor = injector.launch_slowdown(self.device.name, spec.name)
            if factor is not None:
                slowdown = (factor - 1.0) * timing.total_seconds
                timing.slowdown_seconds = slowdown
                timing.total_seconds += slowdown
        wall_seconds = 0.0
        if kernel is not None:
            if tracer is not None:
                with tracer.span(f"kernel:{spec.name}", "kernel",
                                 n_items=n_items) as span:
                    kernel()
                wall_seconds = span.duration
            else:
                kernel()
        trace_args = None
        if tracer is not None:
            trace_args = {
                "n_items": n_items,
                "precision": precision.value,
                "bound": timing.bound,
                "memory_seconds": timing.memory_seconds,
                "compute_seconds": timing.compute_seconds,
                "scheduling_seconds": timing.scheduling_seconds,
                "jit_seconds": timing.jit_seconds,
                "slowdown_seconds": timing.slowdown_seconds,
                "cold_page_seconds": timing.cold_page_seconds,
                "cold_pages": timing.cold_pages,
                "remote_bytes": timing.remote_bytes,
            }
        event = self.timeline.schedule(spec.name, timing.total_seconds,
                                       depends_on=depends_on,
                                       trace_args=trace_args)
        record = KernelLaunchRecord(spec.name, n_items, precision, timing,
                                    event=event)
        self.records.append(record)
        self.commands.append(CommandRecord(
            name=spec.name, event=event, reads=spec.reads,
            writes=spec.writes, depends_on=tuple(depends_on or ())))
        if tracer is not None:
            tracer.kernel_launch(spec.name, n_items, timing,
                                 wall_seconds=wall_seconds)
        return record

    def submit(self, n_items: int, spec: KernelSpec,
               accessors,
               kernel: Optional[Callable[[], None]] = None,
               precision: Precision = Precision.DOUBLE,
               ) -> KernelLaunchRecord:
        """Launch a kernel declared through buffer accessors.

        The buffer/accessor model of Section 4.2: each
        :class:`~repro.oneapi.buffer.Accessor` carries the bytes the
        runtime had to move to honour the declared access; those are
        charged at the device's ``host_transfer_bandwidth`` on top of
        the ordinary launch time.
        """
        record = self.parallel_for(n_items, spec, kernel=kernel,
                                   precision=precision)
        moved = sum(int(a.transfer_bytes) for a in accessors)
        if moved:
            transfer = moved / self.device.host_transfer_bandwidth
            record.timing.transfer_seconds = transfer
            record.timing.total_seconds += transfer
            tracer = active_tracer()
            if tracer is not None:
                tracer.transfer(spec.name, transfer, moved)
        return record

    def memcpy_async(self, name: str, nbytes: int, *,
                     bandwidth: float, latency: float = 0.0,
                     depends_on: Optional[List[SimEvent]] = None,
                     reads: Iterable[str] = (),
                     writes: Iterable[str] = ()) -> SimEvent:
        """Model an asynchronous copy command on this queue's timeline.

        The simulated analogue of ``sycl::queue::memcpy``: a transfer
        of ``nbytes`` over a link of the given ``bandwidth`` [bytes/s]
        and per-message ``latency`` [s] is placed on the timeline as
        its own command, ordered after ``depends_on`` (on an
        out-of-order queue a copy with no dependencies overlaps freely
        with compute — the mechanism the distributed layer uses to hide
        halo exchange behind push kernels).  Under an active fault
        injector this is an ``exchange-stall`` opportunity: a stalled
        copy raises :class:`~repro.errors.ExchangeTimeoutError`
        *before* anything is charged, so the caller can burn the
        watchdog window and re-issue it.

        ``reads``/``writes`` optionally declare the stream names the
        copy touches, so it participates in hazard detection like a
        kernel launch; an undeclared copy is invisible to the detector.
        """
        if nbytes < 0:
            raise KernelError(f"nbytes must be >= 0, got {nbytes}")
        if bandwidth <= 0.0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {bandwidth!r}")
        if latency < 0.0:
            raise ConfigurationError(
                f"latency must be >= 0, got {latency!r}")
        injector = active_fault_injector()
        if injector is not None:
            injector.on_exchange(self.device.name, name, nbytes)
        seconds = latency + nbytes / bandwidth
        event = self.timeline.schedule(
            name, seconds, depends_on=depends_on,
            trace_args={"bytes": nbytes, "bandwidth": bandwidth,
                        "latency": latency})
        self.commands.append(CommandRecord(
            name=name, event=event, reads=frozenset(reads),
            writes=frozenset(writes), depends_on=tuple(depends_on or ())))
        return event

    def create_buffer(self, data, name: str = ""):
        """Create a :class:`~repro.oneapi.buffer.Buffer` on this queue's
        context (convenience mirroring ``sycl::buffer``)."""
        from .buffer import Buffer
        return Buffer(data, name=name)

    def access(self, buffer, mode):
        """Declare an access of this queue's device to ``buffer``."""
        return buffer.get_access(mode, self.device.name)

    def wait(self) -> None:
        """Block until all submitted commands complete.

        The simulation executes eagerly, so this only exists for API
        familiarity; the simulated completion time is
        ``timeline.makespan``."""

    # -- accounting ------------------------------------------------------------

    @property
    def total_simulated_seconds(self) -> float:
        """Sum of simulated times over all recorded launches."""
        return sum(r.simulated_seconds for r in self.records)

    def reset_records(self) -> None:
        """Clear launch records, the command log and the timeline
        (keeps JIT cache and page state)."""
        self.records.clear()
        self.commands.clear()
        self.timeline.reset()

    def reset_warmup(self) -> None:
        """Forget JIT compilations and page homes (fresh-process state).

        On a *shared* program cache only this device model's entries
        are dropped — resetting one shard's queue must not chill
        programs other device models compiled.
        """
        self.program_cache.clear(device=self.device.jit_key)
        for allocation in self.memory.allocations():
            allocation.reset_pages()
