"""The buffer/accessor memory model (the paper's first USM alternative).

Section 4.2: "The first method involves the use of special concepts —
buffers, which allow us to define regions of memory that can be used on
the device, and accessors, which allow us to plan access to data and
their movement between devices."  The paper chose USM instead; this
module implements the buffer model so both of DPC++'s memory-management
styles exist in the simulator and can be compared.

Semantics modelled:

* a :class:`Buffer` owns a host numpy array and tracks whether the
  host copy and each device copy are current;
* :meth:`Buffer.get_access` declares intent (read / write /
  read_write / discard_write) and returns an :class:`Accessor`;
* submitting a kernel with accessors
  (:meth:`~repro.oneapi.queue.Queue.submit`, added by this module's
  companion change) triggers the host-to-device copies the declared
  accesses require; reading on the host (:meth:`Buffer.host_data`)
  triggers the device-to-host write-back.  Each transfer is charged at
  the device's ``host_transfer_bandwidth`` and counted.

For CPUs and integrated GPUs the transfer bandwidth is effectively
infinite (shared DRAM), so the buffer model costs only its bookkeeping
— matching the practical observation that buffers vs USM is a
programming-style choice there, while discrete devices pay real copy
time.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

import numpy as np

from ..errors import MemoryModelError

__all__ = ["AccessMode", "Accessor", "Buffer"]


class AccessMode(enum.Enum):
    """Declared intent of a kernel's access to a buffer."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"
    #: Write that overwrites everything: skips the host-to-device copy.
    DISCARD_WRITE = "discard_write"

    @property
    def reads(self) -> bool:
        return self in (AccessMode.READ, AccessMode.READ_WRITE)

    @property
    def writes(self) -> bool:
        return self is not AccessMode.READ


class Buffer:
    """A host array whose device copies are managed by the runtime."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        array = np.asarray(data)
        if array.size == 0:
            raise MemoryModelError("cannot create a buffer over an empty array")
        self._host = array
        self.name = name or f"buffer-{id(self):x}"
        #: Device name -> whether that device's copy is current.
        self._device_valid: Dict[str, bool] = {}
        self._host_valid = True
        #: Device holding the newest data when the host copy is stale.
        self._owner: Optional[str] = None
        self.bytes_to_device = 0
        self.bytes_to_host = 0
        self.transfers_to_device = 0
        self.transfers_to_host = 0

    @property
    def nbytes(self) -> int:
        """Size of the buffer [bytes]."""
        return int(self._host.nbytes)

    @property
    def shape(self):
        """Shape of the underlying array."""
        return self._host.shape

    def get_access(self, mode: AccessMode, device_name: str) -> "Accessor":
        """Declare a kernel access from ``device_name``; returns the accessor.

        Performs the coherence actions the SYCL runtime would: copy the
        newest data to the device if the kernel reads (unless the device
        copy is already valid), and invalidate other copies if it
        writes.  Returns an accessor whose ``transfer_bytes`` records
        what had to move for this access.
        """
        if not isinstance(mode, AccessMode):
            raise MemoryModelError(f"mode must be an AccessMode, got {mode!r}")
        transfer = 0
        device_current = self._device_valid.get(device_name, False)
        if mode.reads and not device_current:
            # Newest data is on the host or another device; either way
            # it moves through the host in this model.
            if not self._host_valid:
                self._sync_to_host()
                transfer += self.nbytes
            transfer += self.nbytes
            self.bytes_to_device += self.nbytes
            self.transfers_to_device += 1
        if mode is AccessMode.DISCARD_WRITE:
            transfer = 0        # nothing needs to move for a full overwrite
        if mode.writes:
            # This device now owns the newest data.
            self._device_valid = {device_name: True}
            self._host_valid = False
            self._owner = device_name
        else:
            self._device_valid[device_name] = True
        return Accessor(self, mode, device_name, transfer)

    def _sync_to_host(self) -> None:
        self.bytes_to_host += self.nbytes
        self.transfers_to_host += 1
        self._host_valid = True

    def host_data(self, write: bool = False) -> np.ndarray:
        """The host array, after any required device-to-host write-back.

        Pass ``write=True`` when the caller will modify the array (a
        SYCL ``host_accessor`` with write mode): device copies are then
        invalidated so the next kernel re-uploads.  The simulated
        kernels operate on the host array directly, so "write-back" is
        pure accounting — the counters tell you what a real runtime
        would have copied.
        """
        if not self._host_valid:
            self._sync_to_host()
        if write:
            self._device_valid = {}
            self._owner = None
        return self._host

    @property
    def host_is_current(self) -> bool:
        """Whether reading on the host would require a write-back."""
        return self._host_valid

    def __repr__(self) -> str:
        return (f"Buffer(name={self.name!r}, nbytes={self.nbytes}, "
                f"host_valid={self._host_valid}, owner={self._owner!r})")


class Accessor:
    """One declared access of one kernel to one buffer."""

    def __init__(self, buffer: Buffer, mode: AccessMode, device_name: str,
                 transfer_bytes: int) -> None:
        self.buffer = buffer
        self.mode = mode
        self.device_name = device_name
        #: Bytes the runtime had to move to honour this access.
        self.transfer_bytes = int(transfer_bytes)

    @property
    def data(self) -> np.ndarray:
        """The array a kernel body reads/writes through this accessor."""
        return self.buffer._host

    def __repr__(self) -> str:
        return (f"Accessor({self.buffer.name!r}, {self.mode.value}, "
                f"on {self.device_name!r}, moved {self.transfer_bytes} B)")
