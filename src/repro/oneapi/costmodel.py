"""Roofline cost model: simulated kernel times on simulated devices.

For every kernel launch the model combines

* the :class:`~repro.oneapi.kernelspec.KernelSpec` (bytes and flops per
  work item),
* the :class:`~repro.oneapi.scheduler.Schedule` (which thread — hence
  which compute unit and NUMA domain — executes which items),
* the USM page state (which domain each touched page is homed in),
* and the :class:`~repro.oneapi.device.DeviceDescriptor`

into a :class:`LaunchTiming`:

``total = max(memory_time, compute_time) + scheduling + warm-up``

with

* ``memory_time`` — the slowest NUMA domain's DRAM traffic over its
  achievable bandwidth (itself capped by per-core bandwidth at low
  thread counts — the Fig. 1 mechanism), or the cross-domain traffic
  over the UPI bandwidth, whichever is worse;
* ``compute_time`` — the busiest compute unit's flops over its
  sustained vector throughput;
* scheduling — per-chunk dynamic overhead plus the TBB runtime
  efficiency factor (the paper's "~10% on average" DPC++ gap), with an
  extra penalty at very low thread counts (the slow DPC++ single-core
  baseline that makes Fig. 1's DPC++ speedup super-linear);
* warm-up — JIT compilation on a kernel's first launch and cold-page
  (first-touch) cost, together the paper's "first iteration takes 50%
  longer" effect.

All tunable constants default to physically motivated values and are
overridden per device in :mod:`repro.bench.calibration`, where each
choice is documented against the paper number it was fitted to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import KernelError
from ..fp import Precision
from .device import DeviceDescriptor, DeviceType
from .kernelspec import KernelSpec, MemoryStream, StreamKind
from .scheduler import Schedule

__all__ = ["CostModel", "LaunchTiming"]

#: Cache lines per small page (4096 / 64).
_LINES_PER_PAGE = 64


@dataclass
class LaunchTiming:
    """Timing breakdown of one simulated kernel launch (seconds)."""

    total_seconds: float = 0.0
    memory_seconds: float = 0.0
    compute_seconds: float = 0.0
    scheduling_seconds: float = 0.0
    jit_seconds: float = 0.0
    cold_page_seconds: float = 0.0
    launch_overhead_seconds: float = 0.0
    #: Host<->device copy time for buffer/accessor submissions.
    transfer_seconds: float = 0.0
    #: Extra time from an injected transient slowdown of this launch.
    slowdown_seconds: float = 0.0
    #: Backoff + watchdog time folded in by the recovery layer when
    #: earlier attempts of this launch failed (see repro.resilience).
    recovery_seconds: float = 0.0
    #: DRAM traffic actually moved [bytes], all domains.
    bytes_moved: float = 0.0
    #: Bytes that crossed the NUMA interconnect.
    remote_bytes: float = 0.0
    #: Bytes served from pages homed in the executing domain.
    local_bytes: float = 0.0
    #: Pages first-touched by this launch.
    cold_pages: int = 0
    #: Whether memory or compute dominated the roofline.
    bound: str = "memory"

    def nsps(self, n_items: int, steps_per_launch: int = 1) -> float:
        """Nanoseconds per item per step for this launch."""
        if n_items <= 0 or steps_per_launch <= 0:
            raise KernelError("n_items and steps_per_launch must be positive")
        return self.total_seconds * 1.0e9 / (n_items * steps_per_launch)


class CostModel:
    """Times kernel launches on one device.

    Args:
        device: The simulated hardware.
        dynamic_chunk_overhead: Seconds of scheduler work per
            dynamically claimed chunk (TBB task bookkeeping).
        static_launch_barrier: Seconds of fork/join barrier per launch
            for static schedules (OpenMP parallel-for entry/exit).
        dynamic_efficiency: Fraction of roofline throughput a dynamic
            (TBB) schedule sustains — cache-refill after chunk
            migration, task-queue contention.  1.0 for static.
        single_thread_excess: Extra relative cost of the TBB runtime at
            low thread counts, decaying as 1/n_threads (makes the
            DPC++ single-core baseline slow, as the paper observes).
        strided_compute_penalty: Compute-side multiplier on CPUs when
            the kernel has strided (AoS) streams — vector loads become
            gathers.  GPUs pay on the bandwidth side instead (see
            ``DeviceDescriptor.strided_access_efficiency`` — modelled
            here via :attr:`gpu_strided_efficiency`).
        gpu_strided_efficiency: Fraction of DRAM bandwidth retained for
            non-contiguous streams on GPUs (partial transactions).
        cold_line_latency: Seconds charged per cache line of a
            first-touched page (lumped page-fault/zero-fill/TLB cost;
            produces the paper's slow first iteration).
    """

    def __init__(self, device: DeviceDescriptor,
                 dynamic_chunk_overhead: float = 0.5e-6,
                 static_launch_barrier: float = 2.0e-6,
                 dynamic_efficiency: float = 0.92,
                 single_thread_excess: float = 0.5,
                 strided_compute_penalty: float = 1.15,
                 gpu_strided_efficiency: float = 0.6,
                 cold_line_latency: float = 2.5e-7) -> None:
        if not 0.0 < dynamic_efficiency <= 1.0:
            raise KernelError("dynamic_efficiency must be in (0, 1]")
        if strided_compute_penalty < 1.0:
            raise KernelError("strided_compute_penalty must be >= 1")
        if not 0.0 < gpu_strided_efficiency <= 1.0:
            raise KernelError("gpu_strided_efficiency must be in (0, 1]")
        self.device = device
        self.dynamic_chunk_overhead = dynamic_chunk_overhead
        self.static_launch_barrier = static_launch_barrier
        self.dynamic_efficiency = dynamic_efficiency
        self.single_thread_excess = single_thread_excess
        self.strided_compute_penalty = strided_compute_penalty
        self.gpu_strided_efficiency = gpu_strided_efficiency
        self.cold_line_latency = cold_line_latency

    # -- backend hooks ---------------------------------------------------
    #
    # A non-oneAPI backend (see repro.backends) subclasses CostModel and
    # overrides these three seams instead of re-deriving the roofline:
    # occupancy quantisation (CUDA warps), the steady-state launch
    # overhead the *predictors* assume (graph replay amortisation), and
    # the per-launch overhead the *measured* path charges (which may be
    # stateful — capture thresholds, one-off context initialisation).

    def _occupancy_items(self, busiest: float) -> float:
        """Occupancy-quantised work items on the busiest compute unit.

        The oneAPI model charges exactly the scheduled items; backends
        whose hardware retires work in fixed-size bundles (CUDA warps)
        round up here, on both the measured and predicted paths.
        """
        return busiest

    def _steady_launch_overhead(self) -> float:
        """Per-launch overhead a warm steady-state launch pays.

        Used by :meth:`estimate_spec_seconds` and
        :meth:`predict_launch_seconds` — the planning/tuning paths that
        price the configuration a long run converges to.
        """
        return self.device.kernel_launch_overhead

    def _measured_launch_overhead(self, spec: KernelSpec) -> float:
        """Per-launch overhead charged to one *measured* launch.

        Unlike the steady-state hook this may be stateful: a backend
        can charge one-off setup to the first launch or discount
        overhead only after a repeated launch pattern has been
        captured.  Called exactly once per timed launch.
        """
        return self.device.kernel_launch_overhead

    # -- memory side -----------------------------------------------------

    def _stream_multiplier(self, stream: MemoryStream) -> float:
        """DRAM traffic per span byte for one stream."""
        if stream.kind is StreamKind.READ:
            return 1.0
        if stream.kind is StreamKind.READ_WRITE:
            return 2.0           # read once + write back
        # WRITE: write-allocate reads the line before the store.
        return 2.0 if self.device.write_allocate else 1.0

    def _stream_efficiency(self, stream: MemoryStream) -> float:
        """Bandwidth efficiency of one stream's access pattern."""
        if stream.contiguous:
            return 1.0
        if self.device.device_type is DeviceType.GPU:
            return self.gpu_strided_efficiency
        # CPU cores consume the whole record, and the hardware
        # prefetcher handles small constant strides, so AoS costs only
        # its span (already accounted), not extra transactions.
        return 1.0

    def _domain_bandwidth(self, schedule: Schedule, domain: int) -> float:
        """Achievable DRAM bandwidth of one domain for this schedule."""
        topo = schedule.topology
        units = topo.active_units_in_domain(domain)
        if units == 0:
            return self.device.domain_bandwidth
        per_unit = self.device.unit_bandwidth
        domain_cap = self.device.domain_bandwidth
        if topo.threads_per_unit >= 2:
            per_unit *= self.device.smt_bandwidth_boost
        else:
            domain_cap *= self.device.smt_domain_efficiency
        return min(domain_cap, units * per_unit)

    # -- planning estimates ----------------------------------------------

    def estimate_spec_seconds(self, spec: KernelSpec, n_items: int,
                              precision: Precision = Precision.DOUBLE
                              ) -> float:
        """Rough steady-state cost of one launch of ``spec``, no schedule.

        The fusion planner (:class:`repro.oneapi.graph.FusionPass`)
        prices candidate kernels before any schedule or page state
        exists, so this estimate assumes the whole device at full
        occupancy with local pages: traffic over aggregate bandwidth
        (with the cache-residency boost the full model applies, so the
        planner notices when a *fused* working set falls out of cache)
        versus flops over aggregate throughput, plus the per-launch
        overhead — the term fusion actually eliminates.  Warm-up costs
        (JIT, first touch) are excluded: they are one-off and identical
        in total either way.
        """
        if n_items < 0:
            raise KernelError(f"n_items must be >= 0, got {n_items}")
        device = self.device
        traffic = sum(n_items * s.span_bytes_per_item
                      * self._stream_multiplier(s)
                      / self._stream_efficiency(s)
                      for s in spec.streams)
        bandwidth = device.total_bandwidth
        if (spec.working_set_bytes_per_item * n_items
                < device.cache_per_domain * device.numa_domains):
            bandwidth *= 4.0
        memory_time = traffic / bandwidth
        flops_item = spec.flops_per_item
        if spec.has_strided_streams \
                and device.device_type is DeviceType.CPU:
            flops_item *= self.strided_compute_penalty
        compute_time = (n_items * flops_item
                        / device.achievable_flops(precision,
                                                  device.compute_units))
        return max(memory_time, compute_time) \
            + self._steady_launch_overhead()

    def predict_launch_seconds(self, spec: KernelSpec, n_items: int,
                               precision: Precision = Precision.DOUBLE,
                               units: Optional[int] = None,
                               threads_per_unit: Optional[int] = None
                               ) -> float:
        """Predict one *warm* steady-state launch, no schedule or pages.

        Where :meth:`estimate_spec_seconds` is the fusion planner's
        comparator (pure kernel cost, overheads excluded so margins
        compare kernels, not runtimes), this is the autotuner's
        measurement predictor: it adds the terms a warm launch of the
        facade's configuration actually pays —

        * the runtime's scheduling overhead (per-chunk TBB bookkeeping
          on CPUs, the work-group dispatch barrier on GPUs) and the
          dynamic-runtime efficiency penalty;
        * per-domain bandwidth walls, SMT effects included: one thread
          per unit forfeits the SMT bandwidth boost *and* pays the
          domain-efficiency discount, exactly as
          :meth:`_domain_bandwidth` charges a real schedule;
        * NUMA blindness: the plain-DPC++ dynamic schedule scatters
          chunks across sockets while first-touch homes pages
          uniformly, so ``1 - 1/numa_domains`` of the traffic crosses
          the interconnect — usually the binding constraint on the
          two-socket CPU, as in the paper's non-NUMA DPC++ rows.

        ``units``/``threads_per_unit`` default to the whole device
        (the facade's occupancy); pass ``threads_per_unit=1`` to
        predict an SMT-off run.
        """
        if n_items < 0:
            raise KernelError(f"n_items must be >= 0, got {n_items}")
        device = self.device
        if units is None:
            units = device.compute_units
        tpu = device.threads_per_unit if threads_per_unit is None \
            else threads_per_unit
        if units < 1 or tpu < 1:
            raise KernelError("units and threads_per_unit must be >= 1")
        n_threads = units * tpu

        # -- memory side: per-domain walls, mirroring _domain_bandwidth --
        traffic = sum(n_items * s.span_bytes_per_item
                      * self._stream_multiplier(s)
                      / self._stream_efficiency(s)
                      for s in spec.streams)
        per_unit = device.unit_bandwidth
        domain_cap = device.domain_bandwidth
        if tpu >= 2:
            per_unit *= device.smt_bandwidth_boost
        else:
            domain_cap *= device.smt_domain_efficiency
        domains = device.numa_domains
        units_per_domain = max(1, units // domains)
        domain_bw = min(domain_cap, units_per_domain * per_unit)
        cache_resident = (spec.working_set_bytes_per_item * n_items
                          < device.cache_per_domain * domains)
        if cache_resident:
            domain_bw *= 4.0     # same LLC-streaming boost as _finish
        memory_time = (traffic / domains) / domain_bw if traffic else 0.0
        if domains > 1 and traffic:
            remote = traffic * (domains - 1) / domains
            memory_time = max(memory_time,
                              remote / device.interconnect_bandwidth)

        # -- compute side ------------------------------------------------
        flops_item = spec.flops_per_item
        if spec.has_strided_streams \
                and device.device_type is DeviceType.CPU:
            flops_item *= self.strided_compute_penalty
        per_unit_flops = device.clock_hz * device.flops_per_cycle_sp \
            * device.vector_efficiency
        if precision is Precision.DOUBLE:
            per_unit_flops *= device.dp_throughput_ratio
        if device.device_type is DeviceType.GPU:
            # Work-group occupancy: fixed-size groups dispatch
            # round-robin over EU hardware threads (GpuScheduler), so
            # a small grid piles sibling groups onto few EUs instead
            # of spreading across all of them — the busiest EU, not
            # the mean, sets the compute time.
            from .scheduler import DEFAULT_WORKGROUP_SIZE as wg
            chunks = -(-n_items // wg) if n_items else 0
            per_thread = -(-chunks // n_threads) if chunks else 0
            busiest = min(n_items, tpu * per_thread * wg)
        else:
            busiest = n_items / units
        compute_time = self._occupancy_items(busiest) * flops_item \
            / per_unit_flops

        # -- scheduling and runtime overheads ----------------------------
        if device.device_type is DeviceType.CPU:
            # The facade's plain-DPC++ CPU path is TBB-dynamic.
            penalty = (1.0 / self.dynamic_efficiency
                       + self.single_thread_excess / n_threads)
            memory_time *= penalty
            compute_time *= penalty
            # auto_partitioner grain: 16 grains per thread (the
            # DynamicScheduler default), claimed round-robin.
            grain = max(1, n_items // (n_threads * 16))
            chunks = -(-n_items // grain) if n_items else 0
            scheduling = -(-chunks // n_threads) \
                * self.dynamic_chunk_overhead
        else:
            scheduling = self.static_launch_barrier
        return max(memory_time, compute_time) + scheduling \
            + self._steady_launch_overhead()

    # -- the launch ---------------------------------------------------------

    def time_launch(self, spec: KernelSpec, schedule: Schedule,
                    precision: Precision = Precision.DOUBLE,
                    jit_compiled: bool = True,
                    update_pages: bool = True) -> LaunchTiming:
        """Simulate one launch of ``spec`` under ``schedule``.

        ``jit_compiled=False`` charges the one-off JIT compile time (the
        queue tracks which kernels have been compiled).  Page state in
        the spec's allocations is consulted for NUMA locality and, when
        ``update_pages`` is true, updated by first-touch.
        """
        timing = LaunchTiming()
        device = self.device
        topo = schedule.topology

        # ---- 1. walk chunks: locality, first-touch, traffic ------------
        dram_bytes: Dict[int, float] = {d: 0.0 for d
                                        in range(device.numa_domains)}
        remote_total = 0.0
        local_total = 0.0
        cold_pages = 0
        if device.numa_domains == 1:
            # Single memory domain: every access is local, so the
            # per-chunk walk collapses to whole-range accounting (the
            # GPU schedules have tens of thousands of work-groups).
            for stream in spec.streams:
                span = stream.span_bytes_per_item
                traffic = (schedule.n_items * span
                           * self._stream_multiplier(stream)
                           / self._stream_efficiency(stream))
                dram_bytes[0] += traffic
                local_total += traffic
                if stream.allocation is not None and update_pages:
                    end = min(int(schedule.n_items * span),
                              stream.allocation.nbytes)
                    cold_pages += stream.allocation.touch(0, end, 0)
            return self._finish(timing, spec, schedule, precision,
                                jit_compiled, dram_bytes, remote_total,
                                local_total, cold_pages)
        for chunk in schedule.chunks:
            exec_domain = topo.domain_of(chunk.thread)
            for stream in spec.streams:
                span = stream.span_bytes_per_item
                traffic = (chunk.size * span
                           * self._stream_multiplier(stream)
                           / self._stream_efficiency(stream))
                if stream.allocation is None:
                    dram_bytes[exec_domain] += traffic
                    local_total += traffic
                    continue
                start = int(chunk.start * span)
                end = min(int(chunk.end * span), stream.allocation.nbytes)
                local, remote = stream.allocation.locality(
                    start, end, exec_domain)
                total = local + remote
                if total > 0:
                    local_frac = local / total
                else:
                    local_frac = 1.0
                # DRAM load lands on the page's home domain either way.
                dram_bytes[exec_domain] += traffic * local_frac
                remote_traffic = traffic * (1.0 - local_frac)
                # A remote access is served by the other domain's DRAM.
                other = _remote_home(stream.allocation, start, end,
                                     exec_domain)
                dram_bytes[other] += remote_traffic
                remote_total += remote_traffic
                local_total += traffic * local_frac
                if update_pages:
                    cold_pages += stream.allocation.touch(
                        start, end, exec_domain)
        return self._finish(timing, spec, schedule, precision, jit_compiled,
                            dram_bytes, remote_total, local_total, cold_pages)

    def _finish(self, timing: LaunchTiming, spec: KernelSpec,
                schedule: Schedule, precision: Precision,
                jit_compiled: bool, dram_bytes: Dict[int, float],
                remote_total: float, local_total: float,
                cold_pages: int) -> LaunchTiming:
        """Combine traffic accounting into the roofline timing."""
        device = self.device
        topo = schedule.topology

        # ---- 2. memory time ------------------------------------------------
        total_traffic = sum(dram_bytes.values())
        cache_resident = (spec.working_set_bytes_per_item * schedule.n_items
                          < device.cache_per_domain * device.numa_domains)
        dram_times = []
        for domain, load in dram_bytes.items():
            bandwidth = self._domain_bandwidth(schedule, domain)
            if cache_resident:
                bandwidth *= 4.0     # LLC streams ~4x faster than DRAM
            dram_times.append(load / bandwidth if load else 0.0)
        memory_time = max(dram_times) if dram_times else 0.0
        if device.numa_domains > 1 and remote_total > 0.0:
            memory_time = max(memory_time,
                              remote_total / device.interconnect_bandwidth)

        # ---- 3. compute time -------------------------------------------------
        flops_item = spec.flops_per_item
        if spec.has_strided_streams \
                and device.device_type is DeviceType.CPU:
            flops_item *= self.strided_compute_penalty
        per_unit_flops = device.clock_hz * device.flops_per_cycle_sp \
            * device.vector_efficiency
        if precision is Precision.DOUBLE:
            per_unit_flops *= device.dp_throughput_ratio
        busiest = max(schedule.items_per_unit().values(), default=0)
        compute_time = self._occupancy_items(busiest) * flops_item \
            / per_unit_flops

        # ---- 4. scheduling and runtime overheads ---------------------------
        if schedule.dynamic:
            scheduling = (schedule.max_chunks_on_a_thread()
                          * self.dynamic_chunk_overhead)
            penalty = (1.0 / self.dynamic_efficiency
                       + self.single_thread_excess / topo.n_threads)
            memory_time *= penalty
            compute_time *= penalty
        else:
            scheduling = self.static_launch_barrier

        # ---- 5. warm-up and launch overhead --------------------------------
        jit = 0.0 if jit_compiled else device.jit_compile_seconds
        cold = cold_pages * self.cold_line_latency * _LINES_PER_PAGE
        overhead = self._measured_launch_overhead(spec)

        timing.memory_seconds = memory_time
        timing.compute_seconds = compute_time
        timing.scheduling_seconds = scheduling
        timing.launch_overhead_seconds = overhead
        timing.jit_seconds = jit
        timing.cold_page_seconds = cold
        timing.bytes_moved = total_traffic
        timing.remote_bytes = remote_total
        timing.local_bytes = local_total
        timing.cold_pages = cold_pages
        timing.bound = "memory" if memory_time >= compute_time else "compute"
        timing.total_seconds = (max(memory_time, compute_time) + scheduling
                                + overhead + jit + cold)
        return timing


def _remote_home(allocation, start: int, end: int, exec_domain: int) -> int:
    """Pick the domain whose DRAM serves this range's remote part.

    With two domains this is simply "the other one"; for more domains
    the majority home among the range's remote pages is used.
    """
    from .memory import PAGE_SIZE

    p0 = start // PAGE_SIZE
    p1 = max(p0 + 1, (end - 1) // PAGE_SIZE + 1) if end > start else p0 + 1
    pages = allocation.page_domains[p0:p1]
    remote = pages[(pages >= 0) & (pages != exec_domain)]
    if remote.size == 0:
        return exec_domain
    values, counts = np.unique(remote, return_counts=True)
    return int(values[counts.argmax()])
