"""Work schedulers: OpenMP-static, TBB-dynamic and NUMA arenas.

The paper compares three parallelisation regimes:

* the OpenMP reference uses *static* scheduling — each thread owns the
  same contiguous chunk of the particle array on every time step, so
  after the first step every page it touches is NUMA-local;
* plain DPC++ runs on TBB with *dynamic* scheduling — chunks migrate
  between threads (and thus sockets) from step to step, so roughly half
  of all accesses on a 2-socket node are remote;
* ``DPCPP_CPU_PLACES=numa_domains`` creates one TBB *arena per NUMA
  domain* — the iteration space is split between domains statically and
  scheduled dynamically only inside each domain, restoring locality
  ("the same particles are processed on the same CPU at every step").

Schedulers here produce explicit chunk-to-thread assignments over a
:class:`ThreadTopology`; the cost model walks those assignments to
charge memory locality and scheduling overhead.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..observability.tracer import active_tracer
from .device import DeviceDescriptor

__all__ = ["ThreadTopology", "Chunk", "Schedule", "StaticScheduler",
           "DynamicScheduler", "NumaArenaScheduler", "GpuScheduler"]


class ThreadTopology:
    """Mapping of software threads onto compute units and NUMA domains.

    Threads are placed compactly and bound: thread ``i`` runs on unit
    ``i // threads_per_unit`` (so "48 cores, 2 threads per core" fills
    socket 0's cores before socket 1's, each with both hyperthreads —
    the binding the paper describes for its scaling study).
    """

    #: True on per-domain views used inside the NUMA-arena scheduler;
    #: schedules over subset views are not reported to the tracer
    #: (their chunks reappear, renumbered, in the enclosing schedule).
    is_subset = False

    def __init__(self, device: DeviceDescriptor, units: Optional[int] = None,
                 threads_per_unit: Optional[int] = None) -> None:
        self.device = device
        self.units = device.compute_units if units is None else int(units)
        if not 1 <= self.units <= device.compute_units:
            raise ConfigurationError(
                f"units must be in [1, {device.compute_units}], "
                f"got {units}")
        tpu = device.threads_per_unit if threads_per_unit is None \
            else int(threads_per_unit)
        if not 1 <= tpu <= device.threads_per_unit:
            raise ConfigurationError(
                f"threads_per_unit must be in [1, {device.threads_per_unit}],"
                f" got {threads_per_unit}")
        self.threads_per_unit = tpu

    @property
    def n_threads(self) -> int:
        """Total software threads."""
        return self.units * self.threads_per_unit

    def unit_of(self, thread: int) -> int:
        """Compute unit a thread is bound to."""
        if not 0 <= thread < self.n_threads:
            raise ConfigurationError(
                f"thread {thread} out of range [0, {self.n_threads})")
        return thread // self.threads_per_unit

    def domain_of(self, thread: int) -> int:
        """NUMA domain a thread is bound to."""
        return self.device.domain_of_unit(self.unit_of(thread))

    def threads_in_domain(self, domain: int) -> List[int]:
        """All thread ids bound to one NUMA domain."""
        return [t for t in range(self.n_threads) if self.domain_of(t) == domain]

    def active_units_in_domain(self, domain: int) -> int:
        """Number of busy compute units in a domain."""
        return len({self.unit_of(t) for t in range(self.n_threads)
                    if self.domain_of(t) == domain})

    @property
    def active_domains(self) -> List[int]:
        """Domains that have at least one bound thread."""
        return sorted({self.domain_of(t) for t in range(self.n_threads)})


@dataclass(frozen=True)
class Chunk:
    """A contiguous range of work items assigned to one thread."""

    start: int
    end: int
    thread: int

    @property
    def size(self) -> int:
        return self.end - self.start


class Schedule:
    """A complete assignment of ``n_items`` work items to threads."""

    def __init__(self, chunks: List[Chunk], topology: ThreadTopology,
                 n_items: int, dynamic: bool) -> None:
        self.chunks = chunks
        self.topology = topology
        self.n_items = int(n_items)
        #: Whether the schedule came from a dynamic (TBB-style)
        #: scheduler; the cost model applies the dynamic-runtime
        #: efficiency factor when true.
        self.dynamic = dynamic
        # Exact disjoint tiling of [0, n_items): a plain item-count sum
        # would accept overlapping chunks compensated by gaps — two
        # threads pushing the same particles while others are skipped,
        # the intra-launch analogue of the inter-launch hazards
        # :mod:`repro.validation.hazard` detects.
        expected = 0
        for chunk in sorted(chunks, key=lambda c: c.start):
            if chunk.start < expected:
                raise ConfigurationError(
                    f"schedule chunks overlap at item {chunk.start} "
                    f"(thread {chunk.thread})")
            if chunk.start > expected:
                raise ConfigurationError(
                    f"schedule leaves items [{expected}, {chunk.start}) "
                    f"uncovered")
            expected = chunk.end
        if expected != n_items:
            raise ConfigurationError(
                f"schedule covers {expected} items, expected {n_items}")
        tracer = active_tracer()
        if tracer is not None and not topology.is_subset:
            tracer.instant("schedule", "scheduler",
                           n_items=self.n_items, n_chunks=len(chunks),
                           n_threads=topology.n_threads,
                           dynamic=self.dynamic,
                           max_chunks_on_a_thread=
                           self.max_chunks_on_a_thread())

    def items_per_thread(self) -> Dict[int, int]:
        """Total work items executed by each thread."""
        totals: Dict[int, int] = {}
        for chunk in self.chunks:
            totals[chunk.thread] = totals.get(chunk.thread, 0) + chunk.size
        return totals

    def chunks_per_thread(self) -> Dict[int, int]:
        """Number of chunks (scheduling events) per thread."""
        counts: Dict[int, int] = {}
        for chunk in self.chunks:
            counts[chunk.thread] = counts.get(chunk.thread, 0) + 1
        return counts

    def items_per_unit(self) -> Dict[int, int]:
        """Total work items executed on each compute unit."""
        totals: Dict[int, int] = {}
        for chunk in self.chunks:
            unit = self.topology.unit_of(chunk.thread)
            totals[unit] = totals.get(unit, 0) + chunk.size
        return totals

    def max_chunks_on_a_thread(self) -> int:
        """Largest chunk count any one thread processes."""
        counts = self.chunks_per_thread()
        return max(counts.values()) if counts else 0


class Scheduler(abc.ABC):
    """Interface: produce a :class:`Schedule` for ``n_items`` items."""

    @abc.abstractmethod
    def schedule(self, n_items: int, topology: ThreadTopology) -> Schedule:
        """Assign ``n_items`` items to the topology's threads."""


def _split_even(start: int, end: int, parts: int) -> List[range]:
    """Split [start, end) into ``parts`` near-equal contiguous ranges."""
    n = end - start
    out = []
    offset = start
    for i in range(parts):
        size = n // parts + (1 if i < n % parts else 0)
        out.append(range(offset, offset + size))
        offset += size
    return out


class StaticScheduler(Scheduler):
    """OpenMP ``schedule(static)``: one contiguous chunk per thread.

    Deterministic: thread ``i`` always receives the ``i``-th slice, so
    repeated launches touch the same pages from the same threads — the
    property that makes the OpenMP version NUMA-clean after the first
    iteration.
    """

    def __init__(self) -> None:
        # Deterministic chunking: memoize per (n_items, threads) so the
        # graph path's several same-range launches per step don't
        # rebuild identical chunk lists (chunks are immutable; each
        # call still gets its own Schedule, so tracing is unchanged).
        self._memo: Dict[tuple, List[Chunk]] = {}

    def schedule(self, n_items: int, topology: ThreadTopology) -> Schedule:
        if n_items < 0:
            raise ConfigurationError(f"n_items must be >= 0, got {n_items}")
        key = (n_items, topology.n_threads)
        chunks = self._memo.get(key)
        if chunks is None:
            chunks = self._memo[key] = \
                [Chunk(r.start, r.stop, thread)
                 for thread, r in enumerate(
                     _split_even(0, n_items, topology.n_threads))
                 if r.stop > r.start]
        return Schedule(chunks, topology, n_items, dynamic=False)


class DynamicScheduler(Scheduler):
    """TBB-style dynamic scheduling without arenas.

    The iteration space is recursively split into grains and the grains
    are claimed by whichever thread is free — here modelled by a seeded
    random assignment that changes on every call, the way TBB's
    work-stealing produces a different mapping on every time step.  On
    a multi-socket machine this is precisely what destroys NUMA
    locality.

    Args:
        grain_size: Items per grain; None picks ``n_items`` /
            (threads * target_grains_per_thread), mimicking
            ``tbb::auto_partitioner``.
        target_grains_per_thread: Grains each thread should see with
            the automatic grain size.
        seed: Seed of the assignment RNG (per-instance stream; calls
            advance the stream).
    """

    def __init__(self, grain_size: Optional[int] = None,
                 target_grains_per_thread: int = 16,
                 seed: int = 12345) -> None:
        if grain_size is not None and grain_size < 1:
            raise ConfigurationError(
                f"grain_size must be >= 1, got {grain_size}")
        if target_grains_per_thread < 1:
            raise ConfigurationError(
                f"target_grains_per_thread must be >= 1, "
                f"got {target_grains_per_thread}")
        self.grain_size = grain_size
        self.target_grains_per_thread = int(target_grains_per_thread)
        self._rng = np.random.default_rng(seed)

    def _grain(self, n_items: int, n_threads: int) -> int:
        if self.grain_size is not None:
            return self.grain_size
        return max(1, n_items
                   // (n_threads * self.target_grains_per_thread))

    def schedule(self, n_items: int, topology: ThreadTopology) -> Schedule:
        if n_items < 0:
            raise ConfigurationError(f"n_items must be >= 0, got {n_items}")
        from ..resilience.faults import active_fault_injector
        injector = active_fault_injector()
        n_threads = topology.n_threads
        if injector is not None and injector.scheduler_imbalance():
            # Injected imbalance: half the worker threads stall for
            # this launch, so the survivors absorb the whole deal.
            n_threads = max(1, n_threads // 2)
        grain = self._grain(n_items, n_threads)
        starts = list(range(0, n_items, grain))
        # Threads claim grains as they finish the previous one; with
        # uniform per-item cost this is a balanced random deal of the
        # grain sequence across threads.
        deal = self._rng.permutation(len(starts))
        chunks = []
        for order, grain_index in enumerate(deal):
            start = starts[grain_index]
            end = min(start + grain, n_items)
            thread = order % n_threads
            chunks.append(Chunk(start, end, thread))
        return Schedule(chunks, topology, n_items, dynamic=True)


class NumaArenaScheduler(Scheduler):
    """TBB with one arena per NUMA domain (``DPCPP_CPU_PLACES=numa_domains``).

    The iteration space is divided between domains proportionally to
    their thread counts — *statically*, so a given particle is always
    processed by the same domain — and scheduled dynamically only among
    the threads of that domain.
    """

    def __init__(self, grain_size: Optional[int] = None,
                 target_grains_per_thread: int = 16,
                 seed: int = 54321) -> None:
        self._inner = DynamicScheduler(grain_size, target_grains_per_thread,
                                       seed)

    def schedule(self, n_items: int, topology: ThreadTopology) -> Schedule:
        if n_items < 0:
            raise ConfigurationError(f"n_items must be >= 0, got {n_items}")
        domains = topology.active_domains
        weights = [len(topology.threads_in_domain(d)) for d in domains]
        total_threads = sum(weights)
        chunks: List[Chunk] = []
        offset = 0
        for domain, weight in zip(domains, weights):
            size = n_items * weight // total_threads
            if domain == domains[-1]:
                size = n_items - offset
            domain_threads = topology.threads_in_domain(domain)
            sub = self._inner.schedule(
                size, _SubsetTopology(topology, domain_threads))
            for chunk in sub.chunks:
                chunks.append(Chunk(chunk.start + offset,
                                    chunk.end + offset,
                                    domain_threads[chunk.thread]))
            offset += size
        return Schedule(chunks, topology, n_items, dynamic=True)


class _SubsetTopology(ThreadTopology):
    """View of a topology restricted to an explicit thread subset.

    Thread ids are renumbered 0..len(subset)-1; used internally by the
    arena scheduler to run the dynamic scheduler inside one domain.
    """

    is_subset = True

    def __init__(self, parent: ThreadTopology, threads: List[int]) -> None:
        self._parent = parent
        self._threads = list(threads)
        self.device = parent.device
        self.units = max(1, len({parent.unit_of(t) for t in threads}))
        self.threads_per_unit = max(
            1, len(threads) // max(1, self.units))

    @property
    def n_threads(self) -> int:
        return len(self._threads)

    def unit_of(self, thread: int) -> int:
        return self._parent.unit_of(self._threads[thread])

    def domain_of(self, thread: int) -> int:
        return self._parent.domain_of(self._threads[thread])


#: Work-group size :class:`GpuScheduler` uses unless overridden — also
#: what the cost model's schedule-free predictor assumes for occupancy.
DEFAULT_WORKGROUP_SIZE = 256


class GpuScheduler(Scheduler):
    """Work-group scheduling on a (single-domain) GPU.

    Work items are grouped into fixed-size work-groups dispatched
    round-robin over the EU hardware threads.  Locality is moot (one
    memory domain); the schedule exists so the cost model can account
    compute occupancy and per-group dispatch overhead uniformly.
    """

    def __init__(self, workgroup_size: int = DEFAULT_WORKGROUP_SIZE) -> None:
        if workgroup_size < 1:
            raise ConfigurationError(
                f"workgroup_size must be >= 1, got {workgroup_size}")
        self.workgroup_size = int(workgroup_size)
        # Same memoization as StaticScheduler: GPU dispatches build tens
        # of thousands of work-group chunks, identical launch to launch.
        self._memo: Dict[tuple, List[Chunk]] = {}

    def schedule(self, n_items: int, topology: ThreadTopology) -> Schedule:
        if n_items < 0:
            raise ConfigurationError(f"n_items must be >= 0, got {n_items}")
        key = (n_items, topology.n_threads)
        chunks = self._memo.get(key)
        if chunks is None:
            chunks = []
            for index, start in enumerate(range(0, n_items,
                                                self.workgroup_size)):
                end = min(start + self.workgroup_size, n_items)
                chunks.append(Chunk(start, end, index % topology.n_threads))
            self._memo[key] = chunks
        return Schedule(chunks, topology, n_items, dynamic=False)
