"""Convenience builders for device descriptors.

The calibrated Table-1 devices live in :mod:`repro.bench.calibration`;
these builders let downstream users describe *their own* hardware from
datasheet-level numbers (cores, clock, memory channels, EU counts) with
sensible Skylake/Gen9-era defaults for the micro-architectural
constants, so the cost model can predict NSPS on machines the paper
never touched.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .device import DeviceDescriptor, DeviceType

__all__ = ["make_cpu_descriptor", "make_gpu_descriptor"]

#: Fraction of theoretical DDR bandwidth a mixed read/write kernel
#: typically sustains (STREAM-like).
_DDR_EFFICIENCY = 0.62


def make_cpu_descriptor(name: str,
                        cores_per_socket: int,
                        sockets: int = 1,
                        clock_ghz: float = 2.4,
                        flops_per_cycle_sp: float = 32.0,
                        memory_channels: int = 6,
                        channel_gbps: float = 23.5,
                        hyperthreading: bool = True,
                        l3_mb_per_socket: float = 32.0,
                        single_core_gbps: float = 5.0,
                        interconnect_gbps: float = 55.0,
                        vector_efficiency: float = 0.25,
                        ) -> DeviceDescriptor:
    """Build a multi-socket x86 CPU descriptor from datasheet numbers.

    Args:
        name: Display name.
        cores_per_socket: Physical cores per socket.
        sockets: NUMA domains.
        clock_ghz: Sustained all-core clock under vector load.
        flops_per_cycle_sp: Peak SP flops per core-cycle (32 for one
            AVX-512 FMA pipe, 64 for two).
        memory_channels: DDR channels per socket.
        channel_gbps: Theoretical GB/s per channel (23.5 for DDR4-2933).
        hyperthreading: Two hardware threads per core.
        l3_mb_per_socket: Last-level cache per socket [MB].
        single_core_gbps: Bandwidth one core can extract alone [GB/s].
        interconnect_gbps: Cross-socket (UPI/IF) bandwidth [GB/s].
        vector_efficiency: Fraction of peak the target loop sustains.
    """
    if cores_per_socket < 1 or sockets < 1:
        raise ConfigurationError("cores_per_socket and sockets must be >= 1")
    domain_bandwidth = (memory_channels * channel_gbps * 1.0e9
                        * _DDR_EFFICIENCY)
    return DeviceDescriptor(
        name=name,
        device_type=DeviceType.CPU,
        compute_units=cores_per_socket * sockets,
        threads_per_unit=2 if hyperthreading else 1,
        numa_domains=sockets,
        clock_hz=clock_ghz * 1.0e9,
        flops_per_cycle_sp=flops_per_cycle_sp,
        dp_throughput_ratio=0.5,
        vector_efficiency=vector_efficiency,
        domain_bandwidth=domain_bandwidth,
        interconnect_bandwidth=interconnect_gbps * 1.0e9,
        unit_bandwidth=single_core_gbps * 1.0e9,
        smt_bandwidth_boost=1.25 if hyperthreading else 1.0,
        smt_domain_efficiency=0.88 if hyperthreading else 1.0,
        cache_per_domain=l3_mb_per_socket * 1.0e6,
    )


def make_gpu_descriptor(name: str,
                        execution_units: int,
                        clock_ghz: float,
                        memory_gbps: float,
                        flops_per_cycle_sp: float = 16.0,
                        threads_per_eu: int = 7,
                        dp_throughput_ratio: float = 0.25,
                        l3_mb: float = 1.0,
                        discrete: bool = False,
                        pcie_gbps: float = 12.0,
                        vector_efficiency: float = 0.5,
                        ) -> DeviceDescriptor:
    """Build an Intel-style GPU descriptor from datasheet numbers.

    Args:
        name: Display name.
        execution_units: EU count.
        clock_ghz: Boost clock under load.
        memory_gbps: Achievable device-memory bandwidth [GB/s].
        flops_per_cycle_sp: SP flops per EU-cycle (16 on Gen9/Gen11/Xe).
        threads_per_eu: Hardware threads per EU.
        dp_throughput_ratio: DP:SP throughput (use ~0.03 for emulated).
        l3_mb: GPU L3 [MB].
        discrete: True for PCIe-attached cards; buffer transfers are
            then charged at ``pcie_gbps``.
        pcie_gbps: Host link bandwidth for discrete cards [GB/s].
        vector_efficiency: Fraction of peak the target kernel sustains.
    """
    if execution_units < 1:
        raise ConfigurationError("execution_units must be >= 1")
    bandwidth = memory_gbps * 1.0e9
    return DeviceDescriptor(
        name=name,
        device_type=DeviceType.GPU,
        compute_units=execution_units,
        threads_per_unit=threads_per_eu,
        numa_domains=1,
        clock_hz=clock_ghz * 1.0e9,
        flops_per_cycle_sp=flops_per_cycle_sp,
        dp_throughput_ratio=dp_throughput_ratio,
        vector_efficiency=vector_efficiency,
        domain_bandwidth=bandwidth,
        interconnect_bandwidth=bandwidth,
        unit_bandwidth=bandwidth,
        smt_bandwidth_boost=1.0,
        cache_per_domain=l3_mb * 1.0e6,
        kernel_launch_overhead=15.0e-6,
        jit_compile_seconds=0.3,
        host_transfer_bandwidth=(pcie_gbps * 1.0e9 if discrete
                                 else 1.0e15),
    )
