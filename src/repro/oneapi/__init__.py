"""Execution-model simulator of the DPC++/oneAPI runtime.

The paper's evaluation is a story about runtime mechanisms: USM memory
with NUMA first-touch pages, OpenMP-style static versus TBB-style
dynamic scheduling, NUMA arenas (``DPCPP_CPU_PLACES=numa_domains``),
layout-dependent memory traffic, JIT compilation on first kernel
launch, and the roofline of each device.  With no Intel hardware or
DPC++ toolchain available, this subpackage substitutes each mechanism
with an explicit, testable model:

* :mod:`~repro.oneapi.device` — device descriptors (cores/EUs, clocks,
  bandwidths, NUMA domains) mirroring the paper's Table 1;
* :mod:`~repro.oneapi.memory` — the USM allocation model with 4-KiB
  pages and first-touch NUMA placement;
* :mod:`~repro.oneapi.scheduler` — static (OpenMP), dynamic (TBB) and
  NUMA-arena chunk schedulers over an explicit thread topology;
* :mod:`~repro.oneapi.kernelspec` — per-work-item byte and flop
  characterisation of kernels by layout/scenario/precision;
* :mod:`~repro.oneapi.costmodel` — the roofline timing model that
  combines all of the above into simulated kernel times;
* :mod:`~repro.oneapi.queue` / :mod:`~repro.oneapi.runtime` — the
  SYCL-like queue API: kernels execute *for real* on numpy arrays while
  every launch is also timed by the cost model.

Simulated times are what the benchmark harness reports as the paper's
NSPS numbers; the physics produced by the kernels is real.
"""

from .device import DeviceType, DeviceDescriptor
from .memory import UsmKind, UsmAllocation, UsmMemoryManager, PAGE_SIZE
from .scheduler import (
    ThreadTopology,
    Chunk,
    Schedule,
    StaticScheduler,
    DynamicScheduler,
    NumaArenaScheduler,
    GpuScheduler,
)
from .kernelspec import KernelSpec, StreamKind, MemoryStream
from .costmodel import CostModel, LaunchTiming
from .buffer import AccessMode, Accessor, Buffer
from .builders import make_cpu_descriptor, make_gpu_descriptor
from .events import SimEvent, Timeline
from .roofline import RooflinePoint, analyze_kernel
from .queue import Queue, KernelLaunchRecord, RuntimeConfig
from .programcache import CacheStats, ProgramCache, ProgramKey
from .graph import (FusionPass, FusionPlan, GraphExecutor, KernelGraph,
                    KernelNode, fuse_nodes)
from .runtime import (
    PUSH_FLOPS,
    build_push_spec,
    build_virtual_push_spec,
    build_field_eval_spec,
    build_diagnostics_spec,
    PushEngine,
)

__all__ = [
    "AccessMode",
    "Accessor",
    "Buffer",
    "make_cpu_descriptor",
    "make_gpu_descriptor",
    "RooflinePoint",
    "analyze_kernel",
    "SimEvent",
    "Timeline",
    "PUSH_FLOPS",
    "build_push_spec",
    "build_virtual_push_spec",
    "build_field_eval_spec",
    "build_diagnostics_spec",
    "PushEngine",
    "CacheStats",
    "ProgramCache",
    "ProgramKey",
    "FusionPass",
    "FusionPlan",
    "GraphExecutor",
    "KernelGraph",
    "KernelNode",
    "fuse_nodes",
    "DeviceType",
    "DeviceDescriptor",
    "UsmKind",
    "UsmAllocation",
    "UsmMemoryManager",
    "PAGE_SIZE",
    "ThreadTopology",
    "Chunk",
    "Schedule",
    "StaticScheduler",
    "DynamicScheduler",
    "NumaArenaScheduler",
    "GpuScheduler",
    "KernelSpec",
    "StreamKind",
    "MemoryStream",
    "CostModel",
    "LaunchTiming",
    "Queue",
    "KernelLaunchRecord",
    "RuntimeConfig",
]
