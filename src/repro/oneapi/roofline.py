"""Roofline analysis: why the paper's kernel is memory-bound.

The paper repeatedly explains its results through memory-boundedness
("the main factor limiting performance is not loading data into vector
registers, but working with RAM").  This module makes that argument
quantitative: for a kernel spec and a device it computes the
arithmetic intensity, the device's ridge point, and the predicted
roofline ceiling — the classic Williams/Waterman/Patterson analysis,
driven by the same numbers the cost model uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import KernelError
from ..fp import Precision
from .device import DeviceDescriptor
from .kernelspec import KernelSpec, StreamKind

__all__ = ["RooflinePoint", "analyze_kernel"]


@dataclass(frozen=True)
class RooflinePoint:
    """Position of one kernel on one device's roofline.

    Attributes:
        kernel_name: The analysed kernel.
        device_name: The device.
        arithmetic_intensity: Flops per DRAM byte actually moved.
        ridge_intensity: Device balance point (flops/s over bytes/s);
            kernels below it are memory-bound.
        memory_bound: Whether the kernel sits left of the ridge.
        bandwidth_ceiling_flops: Attainable flops/s at this intensity
            under the bandwidth roof.
        compute_ceiling_flops: The device's sustained compute roof.
        predicted_nsps: Roofline-predicted nanoseconds per item per
            step (no scheduling/NUMA effects — the cost model adds
            those).
    """

    kernel_name: str
    device_name: str
    arithmetic_intensity: float
    ridge_intensity: float
    memory_bound: bool
    bandwidth_ceiling_flops: float
    compute_ceiling_flops: float
    predicted_nsps: float


def _effective_bytes_per_item(spec: KernelSpec,
                              device: DeviceDescriptor) -> float:
    """DRAM traffic per item under the cost model's stream rules."""
    total = 0.0
    for stream in spec.streams:
        multiplier = 1.0
        if stream.kind is StreamKind.READ_WRITE:
            multiplier = 2.0
        elif stream.kind is StreamKind.WRITE:
            multiplier = 2.0 if device.write_allocate else 1.0
        total += stream.span_bytes_per_item * multiplier
    return total


def analyze_kernel(spec: KernelSpec, device: DeviceDescriptor,
                   precision: Precision = Precision.SINGLE
                   ) -> RooflinePoint:
    """Place ``spec`` on ``device``'s roofline.

    Uses the device's *sustained* numbers (achievable bandwidth, vector
    efficiency), matching the cost model rather than marketing peaks.
    """
    bytes_per_item = _effective_bytes_per_item(spec, device)
    if bytes_per_item <= 0.0:
        raise KernelError(
            "roofline analysis needs a kernel with memory streams")
    flops = spec.flops_per_item
    intensity = flops / bytes_per_item

    bandwidth = device.total_bandwidth
    compute_roof = (device.compute_units * device.clock_hz
                    * device.flops_per_cycle_sp * device.vector_efficiency)
    if precision is Precision.DOUBLE:
        compute_roof *= device.dp_throughput_ratio
    ridge = compute_roof / bandwidth

    bandwidth_ceiling = bandwidth * intensity
    attainable = min(bandwidth_ceiling, compute_roof)
    # ns per item = flops / attainable flops-rate.
    predicted_nsps = flops / attainable * 1.0e9 if flops > 0 else \
        bytes_per_item / bandwidth * 1.0e9

    return RooflinePoint(
        kernel_name=spec.name,
        device_name=device.name,
        arithmetic_intensity=intensity,
        ridge_intensity=ridge,
        memory_bound=intensity < ridge,
        bandwidth_ceiling_flops=bandwidth_ceiling,
        compute_ceiling_flops=compute_roof,
        predicted_nsps=predicted_nsps,
    )
