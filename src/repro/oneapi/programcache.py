"""Persistent JIT program cache: pay the compile once per program.

The paper attributes its ~50%-slower first iteration to JIT compilation
of the kernel (plus cold first-touch memory).  Real DPC++ runtimes
mitigate exactly this with a *program cache*: the compiled binary is
keyed by (kernel chain, device, build options) and reused — in-process
always, and across processes when persistent caching
(``SYCL_CACHE_PERSISTENT``) is enabled.

:class:`ProgramCache` reproduces both halves of that mechanism for the
simulated runtime:

* a **cold** build charges the device's calibrated
  ``jit_compile_seconds`` to the launch that triggered it — the
  first-iteration penalty the paper measures;
* a **warm** hit charges nothing — in-process reuse, or an entry
  restored from the optional on-disk persistence file;
* the cache is **shareable**: one instance can back every queue of a
  device group, so shard N+1 of the same device model never recompiles
  the program shard 0 already built (keys use the device *model*, not
  the per-card instance name).

Keys are :class:`ProgramKey` — ``(kernel chain, device, layout,
precision, backend)`` — so a fused kernel chain is a different program
from its constituent kernels, and the same chain rebuilt for another
layout or precision is a different program too (a real JIT specialises
on both).  The backend field keeps runtimes isolated: the same chain
JIT-compiled by the simulated oneAPI backend (SPIR-V -> ISA) is *not*
a warm hit for the simulated CUDA backend (NVRTC -> cubin), even when
one shared cache instance backs queues of both (see
:mod:`repro.backends`).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["ProgramKey", "ProgramCache"]

#: Schema marker of the persistence file.
_PERSIST_VERSION = 1


@dataclass(frozen=True)
class ProgramKey:
    """Identity of one compiled program.

    Attributes:
        chain: Ordered kernel names compiled into the program (length 1
            for an unfused kernel, >1 for a fused chain).
        device: Device *model* identity (``DeviceDescriptor.jit_key``),
            so same-model cards in a group share programs.
        layout: Particle layout the program was specialised for ("AoS",
            "SoA", or "" when the kernel is layout-agnostic).
        precision: Storage precision label ("float", "double", or "").
        backend: Runtime backend that compiled the program (see
            :mod:`repro.backends`); distinct backends never share
            compiled artefacts.
    """

    chain: Tuple[str, ...]
    device: str
    layout: str = ""
    precision: str = ""
    backend: str = "oneapi"

    def __post_init__(self) -> None:
        if not self.chain or any(not name for name in self.chain):
            raise ConfigurationError(
                f"program key needs a non-empty kernel chain, "
                f"got {self.chain!r}")
        if not self.device:
            raise ConfigurationError("program key needs a device identity")
        if not self.backend:
            raise ConfigurationError("program key needs a backend identity")

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the persistence file format)."""
        return {"chain": list(self.chain), "device": self.device,
                "layout": self.layout, "precision": self.precision,
                "backend": self.backend}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProgramKey":
        # ``backend`` defaults to "oneapi" so persistence files written
        # before the backend field existed load as oneAPI programs.
        return cls(chain=tuple(data["chain"]), device=str(data["device"]),
                   layout=str(data.get("layout", "")),
                   precision=str(data.get("precision", "")),
                   backend=str(data.get("backend", "oneapi")))


@dataclass
class CacheStats:
    """Running totals of one cache (never reset by :meth:`ProgramCache.clear`)."""

    hits: int = 0
    misses: int = 0
    jit_seconds_charged: float = 0.0
    persisted_hits: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "jit_seconds_charged": self.jit_seconds_charged,
                "persisted_hits": self.persisted_hits}


class ProgramCache:
    """Tracks which programs have been JIT-compiled, per device model.

    Args:
        persist_path: Optional path of an on-disk persistence file.
            When given, previously persisted entries are loaded at
            construction (they count as warm — the cross-process cache
            hit of ``SYCL_CACHE_PERSISTENT``) and every new build is
            appended.  A missing, truncated or otherwise corrupt file
            means a *cold* cache, exactly like a real JIT cache whose
            directory was damaged: the builds recompile (and are
            charged), and the next build rewrites the file whole.  A
            corrupt load is reported through the active tracer
            (``program-cache:corrupt``), never raised — a stale cache
            file must not be able to kill a run.

    Thread-safe: shards of a device group build programs concurrently
    in principle, so entry/stat updates take a lock.
    """

    def __init__(self, persist_path: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[ProgramKey, int] = {}
        #: Keys that were warm because the persistence file carried them.
        self._persisted: set = set()
        self.stats = CacheStats()
        self.persist_path = Path(persist_path) if persist_path else None
        if self.persist_path is not None and self.persist_path.exists():
            self._load()

    # -- the one operation queues use -----------------------------------

    def build(self, key: ProgramKey, jit_seconds: float) -> float:
        """Ensure ``key``'s program exists; return the JIT cost to charge.

        Cold (first build of this key): records the entry, persists it
        when a persistence file is configured, and returns
        ``jit_seconds`` — the caller charges it to the triggering
        launch.  Warm: returns 0.0.
        """
        if jit_seconds < 0.0:
            raise ConfigurationError(
                f"jit_seconds must be >= 0, got {jit_seconds}")
        with self._lock:
            if key in self._entries:
                self._entries[key] += 1
                self.stats.hits += 1
                if key in self._persisted:
                    self.stats.persisted_hits += 1
                return 0.0
            self._entries[key] = 0
            self.stats.misses += 1
            self.stats.jit_seconds_charged += jit_seconds
            if self.persist_path is not None:
                self._save_locked()
            return jit_seconds

    def is_warm(self, key: ProgramKey) -> bool:
        """True when ``key``'s program is already compiled (no charge)."""
        with self._lock:
            return key in self._entries

    def warm_profiles(self) -> frozenset:
        """Snapshot of warm ``(backend, device, layout, precision)`` rows.

        The cache-locality signal the service scheduler's bin-packer
        reads: a job whose (backend, device model, layout, precision)
        profile appears here will pay no JIT on that model, so placing
        it there amortizes the compile another job already charged.
        Coarser than :meth:`is_warm` on purpose — placement happens
        before the job's exact kernel chains exist.
        """
        with self._lock:
            return frozenset(
                (key.backend, key.device, key.layout, key.precision)
                for key in self._entries)

    def is_profile_warm(self, device: str, layout: str,
                        precision: str,
                        backend: Optional[str] = None) -> bool:
        """Whether any program is warm for this placement profile.

        ``device`` is a :attr:`DeviceDescriptor.jit_key` (the model);
        ``layout``/``precision`` are the spelled values a
        :class:`ProgramKey` carries ("SoA", "float", ...).  Programs
        keyed with empty layout/precision (layout-agnostic kernels)
        match any requested value.  ``backend`` pins the check to one
        runtime's programs — a chain another backend compiled is a
        different artefact and never counts as warm; ``None`` matches
        any backend (pre-backend behaviour).
        """
        with self._lock:
            for key in self._entries:
                if key.device != device:
                    continue
                if backend is not None and key.backend != backend:
                    continue
                if key.layout in ("", layout) \
                        and key.precision in ("", precision):
                    return True
            return False

    # -- lifecycle -------------------------------------------------------

    def clear(self, device: Optional[str] = None) -> int:
        """Forget compiled programs (fresh-process state); returns count.

        ``device`` restricts the purge to one device model — what
        :meth:`repro.oneapi.queue.Queue.reset_warmup` uses, so one
        queue's warm-up reset does not chill a shared cache's other
        devices.  Stats are cumulative and survive.
        """
        with self._lock:
            if device is None:
                dropped = len(self._entries)
                self._entries.clear()
                self._persisted.clear()
            else:
                doomed = [k for k in self._entries if k.device == device]
                dropped = len(doomed)
                for key in doomed:
                    del self._entries[key]
                    self._persisted.discard(key)
            return dropped

    def keys(self) -> Iterable[ProgramKey]:
        """Snapshot of the compiled program keys."""
        with self._lock:
            return tuple(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- persistence -----------------------------------------------------

    def _load(self) -> None:
        from ..observability.tracer import active_tracer

        try:
            with open(self.persist_path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            if document.get("version") != _PERSIST_VERSION:
                raise KeyError("version")
            keys = [ProgramKey.from_dict(entry)
                    for entry in document["programs"]]
        except (OSError, ValueError, KeyError, TypeError,
                ConfigurationError) as exc:
            # Torn write, truncation, wrong file: start cold.  The next
            # cold build calls _save_locked and rewrites the file whole.
            tracer = active_tracer()
            if tracer is not None:
                tracer.instant("program-cache:corrupt", "jit",
                               path=str(self.persist_path),
                               error=f"{type(exc).__name__}: {exc}")
            return
        for key in keys:
            self._entries[key] = 0
            self._persisted.add(key)

    def _save_locked(self) -> None:
        """Write the persistence file (caller holds the lock)."""
        document = {"version": _PERSIST_VERSION,
                    "programs": [key.as_dict() for key in self._entries]}
        self.persist_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.persist_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")

    def save(self) -> Optional[Path]:
        """Explicitly write the persistence file; returns its path."""
        if self.persist_path is None:
            return None
        with self._lock:
            self._save_locked()
        return self.persist_path
