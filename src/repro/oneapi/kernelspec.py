"""Kernel characterisation: memory streams and arithmetic per work item.

The cost model does not inspect Python bytecode; kernels declare what
they do per work item through a :class:`KernelSpec` — a set of
:class:`MemoryStream` entries (who is read/written, how many bytes per
item, whether access is contiguous) plus a flop count.  The benchmark
scenarios build these specs from the particle layout, precision and
field scenario under study (see
:func:`repro.bench.scenarios.build_kernel_spec`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..errors import KernelError
from .memory import UsmAllocation

__all__ = ["StreamKind", "MemoryStream", "KernelSpec"]


class StreamKind(enum.Enum):
    """Access mode of a memory stream."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"


@dataclass(frozen=True)
class MemoryStream:
    """One per-item memory access pattern of a kernel.

    Attributes:
        name: Label for diagnostics ("particle-records", "fields-soa").
        kind: Read, write, or read-modify-write.
        bytes_per_item: Useful payload bytes per work item.
        span_bytes_per_item: Bytes of address space per item the stream
            walks over (the record size for AoS; equals
            ``bytes_per_item`` for packed SoA).  Cache-line granularity
            means the span, not the payload, is what moves.
        contiguous: Whether consecutive items are adjacent in memory
            (False for strided AoS component access); non-contiguous
            streams pay the device's strided-access efficiency.
        allocation: The USM allocation the stream walks (None for pure
            modelling without NUMA accounting — such streams count as
            domain-local).
    """

    name: str
    kind: StreamKind
    bytes_per_item: float
    span_bytes_per_item: float = 0.0
    contiguous: bool = True
    allocation: Optional[UsmAllocation] = None

    def __post_init__(self) -> None:
        if self.bytes_per_item < 0:
            raise KernelError(f"stream {self.name!r}: bytes_per_item must "
                              f"be >= 0, got {self.bytes_per_item}")
        if self.span_bytes_per_item == 0.0:
            object.__setattr__(self, "span_bytes_per_item",
                               self.bytes_per_item)
        if self.span_bytes_per_item < self.bytes_per_item:
            raise KernelError(
                f"stream {self.name!r}: span_bytes_per_item "
                f"({self.span_bytes_per_item}) must be >= bytes_per_item "
                f"({self.bytes_per_item})")


@dataclass(frozen=True)
class KernelSpec:
    """Complete per-item characterisation of one kernel.

    Attributes:
        name: Kernel name (also the JIT-cache key of the queue).
        streams: The kernel's memory streams.
        flops_per_item: Floating-point work per item in
            single-precision-equivalent flops (the device's DP
            throughput ratio converts for double).
        working_set_bytes_per_item: Unique bytes an item's data
            occupies — used for the cache-residency check.  Defaults to
            the sum of stream spans.
    """

    name: str
    streams: Tuple[MemoryStream, ...]
    flops_per_item: float
    working_set_bytes_per_item: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise KernelError("kernel spec needs a non-empty name")
        if self.flops_per_item < 0:
            raise KernelError(f"flops_per_item must be >= 0, "
                              f"got {self.flops_per_item}")
        if self.working_set_bytes_per_item == 0.0:
            object.__setattr__(
                self, "working_set_bytes_per_item",
                sum(s.span_bytes_per_item for s in self.streams))

    @property
    def has_strided_streams(self) -> bool:
        """True when any stream is non-contiguous (AoS component access)."""
        return any(not s.contiguous for s in self.streams)

    @property
    def reads(self) -> FrozenSet[str]:
        """Stream names this kernel reads (incl. read-modify-write).

        The single source of truth for *declared* access: the kernel
        graph's nodes and the queue's command log — and hence the
        hazard detector — all derive their read/write sets here.
        """
        return frozenset(s.name for s in self.streams
                         if s.kind in (StreamKind.READ,
                                       StreamKind.READ_WRITE))

    @property
    def writes(self) -> FrozenSet[str]:
        """Stream names this kernel writes (incl. read-modify-write)."""
        return frozenset(s.name for s in self.streams
                         if s.kind in (StreamKind.WRITE,
                                       StreamKind.READ_WRITE))

    def payload_bytes_per_item(self) -> float:
        """Useful bytes per item across all streams (reads + writes once)."""
        return sum(s.bytes_per_item for s in self.streams)
