"""Unified Shared Memory (USM) model with NUMA first-touch pages.

The paper uses the USM model ("the simplest, but quite functional
option") and finds that NUMA page placement dominates CPU performance.
This module models exactly the mechanism behind that finding: USM
allocations are divided into 4-KiB pages, and each page is *homed* in
the NUMA domain of the first thread that touches it.  A kernel chunk
executing in domain ``e`` that accesses a page homed in domain ``h``
generates cross-domain (UPI) traffic when ``e != h`` — the quantity
the cost model charges against the interconnect.

Allocations can be *backed* (wrapping a real numpy array, used when the
kernels actually run) or *virtual* (size only, used when modelling the
paper's 1e7-particle working set without allocating 720 MB).

The resilience layer hooks in at two points (both no-ops unless a
:func:`~repro.resilience.faults.active_fault_injector` is installed):
adopting a *new* allocation may be refused
(:class:`~repro.errors.AllocationFailedError`), and an allocation can
be *poisoned* — reads fail until the recovery layer scrubs it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import MemoryModelError
from ..observability.tracer import active_tracer
from ..resilience.faults import active_fault_injector

__all__ = ["PAGE_SIZE", "UsmKind", "UsmAllocation", "UsmMemoryManager"]

#: Small page size used for first-touch accounting [bytes].
PAGE_SIZE = 4096


class UsmKind:
    """USM allocation kinds (string constants, mirroring sycl::usm::alloc)."""

    HOST = "host"
    DEVICE = "device"
    SHARED = "shared"

    ALL = (HOST, DEVICE, SHARED)


class UsmAllocation:
    """One USM allocation: size, kind, and per-page NUMA homing.

    ``page_domains[i]`` is the domain that first touched page ``i``, or
    -1 while untouched.  Touch/locality operations take *byte ranges*
    relative to the allocation start.
    """

    def __init__(self, nbytes: int, kind: str = UsmKind.SHARED,
                 array: Optional[np.ndarray] = None,
                 name: str = "") -> None:
        if nbytes < 0:
            raise MemoryModelError(f"nbytes must be >= 0, got {nbytes}")
        if kind not in UsmKind.ALL:
            raise MemoryModelError(f"unknown USM kind {kind!r}")
        self.nbytes = int(nbytes)
        self.kind = kind
        self.array = array
        self.name = name or (f"usm-{id(self):x}" if array is None
                             else f"usm-array-{id(array):x}")
        self.page_domains = np.full(self.n_pages, -1, dtype=np.int16)
        #: Set by fault injection; a poisoned allocation fails the
        #: queue's pre-launch read check until :meth:`scrub` clears it.
        self.poisoned = False

    @property
    def n_pages(self) -> int:
        """Number of (possibly partial) pages in the allocation."""
        return (self.nbytes + PAGE_SIZE - 1) // PAGE_SIZE

    def _page_range(self, start: int, end: int) -> Tuple[int, int]:
        if not 0 <= start <= end <= self.nbytes:
            raise MemoryModelError(
                f"byte range [{start}, {end}) outside allocation "
                f"{self.name!r} of {self.nbytes} bytes")
        if start == end:
            return 0, 0
        return start // PAGE_SIZE, (end - 1) // PAGE_SIZE + 1

    def touch(self, start: int, end: int, domain: int) -> int:
        """First-touch the byte range from a thread in ``domain``.

        Pages already homed keep their home (that is what first-touch
        means).  Returns the number of pages newly homed — the cost
        model charges these with the cold-page (page fault + zeroing)
        penalty of the first iteration.
        """
        p0, p1 = self._page_range(start, end)
        if p0 == p1:
            return 0
        pages = self.page_domains[p0:p1]
        fresh = pages < 0
        count = int(fresh.sum())
        if count:
            pages[fresh] = domain
        return count

    def locality(self, start: int, end: int, domain: int
                 ) -> Tuple[int, int]:
        """Split a byte range into (local, remote) bytes for ``domain``.

        Untouched pages count as local (they are about to be homed by
        this access).  Partial first/last pages are attributed
        proportionally.
        """
        p0, p1 = self._page_range(start, end)
        if p0 == p1:
            return 0, 0
        total = end - start
        pages = self.page_domains[p0:p1]
        remote_mask = (pages >= 0) & (pages != domain)
        if not remote_mask.any():
            return total, 0
        sizes = np.full(p1 - p0, PAGE_SIZE, dtype=np.int64)
        sizes[0] -= start - p0 * PAGE_SIZE
        sizes[-1] -= p1 * PAGE_SIZE - end
        remote = int(sizes[remote_mask].sum())
        return total - remote, remote

    def home_histogram(self) -> Dict[int, int]:
        """Pages homed per domain (untouched pages under key -1)."""
        domains, counts = np.unique(self.page_domains, return_counts=True)
        return {int(d): int(c) for d, c in zip(domains, counts)}

    def reset_pages(self) -> None:
        """Forget all first-touch assignments (e.g. after a free+realloc)."""
        self.page_domains[:] = -1

    def poison(self) -> None:
        """Mark the allocation corrupted (fault-injection entry point)."""
        self.poisoned = True

    def scrub(self) -> None:
        """Repair a poisoned allocation (recovery entry point)."""
        self.poisoned = False


@dataclass
class _Registration:
    allocation: UsmAllocation


class UsmMemoryManager:
    """Tracks USM allocations for one simulated device/queue.

    When a tracer is active, every allocation event (``register``,
    ``virtual``, ``free`` — ``malloc_*`` routes through ``register``)
    is reported as an instant marker plus a ``usm_allocated_bytes``
    counter sample, so an exported trace shows the working set's
    growth next to the kernel timeline.
    """

    def __init__(self) -> None:
        self._by_key: Dict[int, UsmAllocation] = {}

    def _trace(self, op: str, allocation: UsmAllocation) -> None:
        tracer = active_tracer()
        if tracer is not None:
            tracer.instant(f"usm:{op}", "memory",
                           name=allocation.name, kind=allocation.kind,
                           nbytes=allocation.nbytes,
                           backed=allocation.array is not None)
            tracer.counter("usm_allocated_bytes",
                           total=self.total_allocated)

    def malloc_shared(self, shape, dtype, name: str = "") -> np.ndarray:
        """Allocate a shared USM numpy array and register it."""
        array = np.zeros(shape, dtype=dtype)
        self.register(array, kind=UsmKind.SHARED, name=name)
        return array

    def malloc_device(self, shape, dtype, name: str = "") -> np.ndarray:
        """Allocate a device USM numpy array and register it."""
        array = np.zeros(shape, dtype=dtype)
        self.register(array, kind=UsmKind.DEVICE, name=name)
        return array

    def register(self, array: np.ndarray, kind: str = UsmKind.SHARED,
                 name: str = "") -> UsmAllocation:
        """Adopt an existing numpy array as a USM allocation.

        Registering the same array again returns the existing
        allocation (idempotent), so ensembles can be re-registered
        freely between launches.
        """
        base = array if array.base is None else array.base
        key = id(base)
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        injector = active_fault_injector()
        if injector is not None:
            injector.on_alloc(name, int(base.nbytes))
        allocation = UsmAllocation(int(base.nbytes), kind, array=base,
                                   name=name)
        self._by_key[key] = allocation
        self._trace("register", allocation)
        return allocation

    def virtual(self, nbytes: int, kind: str = UsmKind.SHARED,
                name: str = "") -> UsmAllocation:
        """Create an unbacked allocation (size-only, for pure modelling)."""
        injector = active_fault_injector()
        if injector is not None:
            injector.on_alloc(name, int(nbytes))
        allocation = UsmAllocation(nbytes, kind, array=None, name=name)
        self._by_key[id(allocation)] = allocation
        self._trace("virtual", allocation)
        return allocation

    def allocation_of(self, array: np.ndarray) -> UsmAllocation:
        """Look up the allocation wrapping ``array`` (or its base)."""
        base = array if array.base is None else array.base
        try:
            return self._by_key[id(base)]
        except KeyError:
            raise MemoryModelError(
                "array is not registered with this USM manager; call "
                "register() or allocate through malloc_shared()") from None

    def free(self, allocation: UsmAllocation) -> None:
        """Drop an allocation from the table."""
        for key, value in list(self._by_key.items()):
            if value is allocation:
                del self._by_key[key]
                self._trace("free", allocation)
                return
        raise MemoryModelError(f"allocation {allocation.name!r} is not "
                               "registered with this manager")

    @property
    def total_allocated(self) -> int:
        """Bytes across all live allocations."""
        return sum(a.nbytes for a in self._by_key.values())

    def allocations(self):
        """Iterate over all live allocations."""
        return iter(list(self._by_key.values()))

    def __len__(self) -> int:
        return len(self._by_key)
