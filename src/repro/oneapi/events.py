"""SYCL-style events and the device timeline.

DPC++ queues are out-of-order by default: independent kernels may
overlap, and ordering is expressed through events
(``handler.depends_on``) or buffer accessors.  The paper's ported code
uses the simple serial pattern, but the simulator models the general
semantics so scheduling experiments are possible:

* every launch returns a :class:`SimEvent` carrying its *simulated*
  start and end timestamps;
* an in-order queue starts each launch when the previous one ends;
* an out-of-order queue starts a launch as soon as its declared
  dependencies have completed — independent launches run concurrently
  on the timeline (device *throughput* contention within one launch is
  already captured by the cost model; concurrent launches are assumed
  to partition the device, which is the standard makespan abstraction).

The queue's makespan (:attr:`Timeline.makespan`) is then the simulated
wall time of the whole submission DAG.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import DeviceError
from ..observability.tracer import active_tracer

__all__ = ["SimEvent", "Timeline"]

#: Sequence numbers for default timeline labels (trace track names).
_TIMELINE_SEQ = itertools.count()

#: Process-wide event identities.  Two commands can legitimately share
#: a name and timestamps (e.g. two zero-duration copies), so dependency
#: edges are matched by this id, never by value.
_EVENT_SEQ = itertools.count()


@dataclass(frozen=True)
class SimEvent:
    """Completion event of one simulated command.

    Timestamps are seconds on the queue's simulated timeline.  ``seq``
    is a process-unique identity: the hazard detector
    (:mod:`repro.validation.hazard`) resolves ``depends_on`` edges
    through it, so equality of two events means *the same command*, not
    merely equal timestamps.
    """

    name: str
    start: float
    end: float
    seq: int = field(default_factory=_EVENT_SEQ.__next__)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise DeviceError(
                f"event {self.name!r} ends before it starts "
                f"({self.end} < {self.start})")


class Timeline:
    """Tracks simulated command scheduling for one queue."""

    def __init__(self, in_order: bool = False,
                 label: Optional[str] = None) -> None:
        self.in_order = bool(in_order)
        #: Track name under which this timeline's events appear in an
        #: exported trace (one Perfetto row per timeline).
        self.label = label if label is not None \
            else f"timeline-{next(_TIMELINE_SEQ)}"
        self._events: List[SimEvent] = []
        self._last_end = 0.0

    @property
    def events(self) -> List[SimEvent]:
        """All scheduled events, in submission order."""
        return list(self._events)

    @property
    def makespan(self) -> float:
        """End time of the last-finishing command."""
        return max((e.end for e in self._events), default=0.0)

    def schedule(self, name: str, duration: float,
                 depends_on: Optional[Sequence[SimEvent]] = None,
                 trace_args: Optional[Dict[str, Any]] = None
                 ) -> SimEvent:
        """Place a command of ``duration`` on the timeline.

        In-order queues serialize after the previous command;
        out-of-order queues start once all ``depends_on`` events have
        completed (immediately if there are none).  When a tracer is
        active (:func:`repro.observability.tracer.active_tracer`), the
        placed interval is reported as a simulated-timeline slice under
        this timeline's :attr:`label`, annotated with ``trace_args``.
        """
        if duration < 0.0:
            raise DeviceError(f"duration must be >= 0, got {duration!r}")
        deps_end = max((e.end for e in (depends_on or ())), default=0.0)
        if self.in_order:
            start = max(self._last_end, deps_end)
        else:
            start = deps_end
        event = SimEvent(name=name, start=start, end=start + duration)
        self._events.append(event)
        self._last_end = event.end
        tracer = active_tracer()
        if tracer is not None:
            tracer.sim_slice(name, event.start, event.end, self.label,
                             **(trace_args or {}))
        return event

    def reset(self) -> None:
        """Clear the timeline (new measurement epoch)."""
        self._events.clear()
        self._last_end = 0.0
