"""Kernel-graph IR: record a step's kernels, fuse what the model likes.

The paper's CPU results show the Boris push is bandwidth-bound — the
regime where *kernel fusion* pays: two elementwise passes over the same
particle arrays cost two trips to DRAM, one fused pass costs one, and
an intermediate produced and consumed inside the fused kernel never
touches memory at all.  Dataflow frameworks (DaCe is the canonical
example) get this by recording kernels as graph nodes with declared
read/write sets and merging compatible neighbours; this module is that
mechanism for the simulated runtime.

The pieces:

* :class:`KernelNode` — one kernel occurrence: its
  :class:`~repro.oneapi.kernelspec.KernelSpec`, the real numpy body,
  the item count, layout/precision, and the fusion-relevant flags
  (``elementwise``, ``barrier``, ``transient`` stream names);
* :class:`KernelGraph` — the ordered recording of one step's nodes;
* :class:`FusionPass` — the planner: walks the graph, checks
  *legality* (both elementwise, no barrier between, same item count,
  layout and precision) and asks the
  :class:`~repro.oneapi.costmodel.CostModel` whether the merged kernel
  is actually cheaper (it can refuse, e.g. when the fused working set
  falls out of cache);
* :func:`fuse_nodes` — spec merging: shared streams are deduplicated
  (read + write of the same array becomes one read-modify-write
  stream), and *transient* intermediates — written by one node and read
  by a later node in the same group, flagged ``transient`` by their
  producer — are elided entirely (they live in registers);
* :class:`GraphExecutor` — drives a planned graph through a
  :class:`~repro.oneapi.queue.Queue`, one launch per fused group, with
  each group's program identity
  (:class:`~repro.oneapi.programcache.ProgramKey`) charged through the
  queue's program cache.

Fusion never changes physics: a fused launch runs the node bodies in
recorded order, which is bit-identical to running them as separate
launches.  Only the *declared* memory traffic (and hence the simulated
time) changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import GraphError
from ..fp import Precision
from .costmodel import CostModel
from .kernelspec import KernelSpec, MemoryStream, StreamKind
from .programcache import ProgramKey

__all__ = ["KernelNode", "KernelGraph", "FusionPlan", "FusionPass",
           "fuse_nodes", "group_spec", "unfused_plan", "GraphExecutor"]


@dataclass
class KernelNode:
    """One recorded kernel: what it does, over how many items, and how
    it may legally combine with its neighbours.

    Attributes:
        spec: The kernel's memory/flop characterisation.
        n_items: Work items of this occurrence.
        body: The real numpy callable (None for timing-only graphs).
        layout: Particle layout label ("AoS"/"SoA"; "" = agnostic, which
            only matches itself — fusion across an unknown layout is
            never assumed legal).
        precision: Storage precision of the data the kernel touches.
        elementwise: True when item *i* depends only on item *i* —
            the precondition for fusing with a neighbour.
        barrier: True for kernels with cross-particle dependencies
            (current deposition, particle sorting): they never fuse and
            nothing fuses across them.
        transient: Stream names this node *produces* that exist only to
            feed a later node of the same step; when producer and
            consumer land in one fused group, these streams are elided
            from the fused spec (register-carried intermediates).
        tag: Free-form label for traces ("field-eval", "push", ...).
    """

    spec: KernelSpec
    n_items: int
    body: Optional[Callable[[], None]] = None
    layout: str = ""
    precision: Precision = Precision.DOUBLE
    elementwise: bool = True
    barrier: bool = False
    transient: FrozenSet[str] = frozenset()
    tag: str = ""

    def __post_init__(self) -> None:
        if self.n_items < 0:
            raise GraphError(f"node {self.spec.name!r}: n_items must be "
                             f">= 0, got {self.n_items}")
        if self.barrier and self.transient:
            raise GraphError(
                f"node {self.spec.name!r}: a barrier node cannot declare "
                f"transient streams (it never fuses)")
        unknown = self.transient - {s.name for s in self.spec.streams}
        if unknown:
            raise GraphError(
                f"node {self.spec.name!r}: transient streams "
                f"{sorted(unknown)} are not streams of the spec")

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def reads(self) -> FrozenSet[str]:
        """Stream names this node reads (incl. read-modify-write).

        Delegates to :attr:`KernelSpec.reads` so the graph IR, the
        queue's command log and the hazard detector share one
        derivation of declared access.
        """
        return self.spec.reads

    @property
    def writes(self) -> FrozenSet[str]:
        """Stream names this node writes (incl. read-modify-write)."""
        return self.spec.writes


class KernelGraph:
    """Ordered recording of one step's kernel nodes."""

    def __init__(self) -> None:
        self.nodes: List[KernelNode] = []

    def add(self, node: KernelNode) -> KernelNode:
        """Append a node (recorded order is execution order)."""
        self.nodes.append(node)
        return node

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)


# -- legality ------------------------------------------------------------

def fusion_legal(a: KernelNode, b: KernelNode) -> Tuple[bool, str]:
    """Whether ``b`` may fuse onto a group ending in ``a``; and why not.

    Legal means: both elementwise and barrier-free, identical item
    counts (one fused range), identical layout and precision (one JIT
    specialisation).  Returns ``(ok, reason)`` with ``reason`` empty
    when legal — the planner records the reason in traces so a refused
    fusion is explainable.
    """
    for node in (a, b):
        if node.barrier:
            return False, f"{node.name}: barrier kernel"
        if not node.elementwise:
            return False, f"{node.name}: not elementwise"
    if a.n_items != b.n_items:
        return False, f"item counts differ ({a.n_items} vs {b.n_items})"
    if a.layout != b.layout or not a.layout:
        return False, f"layout mismatch ({a.layout or '?'} vs " \
                      f"{b.layout or '?'})"
    if a.precision is not b.precision:
        return False, (f"precision mismatch ({a.precision.value} vs "
                       f"{b.precision.value})")
    return True, ""


# -- spec merging --------------------------------------------------------

_KIND_MERGE = {
    (StreamKind.READ, StreamKind.READ): StreamKind.READ,
    (StreamKind.WRITE, StreamKind.WRITE): StreamKind.WRITE,
}


def _merge_kinds(first: StreamKind, second: StreamKind) -> StreamKind:
    """Access mode of one stream touched by two fused kernels."""
    return _KIND_MERGE.get((first, second), StreamKind.READ_WRITE)


def fuse_nodes(nodes: Sequence[KernelNode]) -> Tuple[KernelSpec,
                                                     Tuple[str, ...]]:
    """Merge a fused group's specs; returns ``(spec, elided names)``.

    Streams are matched by name.  A stream referenced by several nodes
    appears once, with the combined access mode (a read in one node and
    a write in another becomes a read-modify-write).  A *transient*
    stream — declared by its producer and consumed by a later node of
    the group — is dropped entirely: inside one kernel the intermediate
    values never leave registers.  Flops add up; nothing else about the
    arithmetic changes.
    """
    if not nodes:
        raise GraphError("cannot fuse an empty node group")
    if len({n.n_items for n in nodes}) != 1:
        raise GraphError(
            f"fused nodes must share an item count, got "
            f"{[n.n_items for n in nodes]}")
    transient_writers: Dict[str, KernelNode] = {}
    for node in nodes:
        for name in node.transient:
            transient_writers[name] = node
    consumed = set()
    for node in nodes:
        consumed |= node.reads
    elided = tuple(sorted(name for name, writer in transient_writers.items()
                          if name in consumed))
    elided_set = set(elided)

    merged: Dict[str, MemoryStream] = {}
    order: List[str] = []
    for node in nodes:
        for stream in node.spec.streams:
            if stream.name in elided_set:
                continue
            existing = merged.get(stream.name)
            if existing is None:
                merged[stream.name] = stream
                order.append(stream.name)
                continue
            if (existing.bytes_per_item != stream.bytes_per_item
                    or existing.span_bytes_per_item
                    != stream.span_bytes_per_item
                    or existing.contiguous != stream.contiguous):
                raise GraphError(
                    f"stream {stream.name!r} is declared differently by "
                    f"two fused kernels")
            kind = _merge_kinds(existing.kind, stream.kind)
            if kind is not existing.kind:
                merged[stream.name] = MemoryStream(
                    name=existing.name, kind=kind,
                    bytes_per_item=existing.bytes_per_item,
                    span_bytes_per_item=existing.span_bytes_per_item,
                    contiguous=existing.contiguous,
                    allocation=existing.allocation)
    spec = KernelSpec(
        name="fused:" + "+".join(n.name for n in nodes),
        streams=tuple(merged[name] for name in order),
        flops_per_item=sum(n.spec.flops_per_item for n in nodes))
    return spec, elided


# -- planning ------------------------------------------------------------

@dataclass
class FusionPlan:
    """Outcome of one planning pass over a graph.

    ``groups`` are index runs into the graph's node list (every node
    appears in exactly one group, order preserved); ``refusals`` maps a
    boundary ``(left_name, right_name)`` to the reason it stayed
    unfused — legality or cost, surfaced in traces and tests.
    """

    groups: List[List[int]] = field(default_factory=list)
    refusals: Dict[Tuple[str, str], str] = field(default_factory=dict)

    @property
    def fused_group_count(self) -> int:
        """Groups that actually merged two or more kernels."""
        return sum(1 for g in self.groups if len(g) > 1)

    @property
    def kernels_eliminated(self) -> int:
        """Launches saved relative to the unfused graph."""
        return sum(len(g) - 1 for g in self.groups)


class FusionPass:
    """Cost-model-driven greedy fusion planner.

    Walks the graph left to right, growing the current group while the
    next node is *legal* to fuse (see :func:`fusion_legal`) and the
    cost model prices the merged kernel no worse than the pair of
    separate launches it replaces.  Greedy is exact here: the graph is
    a chain (recorded execution order), so the only decision is where
    to cut it.

    Args:
        cost_model: Prices candidate kernels
            (:meth:`~repro.oneapi.costmodel.CostModel.estimate_spec_seconds`).
        margin: Required relative advantage of the fused kernel; 0.0
            fuses on any non-negative saving (launch overhead alone
            usually suffices).
    """

    def __init__(self, cost_model: CostModel, margin: float = 0.0) -> None:
        if margin < 0.0:
            raise GraphError(f"margin must be >= 0, got {margin}")
        self.cost_model = cost_model
        self.margin = margin

    def _estimate(self, spec: KernelSpec, n_items: int,
                  precision: Precision) -> float:
        return self.cost_model.estimate_spec_seconds(spec, n_items,
                                                     precision)

    def beneficial(self, group: Sequence[KernelNode],
                   candidate: KernelNode) -> Tuple[bool, str]:
        """Would fusing ``candidate`` onto ``group`` be cheaper?"""
        nodes = list(group) + [candidate]
        fused_spec, _ = fuse_nodes(nodes)
        precision = candidate.precision
        n = candidate.n_items
        separate = sum(self._estimate(node.spec, n, precision)
                       for node in nodes)
        fused = self._estimate(fused_spec, n, precision)
        if fused <= separate * (1.0 - self.margin):
            return True, ""
        return False, (f"cost model refuses: fused {fused:.3e}s vs "
                       f"separate {separate:.3e}s")

    def plan(self, graph: KernelGraph) -> FusionPlan:
        """Partition the graph into maximal beneficial fused groups."""
        plan = FusionPlan()
        current: List[int] = []
        for index, node in enumerate(graph.nodes):
            if not current:
                current = [index]
                continue
            last = graph.nodes[current[-1]]
            ok, reason = fusion_legal(last, node)
            if ok:
                ok, reason = self.beneficial(
                    [graph.nodes[i] for i in current], node)
            if ok:
                current.append(index)
            else:
                plan.refusals[(last.name, node.name)] = reason
                plan.groups.append(current)
                current = [index]
        if current:
            plan.groups.append(current)
        return plan


# -- execution -----------------------------------------------------------

def unfused_plan(graph: KernelGraph) -> FusionPlan:
    """Degenerate plan: one launch per node (the fusion baseline)."""
    return FusionPlan(groups=[[i] for i in range(len(graph))])


def group_spec(nodes: Sequence[KernelNode]) -> Tuple[KernelSpec,
                                                     Tuple[str, ...]]:
    """The spec one planned group launches as, plus its elided streams.

    A single node launches its own spec; a multi-node group launches
    the merged spec of :func:`fuse_nodes`.  Shared by the executor (to
    launch) and the graph-level roofline analyzer (to classify), so
    both always see the same stream dedup and transient elision.
    """
    if len(nodes) == 1:
        return nodes[0].spec, ()
    return fuse_nodes(nodes)


class GraphExecutor:
    """Runs a recorded kernel graph through one queue.

    Each fused group becomes one launch: the merged spec is timed by
    the queue's cost model, the composed body runs the real numpy
    kernels in recorded order, and the group's *program identity* —
    the chain of constituent kernel names plus device model, layout and
    precision — goes through the queue's
    :class:`~repro.oneapi.programcache.ProgramCache`, so the first
    execution of a chain pays the calibrated JIT cost and warm
    executions pay nothing.

    Successive groups are chained with events (group *k+1* depends on
    group *k*), so on an out-of-order queue a graph behaves like the
    in-order sequence it declares while still composing with external
    ``depends_on`` edges (the sharded runner's exchange overlap).
    """

    def __init__(self, queue, fusion: bool = True,
                 fusion_pass: Optional[FusionPass] = None,
                 validate: bool = False) -> None:
        self.queue = queue
        self.fusion = bool(fusion)
        self.fusion_pass = fusion_pass if fusion_pass is not None \
            else FusionPass(queue.cost_model)
        self.last_plan: Optional[FusionPlan] = None
        #: When True, every :meth:`run` replays the launches it just
        #: submitted through the hazard detector and raises
        #: :class:`~repro.errors.HazardError` on a missing
        #: ``depends_on`` edge — a per-step race check for graphs on
        #: out-of-order queues.
        self.validate = bool(validate)

    def run(self, graph: KernelGraph, depends_on=None) -> List:
        """Execute the graph; returns one launch record per group."""
        from ..observability.tracer import active_tracer

        if not len(graph):
            return []
        plan = self.fusion_pass.plan(graph) if self.fusion \
            else unfused_plan(graph)
        self.last_plan = plan
        tracer = active_tracer()
        if tracer is not None and self.fusion:
            tracer.fusion_plan(
                groups=[[graph.nodes[i].name for i in g]
                        for g in plan.groups],
                kernels_eliminated=plan.kernels_eliminated,
                refusals={f"{a}|{b}": why
                          for (a, b), why in plan.refusals.items()})
        records = []
        deps = depends_on
        for group_indices in plan.groups:
            nodes = [graph.nodes[i] for i in group_indices]
            spec, elided = group_spec(nodes)
            bodies = [n.body for n in nodes if n.body is not None]

            def body(bodies=bodies) -> None:
                for run_one in bodies:
                    run_one()
            key = ProgramKey(
                chain=tuple(n.name for n in nodes),
                device=self.queue.device.jit_key,
                layout=nodes[0].layout,
                precision=nodes[0].precision.value,
                backend=self.queue.device.backend)
            record = self.queue.parallel_for(
                nodes[0].n_items, spec,
                kernel=body if bodies else None,
                precision=nodes[0].precision,
                depends_on=deps, program_key=key)
            if tracer is not None and elided:
                tracer.instant(f"fusion:elided:{spec.name}", "fusion",
                               streams=",".join(elided))
            records.append(record)
            deps = [record.event] if record.event is not None else None
        if self.validate:
            from ..validation.hazard import assert_hazard_free
            assert_hazard_free(self.queue.commands[-len(records):],
                               in_order=self.queue.timeline.in_order)
        return records
