"""Differential validation: every engine against the scalar reference.

The paper's core claim is that its implementation variants compute the
*same* Boris push and differ only in speed.  This module is that claim
as an executable check: one seeded ensemble
(:func:`repro.bench.scenarios.paper_ensemble`) is pushed through every
engine (single / resilient / sharded) x layout (AoS / SoA) x precision
(float / double) x fusion mode (legacy / unfused / fused) combination,
and each result is judged three ways:

* **ULP distance** against the scalar reference — the same initial
  state advanced by :func:`repro.core.boris.boris_push_particle` one
  particle at a time in double arithmetic (:func:`reference_push`).
  The vectorized kernels run in *storage* precision with a different
  operation order, so agreement is bounded, not bitwise; the bound is
  the per-precision tolerance in :data:`ULP_TOLERANCES`.
* **Digest equality** within bit-exact groups — fused, unfused and
  legacy execution of the same layout x precision must produce
  identical sha256 state digests (fusion never changes physics), every
  engine must match within the group, and the sharded gather must be
  bit-identical to the single-device run (the distributed layer's
  founding invariant).  Layouts must agree bitwise too: AoS and SoA
  run identical elementwise arithmetic on identically seeded values.
* **Hazard freedom** — every queue the combination ran on is replayed
  through :mod:`repro.validation.hazard`.

ULP distance is measured against the local floating-point spacing,
with a floor of ``1e-3`` of the component's magnitude scale so
near-zero entries (a momentum component passing through zero) are
judged relative to the component's scale rather than to a denormal.

Exposed as ``repro validate`` (the full sweep) and
``run_push(..., validate=True)`` (:func:`validate_run`: hazard check
plus a reference diff on a particle sample of that one run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.boris import boris_push_particle
from ..errors import ValidationError
from ..fp import Precision
from ..observability.tracer import active_tracer
from ..particles.ensemble import Layout, ParticleEnsemble
from .hazard import assert_hazard_free

__all__ = ["ULP_TOLERANCES", "ulp_distance", "reference_push",
           "compare_ensembles", "ComboResult", "DigestCheck",
           "DifferentialReport", "run_differential",
           "run_pic_differential", "RunValidation", "validate_run"]

#: Maximum accepted ULP distance from the scalar reference, per storage
#: precision.  The reference runs every intermediate in double, the
#: vectorized kernels in storage precision with a different operation
#: order (and, in the precalculated scenario, fields rounded to storage
#: precision before the push), so a few ULPs per step accumulate; the
#: budgets leave an order of magnitude of headroom over the measured
#: drift while staying far below what a wrong formula, a missed
#: promotion or a raced update produces.  See ``docs/VALIDATION.md``.
ULP_TOLERANCES: Dict[Precision, float] = {
    Precision.SINGLE: 512.0,
    Precision.DOUBLE: 256.0,
}

#: Components compared against the reference (weights never change).
_COMPARED = ("x", "y", "z", "px", "py", "pz", "gamma")

#: Fraction of a component's magnitude scale used as the spacing floor.
_SCALE_FLOOR = 1e-3

_FUSION_LABELS = {None: "legacy", False: "unfused", True: "fused"}


def ulp_distance(result, reference) -> float:
    """Worst-case ULP distance between two same-shaped arrays.

    ``reference`` is cast to ``result``'s dtype (the reference is held
    in storage precision already; the cast is a no-op then).  The
    distance of each element pair is ``|a - b|`` over the local
    floating-point spacing, floored at :data:`_SCALE_FLOOR` times the
    component's magnitude scale — a pure-ULP measure explodes when a
    value crosses zero, and differences far below the component's
    physical scale are noise, not disagreement.
    """
    a = np.asarray(result)
    b = np.asarray(reference, dtype=a.dtype)
    if a.size == 0:
        return 0.0
    scale = max(float(np.max(np.abs(a))), float(np.max(np.abs(b))))
    floor = max(scale * _SCALE_FLOOR, float(np.finfo(a.dtype).tiny))
    spacing = np.spacing(np.maximum(np.maximum(np.abs(a), np.abs(b)),
                                    a.dtype.type(floor)))
    diff = np.abs(a.astype(np.float64) - b.astype(np.float64))
    return float(np.max(diff / spacing))


def reference_push(ensemble: ParticleEnsemble, source, dt: float,
                   steps: int, start_time: float = 0.0) -> None:
    """Advance ``ensemble`` in place with the scalar reference pusher.

    Matches the engines' time semantics exactly: step *n* evaluates the
    analytical ``source`` at the particles' current positions at time
    ``start_time + n * dt`` (:meth:`~repro.fields.base.FieldSource.
    evaluate_at`, in double precision) and performs one
    :func:`~repro.core.boris.boris_push_particle` per particle.  State
    rounds to the ensemble's storage precision at each step boundary —
    the rounding the vectorized kernels also incur — while every
    intermediate stays double.  O(N x steps) scalar Python: for
    reference-sized ensembles only.
    """
    time = start_time
    for _ in range(steps):
        for index in range(ensemble.size):
            particle = ensemble[index]
            e, b = source.evaluate_at(particle.position, time)
            boris_push_particle(particle, e, b, dt,
                                particle.mass, particle.charge)
        time += dt


def compare_ensembles(result: ParticleEnsemble,
                      reference: ParticleEnsemble,
                      sample: Optional[int] = None
                      ) -> Tuple[float, str, Dict[str, float]]:
    """(max ULP, worst component, per-component ULP) of two ensembles.

    ``sample`` restricts the comparison to the first ``sample``
    particles of ``result`` (the reference may hold only that prefix —
    particles are independent, so a prefix reference is exact).
    """
    per_component: Dict[str, float] = {}
    worst_name, worst = "", 0.0
    for name in _COMPARED:
        got = result.component(name)
        if sample is not None:
            got = got[:sample]
        distance = ulp_distance(got, reference.component(name))
        per_component[name] = distance
        if distance >= worst:
            worst_name, worst = name, distance
    return worst, worst_name, per_component


# -- the sweep -----------------------------------------------------------

@dataclass(frozen=True)
class ComboResult:
    """One engine x layout x precision x fusion cell of the sweep."""

    engine: str
    layout: str
    precision: str
    fusion: str
    max_ulp: float
    worst_component: str
    digest: str
    commands_checked: int
    passed: bool
    detail: str = ""

    @property
    def label(self) -> str:
        return (f"{self.engine}/{self.layout}/{self.precision}/"
                f"{self.fusion}")


@dataclass(frozen=True)
class DigestCheck:
    """One bit-exactness assertion over the sweep's digests."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class DifferentialReport:
    """Everything one differential sweep measured."""

    n_particles: int
    steps: int
    tolerances: Dict[str, float]
    results: List[ComboResult] = field(default_factory=list)
    digest_checks: List[DigestCheck] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return (all(r.passed for r in self.results)
                and all(c.passed for c in self.digest_checks))

    def render(self) -> str:
        """Plain-text table of every combination and digest check."""
        lines = [f"differential sweep: {len(self.results)} combinations, "
                 f"n={self.n_particles}, steps={self.steps}",
                 f"{'combination':<38} {'max ULP':>10} {'worst':>6}  verdict"]
        for r in self.results:
            verdict = "ok" if r.passed else f"FAIL ({r.detail})"
            lines.append(f"{r.label:<38} {r.max_ulp:>10.1f} "
                         f"{r.worst_component:>6}  {verdict}")
        for check in self.digest_checks:
            verdict = "ok" if check.passed else f"FAIL ({check.detail})"
            lines.append(f"digest: {check.name:<40} {verdict}")
        return "\n".join(lines)


def _make_queue(device_spec: str):
    from ..backends.registry import queue_for

    return queue_for(device_spec)


def _drive(engine: str, ensemble: ParticleEnsemble, source, dt: float,
           steps: int, fusion: Optional[bool], device: str,
           group_spec: str) -> List:
    """Run ``steps`` pushes on ``ensemble``; return the queues used.

    Engines are built directly (not through :mod:`repro.api`) so the
    harness stays importable from the facade without a cycle, and every
    engine runs exactly ``steps`` pushes with no warm-up — the scalar
    reference advances the same count.
    """
    if engine == "single":
        from ..oneapi.runtime import PushEngine

        runner = PushEngine(_make_queue(device), ensemble, "precalculated",
                            source, dt, fusion=fusion)
    elif engine == "resilient":
        from ..resilience.runner import ResilientPushEngine

        runner = ResilientPushEngine(ensemble, "precalculated", source, dt,
                                     fusion=fusion)
    elif engine == "sharded":
        from ..distributed.group import DeviceGroup, parse_group_spec
        from ..distributed.runner import ShardedPushEngine

        runner = ShardedPushEngine(DeviceGroup(parse_group_spec(group_spec)),
                                   ensemble, "precalculated", source, dt,
                                   fusion=fusion)
    else:
        raise ValidationError(f"unknown differential engine {engine!r}")
    runner.run(steps)
    return list(runner.queues())


def run_differential(n: int = 192, steps: int = 3,
                     device: str = "iris-xe-max",
                     group_spec: str = "2x iris-xe-max",
                     engines: Sequence[str] = ("single", "resilient",
                                               "sharded"),
                     layouts: Sequence[Layout] = (Layout.AOS, Layout.SOA),
                     precisions: Sequence[Precision] = (Precision.SINGLE,
                                                        Precision.DOUBLE),
                     fusion_modes: Sequence[Optional[bool]] = (None, False,
                                                               True),
                     tolerances: Optional[Dict[Precision, float]] = None,
                     devices: Optional[Sequence[str]] = None
                     ) -> DifferentialReport:
    """Run the full differential sweep; returns the evidence.

    Never raises on disagreement — the report carries every verdict
    (``all_passed`` summarises) so a caller can render the whole table
    before deciding to fail.  Hazards, by contrast, are defects of the
    *submission code*, not of the physics, and do raise
    :class:`~repro.errors.HazardError` immediately.

    ``devices`` widens the "single"-engine axis across a device matrix
    (backend-qualified specs welcome: ``("iris-xe-max", "cuda:gpu0")``)
    — each listed device runs the full layout x precision x fusion
    grid as its own combination, and its digests join the same
    bit-exact groups.  This is the cross-*backend* half of the paper's
    claim: a CUDA stream must produce the same bits as a oneAPI queue,
    not just the same speed story.  ``None`` keeps the classic
    single-device sweep on ``device``.
    """
    from ..bench.scenarios import paper_ensemble, paper_time_step, paper_wave
    from ..core.stepping import state_digest

    tols = dict(ULP_TOLERANCES)
    if tolerances:
        tols.update(tolerances)
    source = paper_wave()
    dt = paper_time_step()
    tracer = active_tracer()
    report = DifferentialReport(
        n_particles=n, steps=steps,
        tolerances={p.value: t for p, t in tols.items()})
    # Expand the engine axis: the "single" engine fans out across the
    # device matrix when one is given; labels carry the device so a
    # digest mismatch names the culprit backend.
    cells: List[Tuple[str, str, str]] = []
    for engine in engines:
        if engine == "single" and devices is not None:
            cells.extend(("single", f"single[{spec}]", spec)
                         for spec in devices)
        else:
            cells.append((engine, engine, device))
    digests: Dict[Tuple[str, str], Dict[str, List[str]]] = {}
    for precision in precisions:
        for layout in layouts:
            reference = paper_ensemble(n, layout, precision)
            reference_push(reference, source, dt, steps)
            for engine, engine_label, run_device in cells:
                for fusion in fusion_modes:
                    ensemble = paper_ensemble(n, layout, precision)
                    queues = _drive(engine, ensemble, source, dt, steps,
                                    fusion, run_device, group_spec)
                    checked = sum(assert_hazard_free(q) for q in queues)
                    max_ulp, worst, _ = compare_ensembles(ensemble,
                                                          reference)
                    digest = state_digest(ensemble)
                    passed = max_ulp <= tols[precision]
                    result = ComboResult(
                        engine=engine_label, layout=layout.value,
                        precision=precision.value,
                        fusion=_FUSION_LABELS[fusion],
                        max_ulp=max_ulp, worst_component=worst,
                        digest=digest, commands_checked=checked,
                        passed=passed,
                        detail="" if passed else
                        f"tolerance {tols[precision]:.0f} ULP exceeded")
                    report.results.append(result)
                    if tracer is not None:
                        tracer.validation(
                            f"ulp:{result.label}", passed,
                            max_ulp=max_ulp, worst_component=worst,
                            tolerance=tols[precision])
                    group = digests.setdefault(
                        (layout.value, precision.value), {})
                    group.setdefault(digest, []).append(result.label)
    for (layout_name, precision_name), by_digest in sorted(digests.items()):
        name = f"{layout_name}/{precision_name} bit-exact group"
        if len(by_digest) == 1:
            check = DigestCheck(name, True)
        else:
            parts = "; ".join(
                f"{d[:12]}...: {', '.join(labels)}"
                for d, labels in sorted(by_digest.items()))
            check = DigestCheck(name, False,
                                f"{len(by_digest)} distinct digests "
                                f"({parts})")
        report.digest_checks.append(check)
        if tracer is not None:
            tracer.validation(f"digest:{name}", check.passed,
                              distinct=len(by_digest))
    # Cross-layout agreement: identical seeded values through identical
    # elementwise arithmetic — strides must not change a single bit.
    for precision_name in sorted({p.value for p in precisions}):
        per_layout = {layout_name: set(by_digest)
                      for (layout_name, pname), by_digest
                      in digests.items() if pname == precision_name}
        if len(per_layout) < 2:
            continue
        union = set().union(*per_layout.values())
        name = f"AoS == SoA ({precision_name})"
        check = DigestCheck(name, len(union) == 1,
                            "" if len(union) == 1 else
                            f"{len(union)} distinct digests across layouts")
        report.digest_checks.append(check)
        if tracer is not None:
            tracer.validation(f"digest:{name}", check.passed,
                              distinct=len(union))
    return report


# -- the PIC sweep -------------------------------------------------------

#: Execution modes of the PIC differential sweep.  ``reference`` is
#: :meth:`~repro.pic.simulation.PicSimulation.run` driving the stage
#: functions directly on the host; the other three are
#: :class:`~repro.pic.engine.PicEngine` in its legacy / graph-unfused /
#: graph-fused modes.  All four execute the *same* stage bodies in the
#: same order, so unlike the push sweep the agreement contract is
#: bitwise, not ULP-bounded: every mode of every layout must land in
#: one digest group.
PIC_MODES: Tuple[Optional[object], ...] = ("reference", None, False, True)

_PIC_MODE_LABELS = {"reference": "reference", None: "legacy",
                    False: "unfused", True: "fused"}


def run_pic_differential(n: int = 192, steps: int = 3,
                         device: str = "iris-xe-max",
                         scenarios: Optional[Sequence[str]] = None,
                         layouts: Sequence[Layout] = (Layout.AOS,
                                                      Layout.SOA),
                         precisions: Sequence[Precision] = (
                             Precision.DOUBLE,),
                         modes: Sequence[Optional[object]] = PIC_MODES,
                         seed: int = 0) -> DifferentialReport:
    """Differential sweep over the full PIC step (gather / push /
    Monte Carlo / deposit / field advance).

    Each scenario x layout x precision cell is advanced ``steps`` steps
    through every execution mode in ``modes``; the
    :func:`~repro.pic.engine.pic_state_digest` of the final state
    (all particle components including weight, plus grid fields and
    currents) must be bit-identical across modes *and* across layouts
    — the engine lowers the same stage bodies the reference simulation
    calls, and fusion only removes launch boundaries, never reorders
    arithmetic.  Engine modes are additionally replayed through the
    hazard detector; the declared read/write sets of the lowered
    kernel nodes must explain every dependency.

    Shares :class:`DifferentialReport` with the push sweep:
    ``max_ulp`` is the measured distance of the first species from the
    reference run (expected exactly 0), ``passed`` is digest equality.
    """
    from ..backends.registry import queue_for
    from ..pic import PicEngine, build_scenario, pic_state_digest
    from ..pic.scenarios import scenario_names

    names = list(scenarios) if scenarios is not None \
        else list(scenario_names())
    tracer = active_tracer()
    report = DifferentialReport(
        n_particles=n, steps=steps,
        tolerances={p.value: 0.0 for p in precisions})
    digests: Dict[Tuple[str, str], Dict[str, List[str]]] = {}
    for scenario in names:
        for precision in precisions:
            for layout in layouts:
                reference = build_scenario(
                    scenario, n_particles=n, seed=seed, layout=layout,
                    precision=precision)
                reference.run(steps)
                ref_digest = pic_state_digest(reference)
                group = digests.setdefault(
                    (f"{scenario}:{layout.value}", precision.value), {})
                for mode in modes:
                    label = (f"pic[{scenario}]/{layout.value}/"
                             f"{precision.value}/"
                             f"{_PIC_MODE_LABELS[mode]}")
                    if mode == "reference":
                        digest, checked, max_ulp, worst = \
                            ref_digest, 0, 0.0, "-"
                        final = reference
                    else:
                        simulation = build_scenario(
                            scenario, n_particles=n, seed=seed,
                            layout=layout, precision=precision)
                        engine = PicEngine(queue_for(device), simulation,
                                           fusion=mode)
                        engine.run(steps)
                        checked = sum(assert_hazard_free(q)
                                      for q in engine.queues())
                        digest = pic_state_digest(simulation)
                        max_ulp, worst, _ = compare_ensembles(
                            simulation.ensembles[0],
                            reference.ensembles[0])
                        final = simulation
                    del final
                    passed = digest == ref_digest
                    result = ComboResult(
                        engine=f"pic[{scenario}]", layout=layout.value,
                        precision=precision.value,
                        fusion=_PIC_MODE_LABELS[mode],
                        max_ulp=max_ulp if isinstance(max_ulp, float)
                        else 0.0,
                        worst_component=worst, digest=digest,
                        commands_checked=checked, passed=passed,
                        detail="" if passed else
                        "digest differs from the reference run")
                    report.results.append(result)
                    if tracer is not None:
                        tracer.validation(f"pic:{label}", passed,
                                          digest=digest[:12],
                                          commands=checked)
                    group.setdefault(digest, []).append(label)
    for (cell_name, precision_name), by_digest in sorted(digests.items()):
        name = f"{cell_name}/{precision_name} bit-exact group"
        if len(by_digest) == 1:
            check = DigestCheck(name, True)
        else:
            parts = "; ".join(
                f"{d[:12]}...: {', '.join(labels)}"
                for d, labels in sorted(by_digest.items()))
            check = DigestCheck(name, False,
                                f"{len(by_digest)} distinct digests "
                                f"({parts})")
        report.digest_checks.append(check)
        if tracer is not None:
            tracer.validation(f"digest:{name}", check.passed,
                              distinct=len(by_digest))
    # Cross-layout agreement per scenario: the digest hashes a
    # contiguous copy of each component, so AoS and SoA runs of the
    # same seeded scenario must agree to the bit.
    for scenario in names:
        for precision_name in sorted({p.value for p in precisions}):
            per_layout = {cell: set(by_digest)
                          for (cell, pname), by_digest in digests.items()
                          if pname == precision_name
                          and cell.startswith(f"{scenario}:")}
            if len(per_layout) < 2:
                continue
            union = set().union(*per_layout.values())
            name = f"pic[{scenario}] AoS == SoA ({precision_name})"
            check = DigestCheck(name, len(union) == 1,
                                "" if len(union) == 1 else
                                f"{len(union)} distinct digests "
                                f"across layouts")
            report.digest_checks.append(check)
            if tracer is not None:
                tracer.validation(f"digest:{name}", check.passed,
                                  distinct=len(union))
    return report


# -- per-run validation (run_push(..., validate=True)) -------------------

@dataclass(frozen=True)
class RunValidation:
    """What ``run_push(..., validate=True)`` checked, and how close.

    Attributes:
        checked_particles: Size of the reference sample diffed.
        commands_checked: Commands replayed by the hazard detector
            across every queue of the run.
        max_ulp: Worst measured ULP distance from the reference sample.
        worst_component: Component carrying ``max_ulp``.
        tolerance: The budget ``max_ulp`` was judged against.
    """

    checked_particles: int
    commands_checked: int
    max_ulp: float
    worst_component: str
    tolerance: float


#: Particle-sample ceiling of the per-run reference diff: the scalar
#: reference is O(N x steps) Python, so production-sized runs are
#: validated on a prefix (particles are independent; a prefix is exact).
VALIDATE_SAMPLE = 128


def validate_run(config, ensemble: ParticleEnsemble, queues: Sequence,
                 source, dt: float) -> RunValidation:
    """Validate one finished facade run against reference and log.

    Replays every queue's command log through the hazard detector
    (raises :class:`~repro.errors.HazardError` on a missing edge), then
    rebuilds the run's seeded initial state, advances a prefix sample
    of it with :func:`reference_push` over the run's full
    ``warmup + steps`` schedule, and compares.  Raises
    :class:`~repro.errors.ValidationError` past tolerance; returns the
    measured :class:`RunValidation` otherwise.
    """
    from ..bench.scenarios import paper_ensemble

    commands_checked = sum(assert_hazard_free(q) for q in queues)
    sample = min(ensemble.size, VALIDATE_SAMPLE)
    initial = paper_ensemble(config.n_particles, config.layout,
                             config.precision)
    reference = initial.select(np.arange(initial.size) < sample)
    reference_push(reference, source, dt, config.warmup + config.steps)
    max_ulp, worst, _ = compare_ensembles(ensemble, reference,
                                          sample=sample)
    tolerance = ULP_TOLERANCES[config.precision]
    tracer = active_tracer()
    if tracer is not None:
        tracer.validation(f"run:{config.mode}", max_ulp <= tolerance,
                          max_ulp=max_ulp, worst_component=worst,
                          tolerance=tolerance, sample=sample,
                          commands=commands_checked)
    if max_ulp > tolerance:
        raise ValidationError(
            f"{config.mode} run diverged from the scalar reference: "
            f"component {worst!r} is {max_ulp:.1f} ULP away "
            f"(tolerance {tolerance:.0f}) over {sample} sampled "
            f"particles")
    return RunValidation(checked_particles=sample,
                         commands_checked=commands_checked,
                         max_ulp=max_ulp, worst_component=worst,
                         tolerance=tolerance)
