"""Memory-hazard detection over a simulated queue's command log.

DPC++'s out-of-order queues make ordering the *programmer's* problem:
two submitted kernels run concurrently unless an event
(``handler.depends_on``) or an accessor chain orders them.  Drop one
edge and the program is racy — and, because the simulator executes
kernel bodies eagerly on the host, the physics here would still come
out right while the *declared* schedule silently stopped being a valid
execution order.  This module closes that gap: it replays what every
command declared it touches and verifies the declared dependency edges
are enough.

The evidence is :attr:`repro.oneapi.queue.Queue.commands` — one
:class:`~repro.oneapi.queue.CommandRecord` per kernel launch or async
copy, carrying the stream names it reads/writes (derived from its
:class:`~repro.oneapi.kernelspec.KernelSpec`, the same sets the kernel
graph's :class:`~repro.oneapi.graph.KernelNode` exposes) and the
events it depended on.  Two commands *conflict* when they touch a
shared stream and at least one writes:

* **RAW** — the earlier command writes what the later reads;
* **WAR** — the earlier reads what the later writes;
* **WAW** — both write the same stream.

A conflicting pair is a :class:`Hazard` unless a ``depends_on`` path
(transitively) orders the earlier command before the later one.
In-order queues serialize every pair by construction and can never
hazard.  Each queue owns its own address space (a sharded run's member
queues touch *different* ensembles under the same stream names), so
logs are checked per queue, never concatenated across queues.

Found hazards are reported through the active tracer
(:meth:`~repro.observability.tracer.Tracer.hazard`) before
:func:`assert_hazard_free` raises :class:`~repro.errors.HazardError`,
so a traced run keeps the evidence even when the exception is caught.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set

from ..errors import HazardError
from ..observability.tracer import active_tracer

__all__ = ["Hazard", "find_hazards", "check_queue", "assert_hazard_free"]


@dataclass(frozen=True)
class Hazard:
    """One conflicting command pair no ``depends_on`` path orders.

    Attributes:
        kind: "RAW", "WAR" or "WAW".
        earlier / later: The two commands' names, in submission order.
        streams: The shared stream names the pair conflicts on.
        earlier_index / later_index: Positions in the replayed log.
    """

    kind: str
    earlier: str
    later: str
    streams: FrozenSet[str]
    earlier_index: int
    later_index: int

    def describe(self) -> str:
        """Human-readable one-liner naming the racing pair."""
        return (f"{self.kind} hazard on {sorted(self.streams)}: "
                f"command #{self.earlier_index} ({self.earlier!r}) and "
                f"command #{self.later_index} ({self.later!r}) are not "
                f"ordered by any depends_on path")


def find_hazards(commands: Sequence, in_order: bool = False
                 ) -> List[Hazard]:
    """Replay a command log; return every unordered conflicting pair.

    ``commands`` are :class:`~repro.oneapi.queue.CommandRecord`-shaped
    objects in submission order (duck-typed: ``name``, ``event.seq``,
    ``reads``, ``writes``, ``depends_on``).  ``in_order`` short-circuits
    to no hazards — an in-order queue serializes every pair regardless
    of declared edges.  Dependency edges pointing at events outside the
    log (a previous epoch, another queue) order nothing *within* it and
    are ignored.

    A pair conflicting in several ways (e.g. two read-modify-write
    kernels) yields one :class:`Hazard` per kind.  Every hazard is also
    reported through the active tracer.
    """
    if in_order:
        return []
    commands = list(commands)
    index_of = {c.event.seq: i for i, c in enumerate(commands)}
    # ancestors[i]: log indices with a depends_on path into command i.
    ancestors: List[Set[int]] = []
    for i, command in enumerate(commands):
        reachable: Set[int] = set()
        for dep in command.depends_on:
            j = index_of.get(dep.seq)
            if j is not None and j < i:
                reachable.add(j)
                reachable |= ancestors[j]
        ancestors.append(reachable)
    tracer = active_tracer()
    hazards: List[Hazard] = []
    for j, later in enumerate(commands):
        for i in range(j):
            if i in ancestors[j]:
                continue
            earlier = commands[i]
            for kind, shared in (("RAW", earlier.writes & later.reads),
                                 ("WAR", earlier.reads & later.writes),
                                 ("WAW", earlier.writes & later.writes)):
                if not shared:
                    continue
                hazards.append(Hazard(kind, earlier.name, later.name,
                                      frozenset(shared), i, j))
                if tracer is not None:
                    tracer.hazard(kind, earlier.name, later.name, shared,
                                  earlier_index=i, later_index=j)
    return hazards


def check_queue(queue) -> List[Hazard]:
    """Replay one queue's own command log with its ordering semantics."""
    return find_hazards(queue.commands, in_order=queue.timeline.in_order)


def assert_hazard_free(commands_or_queue, in_order: Optional[bool] = None,
                       label: str = "") -> int:
    """Raise :class:`~repro.errors.HazardError` on any detected hazard.

    Accepts either a :class:`~repro.oneapi.queue.Queue` (its command
    log and in-order flag are used, and its timeline label names the
    failure) or a plain command sequence with an explicit ``in_order``.
    Returns the number of commands checked when clean.
    """
    commands = getattr(commands_or_queue, "commands", commands_or_queue)
    if in_order is None:
        timeline = getattr(commands_or_queue, "timeline", None)
        in_order = bool(timeline.in_order) if timeline is not None else False
        if not label and timeline is not None:
            label = timeline.label
    hazards = find_hazards(commands, in_order=in_order)
    if hazards:
        first = hazards[0]
        where = f" on {label}" if label else ""
        raise HazardError(
            f"{len(hazards)} unordered conflicting command pair(s)"
            f"{where}; first: {first.describe()}")
    return len(list(commands))
