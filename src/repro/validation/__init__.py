"""Cross-engine validation: race detection + differential checking.

Two halves, one goal — trust the fast paths:

* :mod:`repro.validation.hazard` replays a queue's command log (what
  each launch *declared* it reads and writes, and which ``depends_on``
  edges ordered it) and flags RAW/WAR/WAW pairs no edge orders — the
  simulated runtime's race detector;
* :mod:`repro.validation.differential` runs one seeded ensemble
  through every engine x layout x precision x fusion combination and
  diffs each against the scalar reference
  (:func:`repro.core.boris.boris_push_particle`) with per-precision
  ULP tolerances and sha256 state digests.

Exposed as ``repro validate`` on the CLI and ``run_push(...,
validate=True)`` on the facade; see ``docs/VALIDATION.md`` for the
tolerance and hazard semantics.
"""

from .differential import (ComboResult, DifferentialReport, DigestCheck,
                           RunValidation, ULP_TOLERANCES, compare_ensembles,
                           reference_push, run_differential,
                           run_pic_differential, ulp_distance,
                           validate_run)
from .hazard import (Hazard, assert_hazard_free, check_queue, find_hazards)

__all__ = [
    "Hazard", "find_hazards", "check_queue", "assert_hazard_free",
    "ComboResult", "DigestCheck", "DifferentialReport", "RunValidation",
    "ULP_TOLERANCES", "compare_ensembles", "reference_push",
    "run_differential", "run_pic_differential", "ulp_distance",
    "validate_run",
]
