"""Backend registry and device-spec resolution.

The single place that maps spec strings to (backend, device) pairs.
A device spec is ``"<backend>:<key>"``; a bare key (no colon) defaults
to the oneAPI backend, so every pre-backend spelling — ``"cpu"``,
``"iris-xe-max"``, group specs like ``"2x iris-xe-max"`` — keeps
meaning exactly what it meant.  The CUDA devices are only reachable
qualified: ``"cuda:gpu0"``, ``"cuda:gpu1"``.

An unknown backend prefix raises
:class:`~repro.errors.ConfigurationError` (a :class:`~repro.errors.
ReproError`), so the CLI reports it as a configuration problem with
exit code 2 instead of dying on a ``KeyError``.

Backends are lazy singletons: importing this module imports neither
backend implementation until a spec actually resolves to it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..oneapi.costmodel import CostModel
from ..oneapi.device import DeviceDescriptor
from ..oneapi.queue import Queue
from .base import Backend

__all__ = ["BACKEND_NAMES", "get_backend", "parse_device_spec",
           "canonical_device_spec", "resolve_device", "descriptor_for",
           "cost_model_for_descriptor", "queue_for", "host_link_for",
           "all_device_specs"]

#: Registered backend names, in display order.  The oneAPI backend is
#: first because bare device keys default to it.
BACKEND_NAMES: Tuple[str, ...] = ("oneapi", "cuda")

_BACKENDS: Dict[str, Backend] = {}


def get_backend(name: str) -> Backend:
    """The singleton backend registered under ``name``.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names.
    """
    key = name.strip().lower()
    if key not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
    backend = _BACKENDS.get(key)
    if backend is None:
        if key == "oneapi":
            from .oneapi import OneApiBackend
            backend = OneApiBackend()
        else:
            from .cuda import CudaBackend
            backend = CudaBackend()
        _BACKENDS[key] = backend
    return backend


def parse_device_spec(spec: str) -> Tuple[str, str]:
    """Split a device spec into ``(backend_name, device_key)``.

    ``"cuda:gpu0"`` -> ``("cuda", "gpu0")``; a bare ``"cpu"`` ->
    ``("oneapi", "cpu")``.  The backend name is validated here; the
    device key is validated when the backend resolves it.
    """
    text = spec.strip()
    if not text:
        raise ConfigurationError("device spec must not be empty")
    head, sep, tail = text.partition(":")
    if not sep:
        return "oneapi", text.lower()
    backend_name = head.strip().lower()
    if backend_name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown backend {head.strip()!r} in device spec {spec!r}; "
            f"expected one of {BACKEND_NAMES}")
    key = tail.strip().lower()
    if not key:
        raise ConfigurationError(
            f"device spec {spec!r} names a backend but no device")
    return backend_name, key


def canonical_device_spec(backend_name: str, key: str) -> str:
    """The canonical spelling of a device: bare for oneAPI (the
    pre-backend spelling every report and baseline already uses),
    ``backend:key`` for everything else."""
    if backend_name == "oneapi":
        return key
    return f"{backend_name}:{key}"


def resolve_device(spec: str) -> Tuple[Backend, DeviceDescriptor]:
    """Resolve a spec to its backend and a fresh descriptor."""
    backend_name, key = parse_device_spec(spec)
    backend = get_backend(backend_name)
    return backend, backend.device(key)


def descriptor_for(spec: str) -> DeviceDescriptor:
    """Just the descriptor of ``spec`` (fresh instance)."""
    return resolve_device(spec)[1]


def cost_model_for_descriptor(device: DeviceDescriptor) -> CostModel:
    """A cost model for a descriptor, dispatched on its backend field.

    The backend-aware replacement for calling
    :func:`repro.bench.calibration.cost_model_for` directly — that
    function remains correct for oneAPI descriptors only.
    """
    return get_backend(device.backend).cost_model(device)


def queue_for(spec: str, *, program_cache=None,
              threads_per_unit: Optional[int] = None,
              out_of_order: bool = False) -> Queue:
    """A ready-to-launch queue/stream on the device ``spec`` names."""
    backend, device = resolve_device(spec)
    return backend.make_queue(device, program_cache=program_cache,
                              threads_per_unit=threads_per_unit,
                              out_of_order=out_of_order)


def host_link_for(spec: str):
    """The host-DRAM link of the device ``spec`` names."""
    backend_name, key = parse_device_spec(spec)
    return get_backend(backend_name).host_link(key)


def all_device_specs(backend: Optional[str] = None) -> List[str]:
    """Canonical specs of every registered device, in backend order.

    ``backend`` filters to one backend (validated — an unknown name
    raises :class:`~repro.errors.ConfigurationError`).
    """
    names = (get_backend(backend).name,) if backend is not None \
        else BACKEND_NAMES
    specs: List[str] = []
    for name in names:
        impl = get_backend(name)
        specs.extend(canonical_device_spec(name, key)
                     for key in impl.device_keys())
    return specs
