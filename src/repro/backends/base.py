"""The backend contract: what a simulated runtime must provide.

The repo began as a single-runtime reproduction — the simulated oneAPI
stack in :mod:`repro.oneapi` — and every engine reached straight into
:mod:`repro.bench.calibration` for devices and cost models.  A
:class:`Backend` abstracts that seam so a second runtime with genuinely
different semantics (the simulated CUDA backend in
:mod:`repro.backends.cuda`) can plug in underneath the same engines,
facade, service fleet and autotuner.

A backend owns five things:

* **device enumeration** — :meth:`Backend.device_keys` and
  :meth:`Backend.device`, returning
  :class:`~repro.oneapi.device.DeviceDescriptor` objects whose
  ``backend`` field names the owner;
* **cost model** — :meth:`Backend.cost_model`, a
  :class:`~repro.oneapi.costmodel.CostModel` (or subclass) carrying the
  backend's calibration and overridden hooks (occupancy quantisation,
  launch-overhead behaviour, JIT warm-up shape);
* **queue/stream construction** — :meth:`Backend.make_queue`, which
  binds device + cost model + scheduler into a
  :class:`~repro.oneapi.queue.Queue` with the backend's ordering
  semantics (oneAPI queues may be out-of-order; CUDA streams are
  always in-order);
* **program-cache keying** — implicit through the descriptor's
  ``backend`` field: every :class:`~repro.oneapi.programcache.
  ProgramKey` built by a queue carries it, so backends never share
  compiled artefacts even through one shared cache instance;
* **host interconnect** — :meth:`Backend.host_link`, the link the
  distributed layer prices sharded halo exchange over.

Backends register by name in :mod:`repro.backends.registry`; device
specs are ``"<backend>:<key>"`` (``"cuda:gpu0"``), with bare keys
(``"cpu"``) defaulting to oneAPI for backward compatibility.  The
contract every new backend must meet before landing is the
differential harness: bit-exact sha256 digest agreement with the
existing backends within each (layout, precision) group — the physics
kernels are shared, so only the *timing* semantics may differ.  See
``docs/BACKENDS.md`` for the how-to.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

from ..oneapi.costmodel import CostModel
from ..oneapi.device import DeviceDescriptor
from ..oneapi.queue import Queue

__all__ = ["Backend"]


class Backend(abc.ABC):
    """One simulated runtime: devices, cost models, queues, links.

    Implementations are stateless singletons (the registry constructs
    one per name); per-run state lives in the queues and cost models
    they build.
    """

    #: Registry name and device-spec prefix ("oneapi", "cuda").
    name: str = ""

    @abc.abstractmethod
    def device_keys(self) -> Tuple[str, ...]:
        """Bare device keys this backend enumerates, in display order."""

    @abc.abstractmethod
    def device(self, key: str) -> DeviceDescriptor:
        """A fresh descriptor for ``key``; raises
        :class:`~repro.errors.ConfigurationError` for unknown keys.
        The descriptor's ``backend`` field must equal :attr:`name`."""

    @abc.abstractmethod
    def cost_model(self, device: DeviceDescriptor) -> CostModel:
        """A cost model calibrated for ``device``.

        Called once per queue build — a backend whose cost model keeps
        launch state (capture counters, context initialisation) relies
        on that freshness, mirroring one runtime context per queue.
        """

    @abc.abstractmethod
    def make_queue(self, device: DeviceDescriptor, *,
                   program_cache=None,
                   threads_per_unit: Optional[int] = None,
                   out_of_order: bool = False) -> Queue:
        """A queue/stream on ``device`` with this backend's semantics.

        ``out_of_order=True`` asks for overlap-capable ordering (the
        distributed layer's exchange/compute overlap); a backend whose
        execution streams are inherently in-order may ignore the
        request and serialise (CUDA does).
        """

    @abc.abstractmethod
    def host_link(self, key: str):
        """The :class:`~repro.distributed.links.LinkDescriptor` of
        ``key``'s path to host DRAM (prices sharded exchange)."""

    # -- conveniences shared by all backends -----------------------------

    def qualify(self, key: str) -> str:
        """The fully qualified spec string of ``key``."""
        return f"{self.name}:{key}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
