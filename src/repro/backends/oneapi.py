"""The simulated oneAPI/DPC++ backend — the paper's runtime.

This is a thin :class:`~repro.backends.base.Backend` adapter over the
machinery that predates the backend layer: calibrated descriptors and
cost models from :mod:`repro.bench.calibration`, queues from
:mod:`repro.oneapi.queue`, host links from
:mod:`repro.distributed.links`.  Nothing here re-derives any number —
the calibration module stays the single source of truth for the
paper's three devices, and every pre-backend code path that imports it
directly keeps working unchanged.

Semantics this backend exposes (contrast with
:mod:`repro.backends.cuda`):

* queues may be **out-of-order** (DPC++'s default queue property) —
  the distributed layer uses that to overlap halo exchange with push
  kernels;
* JIT is SPIR-V -> ISA, comparatively cheap (0.15-0.3 s calibrated);
* launch overhead is a flat per-launch cost — no capture/replay
  amortisation;
* CPUs get the paper's scheduling zoo (TBB dynamic, NUMA arenas via
  ``DPCPP_CPU_PLACES``), GPUs a workgroup scheduler with the DPC++
  default workgroup size.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..bench.calibration import DEVICE_NAMES, cost_model_for, device_by_name
from ..distributed.links import LinkDescriptor, _HOST_LINKS
from ..oneapi.costmodel import CostModel
from ..oneapi.device import DeviceDescriptor, DeviceType
from ..oneapi.queue import NUMA_DOMAINS, Queue, RuntimeConfig
from .base import Backend

__all__ = ["OneApiBackend"]


class OneApiBackend(Backend):
    """The calibrated oneAPI stack behind the backend interface."""

    name = "oneapi"

    def device_keys(self) -> Tuple[str, ...]:
        return tuple(DEVICE_NAMES)

    def device(self, key: str) -> DeviceDescriptor:
        # device_by_name raises ConfigurationError for unknown keys and
        # already stamps backend="oneapi" (the descriptor default).
        return device_by_name(key)

    def cost_model(self, device: DeviceDescriptor) -> CostModel:
        return cost_model_for(device)

    def make_queue(self, device: DeviceDescriptor, *,
                   program_cache=None,
                   threads_per_unit: Optional[int] = None,
                   out_of_order: bool = False) -> Queue:
        places = NUMA_DOMAINS \
            if out_of_order and device.device_type is DeviceType.CPU else ""
        config = RuntimeConfig(runtime="dpcpp", cpu_places=places,
                               threads_per_unit=threads_per_unit,
                               in_order=not out_of_order)
        return Queue(device, config=config,
                     cost_model=self.cost_model(device),
                     program_cache=program_cache)

    def host_link(self, key: str) -> LinkDescriptor:
        try:
            factory = _HOST_LINKS[key]
        except KeyError:
            from ..errors import ConfigurationError
            raise ConfigurationError(
                f"oneapi backend has no host link for device {key!r}; "
                f"known: {tuple(sorted(_HOST_LINKS))}") from None
        return factory()
