"""Performance portability across the backend matrix (Pennycook PP).

The backend layer's scorecard.  Pennycook, Sewall and Lee define the
performance portability of an application ``a`` solving problem ``p``
on a platform set ``H`` as the harmonic mean of its *application
efficiency* on each platform — zero if any platform is unsupported::

    PP(a, p, H) = |H| / sum_{i in H} 1 / e_i(a, p)

Application efficiency ``e_i`` is "achieved performance as a fraction
of the best-known achievable performance on that platform".  Here both
numbers come from the same simulated stack:

* **best-achievable** — what ``run_push(config="auto")`` reaches on
  the device: the roofline autotuner picks layout, precision, fusion
  (and SMT tiling on CPUs) per device;
* **achieved (portable)** — what one fixed, portable configuration
  (:data:`PORTABLE_CONFIG`: SoA / float / fused, defaults otherwise)
  reaches everywhere, the way a single unspecialised source tree would
  ship.

``e_i = best_nsps / portable_nsps`` (NSPS is time-per-work, so the
ratio is best-over-achieved), clamped to 1.0 — the portable config
occasionally *ties* the tuned one and simulation determinism would
otherwise produce e > 1 noise.

The report is JSON-round-trippable; ``repro bench portability
--record`` (or the legacy ``repro portability --record``) appends a
schema-v1 snapshot to ``benchmarks/BENCH_portability.json`` and CI's
``bench-regress`` job replays the declared ``portability`` regression
suite, failing on drift beyond :data:`PP_DRIFT_TOLERANCE` — a backend
or cost-model change that shifts the portability story must update the
committed baseline deliberately.  The tolerance comparison routes
through :func:`repro.regress.within_tolerance`, the repo's single
drift code path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError, ValidationError

__all__ = ["PORTABLE_CONFIG", "PP_DRIFT_TOLERANCE", "DeviceEfficiency",
           "PortabilityReport", "pp_score", "measure_portability",
           "write_baseline", "load_baseline", "check_drift"]

#: The fixed configuration played on every device: the paper's best
#: *portable* choice (SoA coalesces on every architecture, float is
#: the portable precision, fusion never hurts here).
PORTABLE_CONFIG = {"layout": "SoA", "precision": "float", "fusion": True}

#: Relative PP-score drift CI tolerates before failing the smoke job.
#: The simulated clock is deterministic, so genuine drift means a cost
#: model or tuner change — the tolerance only absorbs float noise.
PP_DRIFT_TOLERANCE = 0.02

#: Default problem size of the sweep: big enough that every device is
#: in its DRAM-resident steady state, small enough for CI.
DEFAULT_N_PARTICLES = 20_000
DEFAULT_STEPS = 4
DEFAULT_WARMUP = 2


@dataclass
class DeviceEfficiency:
    """One device's row of the portability table.

    ``best_nsps`` is the autotuned figure (with the winning candidate's
    label so the table explains *what* tuning bought), ``portable_nsps``
    the fixed-config figure, ``efficiency`` their clamped ratio.
    """

    device: str
    backend: str
    best_nsps: float
    portable_nsps: float
    efficiency: float
    best_label: str = ""
    predicted_nsps: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "device": self.device, "backend": self.backend,
            "best_nsps": self.best_nsps,
            "portable_nsps": self.portable_nsps,
            "efficiency": self.efficiency,
            "best_label": self.best_label,
        }
        if self.predicted_nsps is not None:
            data["predicted_nsps"] = self.predicted_nsps
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DeviceEfficiency":
        return cls(device=str(data["device"]),
                   backend=str(data["backend"]),
                   best_nsps=float(data["best_nsps"]),
                   portable_nsps=float(data["portable_nsps"]),
                   efficiency=float(data["efficiency"]),
                   best_label=str(data.get("best_label", "")),
                   predicted_nsps=data.get("predicted_nsps"))


@dataclass
class PortabilityReport:
    """The full sweep: per-device efficiencies and the single PP score."""

    pp: float
    devices: List[DeviceEfficiency] = field(default_factory=list)
    n_particles: int = DEFAULT_N_PARTICLES
    steps: int = DEFAULT_STEPS
    warmup: int = DEFAULT_WARMUP
    portable_config: Dict[str, object] = field(
        default_factory=lambda: dict(PORTABLE_CONFIG))

    def as_dict(self) -> Dict[str, object]:
        return {"pp": self.pp,
                "devices": [row.as_dict() for row in self.devices],
                "n_particles": self.n_particles, "steps": self.steps,
                "warmup": self.warmup,
                "portable_config": dict(self.portable_config)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PortabilityReport":
        return cls(pp=float(data["pp"]),
                   devices=[DeviceEfficiency.from_dict(row)
                            for row in data["devices"]],
                   n_particles=int(data["n_particles"]),
                   steps=int(data["steps"]),
                   warmup=int(data["warmup"]),
                   portable_config=dict(data["portable_config"]))


def pp_score(efficiencies: Sequence[float]) -> float:
    """Pennycook harmonic-mean PP over per-device efficiencies.

    Zero if the set is empty or any efficiency is zero (an unsupported
    platform zeroes the metric by definition).
    """
    if not efficiencies:
        return 0.0
    for e in efficiencies:
        if not 0.0 <= e <= 1.0:
            raise ConfigurationError(
                f"application efficiency must be in [0, 1], got {e}")
    if any(e == 0.0 for e in efficiencies):
        return 0.0
    return len(efficiencies) / sum(1.0 / e for e in efficiencies)


def measure_portability(devices: Optional[Sequence[str]] = None,
                        n_particles: int = DEFAULT_N_PARTICLES,
                        steps: int = DEFAULT_STEPS,
                        warmup: int = DEFAULT_WARMUP
                        ) -> PortabilityReport:
    """Run the best-vs-portable sweep and compute the PP score.

    ``devices`` defaults to every registered device of every backend
    (:func:`repro.backends.registry.all_device_specs`).  Each device
    runs twice: once autotuned (``config="auto"``) for the
    best-achievable figure, once with :data:`PORTABLE_CONFIG` for the
    portable figure.
    """
    from ..api import RunConfig, run_push
    from .registry import all_device_specs, parse_device_spec

    specs = list(devices) if devices is not None else all_device_specs()
    if not specs:
        raise ConfigurationError("portability sweep needs >= 1 device")
    rows: List[DeviceEfficiency] = []
    for spec in specs:
        backend_name, _ = parse_device_spec(spec)
        best = run_push(RunConfig(config="auto", device=spec,
                                  n_particles=n_particles, steps=steps,
                                  warmup=warmup))
        portable = run_push(RunConfig(device=spec,
                                      n_particles=n_particles,
                                      steps=steps, warmup=warmup,
                                      **PORTABLE_CONFIG))
        efficiency = min(1.0, best.nsps / portable.nsps) \
            if portable.nsps > 0.0 else 0.0
        label = ""
        if best.tuning is not None:
            label = best.tuning.best.candidate.label
        rows.append(DeviceEfficiency(
            device=spec, backend=backend_name,
            best_nsps=best.nsps, portable_nsps=portable.nsps,
            efficiency=efficiency, best_label=label,
            predicted_nsps=best.predicted_nsps))
    return PortabilityReport(
        pp=pp_score([row.efficiency for row in rows]), devices=rows,
        n_particles=n_particles, steps=steps, warmup=warmup)


# -- baseline persistence (benchmarks/BENCH_portability.json) -----------
#
# Since PR 9 the file is the regression farm's schema v1
# (repro.regress.baseline); these helpers keep the PortabilityReport
# view of it.  Reading still accepts the PR 8 flat dump.

def _report_from_snapshot(snapshot) -> PortabilityReport:
    """Rebuild a :class:`PortabilityReport` from a v1 snapshot."""
    devices: List[DeviceEfficiency] = []
    pp = 0.0
    portable_config: Dict[str, object] = dict(PORTABLE_CONFIG)
    for cell in snapshot.cells:
        config = cell.keys.get("config")
        if config == "efficiency":
            devices.append(DeviceEfficiency(
                device=cell.keys["device"],
                backend=cell.keys.get("backend", "oneapi"),
                best_nsps=float(cell.metrics.get("best_nsps", 0.0)),
                portable_nsps=float(cell.metrics.get("portable_nsps",
                                                     0.0)),
                efficiency=float(cell.metrics.get("efficiency", 0.0)),
                best_label=str(cell.extra.get("best_label", "")),
                predicted_nsps=cell.metrics.get("predicted_nsps")))
        elif config == "pp":
            pp = float(cell.metrics.get("pp", 0.0))
            portable_config = dict(cell.extra.get("portable_config",
                                                  PORTABLE_CONFIG))
    return PortabilityReport(
        pp=pp, devices=devices,
        n_particles=snapshot.n_particles,
        steps=int(snapshot.params.get("steps", DEFAULT_STEPS)),
        warmup=int(snapshot.params.get("warmup", DEFAULT_WARMUP)),
        portable_config=portable_config)


def write_baseline(report: PortabilityReport, path) -> Path:
    """Write the committed baseline file — schema v1, pretty-printed.

    The report becomes one v1 snapshot (per-device efficiency cells
    plus the ``pp`` summary cell the regression farm compares).
    """
    from ..bench.trajectory import git_sha
    from ..regress.baseline import migrate_document
    import datetime
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    baseline = migrate_document("portability", report.as_dict())
    snapshot = baseline.latest
    snapshot.git_sha = git_sha()
    snapshot.date = datetime.date.today().isoformat()
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(baseline.as_dict(), handle, indent=1)
        handle.write("\n")
    return target


def load_baseline(path) -> PortabilityReport:
    """Load a committed baseline (v1 or the PR 8 flat shape).

    Malformed files raise :class:`~repro.errors.ValidationError` (the
    drift check must not silently pass on a corrupt baseline).
    """
    from ..regress.baseline import migrate_document
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if isinstance(document, dict) and "pp" in document \
                and "devices" in document:
            return PortabilityReport.from_dict(document)
        baseline = migrate_document("portability", document)
        if baseline.latest is None:
            raise ValidationError("baseline has no snapshots")
        return _report_from_snapshot(baseline.latest)
    except ValidationError:
        raise
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise ValidationError(
            f"unreadable portability baseline {path}: "
            f"{type(exc).__name__}: {exc}") from exc


def check_drift(current: PortabilityReport, baseline: PortabilityReport,
                tolerance: float = PP_DRIFT_TOLERANCE) -> List[str]:
    """Compare a fresh sweep against the committed baseline.

    Returns human-readable drift findings (empty = within tolerance).
    Checks the PP score relatively — through the repo's single
    tolerance predicate, :func:`repro.regress.within_tolerance` — and
    the device set exactly (a device appearing or vanishing is always
    a finding).
    """
    from ..regress.base import within_tolerance
    findings: List[str] = []
    current_devices = {row.device for row in current.devices}
    baseline_devices = {row.device for row in baseline.devices}
    for missing in sorted(baseline_devices - current_devices):
        findings.append(f"device {missing!r} in baseline but not in sweep")
    for added in sorted(current_devices - baseline_devices):
        findings.append(f"device {added!r} in sweep but not in baseline")
    if baseline.pp > 0.0:
        if not within_tolerance(current.pp, baseline.pp, tolerance):
            drift = abs(current.pp - baseline.pp) / baseline.pp
            findings.append(
                f"PP score drifted {drift:.1%} (baseline {baseline.pp:.4f}"
                f", current {current.pp:.4f}, tolerance {tolerance:.0%})")
    elif current.pp != baseline.pp:
        findings.append(
            f"PP score changed from 0 to {current.pp:.4f}")
    return findings
