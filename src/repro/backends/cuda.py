"""Simulated CUDA backend: in-order streams, graphs, warp occupancy.

The portability claim of the backend layer is only credible if the
second backend differs where real runtimes differ.  This one models a
CUDA-style runtime the way :mod:`repro.oneapi` models DPC++ — same
real numpy physics underneath (the differential harness demands
bit-exact digests across backends), different *timing* semantics:

* **In-order streams.**  A CUDA stream executes its work in submission
  order; concurrency comes from using several streams, not from
  reordering within one.  :class:`CudaStream` therefore always builds
  an in-order timeline, even when a caller (the distributed layer)
  asks for out-of-order — exchange and compute on one simulated card
  serialise, exactly as they would on a single ``cudaStream_t``.
* **Warp-quantised occupancy.**  The SM retires work in warps of 32
  lanes: a remainder of 3 work items still occupies a full warp.
  :meth:`CudaCostModel._occupancy_items` rounds the busiest unit's
  items up to a multiple of :data:`WARP_SIZE` (the oneAPI model
  charges the exact count).  Thread blocks are 128 threads
  (:data:`CUDA_BLOCK_SIZE`), four warps per block.
* **Graph capture and replay.**  The pusher launches the same kernel
  sequence every step — the canonical CUDA-graph workload.  The model
  mirrors ``cudaStreamBeginCapture``/``cudaGraphLaunch``: the first
  :data:`GRAPH_CAPTURE_LAUNCHES` launches of a kernel pay the full
  driver submission cost, after which the launch replays from the
  captured graph at :data:`GRAPH_REPLAY_DISCOUNT` of it.  The
  *steady-state* overhead the planners price is the replay cost.
* **Context initialisation.**  The very first launch on a fresh
  context pays ``cuInit``/primary-context setup
  (:data:`CONTEXT_INIT_SECONDS`) — a one-off on top of JIT, excluded
  from steady-state NSPS by the engines' warm-up iterations.
* **NVRTC JIT.**  Compiling CUDA C++ to PTX and then SASS is slower
  than the SPIR-V -> ISA translation the oneAPI devices pay: 0.5 s
  calibrated, against 0.15-0.3 s.

The two devices are calibrated against public datasheet figures the
same way :mod:`repro.bench.calibration` justifies the paper's devices:

* ``gpu0`` — a V100-class data-center card: 80 SMs at 1.38 GHz boost,
  2 FMA x 64 FP32 lanes per SM per cycle, native 1:2 DP, ~810 GB/s
  achievable of the 900 GB/s HBM2 peak (STREAM-like fraction), 32 B
  memory transaction granularity.
* ``gpu1`` — a T4-class inference card: 40 SMs at 1.35 GHz sustained,
  1:32 DP (the double-precision cliff the portability score has to
  surface), ~220 GB/s achievable of 320 GB/s GDDR6.

Both are discrete cards behind PCIe 3.0 x16 (~12.6 GB/s achievable),
which is what the distributed layer prices halo exchange over.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..distributed.links import LinkDescriptor
from ..errors import ConfigurationError
from ..oneapi.costmodel import CostModel
from ..oneapi.device import DeviceDescriptor, DeviceType
from ..oneapi.kernelspec import KernelSpec
from ..oneapi.queue import Queue, RuntimeConfig
from ..oneapi.scheduler import GpuScheduler
from .base import Backend

__all__ = ["CudaBackend", "CudaCostModel", "CudaStream", "WARP_SIZE",
           "CUDA_BLOCK_SIZE", "GRAPH_CAPTURE_LAUNCHES",
           "GRAPH_REPLAY_DISCOUNT", "CONTEXT_INIT_SECONDS"]

#: SIMT execution width: work is retired in bundles of 32 lanes.
WARP_SIZE = 32

#: Thread-block size the simulated launches use (4 warps — the common
#: default for memory-bound elementwise kernels).
CUDA_BLOCK_SIZE = 128

#: Launches of one kernel before its submission is considered captured
#: into a graph and starts replaying.
GRAPH_CAPTURE_LAUNCHES = 3

#: Fraction of the full driver submission cost a graph replay pays.
GRAPH_REPLAY_DISCOUNT = 0.25

#: One-off cuInit / primary-context creation charged to the first
#: launch on a fresh context (i.e. per cost-model instance).
CONTEXT_INIT_SECONDS = 0.08


def _v100_like() -> DeviceDescriptor:
    """An 80-SM HBM2 data-center card (V100 class)."""
    return DeviceDescriptor(
        name="CUDA GPU0 (V100-class)",
        device_type=DeviceType.GPU,
        compute_units=80,            # SMs
        threads_per_unit=8,          # resident blocks worth of latency hiding
        numa_domains=1,
        clock_hz=1.38e9,             # sustained boost
        flops_per_cycle_sp=128,      # 2 x 64 FP32 FMA lanes per SM
        dp_throughput_ratio=0.5,     # native 1:2 double precision
        vector_efficiency=0.45,      # pusher loop vs. peak FMA issue
        domain_bandwidth=810.0e9,    # STREAM-like fraction of 900 GB/s HBM2
        interconnect_bandwidth=810.0e9,
        unit_bandwidth=12.0e9,       # one SM's share of HBM bandwidth
        smt_bandwidth_boost=1.0,
        smt_domain_efficiency=1.0,
        access_granularity=32,       # L2 sector / memory transaction
        cache_per_domain=6.0e6,      # L2
        write_allocate=True,
        kernel_launch_overhead=8.0e-6,
        jit_compile_seconds=0.5,     # NVRTC -> PTX -> SASS
        host_transfer_bandwidth=12.6e9,   # PCIe 3.0 x16
        backend="cuda",
    )


def _t4_like() -> DeviceDescriptor:
    """A 40-SM GDDR6 inference card (T4 class) with the 1:32 DP cliff."""
    return DeviceDescriptor(
        name="CUDA GPU1 (T4-class)",
        device_type=DeviceType.GPU,
        compute_units=40,
        threads_per_unit=8,
        numa_domains=1,
        clock_hz=1.35e9,
        flops_per_cycle_sp=128,
        dp_throughput_ratio=0.03125,  # 1:32 — consumer-die DP units
        vector_efficiency=0.45,
        domain_bandwidth=220.0e9,     # of 320 GB/s GDDR6 peak
        interconnect_bandwidth=220.0e9,
        unit_bandwidth=9.0e9,
        smt_bandwidth_boost=1.0,
        smt_domain_efficiency=1.0,
        access_granularity=32,
        cache_per_domain=4.0e6,
        write_allocate=True,
        kernel_launch_overhead=8.0e-6,
        jit_compile_seconds=0.5,
        host_transfer_bandwidth=12.6e9,
        backend="cuda",
    )


#: Device factories by bare key, in display order.
_DEVICE_FACTORIES = {
    "gpu0": _v100_like,
    "gpu1": _t4_like,
}


def _pcie3_x16() -> LinkDescriptor:
    """PCIe 3.0 x16 host interface of both simulated cards.

    15.75 GB/s raw per direction; ~12.6 GB/s achievable with pinned
    memory, ~5 us submission latency.
    """
    return LinkDescriptor(name="PCIe 3.0 x16", bandwidth=12.6e9,
                          latency=5.0e-6)


class CudaCostModel(CostModel):
    """CUDA-flavoured timing on top of the shared roofline.

    Overrides the three backend hooks of :class:`CostModel`:

    * occupancy is warp-quantised (:data:`WARP_SIZE`);
    * the steady-state launch overhead the planners price is the
      graph-*replay* cost — a long-running pusher amortises capture
      within its warm-up;
    * the measured path is stateful per instance: launches 1..N of a
      kernel pay full submission (capture), later ones the replay
      discount, and the first launch ever also pays context init.

    One instance corresponds to one CUDA context: a fresh stream gets a
    fresh model, so context init and capture state never leak between
    runs (mirrored by :meth:`CudaBackend.make_queue` building a new
    model per stream).
    """

    def __init__(self, device: DeviceDescriptor) -> None:
        # GPUs pay strided access on the bandwidth side; 32 B sectors
        # make partial transactions cheaper than the 64 B oneAPI GPUs.
        super().__init__(device,
                         static_launch_barrier=3.0e-6,
                         gpu_strided_efficiency=0.7,
                         cold_line_latency=1.0e-7)
        self._launches_by_kernel: Dict[str, int] = {}
        self._context_initialized = False

    def _occupancy_items(self, busiest: float) -> float:
        if busiest <= 0.0:
            return busiest
        return float(math.ceil(busiest / WARP_SIZE) * WARP_SIZE)

    def _steady_launch_overhead(self) -> float:
        return self.device.kernel_launch_overhead * GRAPH_REPLAY_DISCOUNT

    def _measured_launch_overhead(self, spec: KernelSpec) -> float:
        count = self._launches_by_kernel.get(spec.name, 0)
        self._launches_by_kernel[spec.name] = count + 1
        if count < GRAPH_CAPTURE_LAUNCHES:
            overhead = self.device.kernel_launch_overhead
        else:
            overhead = self.device.kernel_launch_overhead \
                * GRAPH_REPLAY_DISCOUNT
        if not self._context_initialized:
            self._context_initialized = True
            overhead += CONTEXT_INIT_SECONDS
        return overhead

    # -- introspection (tests, reports) ----------------------------------

    def launches_of(self, kernel_name: str) -> int:
        """Measured launches of ``kernel_name`` on this context."""
        return self._launches_by_kernel.get(kernel_name, 0)

    def is_graph_replaying(self, kernel_name: str) -> bool:
        """Whether the next launch of ``kernel_name`` replays a graph."""
        return self._launches_by_kernel.get(kernel_name, 0) \
            >= GRAPH_CAPTURE_LAUNCHES


class CudaStream(Queue):
    """A CUDA stream: an in-order queue, always.

    Callers that request out-of-order ordering (the distributed
    layer's exchange/compute overlap) still get an in-order timeline —
    within one stream, CUDA serialises; the hazard detector and the
    makespan both see that semantic difference.
    """

    def __init__(self, device: DeviceDescriptor,
                 config: Optional[RuntimeConfig] = None,
                 cost_model: Optional[CostModel] = None,
                 program_cache=None) -> None:
        if config is None:
            config = RuntimeConfig()
        if not config.in_order:
            # Single-stream CUDA semantics: demote, don't reject — the
            # distributed layer asks generically and must keep working.
            config = RuntimeConfig(
                runtime=config.runtime, cpu_places=config.cpu_places,
                units=config.units,
                threads_per_unit=config.threads_per_unit,
                scheduler=config.scheduler, in_order=True)
        if config.scheduler is None:
            config.scheduler = GpuScheduler(workgroup_size=CUDA_BLOCK_SIZE)
        super().__init__(device, config=config, cost_model=cost_model,
                         program_cache=program_cache)


class CudaBackend(Backend):
    """The simulated CUDA runtime."""

    name = "cuda"

    def device_keys(self) -> Tuple[str, ...]:
        return tuple(_DEVICE_FACTORIES)

    def device(self, key: str) -> DeviceDescriptor:
        try:
            factory = _DEVICE_FACTORIES[key.lower()]
        except KeyError:
            raise ConfigurationError(
                f"unknown cuda device {key!r}; expected one of "
                f"{tuple(_DEVICE_FACTORIES)}") from None
        return factory()

    def cost_model(self, device: DeviceDescriptor) -> CudaCostModel:
        return CudaCostModel(device)

    def make_queue(self, device: DeviceDescriptor, *,
                   program_cache=None,
                   threads_per_unit: Optional[int] = None,
                   out_of_order: bool = False) -> CudaStream:
        # out_of_order is accepted and ignored: CudaStream demotes to
        # in-order (see class docstring).
        config = RuntimeConfig(runtime="dpcpp",
                               threads_per_unit=threads_per_unit,
                               in_order=not out_of_order)
        return CudaStream(device, config=config,
                          cost_model=self.cost_model(device),
                          program_cache=program_cache)

    def host_link(self, key: str) -> LinkDescriptor:
        if key.lower() not in _DEVICE_FACTORIES:
            raise ConfigurationError(
                f"cuda backend has no host link for device {key!r}; "
                f"known: {tuple(_DEVICE_FACTORIES)}")
        return _pcie3_x16()
