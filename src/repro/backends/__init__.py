"""Runtime backends: pluggable simulated runtimes under one engine stack.

Public surface:

* :class:`~repro.backends.base.Backend` — the contract (device
  enumeration, cost model, queue/stream construction, host links);
* :mod:`repro.backends.registry` — names, spec parsing
  (``"cuda:gpu0"``), and the dispatch helpers every engine uses;
* :class:`~repro.backends.oneapi.OneApiBackend` — the paper's
  simulated DPC++ runtime (bare device keys default here);
* :class:`~repro.backends.cuda.CudaBackend` — the simulated CUDA
  runtime: in-order streams, warp-quantised occupancy, graph
  capture/replay launch amortisation, NVRTC-priced JIT;
* :mod:`repro.backends.portability` — the Pennycook
  performance-portability score across the whole device matrix.

See ``docs/BACKENDS.md`` for the interface contract and the
add-a-backend walkthrough.
"""

from .base import Backend
from .registry import (BACKEND_NAMES, all_device_specs,
                       canonical_device_spec, cost_model_for_descriptor,
                       descriptor_for, get_backend, host_link_for,
                       parse_device_spec, queue_for, resolve_device)

__all__ = ["Backend", "BACKEND_NAMES", "get_backend", "parse_device_spec",
           "canonical_device_spec", "resolve_device", "descriptor_for",
           "cost_model_for_descriptor", "queue_for", "host_link_for",
           "all_device_specs"]
