"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.

The full catch hierarchy::

    ReproError
    ├── ConfigurationError
    ├── LayoutError
    ├── DeviceError
    │   ├── MemoryModelError
    │   │   └── AllocationFailedError
    │   ├── KernelError
    │   │   ├── GraphError
    │   │   └── HazardError
    │   ├── DeviceLostError
    │   └── LaunchTimeoutError
    │       └── ExchangeTimeoutError
    ├── FieldError
    ├── SimulationError
    │   └── ValidationError
    ├── ServiceError
    │   ├── JobRejectedError
    │   ├── JobDeadlineError
    │   └── JobPreemptedError
    └── TraceError

The :mod:`repro.api` facade guarantees this hierarchy is the *only*
failure surface: any exception escaping the scheduler, exchange or
kernel-graph paths that is not already a :class:`ReproError` is wrapped
into the closest documented class before it reaches the caller (see
:func:`repro.api.run_push`), so ``except ReproError`` around a facade
call is exhaustive.

The :class:`ServiceError` branch belongs to the multi-tenant scheduler
(:mod:`repro.service`) and is ordered by catch specificity: catch
:class:`JobRejectedError` to handle admission-control overload (the job
never ran), :class:`JobDeadlineError` for jobs killed for exceeding
their deadline or simulated-time budget (the job ran and was stopped),
:class:`JobPreemptedError` for jobs displaced by higher-priority work
that could not be resumed, and :class:`ServiceError` as the one arm
that covers every way the scheduler can fail a job.  Device failures
*inside* a scheduled job keep their own taxonomy (a job that exhausts
the fleet fails with :class:`DeviceLostError`, not a service error):
``except (ServiceError, DeviceError)`` around a schedule is exhaustive
for per-job failures, and plain ``except ReproError`` remains the
catch-all, as everywhere else.

The leaves under :class:`DeviceError` added for the resilience layer
(:mod:`repro.resilience`) split device failures by recovery semantics:
:class:`AllocationFailedError` and :class:`LaunchTimeoutError` (with
its inter-device specialisation :class:`ExchangeTimeoutError`, raised
by the distributed layer when a cost-modeled exchange stalls) are
*transient* (a bounded retry with backoff can succeed), while
:class:`DeviceLostError` is *fatal to the device* (recovery means
failing over to the next device in the fallback chain — or, for a
sharded :class:`~repro.distributed.ShardedPushEngine`, redistributing
the lost shard over the surviving devices — and restoring from a
checkpoint).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Usage: catch this to handle *any* deliberate library failure in one
    place (e.g. around a whole experiment run) while letting genuine
    bugs — ``TypeError``, ``AttributeError`` — propagate::

        try:
            table2_rows()
        except ReproError as exc:
            print(f"benchmark aborted: {exc}")
    """


class ConfigurationError(ReproError):
    """An object was configured with inconsistent or invalid parameters.

    Usage: raised eagerly at construction or call time (bad step
    counts, unknown scenario names, mismatched cost model and device),
    never mid-computation — if you see it, fix the arguments at the
    raising call site; retrying cannot succeed.
    """


class LayoutError(ReproError):
    """A particle-storage layout operation was invalid (e.g. mixing
    ensembles with different layouts or precisions).

    Usage: convert one side explicitly (``ensemble.to_layout`` /
    ``astype``-style helpers) before combining; the library never
    converts silently because layout is the variable under study.
    """


class DeviceError(ReproError):
    """A simulated oneAPI device or queue was used incorrectly.

    Usage: the base class for runtime-simulator misuse; catch it to
    guard a whole simulated execution.  The more specific
    :class:`MemoryModelError` and :class:`KernelError` derive from it,
    so ``except DeviceError`` catches those too.
    """


class MemoryModelError(DeviceError):
    """A USM allocation or access violated the simulated memory model.

    Usage: typically an out-of-range touch, a double free, or use after
    free on a :class:`~repro.oneapi.memory.UsmAllocation` — the bug is
    in the calling kernel/driver code, not in the data.
    """


class AllocationFailedError(MemoryModelError):
    """A simulated USM allocation could not be satisfied.

    Usage: raised by :class:`~repro.oneapi.memory.UsmMemoryManager`
    when the (possibly fault-injected) allocator reports exhaustion.
    Transient by contract: freeing memory or simply retrying after a
    backoff (see :class:`~repro.resilience.RetryPolicy`) may succeed,
    unlike the other :class:`MemoryModelError` cases, which are caller
    bugs.
    """


class KernelError(DeviceError):
    """A kernel submission failed (bad range, unbound buffers, ...).

    Usage: raised when a :class:`~repro.oneapi.kernelspec.KernelSpec`
    is self-inconsistent (negative sizes, span smaller than payload) or
    a launch is malformed; validate specs once at build time and reuse
    them, as :func:`repro.oneapi.runtime.build_virtual_push_spec` does.
    """


class GraphError(KernelError):
    """A kernel graph was built or fused illegally.

    Usage: raised by :mod:`repro.oneapi.graph` when nodes are recorded
    with inconsistent item counts, when a fusion is requested across a
    barrier node (deposition, sorting) or across layout/precision
    boundaries, or when merged specs disagree about a shared stream.
    The graph is the caller's declaration, so the fix is at the
    recording site; fusion itself never raises — illegal pairs are
    simply left unfused by the planner.
    """


class HazardError(KernelError):
    """Two simulated commands raced on a shared memory stream.

    Usage: raised by :mod:`repro.validation.hazard` when replaying an
    out-of-order queue's command log finds a RAW/WAR/WAW pair touching
    the same declared stream without a ``depends_on`` path ordering
    them.  The bug is in the submission code (a missing event edge),
    not in the data: the fix is to thread the earlier command's
    :class:`~repro.oneapi.events.SimEvent` into the later launch's
    ``depends_on`` — exactly what
    :class:`~repro.oneapi.graph.GraphExecutor` does between fused
    groups.  In-order queues serialize every pair and can never raise
    this.
    """


class DeviceLostError(DeviceError):
    """The simulated device died mid-run (reset, hang, hot-unplug).

    Usage: mirrors ``sycl::errc::device_lost`` / ``CL_DEVICE_LOST``.
    The device is gone for the rest of the process: retrying on the
    same queue cannot succeed.  Recover by failing over to the next
    device of a :class:`~repro.resilience.FallbackChain` and restoring
    particle state from the last checkpoint
    (:class:`~repro.resilience.Checkpointer`).
    """


class LaunchTimeoutError(DeviceError):
    """A kernel launch exceeded the watchdog timeout and was killed.

    Usage: raised when a (fault-injected) hung launch runs past
    :class:`~repro.resilience.Watchdog` seconds of simulated time.
    Transient: the watchdog charges the timeout to the simulated
    timeline and a bounded retry usually succeeds; repeated timeouts
    escalate to :class:`DeviceLostError` semantics via the retry
    policy's attempt bound.
    """


class ExchangeTimeoutError(LaunchTimeoutError):
    """A cost-modeled inter-device exchange stalled past the watchdog.

    Usage: raised at the exchange sites of the distributed layer
    (:meth:`repro.oneapi.queue.Queue.memcpy_async`, driven by
    :class:`~repro.distributed.ExchangeModel`) when a halo or
    field-replication transfer hangs — the multi-device analogue of a
    hung kernel launch.  Transient, like its base class: the stalled
    window is charged to the simulated timeline and the exchange is
    re-issued under the bounded retry policy; ``except
    LaunchTimeoutError`` handlers therefore recover exchanges too.
    """


class FieldError(ReproError):
    """A field source was evaluated outside its domain of validity.

    Usage: e.g. the m-dipole series expansion probed beyond its
    convergence radius; either restrict the sampling region or switch
    to the closed-form evaluation path.
    """


class SimulationError(ReproError):
    """A PIC simulation reached an invalid state (NaNs, CFL violation, ...).

    Usage: raised by :meth:`repro.pic.simulation.PicSimulation.check_state`
    and by constructors rejecting unstable setups.  On CFL violations
    reduce ``dt`` (or use the spectral solver, which has no Courant
    limit); on NaNs inspect the last stable step's diagnostics.
    """


class ValidationError(SimulationError):
    """An engine's result diverged from the scalar Boris reference.

    Usage: raised by :mod:`repro.validation.differential` (and by
    :func:`repro.api.run_push` with ``validate=True``) when a pushed
    ensemble drifts past the per-precision ULP tolerance from
    :func:`repro.core.boris.boris_push_particle`, or when two runs that
    must be bit-identical (fused vs unfused, sharded gather vs single
    device) disagree on their sha256 state digests.  The message names
    the worst component and its measured ULP distance; see
    ``docs/VALIDATION.md`` for what the tolerances mean.
    """


class ServiceError(ReproError):
    """The multi-tenant job scheduler failed a job deliberately.

    Usage: the base class of every way :mod:`repro.service` can end a
    job other than successful completion — admission rejection,
    deadline/budget enforcement, unresumable preemption.  Catch it
    around a whole schedule to handle "the scheduler said no" in one
    place while letting device failures inside jobs
    (:class:`DeviceError`) keep their own recovery semantics.
    """


class JobRejectedError(ServiceError):
    """Admission control refused the job; it never ran.

    Usage: raised by :meth:`repro.service.JobQueue.admit` (and thus by
    :meth:`repro.service.PushService.submit`) under overload — queue
    capacity reached with no lower-priority job to evict, a tenant over
    its fair share, or a job spec the fleet can never satisfy.  The
    message carries the reason.  Rejection is a *backpressure signal*,
    not a crash: resubmit later, lower the ask, or raise the priority.
    """


class JobDeadlineError(ServiceError):
    """A job exceeded its deadline or its simulated-time budget.

    Usage: raised (and recorded on the :class:`~repro.service.JobReport`)
    when a job's completion would land past ``arrival +
    deadline_seconds`` on the simulated clock, or when its accumulated
    device seconds exceed ``budget_seconds``.  The job's state is
    whatever its last completed step left (checkpoints are kept for
    inspection); retrying needs a longer deadline, a bigger budget, or
    a smaller job.
    """


class JobPreemptedError(ServiceError):
    """A job was displaced by higher-priority work and not resumed.

    Usage: raised when admission control evicts a still-queued job to
    admit a higher-priority one, or when a running job exhausts the
    scheduler's preemption allowance (``max_preemptions``).  Ordinary
    preemption is *not* an error — the job is checkpointed, requeued
    and resumed, and only ``JobReport.preemptions`` records it.
    """


class TraceError(ReproError):
    """The observability layer was driven through an invalid transition.

    Usage: unbalanced :meth:`~repro.observability.tracer.Tracer.end_span`
    calls or a simulated slice ending before it starts.  Prefer the
    context managers (``tracer.span(...)``,
    :func:`~repro.observability.tracer.trace_span`) over manual
    begin/end pairs — they cannot produce this error.
    """
