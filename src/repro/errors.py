"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was configured with inconsistent or invalid parameters."""


class LayoutError(ReproError):
    """A particle-storage layout operation was invalid (e.g. mixing
    ensembles with different layouts or precisions)."""


class DeviceError(ReproError):
    """A simulated oneAPI device or queue was used incorrectly."""


class MemoryModelError(DeviceError):
    """A USM allocation or access violated the simulated memory model."""


class KernelError(DeviceError):
    """A kernel submission failed (bad range, unbound buffers, ...)."""


class FieldError(ReproError):
    """A field source was evaluated outside its domain of validity."""


class SimulationError(ReproError):
    """A PIC simulation reached an invalid state (NaNs, CFL violation, ...)."""
