"""Metrics: NSPS from simulated launch records and from real wall time.

NSPS (nanoseconds per particle per step) is the paper's figure of
merit: average iteration time in nanoseconds divided by the particle
count and the steps per iteration.

Public return types: :func:`nsps_from_records` returns the steady-state
NSPS as a ``float``; :func:`measure_real_nsps` returns a
:class:`MeasuredResult` (``nsps``, ``n_particles``, ``steps``,
``total_seconds``).  The warm-up-skipping rule of
:func:`nsps_from_records` is mirrored byte-for-byte by
:func:`repro.observability.summary.steady_nsps`, so NSPS recomputed
from a captured trace agrees exactly with the harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..core.kernels import boris_push_analytical, boris_push_precalculated
from ..errors import ConfigurationError
from ..fields.base import FieldSource
from ..fields.precalculated import PrecalculatedField
from ..observability.tracer import trace_span
from ..oneapi.queue import KernelLaunchRecord
from ..particles.ensemble import ParticleEnsemble

__all__ = ["nsps_from_records", "MeasuredResult", "measure_real_nsps"]


def nsps_from_records(records: Sequence[KernelLaunchRecord],
                      skip_warmup: int = 2) -> float:
    """Steady-state NSPS over launch records, skipping warm-up launches.

    The paper measures 10 iterations and notes the first is ~50% slower
    (JIT + cold memory); its NSPS averages over all of them, where the
    warm-up is diluted by the 1000 steps per iteration.  Here each
    record is a single step, so the first launches carry the whole
    warm-up — skipping them recovers the steady state the paper's
    averages effectively report.
    """
    if not records:
        raise ConfigurationError("no launch records to average")
    steady = records[skip_warmup:] if len(records) > skip_warmup else records
    return sum(r.nsps() for r in steady) / len(steady)


@dataclass
class MeasuredResult:
    """Real wall-clock measurement of the numpy kernels on this host."""

    nsps: float
    n_particles: int
    steps: int
    total_seconds: float


def measure_real_nsps(ensemble: ParticleEnsemble, scenario: str,
                      source: FieldSource, dt: float, steps: int = 10,
                      warmup_steps: int = 2) -> MeasuredResult:
    """Time the actual numpy Boris kernels on the current machine.

    This is the secondary, honest-hardware measurement recorded in
    EXPERIMENTS.md next to the modelled numbers: it validates that the
    kernels run and shows the real AoS-vs-SoA / float-vs-double /
    scenario contrasts that numpy itself exhibits.
    """
    if scenario not in ("precalculated", "analytical"):
        raise ConfigurationError(f"unknown scenario {scenario!r}")
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")

    precalc = None
    if scenario == "precalculated":
        precalc = PrecalculatedField(ensemble.size, ensemble.precision,
                                     ensemble.layout)

    sim_time = 0.0

    def one_step(timed: bool) -> float:
        nonlocal sim_time
        with trace_span(f"measure-step:{scenario}", "measure",
                        timed=timed):
            if precalc is not None:
                precalc.refresh(source, ensemble, sim_time)   # untimed prep
                start = time.perf_counter()
                boris_push_precalculated(ensemble, precalc, dt)
                elapsed = time.perf_counter() - start
            else:
                start = time.perf_counter()
                boris_push_analytical(ensemble, source, sim_time, dt)
                elapsed = time.perf_counter() - start
        sim_time += dt
        return elapsed if timed else 0.0

    with trace_span(f"measure:{scenario}", "measure",
                    n_particles=ensemble.size, steps=steps):
        for _ in range(warmup_steps):
            one_step(timed=False)
        total = sum(one_step(timed=True) for _ in range(steps))
    nsps = total * 1.0e9 / (ensemble.size * steps)
    return MeasuredResult(nsps=nsps, n_particles=ensemble.size,
                          steps=steps, total_seconds=total)
