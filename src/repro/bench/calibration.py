"""Device descriptors and cost-model constants for the paper's hardware.

Every number is either read straight off the paper's Table 1, derived
from public hardware specifications, or a *calibration constant* fitted
to one specific measurement of the paper — each case is annotated.  The
calibration constants are deliberately few: one achievable-bandwidth
figure and one vector efficiency per device, the TBB-overhead pair, the
GPU strided-access efficiencies and the cold-page latency.

The same constants are used for every experiment — Table 2, Table 3,
Fig. 1 and the in-text effects are all produced by this single
parameterisation, which is what makes the model a reproduction rather
than a per-table curve fit.

Public return types: :func:`xeon_8260l_node`, :func:`p630`,
:func:`iris_xe_max` and :func:`device_by_name` each return a fresh
:class:`~repro.oneapi.device.DeviceDescriptor`;
:func:`cost_model_for` returns a
:class:`~repro.oneapi.costmodel.CostModel` bound to the given
descriptor; ``DEVICE_NAMES`` is the tuple of names
:func:`device_by_name` accepts.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..oneapi.costmodel import CostModel
from ..oneapi.device import DeviceDescriptor, DeviceType

__all__ = ["xeon_8260l_node", "p630", "iris_xe_max", "cost_model_for",
           "device_by_name", "DEVICE_NAMES"]


def xeon_8260l_node() -> DeviceDescriptor:
    """The paper's CPU node: 2x Intel Xeon Platinum 8260L (Cascade Lake).

    * 48 cores / 2 sockets / 2 hyperthreads per core, 2.4 GHz — Table 1.
    * ``flops_per_cycle_sp = 32`` reproduces Table 1's 3.6 TFlops SP
      peak (48 x 2.4 GHz x 32 = 3.69e12); DP is half-rate AVX-512.
    * ``vector_efficiency = 0.25`` — calibrated: makes the
      compute-bound "Analytical Fields" float/SoA cell land at the
      paper's 0.43 ns (Table 2) given the ~394-flop kernel.
    * ``domain_bandwidth = 82 GB/s`` per socket — calibrated: makes the
      memory-bound "Precalculated Fields" float/SoA OpenMP cell land at
      0.50 ns for the kernel's 82 effective bytes per particle-step.
      (Consistent with STREAM-triad-like fractions of the 140.8 GB/s
      DDR4-2933 x 6 channel peak for a 10-stream mixed kernel.)
    * ``interconnect_bandwidth = 55 GB/s`` — calibrated to the plain
      DPC++ (non-NUMA) rows of Table 2; consistent with 3 UPI links at
      10.4 GT/s per direction under bidirectional load.
    * ``unit_bandwidth = 4.5 GB/s`` single-core sustainable bandwidth
      (line-fill-buffer limited) — calibrated to Fig. 1's ~63% strong
      scaling efficiency at 48 cores; hyperthreading boosts it by 1.25
      (the in-text observation that 96 threads beat 48).
    * 35.75 MB L3 per socket (8260L spec).
    """
    return DeviceDescriptor(
        name="2x Intel Xeon Platinum 8260L",
        device_type=DeviceType.CPU,
        compute_units=48,
        threads_per_unit=2,
        numa_domains=2,
        clock_hz=2.4e9,
        flops_per_cycle_sp=32.0,
        dp_throughput_ratio=0.5,
        vector_efficiency=0.25,
        domain_bandwidth=82.0e9,
        interconnect_bandwidth=55.0e9,
        unit_bandwidth=4.5e9,
        smt_bandwidth_boost=1.25,
        smt_domain_efficiency=0.88,
        access_granularity=64,
        cache_per_domain=35.75e6,
        write_allocate=True,
        kernel_launch_overhead=5.0e-6,
        jit_compile_seconds=0.15,
    )


def p630() -> DeviceDescriptor:
    """Intel UHD Graphics P630 (Gen9.5, 24 EUs) — Table 1.

    * 24 EUs x 7 hardware threads, 1.15 GHz boost; 16 SP flops per EU
      per cycle reproduces Table 1's 0.441 TFlops peak.
    * DP runs at 1/4 SP rate on Gen9.
    * ``domain_bandwidth = 35 GB/s`` — the iGPU shares the host's DDR4;
      calibrated to Table 3's SoA precalculated cell (2.43 ns for 82
      effective bytes).
    * ``vector_efficiency = 0.5`` — calibrated to Table 3's
      compute-heavier analytical SoA cell (1.93 ns).
    * No NUMA (one domain); EUs have no per-unit bandwidth wall, so
      ``unit_bandwidth`` is set to the full device bandwidth.
    """
    return DeviceDescriptor(
        name="Intel P630",
        device_type=DeviceType.GPU,
        compute_units=24,
        threads_per_unit=7,
        numa_domains=1,
        clock_hz=1.15e9,
        flops_per_cycle_sp=16.0,
        dp_throughput_ratio=0.25,
        vector_efficiency=0.5,
        domain_bandwidth=35.0e9,
        interconnect_bandwidth=35.0e9,
        unit_bandwidth=35.0e9,
        smt_bandwidth_boost=1.0,
        access_granularity=64,
        cache_per_domain=0.768e6,
        write_allocate=True,
        kernel_launch_overhead=15.0e-6,
        jit_compile_seconds=0.3,
    )


def iris_xe_max() -> DeviceDescriptor:
    """Intel Iris Xe Max (DG1, 96 EUs, 4 GB LPDDR4X) — Table 1.

    * 96 EUs x 7 threads, 1.65 GHz boost; 16 SP flops per EU per cycle
      reproduces Table 1's 2.5 TFlops peak (96 x 1.65e9 x 16 = 2.53e12).
    * Double precision is *emulated* on DG1 (the paper reports single
      precision only for this reason): ratio 0.03.
    * ``domain_bandwidth = 60 GB/s`` — calibrated to Table 3's SoA
      precalculated cell (1.42 ns); consistent with ~68 GB/s LPDDR4X
      peak at a STREAM-like fraction.
    """
    return DeviceDescriptor(
        name="Intel Iris Xe Max",
        device_type=DeviceType.GPU,
        compute_units=96,
        threads_per_unit=7,
        numa_domains=1,
        clock_hz=1.65e9,
        flops_per_cycle_sp=16.0,
        dp_throughput_ratio=0.03,
        vector_efficiency=0.5,
        domain_bandwidth=60.0e9,
        interconnect_bandwidth=60.0e9,
        unit_bandwidth=60.0e9,
        smt_bandwidth_boost=1.0,
        access_granularity=64,
        cache_per_domain=3.8e6,
        write_allocate=True,
        kernel_launch_overhead=10.0e-6,
        jit_compile_seconds=0.3,
    )


#: Canonical device names accepted by :func:`device_by_name`.
DEVICE_NAMES = ("cpu", "p630", "iris-xe-max")


def device_by_name(name: str) -> DeviceDescriptor:
    """Look up one of the paper's devices by short name."""
    factories = {"cpu": xeon_8260l_node, "p630": p630,
                 "iris-xe-max": iris_xe_max}
    try:
        return factories[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown device {name!r}; expected one of {DEVICE_NAMES}"
        ) from None


def cost_model_for(device: DeviceDescriptor) -> CostModel:
    """Cost model with the per-device tuned constants.

    * ``dynamic_efficiency = 0.92`` — the paper's "only ~10% on
      average" DPC++-vs-OpenMP gap on CPUs.
    * ``single_thread_excess = 0.5`` — the "quite slow" DPC++
      single-core baseline behind Fig. 1's super-linear speedup.
    * ``gpu_strided_efficiency`` — fitted to Table 3's AoS/SoA ratios:
      0.55 on the P630 (AoS ~2x slower) and 0.65 on Iris Xe Max (larger
      L3 recovers more of the strided traffic).
    * ``cold_line_latency = 250 ns`` per first-touch line — produces
      the in-text "first iteration takes 50% longer".
    """
    if device.device_type is DeviceType.CPU:
        return CostModel(device,
                         dynamic_chunk_overhead=0.5e-6,
                         static_launch_barrier=2.0e-6,
                         dynamic_efficiency=0.92,
                         single_thread_excess=0.5,
                         strided_compute_penalty=1.15,
                         cold_line_latency=2.5e-7)
    strided = 0.55 if "P630" in device.name else 0.65
    return CostModel(device,
                     dynamic_chunk_overhead=0.0,
                     static_launch_barrier=5.0e-6,
                     dynamic_efficiency=1.0,
                     single_thread_excess=0.0,
                     gpu_strided_efficiency=strided,
                     cold_line_latency=1.0e-7)
