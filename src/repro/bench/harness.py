"""Experiment runners for every table and figure of the paper.

Each public function regenerates one artefact; return shapes are fixed
API (the CLI, validation suite and observability layer all consume
them):

* :func:`model_push_nsps` — one benchmark cell; returns a
  :class:`ModelResult`;
* :func:`table2_rows` — Table 2 (CPU NSPS, 6 implementations x 2
  scenarios x 2 precisions); returns
  ``rows[(layout, parallelization)][(scenario, precision)] -> float``;
* :func:`table3_rows` — Table 3 (GPU NSPS, single precision); returns
  ``rows[layout][(scenario, device_name)] -> float``;
* :func:`fig1_series` — Fig. 1 (strong-scaling speedup, 1-48 cores);
  returns ``series["OpenMP/AoS"] -> [(cores, speedup), ...]``;
* :func:`first_iteration_ratio` — the in-text "first iteration takes
  50% longer"; returns the dimensionless ratio as a ``float``;
* :func:`thread_sweep` — the in-text "96 threads is empirically best"
  hyperthreading observation; returns ``{48: nsps, 96: nsps}``
  (thread count -> modelled NSPS, both as plain ``int``/``float``).

All runners work on the *modelled* device times (the paper's hardware
does not exist here); the real numpy kernels can be measured separately
via :func:`repro.bench.metrics.measure_real_nsps`.

Every runner reports into the observability layer when a tracer is
installed (``python -m repro trace table2 --out t.json``, or
:func:`repro.observability.tracing` in code): one ``bench``-category
span per artefact, one ``cell:...`` span per benchmark cell — the cell
span is the scope under which the traced kernel statistics are keyed,
so per-cell NSPS can be recomputed from the trace alone.  Tracing only
observes; traced and untraced runs produce identical numbers (enforced
by ``tests/test_observability.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..fields.dipole import MDipoleWave
from ..observability.tracer import trace_span
from ..fp import Precision
from ..oneapi.device import DeviceDescriptor
from ..oneapi.queue import Queue, RuntimeConfig
from ..oneapi.runtime import build_virtual_push_spec
from ..particles.ensemble import Layout
from ..resilience.recovery import allocate_with_retry, launch_with_retry
from .calibration import cost_model_for, device_by_name, xeon_8260l_node
from .metrics import nsps_from_records
from .scenarios import (BenchmarkCase, CPU_PARALLELIZATIONS,
                        PAPER_PARTICLES, PAPER_STEPS_PER_ITERATION,
                        runtime_config_for)

__all__ = ["ModelResult", "model_push_nsps", "table2_rows", "table3_rows",
           "fig1_series", "first_iteration_ratio", "thread_sweep",
           "fusion_rows", "autotune_rows"]

#: Modelled launches per experiment cell: enough to get past first-touch
#: and JIT warm-up plus a few steady-state samples.
DEFAULT_MODEL_STEPS = 6


@dataclass
class ModelResult:
    """Modelled NSPS of one benchmark cell."""

    case: BenchmarkCase
    nsps: float
    first_launch_nsps: float
    steady_launch_seconds: float
    first_launch_seconds: float
    bound: str

    def first_iteration_ratio(self,
                              steps: int = PAPER_STEPS_PER_ITERATION
                              ) -> float:
        """Modelled (first iteration time) / (steady iteration time).

        An "iteration" is ``steps`` launches; only the first launch of
        the first iteration carries JIT and cold-page costs.
        """
        steady_iteration = steps * self.steady_launch_seconds
        first_iteration = (self.first_launch_seconds
                           + (steps - 1) * self.steady_launch_seconds)
        return first_iteration / steady_iteration


def _device_for(case: BenchmarkCase) -> DeviceDescriptor:
    if case.parallelization in CPU_PARALLELIZATIONS:
        return xeon_8260l_node()
    return device_by_name(case.parallelization)


def _config_for(case: BenchmarkCase,
                units: Optional[int] = None,
                threads_per_unit: Optional[int] = None) -> RuntimeConfig:
    if case.parallelization in CPU_PARALLELIZATIONS:
        return runtime_config_for(case.parallelization, units,
                                  threads_per_unit)
    return RuntimeConfig(runtime="dpcpp")


def model_push_nsps(case: BenchmarkCase,
                    n: int = PAPER_PARTICLES,
                    steps: int = DEFAULT_MODEL_STEPS,
                    units: Optional[int] = None,
                    threads_per_unit: Optional[int] = None) -> ModelResult:
    """Model one benchmark cell and return its NSPS figures.

    ``units``/``threads_per_unit`` restrict the CPU core count (for the
    Fig. 1 sweep); None uses the whole device.
    """
    if steps < 3:
        raise ConfigurationError("need at least 3 launches (warm-up + steady)")
    cores = "" if units is None and threads_per_unit is None else \
        f"@{units or 'all'}c/{threads_per_unit or 'all'}t"
    with trace_span(f"cell:{case.label}{cores}", "bench",
                    n_particles=n, steps=steps):
        device = _device_for(case)
        queue = Queue(device, _config_for(case, units, threads_per_unit),
                      cost_model_for(device))
        field_flops = (MDipoleWave.flops_per_evaluation
                       if case.scenario == "analytical" else 0.0)
        # spec construction registers USM allocations, so under
        # --fault-plan it can hit an injected alloc-failure too
        spec = allocate_with_retry(
            lambda: build_virtual_push_spec(n, case.layout, case.precision,
                                            case.scenario, queue.memory,
                                            field_flops=field_flops),
            queue)
        # launch_with_retry is a 1:1 parallel_for when no fault injector
        # is installed; under --fault-plan it retries transient faults,
        # charging the backoff to the simulated timeline (and NSPS).
        records = [launch_with_retry(queue, n, spec,
                                     precision=case.precision)
                   for _ in range(steps)]
        steady = nsps_from_records(records)
    return ModelResult(
        case=case,
        nsps=steady,
        first_launch_nsps=records[0].nsps(),
        steady_launch_seconds=steady * 1.0e-9 * n,
        first_launch_seconds=records[0].simulated_seconds,
        bound=records[-1].timing.bound,
    )


def table2_rows(n: int = PAPER_PARTICLES,
                steps: int = DEFAULT_MODEL_STEPS
                ) -> Dict[Tuple[str, str], Dict[Tuple[str, str], float]]:
    """Regenerate Table 2: modelled CPU NSPS for all 24 cells.

    Returns ``rows[(layout, parallelization)][(scenario, precision)]``.
    """
    rows: Dict[Tuple[str, str], Dict[Tuple[str, str], float]] = {}
    with trace_span("table2", "bench", n_particles=n):
        for layout in (Layout.AOS, Layout.SOA):
            for parallelization in CPU_PARALLELIZATIONS:
                row: Dict[Tuple[str, str], float] = {}
                for scenario in ("precalculated", "analytical"):
                    for precision in (Precision.SINGLE, Precision.DOUBLE):
                        case = BenchmarkCase(scenario, layout, precision,
                                             parallelization)
                        row[(scenario, precision.value)] = \
                            model_push_nsps(case, n, steps).nsps
                rows[(layout.value, parallelization)] = row
    return rows


def table3_rows(n: int = PAPER_PARTICLES,
                steps: int = DEFAULT_MODEL_STEPS
                ) -> Dict[str, Dict[Tuple[str, str], float]]:
    """Regenerate Table 3: modelled single-precision NSPS on GPUs vs CPU.

    The "CPU" column is the same DPC++ NUMA build the paper carried
    over from Table 2.  Returns ``rows[layout][(scenario, device)]``.
    """
    rows: Dict[str, Dict[Tuple[str, str], float]] = {}
    with trace_span("table3", "bench", n_particles=n):
        for layout in (Layout.AOS, Layout.SOA):
            row: Dict[Tuple[str, str], float] = {}
            for scenario in ("precalculated", "analytical"):
                for device_name in ("cpu", "p630", "iris-xe-max"):
                    parallelization = ("DPC++ NUMA" if device_name == "cpu"
                                       else device_name)
                    case = BenchmarkCase(scenario, layout, Precision.SINGLE,
                                         parallelization)
                    row[(scenario, device_name)] = \
                        model_push_nsps(case, n, steps).nsps
            rows[layout.value] = row
    return rows


def fig1_series(core_counts: Optional[Sequence[int]] = None,
                n: int = PAPER_PARTICLES,
                steps: int = DEFAULT_MODEL_STEPS
                ) -> Dict[str, List[Tuple[int, float]]]:
    """Regenerate Fig. 1: strong-scaling speedup on 1-48 cores.

    Precalculated fields, single precision, OpenMP and DPC++ NUMA, AoS
    and SoA; 2 threads per core (the paper binds both hyperthreads).
    Speedup is relative to the same implementation on one core.
    Returns ``series["OpenMP/AoS"] = [(cores, speedup), ...]``.
    """
    if core_counts is None:
        core_counts = (1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48)
    series: Dict[str, List[Tuple[int, float]]] = {}
    with trace_span("fig1", "bench", n_particles=n):
        for parallelization in ("OpenMP", "DPC++ NUMA"):
            for layout in (Layout.AOS, Layout.SOA):
                case = BenchmarkCase("precalculated", layout,
                                     Precision.SINGLE, parallelization)
                base = model_push_nsps(case, n, steps, units=1,
                                       threads_per_unit=2).nsps
                points = []
                for cores in core_counts:
                    result = model_push_nsps(case, n, steps, units=cores,
                                             threads_per_unit=2)
                    points.append((cores, base / result.nsps))
                series[f"{parallelization}/{layout.value}"] = points
    return series


def first_iteration_ratio(n: int = PAPER_PARTICLES,
                          steps: int = DEFAULT_MODEL_STEPS,
                          steps_per_iteration: int =
                          PAPER_STEPS_PER_ITERATION) -> float:
    """Modelled first-iteration slowdown of the paper's DPC++ benchmark.

    The paper: "the first iteration takes 50% longer time than the
    subsequent ones" (JIT + cold memory).  Returns the modelled ratio
    for the DPC++ NUMA / SoA / float / precalculated configuration.
    """
    case = BenchmarkCase("precalculated", Layout.SOA, Precision.SINGLE,
                         "DPC++ NUMA")
    with trace_span("first-iter", "bench", n_particles=n):
        return model_push_nsps(case, n, steps).first_iteration_ratio(
            steps_per_iteration)


def thread_sweep(n: int = PAPER_PARTICLES,
                 steps: int = DEFAULT_MODEL_STEPS
                 ) -> Dict[int, float]:
    """NSPS of the OpenMP build at 48 vs 96 threads (hyperthreading).

    The paper: "employing 96 threads is empirically the best, that is,
    the use of hyperthreading technology improves performance".
    Returns ``{48: nsps, 96: nsps}``.
    """
    case = BenchmarkCase("precalculated", Layout.SOA, Precision.SINGLE,
                         "OpenMP")
    with trace_span("threads", "bench", n_particles=n):
        return {
            48: model_push_nsps(case, n, steps, units=48,
                                threads_per_unit=1).nsps,
            96: model_push_nsps(case, n, steps, units=48,
                                threads_per_unit=2).nsps,
        }


def fusion_rows(n: int = 200_000, steps: int = 8, warmup: int = 2,
                device: str = "iris-xe-max") -> "Dict[str, object]":
    """The kernel-graph fusion artefact: unfused vs fused, cold vs warm.

    Runs the paper's best GPU configuration (precalculated fields,
    SoA, float) twice through :func:`repro.api.run_push` — once with
    the per-step kernel graph unfused, once with the fusion pass on —
    and verifies the two final particle states are bit-identical
    (fusion only composes the same kernel bodies; it must never change
    physics).  Returns ``{"unfused": RunReport, "fused": RunReport}``;
    each report carries the warm steady NSPS, the cold first-step NSPS
    (one JIT compile per program-cache miss) and the fusion/cache
    counters — everything ``benchmarks/BENCH_fusion.json`` records.
    """
    from ..api import RunConfig, run_push
    from ..errors import GraphError

    reports: Dict[str, object] = {}
    with trace_span("fusion-bench", "bench", n_particles=n):
        for name, fusion in (("unfused", False), ("fused", True)):
            reports[name] = run_push(RunConfig(
                scenario="precalculated", layout=Layout.SOA,
                precision=Precision.SINGLE, n_particles=n, steps=steps,
                warmup=warmup, device=device, fusion=fusion))
    if reports["fused"].digest != reports["unfused"].digest:
        raise GraphError(
            "fused and unfused runs diverged: fusion must be bit-exact "
            f"({reports['fused'].digest} != {reports['unfused'].digest})")
    return reports


def autotune_rows(n: int = 50_000, steps: int = 6, warmup: int = 2,
                  device: str = "iris-xe-max") -> "Dict[str, object]":
    """The autotuner acceptance artefact: auto vs every candidate.

    Runs ``RunConfig(config="auto")`` once, then *measures* every
    candidate the tuner enumerated by running it through the same
    facade — the simulated-clock ground truth the predictions are
    judged against.  Returns ``{"auto": RunReport,
    "candidates": {label: RunReport}}``; the auto report carries the
    :class:`~repro.analysis.autotune.TuningReport` and the
    predicted-vs-measured comparison.

    The smoke assertion (CI's autotune job,
    ``benchmarks/bench_autotune.py``) is that the auto pick's measured
    warm NSPS is no worse than the worst measured candidate — i.e. the
    search cannot select a pessimal config — and within the
    calibration tolerance of its own prediction.
    """
    from ..analysis.autotune import apply_candidate, enumerate_candidates
    from ..api import RunConfig, run_push

    def base() -> "RunConfig":
        return RunConfig(scenario="precalculated", n_particles=n,
                         steps=steps, warmup=warmup, device=device)

    with trace_span("autotune-bench", "bench", n_particles=n):
        auto_config = base()
        auto_config.config = "auto"
        auto = run_push(auto_config)
        candidates: Dict[str, object] = {}
        for candidate in enumerate_candidates(base()):
            candidates[candidate.label] = run_push(
                apply_candidate(base(), candidate))
    return {"auto": auto, "candidates": candidates}
