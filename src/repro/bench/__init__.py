"""Benchmark harness: regenerate every table and figure of the paper.

* :mod:`~repro.bench.calibration` — device descriptors for the paper's
  Table 1 hardware and the per-device cost-model constants, each
  documented against the number it was fitted to;
* :mod:`~repro.bench.scenarios` — the paper's benchmark setup (1e7
  electrons in the 0.1-PW m-dipole wave) and the 6 CPU / 2 GPU
  implementation variants;
* :mod:`~repro.bench.metrics` — NSPS and measured-wall-clock helpers;
* :mod:`~repro.bench.harness` — experiment runners for Table 2, Table 3,
  Fig. 1 and the in-text observations;
* :mod:`~repro.bench.tables` — text rendering and paper-vs-model
  comparison.
"""

from .calibration import (
    xeon_8260l_node,
    p630,
    iris_xe_max,
    cost_model_for,
    device_by_name,
    DEVICE_NAMES,
)
from .scenarios import (
    PAPER_PARTICLES,
    PAPER_STEPS_PER_ITERATION,
    PAPER_ITERATIONS,
    paper_time_step,
    paper_wave,
    BenchmarkCase,
    CPU_PARALLELIZATIONS,
    runtime_config_for,
)
from .metrics import nsps_from_records, measure_real_nsps, MeasuredResult
from .harness import (
    ModelResult,
    model_push_nsps,
    table2_rows,
    table3_rows,
    fig1_series,
    first_iteration_ratio,
    thread_sweep,
    fusion_rows,
)
from .tables import format_table, comparison_table, PAPER_TABLE2, PAPER_TABLE3
from .validation import Check, ValidationReport, validate_against_paper
from .trajectory import (
    git_sha,
    trajectory_path,
    append_snapshot,
    latest_snapshot,
    load_trajectory,
    flatten_table2,
    flatten_table3,
    flatten_group_report,
    flatten_fusion,
)

__all__ = [
    "xeon_8260l_node",
    "p630",
    "iris_xe_max",
    "cost_model_for",
    "device_by_name",
    "DEVICE_NAMES",
    "PAPER_PARTICLES",
    "PAPER_STEPS_PER_ITERATION",
    "PAPER_ITERATIONS",
    "paper_time_step",
    "paper_wave",
    "BenchmarkCase",
    "CPU_PARALLELIZATIONS",
    "runtime_config_for",
    "nsps_from_records",
    "measure_real_nsps",
    "MeasuredResult",
    "ModelResult",
    "model_push_nsps",
    "table2_rows",
    "table3_rows",
    "fig1_series",
    "first_iteration_ratio",
    "thread_sweep",
    "fusion_rows",
    "format_table",
    "comparison_table",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "Check",
    "ValidationReport",
    "validate_against_paper",
    "git_sha",
    "trajectory_path",
    "append_snapshot",
    "latest_snapshot",
    "load_trajectory",
    "flatten_table2",
    "flatten_table3",
    "flatten_group_report",
    "flatten_fusion",
]
