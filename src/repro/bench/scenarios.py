"""The paper's benchmark setup and implementation matrix.

Experimental setup (Section 5.2): 1e7 electrons initially at rest,
uniform in a sphere of radius 0.6 lambda, pushed through the standing
m-dipole wave of power 0.1 PW for 1e3 time steps per "iteration", 10
iterations measured, NSPS = nanoseconds per particle per step.

The paper does not state the time step explicitly; we use 1/100 of the
wave period (a conventional choice that resolves the 2.1e15 1/s
oscillation comfortably) — NSPS is insensitive to dt, so this only
matters for the physics examples.

Implementations (Table 2): {AoS, SoA} x {OpenMP, DPC++, DPC++ NUMA};
plus the two GPUs for Table 3.

Public return types: :func:`paper_wave` returns the
:class:`~repro.fields.dipole.MDipoleWave`; :func:`paper_time_step` a
``float`` [s]; :func:`paper_ensemble` a
:class:`~repro.particles.ensemble.ParticleEnsemble` of the requested
layout/precision; :func:`runtime_config_for` a
:class:`~repro.oneapi.queue.RuntimeConfig`; :class:`BenchmarkCase` is
the frozen cell descriptor whose ``label`` property names tracing
scopes and table rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..fields.dipole import MDipoleWave
from ..fp import Precision
from ..oneapi.queue import RuntimeConfig
from ..particles.ensemble import Layout
from ..particles.initializers import paper_benchmark_ensemble

__all__ = ["PAPER_PARTICLES", "PAPER_STEPS_PER_ITERATION",
           "PAPER_ITERATIONS", "paper_wave", "paper_time_step",
           "paper_ensemble", "BenchmarkCase", "CPU_PARALLELIZATIONS",
           "SCENARIO_LABELS", "runtime_config_for"]

#: Particles in the paper's runs.
PAPER_PARTICLES = 10_000_000

#: Time steps per measured "iteration".
PAPER_STEPS_PER_ITERATION = 1_000

#: Measured iterations per experiment.
PAPER_ITERATIONS = 10

#: Display labels of the two scenarios, keyed by the internal name.
SCENARIO_LABELS = {"precalculated": "Precalculated Fields",
                   "analytical": "Analytical Fields"}

#: The three CPU parallelisations of Table 2.
CPU_PARALLELIZATIONS = ("OpenMP", "DPC++", "DPC++ NUMA")


def paper_wave() -> MDipoleWave:
    """The benchmark field: 0.1 PW m-dipole wave at 2.1e15 1/s."""
    return MDipoleWave()


def paper_time_step(fraction_of_period: float = 0.01) -> float:
    """Time step as a fraction of the wave period [s]."""
    if fraction_of_period <= 0.0:
        raise ConfigurationError("fraction_of_period must be positive")
    period = 2.0 * math.pi / MDipoleWave.PAPER_OMEGA
    return period * fraction_of_period


def paper_ensemble(n: int, layout: Layout = Layout.SOA,
                   precision: Precision = Precision.SINGLE,
                   seed: Optional[int] = 0):
    """The paper's initial electron ensemble, scaled to ``n`` particles."""
    return paper_benchmark_ensemble(n, layout=layout, precision=precision,
                                    seed=seed)


@dataclass(frozen=True)
class BenchmarkCase:
    """One cell of the paper's result tables.

    ``parallelization`` is one of :data:`CPU_PARALLELIZATIONS` for CPU
    runs, or a GPU device name ("p630", "iris-xe-max") for Table 3.
    """

    scenario: str
    layout: Layout
    precision: Precision
    parallelization: str

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIO_LABELS:
            raise ConfigurationError(
                f"scenario must be one of {tuple(SCENARIO_LABELS)}, "
                f"got {self.scenario!r}")

    @property
    def label(self) -> str:
        return (f"{self.layout.value}/{self.parallelization}/"
                f"{SCENARIO_LABELS[self.scenario]}/{self.precision.value}")


def runtime_config_for(parallelization: str,
                       units: Optional[int] = None,
                       threads_per_unit: Optional[int] = None
                       ) -> RuntimeConfig:
    """RuntimeConfig for one of the paper's CPU parallelisations.

    OpenMP uses the empirically best 96 threads (2 per core, the
    paper's hyperthreading observation); DPC++ lets "TBB select the
    thread count", which on this node is also all hardware threads.
    """
    if parallelization == "OpenMP":
        return RuntimeConfig(runtime="openmp", units=units,
                             threads_per_unit=threads_per_unit)
    if parallelization == "DPC++":
        return RuntimeConfig(runtime="dpcpp", cpu_places="",
                             units=units, threads_per_unit=threads_per_unit)
    if parallelization == "DPC++ NUMA":
        return RuntimeConfig(runtime="dpcpp", cpu_places="numa_domains",
                             units=units, threads_per_unit=threads_per_unit)
    raise ConfigurationError(
        f"unknown parallelization {parallelization!r}; expected one of "
        f"{CPU_PARALLELIZATIONS}")
