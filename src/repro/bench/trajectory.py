"""Performance trajectory: NSPS snapshots appended across commits.

The paper reports one set of numbers; a growing reproduction needs to
know when a change *moves* them.  This module seeds that trajectory:
every recorded run appends one snapshot — git sha, date, particle
count, and the flat list of benchmark cells with their modelled NSPS —
to ``benchmarks/BENCH_<scenario>.json``.  The files are committed, so
the repo itself carries the history, and CI can compare a fresh run
against the latest committed snapshot (``repro.bench.trajectory`` is
what the multi-device benchmark smoke and the ``--record`` CLI flags
are built on).

File format (one JSON object)::

    {"scenario": "table2",
     "snapshots": [
        {"git_sha": "...", "date": "2026-08-05", "n_particles": 10000000,
         "cells": [{"config": "DPC++ NUMA", "layout": "SoA",
                    "precision": "float", "scenario": "precalculated",
                    "device": "cpu", "nsps": 0.5}, ...]},
        ...]}

Snapshots are append-only; cells are a flat list so consumers need no
knowledge of each table's row/column nesting.
"""

from __future__ import annotations

import datetime
import json
import subprocess
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import ConfigurationError

__all__ = ["git_sha", "trajectory_path", "append_snapshot",
           "latest_snapshot", "load_trajectory", "flatten_table2",
           "flatten_table3", "flatten_group_report", "flatten_fusion"]

#: Default directory for trajectory files (the committed benchmarks/).
DEFAULT_DIRECTORY = "benchmarks"


def git_sha(cwd: Optional[str] = None) -> str:
    """Current commit sha, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10,
                             cwd=cwd)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def trajectory_path(scenario: str, directory=None) -> Path:
    """Path of the trajectory file for one scenario."""
    if not scenario or any(c in scenario for c in "/\\"):
        raise ConfigurationError(f"bad scenario name {scenario!r}")
    base = Path(directory) if directory is not None \
        else Path(DEFAULT_DIRECTORY)
    return base / f"BENCH_{scenario}.json"


def load_trajectory(scenario: str, directory=None) -> Dict:
    """The whole trajectory document (empty skeleton when absent)."""
    path = trajectory_path(scenario, directory)
    if not path.exists():
        return {"scenario": scenario, "snapshots": []}
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("scenario") != scenario \
            or not isinstance(document.get("snapshots"), list):
        raise ConfigurationError(
            f"{path} is not a {scenario!r} trajectory file")
    return document


def append_snapshot(scenario: str, cells: List[Dict], n_particles: int,
                    directory=None, sha: Optional[str] = None) -> Path:
    """Append one snapshot to the scenario's trajectory; returns its path.

    ``cells`` is the flat cell list (see the module docstring; build it
    with one of the ``flatten_*`` helpers).  ``sha`` defaults to the
    current commit.
    """
    if not cells:
        raise ConfigurationError("refusing to record an empty snapshot")
    for cell in cells:
        if "nsps" not in cell:
            raise ConfigurationError(
                f"every cell needs an 'nsps' key, got {sorted(cell)}")
    document = load_trajectory(scenario, directory)
    document["snapshots"].append({
        "git_sha": sha if sha is not None else git_sha(),
        "date": datetime.date.today().isoformat(),
        "n_particles": int(n_particles),
        "cells": cells,
    })
    path = trajectory_path(scenario, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return path


def latest_snapshot(scenario: str, directory=None) -> Optional[Dict]:
    """Most recent snapshot of a scenario, or None when none recorded."""
    snapshots = load_trajectory(scenario, directory)["snapshots"]
    return snapshots[-1] if snapshots else None


# -- flatteners: harness return shapes -> flat cell lists -----------------

def flatten_table2(rows: Dict) -> List[Dict]:
    """Flatten :func:`repro.bench.harness.table2_rows` output."""
    cells = []
    for (layout, parallelization), row in rows.items():
        for (scenario, precision), nsps in row.items():
            cells.append({"config": parallelization, "layout": layout,
                          "precision": precision, "scenario": scenario,
                          "device": "cpu", "nsps": float(nsps)})
    return cells


def flatten_table3(rows: Dict) -> List[Dict]:
    """Flatten :func:`repro.bench.harness.table3_rows` output."""
    cells = []
    for layout, row in rows.items():
        for (scenario, device), nsps in row.items():
            cells.append({"config": "DPC++", "layout": layout,
                          "precision": "float", "scenario": scenario,
                          "device": device, "nsps": float(nsps)})
    return cells


def flatten_group_report(report, group_spec: str, layout: str,
                         precision: str, scenario: str) -> List[Dict]:
    """One cell from a :class:`~repro.distributed.runner.GroupReport`."""
    return [{"config": f"sharded/{report.strategy}", "layout": layout,
             "precision": precision, "scenario": scenario,
             "device": group_spec, "n_devices": report.n_devices,
             "imbalance": float(report.imbalance),
             "exchange_bytes": int(report.exchange.total_bytes),
             "nsps": float(report.nsps)}]


def flatten_fusion(reports: Dict[str, object]) -> List[Dict]:
    """Flatten :func:`repro.bench.harness.fusion_rows` output.

    One cell per execution mode ("unfused", "fused"), each carrying the
    warm steady NSPS plus the cold first-step NSPS and the fusion /
    program-cache counters, so the committed trajectory shows both the
    fusion win and the JIT penalty a cold cache pays.
    """
    cells = []
    for config, report in reports.items():
        cells.append({
            "config": config, "layout": report.layout,
            "precision": report.precision, "scenario": report.scenario,
            "device": report.device, "nsps": float(report.nsps),
            "cold_nsps": float(report.first_step_nsps),
            "fusion_groups": int(report.fusion_groups),
            "kernels_eliminated": int(report.kernels_eliminated),
            "jit_seconds": float(
                report.cache_stats.get("jit_seconds_charged", 0.0)),
            "digest": report.digest,
        })
    return cells
