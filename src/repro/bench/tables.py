"""Text rendering of the regenerated tables, plus the paper's values.

``PAPER_TABLE2`` / ``PAPER_TABLE3`` transcribe the paper's measured
NSPS so the harness can print model-vs-paper comparisons and the test
suite can assert the qualitative claims (orderings, ratios) hold.

Public return types: :func:`format_table` and
:func:`comparison_table` both return the rendered table as a single
``str`` (newline-joined, ready to print); the ``PAPER_*`` constants
are plain dicts keyed exactly like their
:mod:`~repro.bench.harness` counterparts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["PAPER_TABLE2", "PAPER_TABLE3", "PAPER_FIRST_ITERATION_RATIO",
           "format_table", "comparison_table"]

#: Table 2 of the paper: NSPS on the 2-CPU node.
#: Keys: (layout, parallelization) -> (scenario, precision) -> NSPS.
PAPER_TABLE2: Dict[Tuple[str, str], Dict[Tuple[str, str], float]] = {
    ("AoS", "OpenMP"): {
        ("precalculated", "float"): 0.53, ("precalculated", "double"): 0.98,
        ("analytical", "float"): 0.58, ("analytical", "double"): 0.84,
    },
    ("AoS", "DPC++"): {
        ("precalculated", "float"): 0.78, ("precalculated", "double"): 1.54,
        ("analytical", "float"): 1.02, ("analytical", "double"): 1.48,
    },
    ("AoS", "DPC++ NUMA"): {
        ("precalculated", "float"): 0.54, ("precalculated", "double"): 0.99,
        ("analytical", "float"): 0.54, ("analytical", "double"): 0.89,
    },
    ("SoA", "OpenMP"): {
        ("precalculated", "float"): 0.50, ("precalculated", "double"): 1.06,
        ("analytical", "float"): 0.43, ("analytical", "double"): 0.76,
    },
    ("SoA", "DPC++"): {
        ("precalculated", "float"): 0.85, ("precalculated", "double"): 1.49,
        ("analytical", "float"): 0.77, ("analytical", "double"): 1.31,
    },
    ("SoA", "DPC++ NUMA"): {
        ("precalculated", "float"): 0.58, ("precalculated", "double"): 1.20,
        ("analytical", "float"): 0.60, ("analytical", "double"): 0.90,
    },
}

#: Table 3 of the paper: single-precision NSPS, DPC++ code on GPUs.
#: Keys: layout -> (scenario, device) -> NSPS.
PAPER_TABLE3: Dict[str, Dict[Tuple[str, str], float]] = {
    "AoS": {
        ("precalculated", "cpu"): 0.54,
        ("precalculated", "p630"): 4.76,
        ("precalculated", "iris-xe-max"): 2.10,
        ("analytical", "cpu"): 0.54,
        ("analytical", "p630"): 4.45,
        ("analytical", "iris-xe-max"): 2.10,
    },
    "SoA": {
        ("precalculated", "cpu"): 0.58,
        ("precalculated", "p630"): 2.43,
        ("precalculated", "iris-xe-max"): 1.42,
        ("analytical", "cpu"): 0.60,
        ("analytical", "p630"): 1.93,
        ("analytical", "iris-xe-max"): 1.00,
    },
}

#: In-text: "the first iteration takes 50% longer time than the
#: subsequent ones".
PAPER_FIRST_ITERATION_RATIO = 1.5


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Render a fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def comparison_table(model: Dict, paper: Dict, row_label: str,
                     title: str = "") -> str:
    """Render model-vs-paper NSPS side by side for one table's rows.

    ``model`` and ``paper`` share the nested dict structure produced by
    :func:`repro.bench.harness.table2_rows` / ``table3_rows``.
    """
    columns = sorted({key for row in paper.values() for key in row})
    headers = [row_label] + [f"{c[0][:7]}/{c[1][:6]}" for c in columns]
    rows = []
    for row_key in paper:
        label = "/".join(row_key) if isinstance(row_key, tuple) else row_key
        cells = [label]
        for column in columns:
            m = model[row_key][column]
            p = paper[row_key][column]
            cells.append(f"{m:5.2f} ({p:4.2f})")
        rows.append(cells)
    note = "model NSPS with the paper's value in parentheses"
    table = format_table(headers, rows, title)
    return f"{table}\n[{note}]"
