"""One-shot validation: every paper claim, checked and reported.

:func:`validate_against_paper` regenerates Table 2, Table 3, Fig. 1 and
the in-text effects from the simulator and evaluates each of the
paper's quantitative claims, returning a structured report the CLI
(``python -m repro validate``) prints as a checklist.  This is the
"does the reproduction still reproduce" entry point — the test suite
asserts the same claims, but this produces the human-readable artefact.

Public return types: :func:`validate_against_paper` returns a
:class:`ValidationReport` whose ``checks`` list holds one
:class:`Check` (``claim``, ``detail``, ``passed``) per claim, with an
aggregate pass property over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..fp import Precision
from ..particles.ensemble import Layout
from .harness import (fig1_series, first_iteration_ratio, model_push_nsps,
                      table2_rows, table3_rows, thread_sweep)
from .scenarios import BenchmarkCase
from .tables import PAPER_TABLE2, PAPER_TABLE3

__all__ = ["Check", "ValidationReport", "validate_against_paper"]


@dataclass
class Check:
    """One verified claim: description, measured value, verdict."""

    claim: str
    detail: str
    passed: bool


@dataclass
class ValidationReport:
    """All checks plus summary accounting."""

    checks: List[Check] = field(default_factory=list)

    def add(self, claim: str, detail: str, passed: bool) -> None:
        self.checks.append(Check(claim, detail, passed))

    @property
    def n_passed(self) -> int:
        return sum(1 for c in self.checks if c.passed)

    @property
    def all_passed(self) -> bool:
        return self.n_passed == len(self.checks)

    def render(self) -> str:
        lines = ["Validation against the paper "
                 "(model values vs published):", ""]
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            lines.append(f"  [{mark}] {check.claim}")
            lines.append(f"         {check.detail}")
        lines.append("")
        lines.append(f"{self.n_passed}/{len(self.checks)} checks passed")
        return "\n".join(lines)


def validate_against_paper(n: int = 4_000_000) -> ValidationReport:
    """Run the full reproduction and check every quantitative claim.

    ``n`` is clamped to at least 2e6 particles: below that the modelled
    working set fits in the Xeon node's caches and the benchmark is no
    longer the memory-bound problem the paper measures.
    """
    n = max(n, 2_000_000)
    report = ValidationReport()

    # ---- Table 2 --------------------------------------------------------
    rows2 = table2_rows(n=n)
    worst_ratio, worst_cell = 1.0, ""
    for key, row in PAPER_TABLE2.items():
        for column, paper in row.items():
            ratio = rows2[key][column] / paper
            distance = max(ratio, 1.0 / ratio)
            if distance > worst_ratio:
                worst_ratio = distance
                worst_cell = f"{key}/{column}"
    report.add("Table 2: all 24 CPU cells within 2x of the paper",
               f"worst cell {worst_cell}: {worst_ratio:.2f}x off",
               worst_ratio < 2.0)

    openmp = rows2[("SoA", "OpenMP")][("precalculated", "float")]
    plain = rows2[("SoA", "DPC++")][("precalculated", "float")]
    numa = rows2[("SoA", "DPC++ NUMA")][("precalculated", "float")]
    report.add("NUMA placement is a significant gain (finding 1)",
               f"plain DPC++ {plain:.2f} vs NUMA {numa:.2f} NSPS "
               f"({plain / numa:.2f}x)", plain / numa > 1.2)
    report.add("Optimized DPC++ ~10% behind OpenMP (finding 2)",
               f"NUMA {numa:.2f} vs OpenMP {openmp:.2f} NSPS "
               f"(+{100 * (numa / openmp - 1):.0f}%)",
               1.0 < numa / openmp < 1.3)
    aos = rows2[("AoS", "OpenMP")][("precalculated", "float")]
    report.add("Layout has almost no effect on CPU (finding 3)",
               f"AoS {aos:.2f} vs SoA {openmp:.2f} NSPS",
               0.7 < aos / openmp < 1.4)
    double = rows2[("SoA", "OpenMP")][("precalculated", "double")]
    report.add("Double ~2x single in precalculated scenario (finding 4)",
               f"{double:.2f} vs {openmp:.2f} NSPS "
               f"({double / openmp:.2f}x)",
               1.7 < double / openmp < 2.3)
    analytical_double = rows2[("SoA", "OpenMP")][("analytical", "double")]
    report.add("Analytical double faster than precalculated double "
               "(finding 5)",
               f"{analytical_double:.2f} vs {double:.2f} NSPS",
               analytical_double < double)

    # ---- Table 3 ---------------------------------------------------------
    rows3 = table3_rows(n=n)
    worst_ratio, worst_cell = 1.0, ""
    for layout, row in PAPER_TABLE3.items():
        for column, paper in row.items():
            ratio = rows3[layout][column] / paper
            distance = max(ratio, 1.0 / ratio)
            if distance > worst_ratio:
                worst_ratio = distance
                worst_cell = f"{layout}/{column}"
    report.add("Table 3: all 12 GPU cells within 2x of the paper",
               f"worst cell {worst_cell}: {worst_ratio:.2f}x off",
               worst_ratio < 2.0)
    p630_gap = rows3["AoS"][("precalculated", "p630")] \
        / rows3["SoA"][("precalculated", "p630")]
    report.add("Layout matters on GPUs (AoS up to ~2x slower)",
               f"P630 AoS/SoA = {p630_gap:.2f}x", p630_gap > 1.4)
    cpu = rows3["SoA"][("precalculated", "cpu")]
    p630_slow = rows3["SoA"][("precalculated", "p630")] / cpu
    iris_slow = rows3["SoA"][("precalculated", "iris-xe-max")] / cpu
    report.add("P630 slower than 2 CPUs by 3.5-4.5x (paper band)",
               f"model {p630_slow:.1f}x", 3.0 < p630_slow < 6.5)
    report.add("Iris Xe Max slower than 2 CPUs by 1.7-2.6x (paper band)",
               f"model {iris_slow:.1f}x", 1.5 < iris_slow < 3.5)

    # ---- Fig. 1 --------------------------------------------------------------
    series = fig1_series(core_counts=(1, 2, 4, 24, 48), n=n)
    openmp_points = dict(series["OpenMP/SoA"])
    dpcpp_points = dict(series["DPC++ NUMA/SoA"])
    report.add("Fig. 1: OpenMP near-linear at low core counts",
               f"speedup {openmp_points[4]:.1f} on 4 cores",
               3.4 < openmp_points[4] < 4.4)
    report.add("Fig. 1: DPC++ super-linear at low core counts",
               f"speedup {dpcpp_points[4]:.1f} on 4 cores",
               dpcpp_points[4] > 4.0)
    report.add("Fig. 1: second socket resumes scaling",
               f"{openmp_points[48]:.1f}x at 48 vs "
               f"{openmp_points[24]:.1f}x at 24 cores",
               openmp_points[48] > 1.4 * openmp_points[24])
    efficiency = dpcpp_points[48] / 48.0
    report.add("Fig. 1: ~63% strong-scaling efficiency at 48 cores",
               f"model {100 * efficiency:.0f}%", 0.45 < efficiency < 0.9)

    # ---- In-text effects ----------------------------------------------------
    ratio = first_iteration_ratio(n=n)
    report.add("First iteration ~50% slower (JIT + cold memory)",
               f"model {100 * (ratio - 1):.0f}% slower",
               1.25 < ratio < 1.8)
    sweep = thread_sweep(n=n)
    report.add("Hyperthreading helps (96 threads beat 48)",
               f"{sweep[96]:.3f} vs {sweep[48]:.3f} NSPS",
               sweep[96] < sweep[48])

    # ---- Memory-boundedness (the paper's recurring explanation) -----------
    case = BenchmarkCase("precalculated", Layout.SOA, Precision.SINGLE,
                         "OpenMP")
    result = model_push_nsps(case, n=n)
    report.add("The precalculated benchmark is memory-bound",
               f"roofline limiter: {result.bound}",
               result.bound == "memory")
    return report
