"""One-shot validation: every paper claim, checked and reported.

:func:`validate_against_paper` regenerates Table 2, Table 3, Fig. 1 and
the in-text effects from the simulator and evaluates each of the
paper's quantitative claims, returning a structured report the CLI
(``python -m repro validate``) prints as a checklist.  This is the
"does the reproduction still reproduce" entry point — the test suite
asserts the same claims, but this produces the human-readable artefact.

The per-artefact checkers (:func:`check_table2_claims`,
:func:`check_table3_claims`, :func:`check_fig1_claims`,
:func:`check_first_iteration_claim`, :func:`check_threads_claim`,
:func:`check_memory_bound`) are public: they take the harness return
shapes and judge the claims without re-running anything, so the
declarative regression suites (:mod:`repro.regress.suites`) reuse them
as their sanity stages — one implementation of each paper band, used
by ``repro validate`` and ``repro bench --regress`` alike.

Public return types: :func:`validate_against_paper` returns a
:class:`ValidationReport` whose ``checks`` list holds one
:class:`Check` (``claim``, ``detail``, ``passed``) per claim, with an
aggregate pass property over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..fp import Precision
from ..particles.ensemble import Layout
from .harness import (fig1_series, first_iteration_ratio, model_push_nsps,
                      table2_rows, table3_rows, thread_sweep)
from .scenarios import BenchmarkCase
from .tables import PAPER_TABLE2, PAPER_TABLE3

__all__ = ["Check", "ValidationReport", "validate_against_paper",
           "check_table2_claims", "check_table3_claims",
           "check_fig1_claims", "check_first_iteration_claim",
           "check_threads_claim", "check_memory_bound"]


@dataclass
class Check:
    """One verified claim: description, measured value, verdict."""

    claim: str
    detail: str
    passed: bool


@dataclass
class ValidationReport:
    """All checks plus summary accounting."""

    checks: List[Check] = field(default_factory=list)

    def add(self, claim: str, detail: str, passed: bool) -> None:
        self.checks.append(Check(claim, detail, passed))

    @property
    def n_passed(self) -> int:
        return sum(1 for c in self.checks if c.passed)

    @property
    def all_passed(self) -> bool:
        return self.n_passed == len(self.checks)

    def render(self) -> str:
        lines = ["Validation against the paper "
                 "(model values vs published):", ""]
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            lines.append(f"  [{mark}] {check.claim}")
            lines.append(f"         {check.detail}")
        lines.append("")
        lines.append(f"{self.n_passed}/{len(self.checks)} checks passed")
        return "\n".join(lines)


def _worst_cell(rows, paper_table) -> "tuple[float, str]":
    """Largest model-vs-paper distance over a whole table."""
    worst_ratio, worst_cell = 1.0, ""
    for key, row in paper_table.items():
        for column, paper in row.items():
            ratio = rows[key][column] / paper
            distance = max(ratio, 1.0 / ratio)
            if distance > worst_ratio:
                worst_ratio = distance
                worst_cell = f"{key}/{column}"
    return worst_ratio, worst_cell


def check_table2_claims(rows) -> List[Check]:
    """Judge the paper's Table 2 claims over ``table2_rows`` output."""
    checks: List[Check] = []
    worst_ratio, worst_cell = _worst_cell(rows, PAPER_TABLE2)
    checks.append(Check(
        "Table 2: all 24 CPU cells within 2x of the paper",
        f"worst cell {worst_cell}: {worst_ratio:.2f}x off",
        worst_ratio < 2.0))

    openmp = rows[("SoA", "OpenMP")][("precalculated", "float")]
    plain = rows[("SoA", "DPC++")][("precalculated", "float")]
    numa = rows[("SoA", "DPC++ NUMA")][("precalculated", "float")]
    checks.append(Check(
        "NUMA placement is a significant gain (finding 1)",
        f"plain DPC++ {plain:.2f} vs NUMA {numa:.2f} NSPS "
        f"({plain / numa:.2f}x)", plain / numa > 1.2))
    checks.append(Check(
        "Optimized DPC++ ~10% behind OpenMP (finding 2)",
        f"NUMA {numa:.2f} vs OpenMP {openmp:.2f} NSPS "
        f"(+{100 * (numa / openmp - 1):.0f}%)",
        1.0 < numa / openmp < 1.3))
    aos = rows[("AoS", "OpenMP")][("precalculated", "float")]
    checks.append(Check(
        "Layout has almost no effect on CPU (finding 3)",
        f"AoS {aos:.2f} vs SoA {openmp:.2f} NSPS",
        0.7 < aos / openmp < 1.4))
    double = rows[("SoA", "OpenMP")][("precalculated", "double")]
    checks.append(Check(
        "Double ~2x single in precalculated scenario (finding 4)",
        f"{double:.2f} vs {openmp:.2f} NSPS "
        f"({double / openmp:.2f}x)",
        1.7 < double / openmp < 2.3))
    analytical_double = rows[("SoA", "OpenMP")][("analytical", "double")]
    checks.append(Check(
        "Analytical double faster than precalculated double (finding 5)",
        f"{analytical_double:.2f} vs {double:.2f} NSPS",
        analytical_double < double))
    return checks


def check_table3_claims(rows) -> List[Check]:
    """Judge the paper's Table 3 claims over ``table3_rows`` output."""
    checks: List[Check] = []
    worst_ratio, worst_cell = _worst_cell(rows, PAPER_TABLE3)
    checks.append(Check(
        "Table 3: all 12 GPU cells within 2x of the paper",
        f"worst cell {worst_cell}: {worst_ratio:.2f}x off",
        worst_ratio < 2.0))
    p630_gap = rows["AoS"][("precalculated", "p630")] \
        / rows["SoA"][("precalculated", "p630")]
    checks.append(Check(
        "Layout matters on GPUs (AoS up to ~2x slower)",
        f"P630 AoS/SoA = {p630_gap:.2f}x", p630_gap > 1.4))
    cpu = rows["SoA"][("precalculated", "cpu")]
    p630_slow = rows["SoA"][("precalculated", "p630")] / cpu
    iris_slow = rows["SoA"][("precalculated", "iris-xe-max")] / cpu
    checks.append(Check(
        "P630 slower than 2 CPUs by 3.5-4.5x (paper band)",
        f"model {p630_slow:.1f}x", 3.0 < p630_slow < 6.5))
    checks.append(Check(
        "Iris Xe Max slower than 2 CPUs by 1.7-2.6x (paper band)",
        f"model {iris_slow:.1f}x", 1.5 < iris_slow < 3.5))
    return checks


def check_fig1_claims(series) -> List[Check]:
    """Judge the Fig. 1 scaling claims over ``fig1_series`` output.

    Needs the 4-, 24- and 48-core points of the OpenMP/SoA and
    DPC++ NUMA/SoA series.
    """
    checks: List[Check] = []
    openmp_points = dict(series["OpenMP/SoA"])
    dpcpp_points = dict(series["DPC++ NUMA/SoA"])
    checks.append(Check(
        "Fig. 1: OpenMP near-linear at low core counts",
        f"speedup {openmp_points[4]:.1f} on 4 cores",
        3.4 < openmp_points[4] < 4.4))
    checks.append(Check(
        "Fig. 1: DPC++ super-linear at low core counts",
        f"speedup {dpcpp_points[4]:.1f} on 4 cores",
        dpcpp_points[4] > 4.0))
    checks.append(Check(
        "Fig. 1: second socket resumes scaling",
        f"{openmp_points[48]:.1f}x at 48 vs "
        f"{openmp_points[24]:.1f}x at 24 cores",
        openmp_points[48] > 1.4 * openmp_points[24]))
    efficiency = dpcpp_points[48] / 48.0
    checks.append(Check(
        "Fig. 1: ~63% strong-scaling efficiency at 48 cores",
        f"model {100 * efficiency:.0f}%", 0.45 < efficiency < 0.9))
    return checks


def check_first_iteration_claim(ratio: float) -> List[Check]:
    """Judge the in-text "first iteration ~50% slower" claim."""
    return [Check(
        "First iteration ~50% slower (JIT + cold memory)",
        f"model {100 * (ratio - 1):.0f}% slower",
        1.25 < ratio < 1.8)]


def check_threads_claim(sweep: Dict[int, float]) -> List[Check]:
    """Judge the in-text hyperthreading claim over ``thread_sweep``."""
    return [Check(
        "Hyperthreading helps (96 threads beat 48)",
        f"{sweep[96]:.3f} vs {sweep[48]:.3f} NSPS",
        sweep[96] < sweep[48])]


def check_memory_bound(n: int = 4_000_000) -> List[Check]:
    """The paper's recurring explanation: the benchmark is memory-bound."""
    case = BenchmarkCase("precalculated", Layout.SOA, Precision.SINGLE,
                         "OpenMP")
    result = model_push_nsps(case, n=n)
    return [Check(
        "The precalculated benchmark is memory-bound",
        f"roofline limiter: {result.bound}",
        result.bound == "memory")]


def validate_against_paper(n: int = 4_000_000) -> ValidationReport:
    """Run the full reproduction and check every quantitative claim.

    ``n`` is clamped to at least 2e6 particles: below that the modelled
    working set fits in the Xeon node's caches and the benchmark is no
    longer the memory-bound problem the paper measures.
    """
    n = max(n, 2_000_000)
    report = ValidationReport()
    report.checks.extend(check_table2_claims(table2_rows(n=n)))
    report.checks.extend(check_table3_claims(table3_rows(n=n)))
    report.checks.extend(check_fig1_claims(
        fig1_series(core_counts=(1, 2, 4, 24, 48), n=n)))
    report.checks.extend(check_first_iteration_claim(
        first_iteration_ratio(n=n)))
    report.checks.extend(check_threads_claim(thread_sweep(n=n)))
    report.checks.extend(check_memory_bound(n))
    return report
