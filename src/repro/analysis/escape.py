"""Electron escape from the m-dipole focal region.

The paper's benchmark exists to answer a physics question (Section
5.2): "With the help of simulations of the particle motion in the
standing m-dipole wave the rate of particle escape from the focal
region can be obtained", which fixes the seed-target parameters for
vacuum-breakdown experiments.  Escape is stated to be fastest for
powers between ~4 GW and ~1 PW — relativistic fields but no radiative
trapping yet.

This module packages that study: run the benchmark ensemble through a
wave of given power, record the fraction remaining within the focal
sphere, and fit the exponential escape rate.  ``escape_rate_sweep``
scans power, optionally with the radiation-reaction pusher to show
trapping switching on at high power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.boris import BorisPusher
from ..core.pushers import MomentumPusher
from ..core.stepping import advance, setup_leapfrog
from ..errors import ConfigurationError
from ..fields.dipole import MDipoleWave
from ..particles.ensemble import ParticleEnsemble
from ..particles.initializers import cold_sphere

__all__ = ["EscapeCurve", "remaining_fraction", "run_escape_study",
           "escape_rate_sweep"]


def remaining_fraction(ensemble: ParticleEnsemble, radius: float,
                       center: Sequence[float] = (0.0, 0.0, 0.0)
                       ) -> float:
    """Fraction of particles within ``radius`` of ``center``."""
    if radius <= 0.0:
        raise ConfigurationError(f"radius must be positive, got {radius!r}")
    offsets = ensemble.positions() - np.asarray(center, dtype=np.float64)
    return float(((offsets ** 2).sum(axis=1) < radius * radius).mean())


@dataclass
class EscapeCurve:
    """Remaining-fraction history of one escape run.

    ``times`` are in optical cycles; ``fractions`` in [0, 1].
    """

    power: float
    times: List[float] = field(default_factory=list)
    fractions: List[float] = field(default_factory=list)
    max_gamma: float = 1.0

    def record(self, time_cycles: float, fraction: float) -> None:
        """Append one sample."""
        self.times.append(float(time_cycles))
        self.fractions.append(float(fraction))

    def escape_rate(self, window: tuple = (0.02, 0.9)) -> float:
        """Exponential escape rate [1/cycle] from the decaying tail.

        Fits ``log(fraction)`` linearly over samples whose fraction
        lies inside ``window`` (excluding the flat start and the noisy
        sub-percent tail).  Returns 0 when fewer than two samples
        qualify (nothing escaped).
        """
        lo, hi = window
        points = [(t, f) for t, f in zip(self.times, self.fractions)
                  if lo < f < hi]
        if len(points) < 2:
            return 0.0
        ts = np.array([t for t, _ in points])
        fs = np.array([f for _, f in points])
        slope = np.polyfit(ts, np.log(fs), 1)[0]
        return float(max(-slope, 0.0))

    def residence_time(self) -> float:
        """1/e residence time [cycles]; inf when nothing escapes."""
        rate = self.escape_rate()
        return 1.0 / rate if rate > 0.0 else math.inf


def run_escape_study(power: float,
                     n_particles: int = 5_000,
                     cycles: int = 5,
                     samples_per_cycle: int = 4,
                     steps_per_cycle: int = 200,
                     focal_radius_wavelengths: float = 1.0,
                     pusher: Optional[MomentumPusher] = None,
                     seed: Optional[int] = 0) -> EscapeCurve:
    """Integrate the benchmark ensemble and record the escape curve.

    Args:
        power: Wave power [erg/s] (the paper uses 1e21 = 0.1 PW).
        n_particles: Ensemble size (cold electrons, 0.6-lambda sphere).
        cycles: Optical cycles to integrate.
        samples_per_cycle: Remaining-fraction samples per cycle.
        steps_per_cycle: Boris steps per cycle.
        focal_radius_wavelengths: Focal-region radius in wavelengths.
        pusher: Momentum pusher (default Boris; pass the
            radiation-reaction pusher to study trapping).
        seed: Initial-condition seed.
    """
    if cycles < 1 or samples_per_cycle < 1:
        raise ConfigurationError("cycles and samples_per_cycle must be >= 1")
    if steps_per_cycle % samples_per_cycle != 0:
        raise ConfigurationError(
            f"steps_per_cycle ({steps_per_cycle}) must be a multiple of "
            f"samples_per_cycle ({samples_per_cycle})")
    wave = MDipoleWave(power=power)
    ensemble = cold_sphere(n_particles, 0.6 * wave.wavelength, seed=seed)
    period = 2.0 * math.pi / wave.omega
    dt = period / steps_per_cycle
    focal_radius = focal_radius_wavelengths * wave.wavelength
    push = pusher if pusher is not None else BorisPusher()

    setup_leapfrog(ensemble, wave, dt)
    curve = EscapeCurve(power=power)
    curve.record(0.0, remaining_fraction(ensemble, focal_radius))

    steps_per_sample = steps_per_cycle // samples_per_cycle
    time = 0.0
    for sample in range(cycles * samples_per_cycle):
        time = advance(ensemble, wave, dt, steps_per_sample,
                       pusher=push, start_time=time)
        curve.record(time / period,
                     remaining_fraction(ensemble, focal_radius))
    curve.max_gamma = float(ensemble.component("gamma").max())
    return curve


def escape_rate_sweep(powers: Sequence[float],
                      pusher: Optional[MomentumPusher] = None,
                      **study_kwargs) -> Dict[float, EscapeCurve]:
    """Run :func:`run_escape_study` for each power; returns curves by power."""
    if not powers:
        raise ConfigurationError("powers must be non-empty")
    return {power: run_escape_study(power, pusher=pusher, **study_kwargs)
            for power in powers}
