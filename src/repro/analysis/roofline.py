"""Whole-graph roofline classification: every launch group on the roof.

:func:`repro.oneapi.roofline.analyze_kernel` places one kernel spec on
one device's roofline.  The engine-era stack launches *graphs* —
a field-eval node, the push, sometimes a diagnostics node — and the
fusion pass reshapes their memory traffic before anything runs: shared
streams deduplicate, a read in one node and a write in another become
one read-modify-write, transient intermediates vanish into registers.
Classifying the recorded nodes one by one would therefore analyse
kernels that never launch.

This module extends the analysis to whole graphs: a
:class:`~repro.oneapi.graph.FusionPlan` partitions the graph into
launch groups, each group is merged through the executor's own
:func:`~repro.oneapi.graph.group_spec` (so the analysis sees exactly
the stream dedup and elision the launch will), and each merged spec is
placed on the roofline.  The result labels every group compute- or
memory-bound — the paper's Table 2/3 story (precalculated = memory-
bound, analytical = compute-bound on the CPU), made per-launch and
fusion-aware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import GraphError
from ..oneapi.costmodel import CostModel
from ..oneapi.device import DeviceDescriptor
from ..oneapi.graph import FusionPass, FusionPlan, KernelGraph, group_spec
from ..oneapi.kernelspec import KernelSpec
from ..oneapi.roofline import RooflinePoint, analyze_kernel

__all__ = ["GroupRoofline", "GraphRoofline", "analyze_graph"]


@dataclass(frozen=True)
class GroupRoofline:
    """One launch group of a planned graph, placed on the roofline.

    Attributes:
        nodes: Names of the recorded kernels the group launches (one
            entry for a lone node, the fused chain otherwise).
        fused: Whether the group merges two or more kernels.
        elided_streams: Transient streams fusion removed from memory
            traffic entirely (register-carried intermediates).
        spec: The spec the group actually launches — the merged spec
            for fused groups — which the autotuner also prices.
        n_items: Work items of the launch.
        point: The group's position on the device's roofline.
    """

    nodes: Tuple[str, ...]
    fused: bool
    elided_streams: Tuple[str, ...]
    spec: KernelSpec
    n_items: int
    point: RooflinePoint

    @property
    def bound(self) -> str:
        """"memory" or "compute" — which roof limits this group."""
        return "memory" if self.point.memory_bound else "compute"

    @property
    def floor_seconds(self) -> float:
        """Roofline-ideal seconds of one launch of this group.

        No scheduling, NUMA or runtime effects — the time the group
        cannot beat while it streams from DRAM.  (A cache-resident
        working set *can* beat it; the cost model models that
        separately.)
        """
        return (self.point.predicted_nsps * self.n_items * 1.0e-9
                if self.n_items else 0.0)


@dataclass(frozen=True)
class GraphRoofline:
    """Roofline classification of one planned kernel graph.

    ``groups`` follow plan order — the order the executor launches.
    """

    device_name: str
    precision: str
    groups: Tuple[GroupRoofline, ...]

    @property
    def memory_bound_groups(self) -> int:
        return sum(1 for g in self.groups if g.point.memory_bound)

    @property
    def compute_bound_groups(self) -> int:
        return len(self.groups) - self.memory_bound_groups

    @property
    def floor_seconds(self) -> float:
        """Roofline-ideal seconds of one step (all groups, in order)."""
        return sum(g.floor_seconds for g in self.groups)

    @property
    def bound(self) -> str:
        """The step's dominant regime: the bound of the groups that
        carry the larger share of the roofline-ideal step time."""
        memory = sum(g.floor_seconds for g in self.groups
                     if g.point.memory_bound)
        return "memory" if memory * 2 >= self.floor_seconds else "compute"

    def predicted_nsps(self, n_items: int) -> float:
        """Roofline-floor nanoseconds per particle per step."""
        if n_items <= 0:
            raise GraphError(f"n_items must be >= 1, got {n_items}")
        return self.floor_seconds * 1.0e9 / n_items

    def render(self) -> str:
        """Human-readable per-group table (the CLI's roofline view)."""
        lines = [f"{'group':<44} {'AI':>7} {'ridge':>7} "
                 f"{'bound':>8} {'floor ns':>9}"]
        for group in self.groups:
            name = "+".join(group.nodes)
            if len(name) > 44:
                name = name[:41] + "..."
            nsps = (group.floor_seconds * 1.0e9 / group.n_items
                    if group.n_items else 0.0)
            lines.append(
                f"{name:<44} {group.point.arithmetic_intensity:>7.2f} "
                f"{group.point.ridge_intensity:>7.2f} "
                f"{group.bound:>8} {nsps:>9.3f}")
        return "\n".join(lines)


def analyze_graph(graph: KernelGraph, device: DeviceDescriptor,
                  plan: Optional[FusionPlan] = None,
                  cost_model: Optional[CostModel] = None) -> GraphRoofline:
    """Classify every launch group of ``graph`` on ``device``'s roofline.

    ``plan`` selects the grouping: pass the executor's
    :class:`~repro.oneapi.graph.FusionPlan` to classify what actually
    launches, or ``None`` to let a cost-model-driven
    :class:`~repro.oneapi.graph.FusionPass` plan here (``cost_model``
    defaults to a :class:`~repro.oneapi.costmodel.CostModel` of the
    device).  To classify the *unfused* baseline, pass
    ``plan=repro.oneapi.graph.unfused_plan(graph)``.

    Each group is merged with :func:`~repro.oneapi.graph.group_spec` —
    the same stream dedup and transient elision the executor applies —
    then placed with :func:`~repro.oneapi.roofline.analyze_kernel` at
    the group's recorded precision.
    """
    if not len(graph):
        raise GraphError("cannot analyze an empty kernel graph")
    if plan is None:
        model = cost_model if cost_model is not None else CostModel(device)
        plan = FusionPass(model).plan(graph)
    groups = []
    for indices in plan.groups:
        nodes = [graph.nodes[i] for i in indices]
        spec, elided = group_spec(nodes)
        point = analyze_kernel(spec, device, nodes[0].precision)
        groups.append(GroupRoofline(
            nodes=tuple(n.name for n in nodes),
            fused=len(nodes) > 1,
            elided_streams=elided,
            spec=spec,
            n_items=nodes[0].n_items,
            point=point))
    return GraphRoofline(device_name=device.name,
                         precision=graph.nodes[0].precision.value,
                         groups=tuple(groups))
