"""Physics analysis tools built on the core library.

Currently: the particle-escape study that motivates the paper's
benchmark (:mod:`repro.analysis.escape`).
"""

from .escape import (
    EscapeCurve,
    remaining_fraction,
    run_escape_study,
    escape_rate_sweep,
)

__all__ = [
    "EscapeCurve",
    "remaining_fraction",
    "run_escape_study",
    "escape_rate_sweep",
]
