"""Physics and performance analysis tools built on the core library.

* :mod:`repro.analysis.escape` — the particle-escape study that
  motivates the paper's benchmark;
* :mod:`repro.analysis.roofline` — whole-graph roofline
  classification: every launch group of a (possibly fused) kernel
  graph labelled compute- or memory-bound per device;
* :mod:`repro.analysis.autotune` — the roofline-driven autotuner
  behind ``RunConfig(config="auto")`` / ``repro push --auto``.
"""

from .autotune import (
    CALIBRATION_TOLERANCE,
    Candidate,
    CandidatePrediction,
    TuningReport,
    apply_candidate,
    check_calibration,
    enumerate_candidates,
    tune,
)
from .escape import (
    EscapeCurve,
    remaining_fraction,
    run_escape_study,
    escape_rate_sweep,
)
from .roofline import GraphRoofline, GroupRoofline, analyze_graph

__all__ = [
    "EscapeCurve",
    "remaining_fraction",
    "run_escape_study",
    "escape_rate_sweep",
    "GraphRoofline",
    "GroupRoofline",
    "analyze_graph",
    "CALIBRATION_TOLERANCE",
    "Candidate",
    "CandidatePrediction",
    "TuningReport",
    "apply_candidate",
    "check_calibration",
    "enumerate_candidates",
    "tune",
]
