"""Roofline-driven autotuner: search the config space, pick the best.

The paper *hand-picks* its configurations — SoA over AoS, float over
double where physics allows, fused where the graph path exists — and
justifies each choice with a compute-vs-memory-bound argument.  This
module makes that reasoning executable:

1. :func:`enumerate_candidates` spans the space the facade can run:
   layout (AoS/SoA) x precision (float/double) x execution path
   (legacy single-launch, graph unfused, graph fused) x SMT tiling
   (one or two threads per core, CPU single-device runs) x shard
   strategy (even/bandwidth/flops splits for device groups) x device
   (``RunConfig.tune_devices``, the backend axis — candidates may
   span oneAPI and CUDA devices, see :mod:`repro.backends`);
2. :func:`tune` prices every candidate through the cost model's
   steady-state predictor
   (:meth:`~repro.oneapi.costmodel.CostModel.predict_launch_seconds`)
   with the graph-level roofline
   (:func:`repro.analysis.roofline.analyze_graph`) classifying each
   launch group and flooring DRAM-resident predictions at the
   roofline-ideal time, and returns a ranked :class:`TuningReport`;
3. :func:`apply_candidate` turns the winner back into a concrete
   :class:`~repro.api.RunConfig`, and :func:`check_calibration`
   compares the prediction against the measured NSPS afterwards —
   a disagreement beyond tolerance means the cost model's picture of
   the device is wrong, and surfaces as a calibration warning on the
   :class:`~repro.api.RunReport` plus an ``autotune:mispredict``
   tracer event.

``run_push(RunConfig(config="auto"))`` and ``repro push --auto`` wire
the three together; ``docs/TUNING.md`` is the user-facing guide.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..fp import Precision
from ..observability.tracer import active_tracer
from ..oneapi.costmodel import CostModel
from ..oneapi.device import DeviceDescriptor, DeviceType
from ..oneapi.graph import FusionPass, KernelGraph, KernelNode, unfused_plan
from ..oneapi.runtime import (PRECALCULATED, build_virtual_push_spec,
                              build_virtual_step_graph)
from ..particles.ensemble import Layout
from .roofline import GraphRoofline, analyze_graph

__all__ = ["CALIBRATION_TOLERANCE", "Candidate", "CandidatePrediction",
           "TuningReport", "enumerate_candidates", "tune",
           "apply_candidate", "check_calibration"]

#: Default relative predicted-vs-measured NSPS disagreement above which
#: the run is flagged as a cost-model calibration problem.
CALIBRATION_TOLERANCE = 0.35

#: Execution paths the facade can run: legacy single launch, graph
#: unfused, graph fused (the RunConfig.fusion encoding).
_FUSION_MODES = (None, False, True)

#: Shard-split strategies the tuner prices for device groups.  The
#: "nsps" rebalancer is excluded: it needs measured shard NSPS, which
#: does not exist before the run the tuner is planning.
_SHARD_STRATEGIES = ("even", "bandwidth", "flops")


@dataclass(frozen=True)
class Candidate:
    """One point of the search space.

    ``threads_per_unit`` and ``strategy`` are ``None`` where the mode
    does not expose the axis (GPU runs have no SMT toggle, single-device
    runs have no shard split).  ``device`` is set only when the search
    spans devices (``RunConfig.tune_devices``, the backend axis): it
    names the device spec this candidate would execute on, and ``None``
    means "the config's device as written".
    """

    layout: Layout
    precision: Precision
    fusion: Optional[bool]
    threads_per_unit: Optional[int] = None
    strategy: Optional[str] = None
    device: Optional[str] = None

    @property
    def label(self) -> str:
        """Compact human-readable identity, e.g. ``SoA/float/fused``."""
        path = {None: "legacy", False: "unfused", True: "fused"}[self.fusion]
        parts = [self.layout.value, self.precision.value, path]
        if self.threads_per_unit is not None:
            parts.append(f"{self.threads_per_unit}t")
        if self.strategy is not None:
            parts.append(self.strategy)
        if self.device is not None:
            parts.append(self.device)
        return "/".join(parts)


@dataclass(frozen=True)
class CandidatePrediction:
    """One priced candidate.

    ``rooflines`` maps each priced device key to the graph-level
    classification of the step that would run there (one entry for
    single/resilient runs, one per shard for groups).
    """

    candidate: Candidate
    predicted_nsps: float
    predicted_step_seconds: float
    bound: str
    rooflines: Tuple[Tuple[str, GraphRoofline], ...]

    def as_dict(self) -> Dict[str, object]:
        return {"candidate": self.candidate.label,
                "predicted_nsps": self.predicted_nsps,
                "predicted_step_seconds": self.predicted_step_seconds,
                "bound": self.bound}


@dataclass
class TuningReport:
    """Ranked outcome of one autotuning search.

    ``ranked`` is best-first (ascending predicted NSPS — lower is
    better).  ``best``/``worst`` are the endpoints the acceptance
    checks compare measurements against.
    """

    mode: str
    target: str
    scenario: str
    n_particles: int
    ranked: List[CandidatePrediction] = field(default_factory=list)

    @property
    def best(self) -> CandidatePrediction:
        if not self.ranked:
            raise ConfigurationError("tuning report has no candidates")
        return self.ranked[0]

    @property
    def worst(self) -> CandidatePrediction:
        if not self.ranked:
            raise ConfigurationError("tuning report has no candidates")
        return self.ranked[-1]

    def render(self) -> str:
        """Best-first table of every priced candidate."""
        lines = [f"{'candidate':<30} {'predicted ns':>13} {'bound':>8}"]
        for entry in self.ranked:
            lines.append(f"{entry.candidate.label:<30} "
                         f"{entry.predicted_nsps:>13.3f} "
                         f"{entry.bound:>8}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {"mode": self.mode, "target": self.target,
                "scenario": self.scenario,
                "n_particles": self.n_particles,
                "best": self.best.candidate.label,
                "predicted_nsps": self.best.predicted_nsps,
                "candidates": [entry.as_dict() for entry in self.ranked]}


# -- the search space ----------------------------------------------------

def _pricing_devices(config) -> List[Tuple[str, DeviceDescriptor]]:
    """The devices a run of ``config`` would execute on, keyed for the
    report.  Resilient runs are priced on the ladder's first rung (the
    device the run uses until a fault demotes it)."""
    from ..backends.registry import descriptor_for

    mode = config.mode
    if mode == "sharded":
        from ..distributed.group import parse_group_spec
        keys = parse_group_spec(config.group)
    elif mode == "resilient":
        if config.devices is not None and len(config.devices):
            keys = [config.devices[0]]
        else:
            from ..resilience.runner import DEVICE_LADDER
            keys = [DEVICE_LADDER[0]]
    else:
        keys = [config.device]
    override = getattr(config, "tune_device", None)
    if override is not None:
        # Calibration experiments price against a hypothetical
        # descriptor (a datasheet, a mis-measured machine) while the
        # run itself executes on the real calibrated one.
        return [(key, override) for key in keys]
    return [(key, descriptor_for(key)) for key in keys]


def enumerate_candidates(config) -> List[Candidate]:
    """Every configuration the tuner prices for ``config``'s mode.

    The SMT-tiling axis (``threads_per_unit``) is enumerated only for
    single-device CPU runs — the GPU descriptors have no SMT toggle
    and the resilient/sharded engines do not expose the knob.

    ``config.tune_devices`` (single mode) adds the device/backend axis:
    the space is replicated per listed device spec, with the SMT axis
    evaluated per device (only its CPUs get it).
    """
    mode = config.mode
    specs: Sequence[Optional[str]] = (None,)
    if mode == "single" and getattr(config, "tune_devices", None):
        specs = tuple(config.tune_devices)
    strategies: Sequence[Optional[str]] = \
        _SHARD_STRATEGIES if mode == "sharded" else (None,)
    candidates: List[Candidate] = []
    for spec in specs:
        tilings: Sequence[Optional[int]] = (None,)
        if mode == "single":
            if spec is not None:
                from ..backends.registry import descriptor_for
                device = descriptor_for(spec)
            else:
                device = _pricing_devices(config)[0][1]
            if device.device_type is DeviceType.CPU \
                    and device.threads_per_unit > 1:
                tilings = (None, 1)
        candidates.extend(
            Candidate(layout=layout, precision=precision, fusion=fusion,
                      threads_per_unit=tiling, strategy=strategy,
                      device=spec)
            for layout in (Layout.AOS, Layout.SOA)
            for precision in (Precision.SINGLE, Precision.DOUBLE)
            for fusion in _FUSION_MODES
            for tiling in tilings
            for strategy in strategies)
    return candidates


# -- pricing -------------------------------------------------------------

def _candidate_graph(candidate: Candidate, config, n: int,
                     field_flops: float) -> KernelGraph:
    """The per-step kernel graph ``candidate`` would launch over ``n``
    particles — the engine's legacy single launch as a one-node graph,
    or the graph path's field-eval/push(/diagnostics) chain."""
    scenario = config.scenario
    if candidate.fusion is None:
        graph = KernelGraph()
        flops = field_flops if scenario != PRECALCULATED else 0.0
        graph.add(KernelNode(
            spec=build_virtual_push_spec(n, candidate.layout,
                                         candidate.precision, scenario,
                                         None, field_flops=flops),
            n_items=n, layout=candidate.layout.value,
            precision=candidate.precision, tag="push"))
        return graph
    return build_virtual_step_graph(
        n, candidate.layout, candidate.precision, scenario,
        field_flops=(field_flops if scenario != PRECALCULATED else 0.0),
        diagnostics=config.diagnostics)


def _predict_on_device(candidate: Candidate, config, n: int,
                       device: DeviceDescriptor, cost_model: CostModel,
                       field_flops: float) -> Tuple[float, GraphRoofline]:
    """Predicted steady-state seconds of one step of ``candidate`` on
    ``device``, plus the roofline classification of its launch groups."""
    graph = _candidate_graph(candidate, config, n, field_flops)
    if candidate.fusion:
        plan = FusionPass(cost_model).plan(graph)
    else:
        plan = unfused_plan(graph)
    roofline = analyze_graph(graph, device, plan=plan)
    seconds = 0.0
    for group in roofline.groups:
        predicted = cost_model.predict_launch_seconds(
            group.spec, group.n_items, candidate.precision,
            threads_per_unit=candidate.threads_per_unit)
        dram_resident = (group.spec.working_set_bytes_per_item
                         * group.n_items
                         >= device.cache_per_domain * device.numa_domains)
        if dram_resident:
            # The roofline floor is a hard bound only once the working
            # set streams from DRAM; in cache the model's LLC boost
            # legitimately beats it.
            predicted = max(predicted, group.floor_seconds)
        seconds += predicted
    return seconds, roofline


def _predict(candidate: Candidate, config, n: int,
             devices: Sequence[Tuple[str, DeviceDescriptor]],
             field_flops: float) -> CandidatePrediction:
    """Price one candidate across the devices its run would span.

    ``candidate.device`` (the backend axis) overrides the config-level
    device list: the candidate is priced on its own device alone.  The
    cost model is dispatched on each descriptor's ``backend`` field, so
    CUDA candidates are priced with warp-quantised occupancy and
    graph-replay launch overhead.
    """
    from ..backends.registry import (cost_model_for_descriptor,
                                     descriptor_for)

    if candidate.device is not None:
        devices = [(candidate.device, descriptor_for(candidate.device))]
    if candidate.strategy is not None:
        from ..distributed.sharding import strategy_by_name
        strategy = strategy_by_name(candidate.strategy,
                                    candidate.precision)
        counts = strategy.initial_counts(n, [d for _, d in devices])
    else:
        counts = [n]
    step_seconds = 0.0
    rooflines = []
    for (key, device), count in zip(devices, counts):
        if count <= 0:
            continue
        seconds, roofline = _predict_on_device(
            candidate, config, count, device,
            cost_model_for_descriptor(device), field_flops)
        # Shards step concurrently: the group's step is its slowest
        # member (exchange overlaps compute; see docs/DISTRIBUTED.md).
        step_seconds = max(step_seconds, seconds) \
            if candidate.strategy is not None else step_seconds + seconds
        rooflines.append((key, roofline))
    memory = sum(r.floor_seconds for _, r in rooflines
                 if r.bound == "memory")
    total = sum(r.floor_seconds for _, r in rooflines) or 1.0
    return CandidatePrediction(
        candidate=candidate,
        predicted_nsps=step_seconds * 1.0e9 / n,
        predicted_step_seconds=step_seconds,
        bound="memory" if memory * 2 >= total else "compute",
        rooflines=tuple(rooflines))


def tune(config) -> TuningReport:
    """Search ``config``'s space; return the ranked :class:`TuningReport`.

    ``config`` is a :class:`~repro.api.RunConfig` (its ``layout``,
    ``precision``, ``fusion``, ``threads_per_unit`` and ``strategy``
    are ignored — those are the axes being searched; everything else,
    scenario/size/mode/devices, is held fixed).
    """
    config.validate()
    from ..bench.scenarios import paper_wave

    n = config.n_particles
    devices = _pricing_devices(config)
    field_flops = paper_wave().flops_per_evaluation
    tracer = active_tracer()
    predictions = []
    for candidate in enumerate_candidates(config):
        prediction = _predict(candidate, config, n, devices, field_flops)
        predictions.append(prediction)
        if tracer is not None:
            tracer.autotune("search", candidate=candidate.label,
                            predicted_nsps=prediction.predicted_nsps,
                            bound=prediction.bound)
    # Ties (e.g. AoS vs SoA when compute-bound) break toward the lower
    # roofline floor — less DRAM traffic is the safer pick off-model.
    predictions.sort(key=lambda p: (p.predicted_nsps,
                                    sum(r.floor_seconds
                                        for _, r in p.rooflines)))
    report = TuningReport(
        mode=config.mode,
        target=config.group if config.mode == "sharded" else
        (config.devices[0] if config.mode == "resilient"
         and config.devices else config.device),
        scenario=config.scenario, n_particles=n, ranked=predictions)
    if tracer is not None:
        tracer.autotune("selected", candidate=report.best.candidate.label,
                        predicted_nsps=report.best.predicted_nsps,
                        candidates=len(predictions))
    return report


# -- closing the loop ----------------------------------------------------

def apply_candidate(config, candidate: Candidate):
    """A concrete :class:`~repro.api.RunConfig` running ``candidate``.

    ``config="auto"`` is cleared on the result (it *is* the tuned
    config), and the searched axes are overwritten; everything else is
    copied through.  A candidate carrying a ``device`` (the backend
    axis) also rebinds the run's device — ``tune_devices`` is consumed
    in the same stroke, the result being a plain single-device config.
    """
    updates = dict(config=None, layout=candidate.layout,
                   precision=candidate.precision, fusion=candidate.fusion,
                   threads_per_unit=candidate.threads_per_unit,
                   strategy=candidate.strategy)
    if candidate.device is not None:
        updates["device"] = candidate.device
        updates["tune_devices"] = None
    return dataclasses.replace(config, **updates)


def check_calibration(prediction: CandidatePrediction,
                      measured_nsps: float, target: str,
                      tolerance: float = CALIBRATION_TOLERANCE
                      ) -> List[str]:
    """Compare predicted against measured NSPS; return warning strings.

    Within ``tolerance`` (relative) the model is considered calibrated
    and an ``autotune:calibrated`` instant records the agreement.
    Beyond it, the returned warning names the candidate and both
    numbers, and an ``autotune:mispredict`` instant carries the same
    evidence — a misprediction is not a failed run (the measurement is
    still valid) but a cost-model bug report; see ``docs/TUNING.md``.
    """
    if tolerance <= 0.0:
        raise ConfigurationError(
            f"tolerance must be > 0, got {tolerance}")
    predicted = prediction.predicted_nsps
    relative = abs(measured_nsps - predicted) / predicted \
        if predicted > 0 else float("inf")
    tracer = active_tracer()
    if relative <= tolerance:
        if tracer is not None:
            tracer.autotune("calibrated",
                            candidate=prediction.candidate.label,
                            target=target, predicted_nsps=predicted,
                            measured_nsps=measured_nsps,
                            relative_error=relative)
        return []
    if tracer is not None:
        tracer.autotune("mispredict",
                        candidate=prediction.candidate.label,
                        target=target, predicted_nsps=predicted,
                        measured_nsps=measured_nsps,
                        relative_error=relative, tolerance=tolerance)
    return [f"autotune mispredict on {target}: candidate "
            f"{prediction.candidate.label} predicted "
            f"{predicted:.3f} ns/particle/step but measured "
            f"{measured_nsps:.3f} (off by {relative:.0%}, tolerance "
            f"{tolerance:.0%}) — the cost model's calibration for this "
            f"device disagrees with the measurement; see docs/TUNING.md"]
