"""Fused push kernels and their arithmetic characterization.

The paper's two benchmark scenarios time different kernel bodies:

* **Precalculated Fields** — the kernel loads six stored field
  components per particle and runs the Boris arithmetic
  (:func:`boris_push_precalculated`): memory-heavy.
* **Analytical Fields** — the kernel evaluates the m-dipole formulas
  inline and then runs the same arithmetic
  (:func:`boris_push_analytical`): compute-heavy.

The flop constants below characterise the Boris arithmetic for the
simulated device cost model (``sqrt`` and division counted at 10 flops
each, the usual throughput-equivalent convention for Skylake-class
AVX-512 and Gen9 GPUs).
"""

from __future__ import annotations

import numpy as np

from ..fields.base import FieldSource
from ..fields.precalculated import PrecalculatedField
from ..particles.ensemble import ParticleEnsemble
from .boris import boris_push

__all__ = ["boris_push_precalculated", "boris_push_analytical",
           "sample_fields", "kinetic_energy_diagnostic",
           "BORIS_FLOPS", "GAMMA_FLOPS", "POSITION_FLOPS",
           "FIELD_STAGE_FLOPS", "DIAGNOSTIC_FLOPS"]

#: Flops of the Boris momentum update per particle-step: two half
#: kicks (12), rotation vectors t and s incl. one division (~30), two
#: cross-product updates (36), plus coefficient setup (~10).
BORIS_FLOPS = 90

#: Flops of one gamma evaluation: |p|^2 (5), normalisation (3), sqrt
#: (10).  The pusher evaluates gamma twice (at p- and at the new p).
GAMMA_FLOPS = 18

#: Flops of the position drift: velocity coefficient with one division
#: (~12) and three multiply-adds (6).
POSITION_FLOPS = 18

#: Flops of *staging* one particle's six already-known field values into
#: the per-particle arrays (the field-eval graph node of the
#: precalculated scenario): pure data movement, ~1 op per component.
#: The analytical scenario adds the source's ``flops_per_evaluation``.
FIELD_STAGE_FLOPS = 6

#: Flops of the per-particle kinetic-energy diagnostic: one subtraction
#: on the gamma the push already computed.
DIAGNOSTIC_FLOPS = 1


def sample_fields(fields: PrecalculatedField, source: FieldSource,
                  ensemble: ParticleEnsemble, t: float) -> None:
    """Field-evaluation kernel body: sample ``source`` into ``fields``.

    In the kernel-graph execution path (:mod:`repro.oneapi.graph`) this
    is the *timed* first node of every step — it reads the particle
    positions and writes the six per-particle field components the push
    node then loads.  When the fusion pass merges the two nodes those
    component arrays are elided (the values stay in registers), which
    is exactly the traffic saving fusion exists for.
    """
    fields.refresh(source, ensemble, t)


def kinetic_energy_diagnostic(ensemble: ParticleEnsemble,
                              out: np.ndarray) -> None:
    """Per-particle kinetic energy in units of ``m c^2``: ``gamma - 1``.

    The optional trailing diagnostics node of a graph step.  It only
    reads the gamma the push just stored, so it is elementwise and
    fuses onto the push whenever layout and precision allow.
    """
    dtype = ensemble.precision.dtype
    out[:] = ensemble.component("gamma") - dtype.type(1.0)


def boris_push_precalculated(ensemble: ParticleEnsemble,
                             fields: PrecalculatedField,
                             dt: float) -> None:
    """One Boris step using per-particle precalculated field arrays.

    This is the timed kernel body of the paper's first scenario: the
    six field components are *loaded*, not computed.  Refreshing the
    arrays after the particles move
    (:meth:`~repro.fields.precalculated.PrecalculatedField.refresh`)
    is the caller's untimed responsibility.
    """
    boris_push(ensemble, fields.values(), dt)


def boris_push_analytical(ensemble: ParticleEnsemble, source: FieldSource,
                          t: float, dt: float) -> None:
    """One Boris step evaluating ``source`` analytically inside the kernel.

    This is the timed kernel body of the paper's second scenario: field
    values are computed from closed-form expressions exactly where they
    are needed, trading memory traffic for arithmetic.
    """
    fields = source.evaluate(ensemble.component("x"),
                             ensemble.component("y"),
                             ensemble.component("z"), t)
    boris_push(ensemble, fields, dt)
