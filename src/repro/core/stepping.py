"""Leapfrog setup, simulation drivers and a high-order reference integrator.

The Boris scheme stores momentum displaced by half a time step behind
the position ("their integration leap over each other").  An ensemble
built from physical initial conditions therefore needs its momenta
shifted back by ``dt/2`` before the first push
(:func:`setup_leapfrog`) and forward by ``dt/2`` for time-centred
diagnostics (:func:`undo_leapfrog`).

:func:`advance` is the plain single-threaded driver used by tests and
examples; the benchmark harness drives the same kernels through the
simulated oneAPI runtime instead.

:func:`integrate_trajectory_rk4` integrates one particle with classic
RK4 at small step sizes — the accuracy reference the validation tests
compare every pusher against.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..constants import SPEED_OF_LIGHT
from ..errors import SimulationError
from ..fields.base import FieldSource
from ..particles.ensemble import ParticleEnsemble
from .boris import BorisPusher
from .pushers import MomentumPusher

__all__ = ["setup_leapfrog", "undo_leapfrog", "advance", "state_digest",
           "TrajectoryRecorder", "integrate_trajectory_rk4"]

#: Component order hashed by :func:`state_digest` (the full dynamic state).
_DIGEST_COMPONENTS = ("x", "y", "z", "px", "py", "pz", "gamma")


def state_digest(ensemble: ParticleEnsemble) -> str:
    """SHA-256 over the ensemble's dynamic state, as a hex string.

    The bit-exactness witness used by the fusion tests and the bench
    harness: two runs touched the same physics if and only if their
    digests match, down to the last ulp.  Hashes the raw bytes of each
    component in a fixed order, so it is layout-independent only when
    the stored values are — which is the property under test.
    """
    import hashlib

    digest = hashlib.sha256()
    for name in _DIGEST_COMPONENTS:
        digest.update(np.ascontiguousarray(ensemble.component(name)).tobytes())
    return digest.hexdigest()


def _momentum_half_kick(ensemble: ParticleEnsemble, source: FieldSource,
                        t: float, half_dt: float) -> None:
    """Apply ``p += half_dt * q (E + v x B / c)`` at the current positions.

    A first-order momentum-only step used to (un)stagger the leapfrog;
    positions are untouched.  Runs in float64 regardless of storage
    precision — it is called once, accuracy is free.
    """
    fields = source.evaluate(ensemble.component("x"),
                             ensemble.component("y"),
                             ensemble.component("z"), t)
    charge = ensemble.charges()
    vel = ensemble.velocities() / SPEED_OF_LIGHT
    px = ensemble.component("px")
    py = ensemble.component("py")
    pz = ensemble.component("pz")
    fx = np.asarray(fields.ex, dtype=np.float64) \
        + vel[:, 1] * fields.bz - vel[:, 2] * fields.by
    fy = np.asarray(fields.ey, dtype=np.float64) \
        + vel[:, 2] * fields.bx - vel[:, 0] * fields.bz
    fz = np.asarray(fields.ez, dtype=np.float64) \
        + vel[:, 0] * fields.by - vel[:, 1] * fields.bx
    px[:] = px + half_dt * charge * fx
    py[:] = py + half_dt * charge * fy
    pz[:] = pz + half_dt * charge * fz
    ensemble.update_gammas()


def setup_leapfrog(ensemble: ParticleEnsemble, source: FieldSource,
                   dt: float, t0: float = 0.0) -> None:
    """Shift momenta from ``t0`` back to ``t0 - dt/2`` (leapfrog stagger)."""
    _momentum_half_kick(ensemble, source, t0, -0.5 * dt)


def undo_leapfrog(ensemble: ParticleEnsemble, source: FieldSource,
                  dt: float, t: float) -> None:
    """Shift momenta from ``t - dt/2`` forward to ``t`` (for diagnostics)."""
    _momentum_half_kick(ensemble, source, t, +0.5 * dt)


def advance(ensemble: ParticleEnsemble, source: FieldSource, dt: float,
            steps: int,
            pusher: Optional[MomentumPusher] = None,
            start_time: float = 0.0,
            callback: Optional[Callable[[int, float, ParticleEnsemble], None]]
            = None,
            check_finite: bool = False) -> float:
    """Advance the ensemble ``steps`` times through ``source``.

    At step ``n`` the fields are evaluated at the current positions and
    time ``start_time + n dt`` (the integer level the rotation is
    centred on), then the pusher advances momentum to ``n + 1/2`` and
    position to ``n + 1``.  Returns the final time
    ``start_time + steps * dt``.

    ``callback(step, time_after_step, ensemble)`` is invoked after each
    push.  With ``check_finite`` the driver validates positions each
    step and raises :class:`SimulationError` on the first NaN/inf.
    """
    if steps < 0:
        raise SimulationError(f"steps must be >= 0, got {steps}")
    push = pusher if pusher is not None else BorisPusher()
    time = float(start_time)
    for step in range(steps):
        fields = source.evaluate(ensemble.component("x"),
                                 ensemble.component("y"),
                                 ensemble.component("z"), time)
        push.push(ensemble, fields, dt)
        time = start_time + (step + 1) * dt
        if check_finite and not np.all(np.isfinite(ensemble.component("x"))):
            raise SimulationError(f"non-finite particle position after "
                                  f"step {step} (t = {time:.6g})")
        if callback is not None:
            callback(step, time, ensemble)
    return time


class TrajectoryRecorder:
    """Callback object that records the ensemble state after every step.

    Intended for small ensembles (it stores dense copies).  Use as::

        recorder = TrajectoryRecorder()
        advance(ensemble, source, dt, steps, callback=recorder)
        positions = recorder.positions()       # (steps, N, 3)
    """

    def __init__(self) -> None:
        self.times: List[float] = []
        self._positions: List[np.ndarray] = []
        self._momenta: List[np.ndarray] = []
        self._gammas: List[np.ndarray] = []

    def __call__(self, step: int, time: float,
                 ensemble: ParticleEnsemble) -> None:
        self.times.append(time)
        self._positions.append(ensemble.positions())
        self._momenta.append(ensemble.momenta())
        self._gammas.append(ensemble.component("gamma").astype(np.float64))

    def positions(self) -> np.ndarray:
        """(steps, N, 3) recorded positions."""
        return np.asarray(self._positions)

    def momenta(self) -> np.ndarray:
        """(steps, N, 3) recorded momenta."""
        return np.asarray(self._momenta)

    def gammas(self) -> np.ndarray:
        """(steps, N) recorded Lorentz factors."""
        return np.asarray(self._gammas)


def integrate_trajectory_rk4(position: np.ndarray, momentum: np.ndarray,
                             mass: float, charge: float,
                             source: FieldSource, dt: float, steps: int,
                             t0: float = 0.0,
                             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Classic RK4 integration of one particle (accuracy reference).

    Integrates the *unsplit* equations ``dr/dt = p / (gamma m)``,
    ``dp/dt = q (E + v x B / c)`` in float64.  Unlike the leapfrog
    pushers, position and momentum here live at the same time levels.

    Returns ``(times, positions, momenta)`` with shapes ``(steps+1,)``,
    ``(steps+1, 3)``, ``(steps+1, 3)`` including the initial state.
    """
    mc = mass * SPEED_OF_LIGHT

    def derivative(r: np.ndarray, p: np.ndarray, t: float
                   ) -> Tuple[np.ndarray, np.ndarray]:
        gamma = math.sqrt(1.0 + float(p @ p) / (mc * mc))
        v = p / (gamma * mass)
        f = source.evaluate(np.array([r[0]]), np.array([r[1]]),
                            np.array([r[2]]), t)
        e = np.array([f.ex[0], f.ey[0], f.ez[0]])
        b = np.array([f.bx[0], f.by[0], f.bz[0]])
        force = charge * (e + np.cross(v, b) / SPEED_OF_LIGHT)
        return v, force

    r = np.asarray(position, dtype=np.float64).copy()
    p = np.asarray(momentum, dtype=np.float64).copy()
    times = np.empty(steps + 1)
    positions = np.empty((steps + 1, 3))
    momenta = np.empty((steps + 1, 3))
    times[0] = t0
    positions[0] = r
    momenta[0] = p

    for n in range(steps):
        t = t0 + n * dt
        k1r, k1p = derivative(r, p, t)
        k2r, k2p = derivative(r + 0.5 * dt * k1r, p + 0.5 * dt * k1p,
                              t + 0.5 * dt)
        k3r, k3p = derivative(r + 0.5 * dt * k2r, p + 0.5 * dt * k2p,
                              t + 0.5 * dt)
        k4r, k4p = derivative(r + dt * k3r, p + dt * k3p, t + dt)
        r = r + dt / 6.0 * (k1r + 2.0 * k2r + 2.0 * k3r + k4r)
        p = p + dt / 6.0 * (k1p + 2.0 * k2p + 2.0 * k3p + k4p)
        times[n + 1] = t0 + (n + 1) * dt
        positions[n + 1] = r
        momenta[n + 1] = p
    return times, positions, momenta
