"""Radiation-reaction-corrected Boris pusher (Landau-Lifshitz).

An extension beyond the paper's kernel, motivated by its own context:
the benchmark's power (0.1 PW) is chosen *below* the regime where
"radiative trapping effects [Gonoskov et al., PRL 113, 014801]" set in,
and the surrounding research programme (vacuum breakdown at 10 PW)
needs radiation reaction.  This module adds the standard classical
treatment used in PIC codes:

* the relativistic Larmor power in the particle's fields,

  ``P = (2 e^4) / (3 m^2 c^3) * gamma^2 * [(E + beta x B)^2 - (beta . E)^2]``

* applied as a continuous friction ``dp/dt = -(P / (v c^2)) * v``
  after each Boris step (leading Landau-Lifshitz term, the only one
  that matters for gamma >> 1);
* optionally scaled by the quantum suppression factor ``g(chi)``
  (Baier-Katkov fit), with the quantum parameter
  ``chi = gamma * sqrt((E + beta x B)^2 - (beta . E)^2) / E_S``
  available as a diagnostic.

Registered in the pusher registry as ``"boris-ll"``.
"""

from __future__ import annotations

import numpy as np

from ..constants import ELEMENTARY_CHARGE, ELECTRON_MASS, PLANCK_CONSTANT, \
    SPEED_OF_LIGHT
from ..fields.base import FieldValues
from ..particles.ensemble import ParticleEnsemble
from .boris import boris_push
from .pushers import MomentumPusher, register_pusher

__all__ = ["SCHWINGER_FIELD", "radiated_power", "quantum_chi",
           "gaunt_factor", "RadiationReactionPusher"]

#: The Schwinger (critical) field ``m^2 c^3 / (e hbar)`` [statvolt/cm].
SCHWINGER_FIELD = (ELECTRON_MASS ** 2 * SPEED_OF_LIGHT ** 3
                   / (ELEMENTARY_CHARGE
                      * (PLANCK_CONSTANT / (2.0 * np.pi))))


def _field_invariant(ensemble: ParticleEnsemble,
                     fields: FieldValues) -> np.ndarray:
    """``(E + beta x B)^2 - (beta . E)^2`` per particle (>= 0).

    This is the squared "effective field" that drives both the
    radiated power and the quantum parameter chi.
    """
    vel = ensemble.velocities() / SPEED_OF_LIGHT
    bx, by, bz = (np.asarray(fields.bx, dtype=np.float64),
                  np.asarray(fields.by, dtype=np.float64),
                  np.asarray(fields.bz, dtype=np.float64))
    ex, ey, ez = (np.asarray(fields.ex, dtype=np.float64),
                  np.asarray(fields.ey, dtype=np.float64),
                  np.asarray(fields.ez, dtype=np.float64))
    fx = ex + vel[:, 1] * bz - vel[:, 2] * by
    fy = ey + vel[:, 2] * bx - vel[:, 0] * bz
    fz = ez + vel[:, 0] * by - vel[:, 1] * bx
    beta_dot_e = vel[:, 0] * ex + vel[:, 1] * ey + vel[:, 2] * ez
    invariant = fx * fx + fy * fy + fz * fz - beta_dot_e ** 2
    return np.maximum(invariant, 0.0)


def radiated_power(ensemble: ParticleEnsemble,
                   fields: FieldValues) -> np.ndarray:
    """Classical synchrotron power per particle [erg/s].

    ``P = (2 q^4) / (3 m^2 c^3) * gamma^2 * [(E + beta x B)^2 - (beta.E)^2]``
    """
    charge = ensemble.charges()
    mass = ensemble.masses()
    gamma = ensemble.component("gamma").astype(np.float64)
    coefficient = 2.0 * charge ** 4 / (3.0 * mass ** 2 * SPEED_OF_LIGHT ** 3)
    return coefficient * gamma ** 2 * _field_invariant(ensemble, fields)


def quantum_chi(ensemble: ParticleEnsemble,
                fields: FieldValues) -> np.ndarray:
    """Quantum nonlinearity parameter chi per particle (dimensionless).

    chi << 1: classical radiation reaction is adequate; chi ~ 1:
    photon recoil matters (the 10-PW regime of the group's vacuum
    breakdown studies).
    """
    gamma = ensemble.component("gamma").astype(np.float64)
    effective = np.sqrt(_field_invariant(ensemble, fields))
    return gamma * effective / SCHWINGER_FIELD


def gaunt_factor(chi: np.ndarray) -> np.ndarray:
    """Quantum suppression g(chi) of the classically radiated power.

    Baier-Katkov fit used widely in QED-PIC codes:
    ``g = [1 + 4.8 (1 + chi) ln(1 + 1.7 chi) + 2.44 chi^2]^(-2/3)``.
    ``g(0) = 1`` (classical limit), decreasing with chi.
    """
    chi_arr = np.asarray(chi, dtype=np.float64)
    return (1.0 + 4.8 * (1.0 + chi_arr) * np.log1p(1.7 * chi_arr)
            + 2.44 * chi_arr ** 2) ** (-2.0 / 3.0)


@register_pusher
class RadiationReactionPusher(MomentumPusher):
    """Boris push plus Landau-Lifshitz radiative friction.

    Args:
        quantum_corrected: Scale the classical power by
            :func:`gaunt_factor` (recommended once chi approaches ~0.1).
    """

    name = "boris-ll"

    def __init__(self, quantum_corrected: bool = False) -> None:
        self.quantum_corrected = bool(quantum_corrected)

    def push(self, ensemble: ParticleEnsemble, fields: FieldValues,
             dt: float) -> None:
        boris_push(ensemble, fields, dt)
        self._apply_friction(ensemble, fields, dt)

    def _apply_friction(self, ensemble: ParticleEnsemble,
                        fields: FieldValues, dt: float) -> None:
        power = radiated_power(ensemble, fields)
        if self.quantum_corrected:
            power = power * gaunt_factor(quantum_chi(ensemble, fields))
        gamma = ensemble.component("gamma").astype(np.float64)
        mass = ensemble.masses()
        # dp = -(P / c^2) * v * dt with v = p / (gamma m); expressed as
        # a relative momentum decrement so direction is preserved.
        decrement = power * dt / (gamma * mass * SPEED_OF_LIGHT ** 2)
        # A full-momentum loss in one step means dt is far too large for
        # the radiation timescale; clamp to keep p physical (the test
        # suite never hits this, it guards user misconfiguration).
        factor = np.maximum(1.0 - decrement, 0.0)
        dtype = ensemble.precision.dtype
        for component in ("px", "py", "pz"):
            view = ensemble.component(component)
            view[:] = (view.astype(np.float64) * factor).astype(dtype)
        ensemble.update_gammas()
