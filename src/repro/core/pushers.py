"""Alternative relativistic momentum pushers.

The paper notes (Section 2) that several integration schemes exist for
the relativistic equations of motion and cites Ripperda et al. 2018 for
a comprehensive comparison, then adopts the conventional Boris method.
To support that comparison (and the ablation benchmark), this module
implements the two most common alternatives behind the same interface:

* :class:`VayPusher` — J.-L. Vay, Phys. Plasmas 15, 056701 (2008).
  Uses the relativistically-correct average velocity, which removes the
  spurious force Boris exhibits in cross-field drift problems.
* :class:`HigueraCaryPusher` — A. V. Higuera & J. R. Cary, Phys.
  Plasmas 24, 052104 (2017).  Volume-preserving like Boris *and*
  correct for E x B drifts.
* :class:`NonRelativisticBorisPusher` — the classic gamma = 1 variant,
  valid for v << c only; included as a baseline and for textbook tests.

All pushers advance momentum ``p(n-1/2) -> p(n+1/2)`` and position
``r(n) -> r(n+1)`` in one call, exactly like the Boris kernel, and run
in the ensemble's storage precision.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Type

import numpy as np

from ..constants import SPEED_OF_LIGHT
from ..errors import ConfigurationError
from ..fields.base import FieldValues
from ..particles.ensemble import ParticleEnsemble
from .boris import BorisPusher

__all__ = ["MomentumPusher", "VayPusher", "HigueraCaryPusher",
           "NonRelativisticBorisPusher", "available_pushers", "get_pusher"]


class MomentumPusher(abc.ABC):
    """Interface of a one-step particle pusher.

    Implementations must set a class attribute ``name`` (the registry
    key) and advance momentum, stored gamma and position together, so
    that drivers can treat all pushers interchangeably.
    """

    name: str = ""

    @abc.abstractmethod
    def push(self, ensemble: ParticleEnsemble, fields: FieldValues,
             dt: float) -> None:
        """Advance the whole ensemble by one step of size ``dt``."""


class _NormalizedState:
    """Per-call working state in normalized momentum ``u = p / (m c)``.

    Shared by the Vay and Higuera-Cary kernels, which are both naturally
    written in terms of ``u``, ``eps = q E dt / (2 m c)`` and
    ``tau = q B dt / (2 m c)``.
    """

    def __init__(self, ensemble: ParticleEnsemble, fields: FieldValues,
                 dt: float) -> None:
        dtype = ensemble.precision.dtype
        self.dtype = dtype
        self.ensemble = ensemble
        self.dt = dtype.type(dt)
        mass = ensemble.masses().astype(dtype)
        charge = ensemble.charges().astype(dtype)
        self.mass = mass
        mc = mass * dtype.type(SPEED_OF_LIGHT)
        self.inv_mc = dtype.type(1.0) / mc
        coeff = charge * self.dt / (dtype.type(2.0) * mc)
        self.epsx = coeff * np.asarray(fields.ex, dtype=dtype)
        self.epsy = coeff * np.asarray(fields.ey, dtype=dtype)
        self.epsz = coeff * np.asarray(fields.ez, dtype=dtype)
        self.taux = coeff * np.asarray(fields.bx, dtype=dtype)
        self.tauy = coeff * np.asarray(fields.by, dtype=dtype)
        self.tauz = coeff * np.asarray(fields.bz, dtype=dtype)
        self.ux = ensemble.component("px") * self.inv_mc
        self.uy = ensemble.component("py") * self.inv_mc
        self.uz = ensemble.component("pz") * self.inv_mc

    def gamma_of(self, ux: np.ndarray, uy: np.ndarray,
                 uz: np.ndarray) -> np.ndarray:
        """``gamma = sqrt(1 + |u|^2)`` for normalized momentum."""
        one = self.dtype.type(1.0)
        return np.sqrt(one + ux * ux + uy * uy + uz * uz)

    def midpoint_gamma(self, ux: np.ndarray, uy: np.ndarray,
                       uz: np.ndarray) -> np.ndarray:
        """Solve for the midpoint gamma of the Vay/Higuera-Cary schemes.

        Given an intermediate momentum ``u`` and the rotation vector
        ``tau``, returns the positive root of
        ``gamma^4 - (sigma) gamma^2 - (tau^2 + (u . tau)^2) = 0`` with
        ``sigma = gamma(u)^2 - tau^2``.
        """
        dtype = self.dtype
        one = dtype.type(1.0)
        two = dtype.type(2.0)
        four = dtype.type(4.0)
        tau2 = self.taux ** 2 + self.tauy ** 2 + self.tauz ** 2
        u_star = ux * self.taux + uy * self.tauy + uz * self.tauz
        gamma2 = one + ux * ux + uy * uy + uz * uz
        sigma = gamma2 - tau2
        return np.sqrt((sigma + np.sqrt(sigma * sigma
                                        + four * (tau2 + u_star * u_star)))
                       / two)

    def cayley_half_rotation(self, ux: np.ndarray, uy: np.ndarray,
                             uz: np.ndarray, gamma: np.ndarray):
        """Solve ``u+ = u + u+ x t`` with ``t = tau / gamma``.

        The closed form is ``u+ = (u + (u . t) t + u x t) / (1 + t^2)``.
        """
        dtype = self.dtype
        one = dtype.type(1.0)
        inv_gamma = one / gamma
        tx = self.taux * inv_gamma
        ty = self.tauy * inv_gamma
        tz = self.tauz * inv_gamma
        t2 = tx * tx + ty * ty + tz * tz
        u_dot_t = ux * tx + uy * ty + uz * tz
        s = one / (one + t2)
        upx = s * (ux + u_dot_t * tx + (uy * tz - uz * ty))
        upy = s * (uy + u_dot_t * ty + (uz * tx - ux * tz))
        upz = s * (uz + u_dot_t * tz + (ux * ty - uy * tx))
        return upx, upy, upz, tx, ty, tz

    def store(self, ux: np.ndarray, uy: np.ndarray, uz: np.ndarray) -> None:
        """Write the new momentum/gamma back and drift the positions."""
        ensemble = self.ensemble
        dtype = self.dtype
        gamma = self.gamma_of(ux, uy, uz)
        mc = self.mass * dtype.type(SPEED_OF_LIGHT)
        ensemble.component("px")[:] = ux * mc
        ensemble.component("py")[:] = uy * mc
        ensemble.component("pz")[:] = uz * mc
        ensemble.component("gamma")[:] = gamma
        # v = c u / gamma; r += v dt.
        v_coeff = dtype.type(SPEED_OF_LIGHT) * self.dt / gamma
        ensemble.component("x")[:] += ux * v_coeff
        ensemble.component("y")[:] += uy * v_coeff
        ensemble.component("z")[:] += uz * v_coeff


class VayPusher(MomentumPusher):
    """Vay (2008) pusher: drift-correct average velocity.

    First half-step uses the *old* velocity in the magnetic term; the
    second half-step solves the implicit midpoint relation analytically
    via the quartic gamma equation.
    """

    name = "vay"

    def push(self, ensemble: ParticleEnsemble, fields: FieldValues,
             dt: float) -> None:
        st = _NormalizedState(ensemble, fields, dt)
        gamma_old = st.gamma_of(st.ux, st.uy, st.uz)
        inv_g = st.dtype.type(1.0) / gamma_old
        # u' = u + 2 eps + (u / gamma) x tau  (full electric kick plus the
        # explicit half of the magnetic rotation).
        two = st.dtype.type(2.0)
        upx = st.ux + two * st.epsx + (st.uy * st.tauz - st.uz * st.tauy) * inv_g
        upy = st.uy + two * st.epsy + (st.uz * st.taux - st.ux * st.tauz) * inv_g
        upz = st.uz + two * st.epsz + (st.ux * st.tauy - st.uy * st.taux) * inv_g
        # Implicit half: gamma_new from the quartic, then the Cayley solve.
        gamma_new = st.midpoint_gamma(upx, upy, upz)
        ux, uy, uz, _, _, _ = st.cayley_half_rotation(upx, upy, upz, gamma_new)
        st.store(ux, uy, uz)


class HigueraCaryPusher(MomentumPusher):
    """Higuera-Cary (2017) pusher: volume-preserving and drift-correct.

    Boris's structure (half kick, rotation, half kick) but the rotation
    angle uses the *midpoint* gamma from the quartic equation, and the
    rotation is completed by the explicit Cayley half ``u+ + u+ x t``.
    """

    name = "higuera-cary"

    def push(self, ensemble: ParticleEnsemble, fields: FieldValues,
             dt: float) -> None:
        st = _NormalizedState(ensemble, fields, dt)
        # Half electric kick.
        umx = st.ux + st.epsx
        umy = st.uy + st.epsy
        umz = st.uz + st.epsz
        # Midpoint gamma and full rotation (implicit + explicit Cayley halves).
        gamma_mid = st.midpoint_gamma(umx, umy, umz)
        upx, upy, upz, tx, ty, tz = st.cayley_half_rotation(
            umx, umy, umz, gamma_mid)
        urx = upx + (upy * tz - upz * ty)
        ury = upy + (upz * tx - upx * tz)
        urz = upz + (upx * ty - upy * tx)
        # Half electric kick.
        st.store(urx + st.epsx, ury + st.epsy, urz + st.epsz)


class NonRelativisticBorisPusher(MomentumPusher):
    """Boris scheme with gamma frozen at 1 (classical limit).

    Only valid for ``v << c``; the stored gamma is still updated from
    the momentum so diagnostics remain meaningful.
    """

    name = "boris-nonrel"

    def push(self, ensemble: ParticleEnsemble, fields: FieldValues,
             dt: float) -> None:
        dtype = ensemble.precision.dtype
        one = dtype.type(1.0)
        two = dtype.type(2.0)
        dt_fp = dtype.type(dt)
        mass = ensemble.masses().astype(dtype)
        charge = ensemble.charges().astype(dtype)
        e_coeff = charge * dt_fp / two
        t_coeff = e_coeff / (mass * dtype.type(SPEED_OF_LIGHT))

        px = ensemble.component("px")
        py = ensemble.component("py")
        pz = ensemble.component("pz")

        pmx = px + e_coeff * np.asarray(fields.ex, dtype=dtype)
        pmy = py + e_coeff * np.asarray(fields.ey, dtype=dtype)
        pmz = pz + e_coeff * np.asarray(fields.ez, dtype=dtype)

        tx = np.asarray(fields.bx, dtype=dtype) * t_coeff
        ty = np.asarray(fields.by, dtype=dtype) * t_coeff
        tz = np.asarray(fields.bz, dtype=dtype) * t_coeff
        t2 = tx * tx + ty * ty + tz * tz
        s = two / (one + t2)

        ppx = pmx + (pmy * tz - pmz * ty)
        ppy = pmy + (pmz * tx - pmx * tz)
        ppz = pmz + (pmx * ty - pmy * tx)

        plx = pmx + (ppy * tz - ppz * ty) * s
        ply = pmy + (ppz * tx - ppx * tz) * s
        plz = pmz + (ppx * ty - ppy * tx) * s

        px[:] = plx + e_coeff * np.asarray(fields.ex, dtype=dtype)
        py[:] = ply + e_coeff * np.asarray(fields.ey, dtype=dtype)
        pz[:] = plz + e_coeff * np.asarray(fields.ez, dtype=dtype)
        ensemble.update_gammas()
        inv_m = dt_fp / mass
        ensemble.component("x")[:] += px * inv_m
        ensemble.component("y")[:] += py * inv_m
        ensemble.component("z")[:] += pz * inv_m


# BorisPusher lives in boris.py (no import cycle); it satisfies the
# interface structurally and is registered as a virtual subclass so
# isinstance checks hold.
MomentumPusher.register(BorisPusher)

_REGISTRY: Dict[str, Type[MomentumPusher]] = {
    BorisPusher.name: BorisPusher,
    VayPusher.name: VayPusher,
    HigueraCaryPusher.name: HigueraCaryPusher,
    NonRelativisticBorisPusher.name: NonRelativisticBorisPusher,
}


def register_pusher(cls: Type[MomentumPusher]) -> Type[MomentumPusher]:
    """Add a pusher class to the registry under its ``name`` attribute.

    Usable as a decorator; returns the class unchanged.  Extension
    modules (e.g. :mod:`repro.core.radiation`) register themselves so
    :func:`get_pusher` finds them.
    """
    if not cls.name:
        raise ConfigurationError("pusher class needs a non-empty name")
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"pusher {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def available_pushers() -> List[str]:
    """Names of all registered pushers."""
    return sorted(_REGISTRY)


def get_pusher(name: str) -> MomentumPusher:
    """Instantiate a pusher by registry name.

    Raises :class:`ConfigurationError` for unknown names.
    """
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown pusher {name!r}; available: {available_pushers()}"
        ) from None
