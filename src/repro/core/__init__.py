"""The paper's primary contribution: relativistic particle push kernels.

:mod:`repro.core.boris` implements the Boris pusher exactly as in
Section 2 of the paper (eqs. 6-13): a scalar reference version that
mirrors the C++ listing line by line, and vectorized kernels operating
on whole ensembles in either memory layout and precision.

:mod:`repro.core.pushers` adds the alternative integrators surveyed in
the paper's reference [11] (Ripperda et al. 2018): Vay, Higuera-Cary
and a non-relativistic Boris, behind a common interface.

:mod:`repro.core.stepping` provides leapfrog initialisation, simulation
drivers and a high-order (RK4) reference integrator used for
validation.
"""

from .boris import (
    boris_push_particle,
    boris_push,
    boris_rotation,
    BorisPusher,
)
from .pushers import (
    MomentumPusher,
    VayPusher,
    HigueraCaryPusher,
    NonRelativisticBorisPusher,
    available_pushers,
    get_pusher,
    register_pusher,
)
from .radiation import (
    RadiationReactionPusher,
    radiated_power,
    quantum_chi,
    gaunt_factor,
    SCHWINGER_FIELD,
)
from .stepping import (
    setup_leapfrog,
    undo_leapfrog,
    advance,
    integrate_trajectory_rk4,
    TrajectoryRecorder,
)
from .kernels import (
    boris_push_precalculated,
    boris_push_analytical,
    BORIS_FLOPS,
    GAMMA_FLOPS,
    POSITION_FLOPS,
)

__all__ = [
    "boris_push_particle",
    "boris_push",
    "boris_rotation",
    "BorisPusher",
    "MomentumPusher",
    "VayPusher",
    "HigueraCaryPusher",
    "NonRelativisticBorisPusher",
    "available_pushers",
    "get_pusher",
    "register_pusher",
    "RadiationReactionPusher",
    "radiated_power",
    "quantum_chi",
    "gaunt_factor",
    "SCHWINGER_FIELD",
    "setup_leapfrog",
    "undo_leapfrog",
    "advance",
    "integrate_trajectory_rk4",
    "TrajectoryRecorder",
    "boris_push_precalculated",
    "boris_push_analytical",
    "BORIS_FLOPS",
    "GAMMA_FLOPS",
    "POSITION_FLOPS",
]
